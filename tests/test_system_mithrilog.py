"""End-to-end tests for the MithriLog system facade."""

import pytest

from repro.baselines.grep import grep_lines
from repro.core.query import parse_query
from repro.datasets.synthetic import generator_for
from repro.errors import QueryError
from repro.system.mithrilog import MithriLogSystem


@pytest.fixture(scope="module")
def corpus():
    # large enough that the 100 microsecond access latency amortises and
    # the near-storage bandwidth story is visible (the paper's corpora
    # are GBs; ~1.5 MB is the laptop-scale equivalent)
    return generator_for("Liberty2").generate(12_000)


@pytest.fixture(scope="module")
def system(corpus):
    sys = MithriLogSystem()
    sys.ingest(corpus)
    return sys


class TestIngest:
    def test_ingest_report(self, system, corpus):
        # re-ingest into a fresh system to inspect the report
        fresh = MithriLogSystem()
        report = fresh.ingest(corpus[:500])
        assert report.lines == 500
        assert report.pages_written >= 1
        assert report.compression_ratio > 1.5
        assert report.index_memory_bytes > 0

    def test_pages_fit_flash(self, corpus):
        fresh = MithriLogSystem()
        fresh.ingest(corpus[:500])
        for addr in fresh.index.data_pages:
            page = fresh.device.flash.read_page(addr)
            assert len(page.data) <= fresh.params.storage.page_bytes

    def test_compression_packs_multiple_lines_per_page(self, corpus):
        fresh = MithriLogSystem()
        report = fresh.ingest(corpus[:500])
        text_bytes = sum(len(ln) + 1 for ln in corpus[:500])
        naive_pages = -(-text_bytes // fresh.params.storage.page_bytes)
        # compression must beat storing raw text by a wide margin
        assert report.pages_written < naive_pages

    def test_mismatched_timestamps_rejected(self):
        fresh = MithriLogSystem()
        with pytest.raises(Exception):
            fresh.ingest([b"a", b"b"], timestamps=[1.0])

    def test_accelerator_rate_measured(self, system):
        # four pipelines: between 1 and 12.8 GB/s of text consumption
        assert 1e9 < system.accelerator_rate <= 12.8e9


class TestQueryCorrectness:
    def test_indexed_query_matches_oracle(self, system, corpus):
        query = parse_query('"session" AND "opened"')
        outcome = system.query(query)
        expected = grep_lines(query, corpus)
        assert sorted(outcome.matched_lines) == sorted(expected)

    def test_unindexed_scan_matches_oracle(self, system, corpus):
        query = parse_query("kernel: AND NOT nfs:")
        outcome = system.scan_all(query)
        expected = grep_lines(query, corpus)
        assert sorted(outcome.matched_lines) == sorted(expected)

    def test_negative_heavy_query_matches_oracle(self, system, corpus):
        query = parse_query("NOT kernel: AND NOT sshd")
        outcome = system.query(query)
        expected = grep_lines(query, corpus)
        assert sorted(outcome.matched_lines) == sorted(expected)
        assert outcome.stats.index_full_scan

    def test_concurrent_queries_counted_separately(self, system, corpus):
        q1 = parse_query("pbs_mom:")
        q2 = parse_query("ntpd")
        outcome = system.query(q1, q2)
        assert outcome.per_query_counts[0] == len(grep_lines(q1, corpus))
        assert outcome.per_query_counts[1] == len(grep_lines(q2, corpus))

    def test_no_matches(self, system):
        outcome = system.query(parse_query("token-that-never-occurs-xyz"))
        assert outcome.matched_lines == []
        assert outcome.per_query_counts == [0]

    def test_query_without_args_rejected(self, system):
        with pytest.raises(QueryError):
            system.query()


class TestQueryPerformanceAccounting:
    def test_index_reduces_pages_read(self, system):
        selective = parse_query("panic:")
        indexed = system.query(selective)
        scanned = system.scan_all(selective)
        assert indexed.stats.candidate_pages < scanned.stats.candidate_pages
        assert indexed.stats.bytes_from_flash < scanned.stats.bytes_from_flash

    def test_filtering_reduces_host_bytes(self, system):
        outcome = system.scan_all(parse_query("panic:"))
        assert outcome.stats.bytes_to_host < outcome.stats.bytes_decompressed

    def test_effective_throughput_exceeds_raw_storage(self, system):
        # compression + near-storage: effective GB/s above internal BW
        outcome = system.scan_all(parse_query("panic:"))
        gbps = outcome.effective_throughput(system.original_bytes)
        assert gbps > system.params.storage.internal_bandwidth

    def test_throughput_constant_across_query_complexity(self, system):
        simple = system.scan_all(parse_query("panic:"))
        complex_q = parse_query(
            " OR ".join(f"(kernel: AND t{i} AND NOT u{i})" for i in range(8))
        )
        complicated = system.scan_all(complex_q)
        t1 = simple.effective_throughput(system.original_bytes)
        t2 = complicated.effective_throughput(system.original_bytes)
        assert t2 == pytest.approx(t1, rel=0.15)

    def test_stats_shape(self, system):
        outcome = system.query(parse_query("sshd"))
        s = outcome.stats
        assert s.candidate_pages <= s.total_pages
        assert s.lines_kept <= s.lines_seen
        assert s.elapsed_s == s.index_time_s + s.scan_time_s
        assert 0.0 <= s.index_reduction <= 1.0

    def test_query_before_ingest_rejected(self):
        fresh = MithriLogSystem()
        with pytest.raises(QueryError):
            fresh.query(parse_query("x"))


class TestTimeBoundedQueries:
    def test_time_range_query(self):
        gen = generator_for("BGL2")
        lines = gen.generate(1000)
        epochs = [float(ln.split()[1]) for ln in lines]
        system = MithriLogSystem()
        system.ingest(lines, timestamps=epochs)
        system.index.flush(timestamp=epochs[-1])
        query = parse_query("KERNEL")
        bounded = system.query(query, time_range=(epochs[0], epochs[-1]))
        expected = grep_lines(query, lines)
        assert sorted(bounded.matched_lines) == sorted(expected)
