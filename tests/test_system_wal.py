"""Tests for write-ahead logging and crash recovery."""

import pytest

from repro.baselines.grep import grep_lines
from repro.core.query import parse_query
from repro.datasets.synthetic import generator_for
from repro.errors import IngestError
from repro.system.wal import JournaledMithriLog, WriteAheadLog


@pytest.fixture(scope="module")
def corpus():
    return generator_for("BGL2").generate(900)


class TestWriteAheadLog:
    def test_append_replay_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.bin")
        wal.append([b"one", b"two"])
        wal.append([b"three"], timestamps=[5.0])
        batches = list(wal.replay())
        assert batches[0] == ([b"one", b"two"], None)
        assert batches[1] == ([b"three"], [5.0])

    def test_empty_batch_is_noop(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.bin")
        wal.append([])
        assert wal.size_bytes == 0
        assert list(wal.replay()) == []

    def test_torn_tail_record_dropped(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.bin")
        wal.append([b"committed"])
        wal.append([b"torn batch that crashed mid-write"])
        blob = wal.path.read_bytes()
        wal.path.write_bytes(blob[:-7])  # simulate the crash
        batches = list(wal.replay())
        assert batches == [([b"committed"], None)]

    def test_truncate(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.bin")
        wal.append([b"x"])
        wal.truncate()
        assert wal.size_bytes == 0
        assert list(wal.replay()) == []

    def test_timestamp_alignment_enforced(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.bin")
        with pytest.raises(IngestError):
            wal.append([b"a", b"b"], timestamps=[1.0])

    def test_empty_line_batches_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.bin")
        wal.append([b"", b"a", b""])
        assert list(wal.replay()) == [([b"", b"a", b""], None)]


class TestCrashRecovery:
    def test_recover_without_checkpoint(self, tmp_path, corpus):
        journaled = JournaledMithriLog(tmp_path / "store")
        journaled.ingest(corpus[:400])
        # crash: the in-memory system is gone; only the WAL survives
        recovered = JournaledMithriLog.recover(tmp_path / "store")
        query = parse_query("KERNEL AND INFO")
        expected = grep_lines(query, corpus[:400])
        assert sorted(recovered.query(query).matched_lines) == sorted(expected)

    def test_recover_checkpoint_plus_tail(self, tmp_path, corpus):
        journaled = JournaledMithriLog(tmp_path / "store")
        journaled.ingest(corpus[:300])
        journaled.checkpoint()
        journaled.ingest(corpus[300:600])  # journalled but not checkpointed
        recovered = JournaledMithriLog.recover(tmp_path / "store")
        assert recovered.system.total_lines == 600
        query = parse_query("FATAL")
        expected = grep_lines(query, corpus[:600])
        assert sorted(recovered.query(query).matched_lines) == sorted(expected)

    def test_checkpoint_truncates_wal(self, tmp_path, corpus):
        journaled = JournaledMithriLog(tmp_path / "store")
        journaled.ingest(corpus[:200])
        assert journaled.wal.size_bytes > 0
        journaled.checkpoint()
        assert journaled.wal.size_bytes == 0

    def test_recovery_preserves_timestamps(self, tmp_path, corpus):
        epochs = [float(ln.split()[1]) for ln in corpus[:300]]
        journaled = JournaledMithriLog(tmp_path / "store")
        journaled.ingest(corpus[:300], timestamps=epochs)
        recovered = JournaledMithriLog.recover(tmp_path / "store")
        recovered.system.index.flush(timestamp=epochs[-1])
        query = parse_query("KERNEL")
        bounded = recovered.query(query, time_range=(epochs[0], epochs[-1]))
        expected = grep_lines(query, corpus[:300])
        assert sorted(bounded.matched_lines) == sorted(expected)

    def test_double_recovery_is_stable(self, tmp_path, corpus):
        journaled = JournaledMithriLog(tmp_path / "store")
        journaled.ingest(corpus[:250])
        first = JournaledMithriLog.recover(tmp_path / "store")
        second = JournaledMithriLog.recover(tmp_path / "store")
        query = parse_query("RAS")
        assert (
            sorted(first.query(query).matched_lines)
            == sorted(second.query(query).matched_lines)
        )
