"""Tests for the Snappy block-format codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.snappylike import SnappyLikeCompressor
from repro.errors import CompressedFormatError

LINE = b"Jun 14 15:16:01 combo sshd(pam_unix)[19939]: authentication failure\n"


@pytest.fixture
def codec():
    return SnappyLikeCompressor()


class TestRoundTrip:
    def test_empty(self, codec):
        assert codec.decompress(codec.compress(b"")) == b""

    def test_short(self, codec):
        assert codec.decompress(codec.compress(b"abc")) == b"abc"

    def test_log_corpus(self, codec):
        data = LINE * 400
        compressed = codec.compress(data)
        assert codec.decompress(compressed) == data
        assert len(compressed) < len(data) / 4

    def test_long_runs(self, codec):
        data = b"A" * 100_000
        compressed = codec.compress(data)
        assert codec.decompress(compressed) == data
        # ~3 bytes per 64-byte copy element (snappy caps copy length at 64)
        assert len(compressed) < 6000

    def test_long_literal_run(self, codec):
        import random

        rng = random.Random(5)
        data = bytes(rng.randrange(256) for _ in range(70_000))
        assert codec.decompress(codec.compress(data)) == data

    def test_overlapping_copies(self, codec):
        data = b"abcabcabcabc" * 50
        assert codec.decompress(codec.compress(data)) == data

    def test_far_offsets_use_wide_copies(self, codec):
        marker = b"UNIQUE-MARKER-SEQUENCE"
        filler = bytes((i * 7 + i // 251) % 256 for i in range(70_000))
        data = marker + filler + marker
        assert codec.decompress(codec.compress(data)) == data

    @given(st.binary(max_size=4096))
    @settings(max_examples=150)
    def test_roundtrip_arbitrary(self, data):
        codec = SnappyLikeCompressor()
        assert codec.decompress(codec.compress(data)) == data

    @given(st.lists(st.sampled_from([LINE[:20], b"xyz ", b"12345 "]), max_size=200))
    @settings(max_examples=50)
    def test_roundtrip_log_like(self, parts):
        codec = SnappyLikeCompressor()
        data = b"".join(parts)
        assert codec.decompress(codec.compress(data)) == data


class TestFormatDetails:
    def test_preamble_is_varint_length(self, codec):
        compressed = codec.compress(b"x" * 300)
        # 300 = 0xAC 0x02 little-endian varint
        assert compressed[0] == 0xAC and compressed[1] == 0x02

    def test_literal_only_stream(self, codec):
        compressed = codec.compress(b"ab")
        # varint(2), tag (len-1)<<2, payload
        assert compressed == bytes([0x02, 0x04]) + b"ab"

    def test_copy1_used_for_near_matches(self, codec):
        # a 4-byte match at offset 8: exactly the copy1 operating range
        data = b"0123abcd0123"
        compressed = codec.compress(data)
        kinds = set()
        pos = 1  # skip 1-byte varint
        while pos < len(compressed):
            tag = compressed[pos]
            kind = tag & 3
            kinds.add(kind)
            if kind == 0:
                length = (tag >> 2) + 1
                pos += 1 + length
            elif kind == 1:
                pos += 2
            elif kind == 2:
                pos += 3
            else:
                pos += 5
        assert 1 in kinds  # at least one short-offset copy


class TestMalformed:
    def test_empty_stream(self, codec):
        with pytest.raises(CompressedFormatError):
            codec.decompress(b"")

    def test_declared_length_mismatch(self, codec):
        good = bytearray(codec.compress(b"hello world"))
        good[0] += 1  # claim one more byte than decoded
        with pytest.raises(CompressedFormatError):
            codec.decompress(bytes(good))

    def test_bad_offset(self, codec):
        # varint(4), copy2 tag len=4, offset 9999 into empty history
        stream = bytes([0x04, 0x02 | (3 << 2)]) + (9999).to_bytes(2, "little")
        with pytest.raises(CompressedFormatError):
            codec.decompress(stream)

    def test_truncated_literal(self, codec):
        stream = bytes([0x05, 0x10]) + b"ab"  # claims 5 literal bytes
        with pytest.raises(CompressedFormatError):
            codec.decompress(stream)

    def test_runaway_varint(self, codec):
        with pytest.raises(CompressedFormatError):
            codec.decompress(b"\xff" * 8)
