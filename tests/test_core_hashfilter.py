"""Tests for query compilation and the bitmap hash filter (Figure 6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hashfilter import HashFilter, compile_queries
from repro.core.query import IntersectionSet, Query, Term, parse_query
from repro.core.tokenizer import Tokenizer
from repro.errors import CapacityError


def evaluate(program, line: bytes):
    words = Tokenizer().tokenize_line(line)
    return HashFilter(program).evaluate_words(words)


class TestCompilation:
    def test_simple_query_compiles(self):
        program = compile_queries([Query.single("RAS", "KERNEL")])
        assert program.num_queries == 1
        assert program.num_isets == 1
        assert program.table.occupied == 2

    def test_query_bitmap_has_positive_bits_only(self):
        query = Query.single(Term("A"), Term("B", negative=True))
        program = compile_queries([query])
        bitmap = program.query_bitmaps[0]
        row_a = program.table.lookup(b"A")[0]
        row_b = program.table.lookup(b"B")[0]
        assert bitmap & (1 << row_a)
        assert not bitmap & (1 << row_b)

    def test_no_queries_rejected(self):
        with pytest.raises(CapacityError):
            compile_queries([])

    def test_flag_pair_budget_enforced(self):
        queries = [Query.single(f"t{i}") for i in range(9)]
        with pytest.raises(CapacityError):
            compile_queries(queries)

    def test_eight_concurrent_queries_fit(self):
        queries = [Query.single(f"t{i}") for i in range(8)]
        program = compile_queries(queries)
        assert program.num_queries == 8
        assert program.iset_to_query == tuple(range(8))

    def test_shared_token_across_queries(self):
        q1 = Query.single("shared", "one")
        q2 = Query.single("shared", "two")
        program = compile_queries([q1, q2])
        assert program.table.occupied == 3  # 'shared' stored once

    def test_describe(self):
        program = compile_queries([Query.single("A")])
        assert "1 queries" in program.describe()


class TestFilterSemantics:
    def test_simple_presence(self):
        program = compile_queries([Query.single("RAS", "KERNEL")])
        assert evaluate(program, b"x RAS KERNEL INFO") == (True,)
        assert evaluate(program, b"x RAS INFO") == (False,)

    def test_negative_term(self):
        query = parse_query("RAS AND NOT FATAL")
        program = compile_queries([query])
        assert evaluate(program, b"RAS KERNEL INFO") == (True,)
        assert evaluate(program, b"RAS KERNEL FATAL") == (False,)

    def test_paper_equation_one(self):
        query = parse_query("(NOT A AND B AND C) OR (NOT D AND NOT E AND F AND G)")
        program = compile_queries([query])
        assert evaluate(program, b"B C x") == (True,)
        assert evaluate(program, b"A B C") == (False,)
        assert evaluate(program, b"F G") == (True,)
        assert evaluate(program, b"F G E") == (False,)
        assert evaluate(program, b"nothing here") == (False,)

    def test_all_negative_intersection(self):
        query = parse_query("NOT kernel")
        program = compile_queries([query])
        assert evaluate(program, b"userspace message") == (True,)
        assert evaluate(program, b"kernel panic") == (False,)

    def test_concurrent_queries_get_separate_verdicts(self):
        q1 = parse_query("failed")
        q2 = parse_query("panic AND NOT recovered")
        program = compile_queries([q1, q2])
        assert evaluate(program, b"job failed badly") == (True, False)
        assert evaluate(program, b"kernel panic now") == (False, True)
        assert evaluate(program, b"panic recovered ok") == (False, False)
        assert evaluate(program, b"failed panic") == (True, True)

    def test_duplicate_tokens_in_line_harmless(self):
        program = compile_queries([Query.single("A", "B")])
        assert evaluate(program, b"A A A B") == (True,)

    def test_empty_line(self):
        program = compile_queries([Query.single("A")])
        assert evaluate(program, b"") == (False,)

    def test_long_token_matching_via_overflow(self):
        long_token = b"a-very-long-token-exceeding-the-sixteen-byte-slot"
        program = compile_queries([Query.single(long_token)])
        assert program.table.overflow_used > 0
        assert evaluate(program, b"prefix " + long_token + b" suffix") == (True,)
        assert evaluate(program, b"prefix " + long_token[:-1] + b" suffix") == (False,)

    def test_column_constrained_query(self):
        query = Query.single(Term("sshd", column=2))
        program = compile_queries([query])
        assert evaluate(program, b"Jun 14 sshd started") == (True,)
        assert evaluate(program, b"sshd Jun 14 started") == (False,)

    def test_prefix_of_query_token_does_not_match(self):
        program = compile_queries([Query.single("KERNELFATAL")])
        assert evaluate(program, b"KERNEL FATAL") == (False,)


class TestEvaluateTokens:
    def test_token_path_equals_word_path(self):
        query = parse_query("RAS AND NOT FATAL")
        program = compile_queries([query])
        filt = HashFilter(program)
        line = b"R00 RAS KERNEL INFO"
        by_words = filt.evaluate_words(Tokenizer().tokenize_line(line))
        by_tokens = filt.evaluate_tokens([b"R00", b"RAS", b"KERNEL", b"INFO"])
        assert by_words == by_tokens

    def test_counters(self):
        program = compile_queries([Query.single("A")])
        filt = HashFilter(program)
        filt.evaluate_tokens([b"A", b"B"])
        filt.evaluate_tokens([b"C"])
        assert filt.lines_processed == 2
        assert filt.tokens_processed == 3


TOKENS = [b"A", b"B", b"C", b"D", b"E"]


@st.composite
def _hardware_sized_queries(draw):
    n_queries = draw(st.integers(1, 3))
    queries = []
    budget = 8
    for _ in range(n_queries):
        n_sets = draw(st.integers(1, min(2, budget)))
        budget -= n_sets
        sets = []
        for _ in range(n_sets):
            n_terms = draw(st.integers(1, 3))
            terms = []
            used = set()
            for _ in range(n_terms):
                token = draw(st.sampled_from(TOKENS))
                if token in used:
                    continue
                used.add(token)
                terms.append(Term(token, negative=draw(st.booleans())))
            if not terms:
                terms = [Term(b"A")]
            sets.append(IntersectionSet(terms=tuple(terms)))
        queries.append(Query.of(*sets))
    return queries


class TestOracleEquivalence:
    """The hardware filter must agree with the naive set semantics."""

    @given(
        _hardware_sized_queries(),
        st.lists(st.sampled_from(TOKENS + [b"X", b"Y"]), max_size=8),
    )
    @settings(max_examples=300)
    def test_filter_equals_oracle(self, queries, line_tokens):
        program = compile_queries(queries)
        filt = HashFilter(program)
        got = filt.evaluate_tokens(line_tokens)
        expected = tuple(q.matches_tokens(line_tokens) for q in queries)
        assert got == expected

    @given(
        st.lists(
            st.binary(min_size=1, max_size=30).filter(
                lambda t: not any(d in t for d in b" \t\n")
            ),
            min_size=1,
            max_size=6,
            unique=True,
        ),
        st.data(),
    )
    @settings(max_examples=100)
    def test_arbitrary_tokens_roundtrip(self, tokens, data):
        query = Query.single(*tokens[:3])
        program = compile_queries([query])
        line = b" ".join(data.draw(st.permutations(tokens)))
        assert evaluate(program, line) == (query.matches_line(line),)
