"""Tests for the template-sequence transition model."""

import random

import pytest

from repro.analytics.sequences import TransitionModel


def workflow_stream(repeats: int, noise: float = 0.0, seed: int = 0):
    """A rigid 4-step workflow (0 -> 1 -> 2 -> 3) with optional noise."""
    rng = random.Random(seed)
    tags = []
    for _ in range(repeats):
        for step in (0, 1, 2, 3):
            if noise and rng.random() < noise:
                tags.append(rng.randrange(4))
            else:
                tags.append(step)
    return tags


class TestFitAndProbabilities:
    def test_learned_transitions_dominate(self):
        model = TransitionModel(num_templates=4).fit(workflow_stream(100))
        assert model.transition_prob(0, 1) > 0.9
        assert model.transition_prob(0, 2) < 0.05

    def test_unseen_transitions_get_smoothed_mass(self):
        model = TransitionModel(num_templates=4).fit(workflow_stream(100))
        assert model.transition_prob(2, 0) > 0.0

    def test_unparsed_state_supported(self):
        model = TransitionModel(num_templates=2).fit([0, None, 1, None, 0])
        assert model.transition_prob(0, None) > 0.0
        assert model.transition_prob(None, 1) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TransitionModel(num_templates=0)
        with pytest.raises(ValueError):
            TransitionModel(num_templates=2, smoothing=0)
        with pytest.raises(ValueError):
            TransitionModel(num_templates=2).fit([0])
        model = TransitionModel(num_templates=2).fit([0, 1])
        with pytest.raises(ValueError):
            model.transition_prob(5, 0)

    def test_unfitted_raises(self):
        model = TransitionModel(num_templates=2)
        with pytest.raises(RuntimeError):
            model.transition_prob(0, 1)
        with pytest.raises(RuntimeError):
            model.most_likely_next(0)


class TestSurprise:
    def test_normal_stream_scores_low(self):
        model = TransitionModel(num_templates=4).fit(workflow_stream(200))
        normal = model.surprise(workflow_stream(20, seed=7))
        assert normal < 1.0  # near-deterministic workflow

    def test_shuffled_stream_scores_high(self):
        model = TransitionModel(num_templates=4).fit(workflow_stream(200))
        rng = random.Random(3)
        shuffled = workflow_stream(20)
        rng.shuffle(shuffled)
        assert model.surprise(shuffled) > 2 * model.surprise(workflow_stream(20))

    def test_window_scores_localise_the_break(self):
        model = TransitionModel(num_templates=4).fit(workflow_stream(200))
        stream = workflow_stream(30)
        # corrupt one region: reverse the workflow order there
        stream[40:60] = stream[40:60][::-1]
        scores = model.score_windows(stream, window=20)
        worst = max(scores, key=lambda s: s.surprise)
        assert 20 <= worst.start <= 60

    def test_window_validation(self):
        model = TransitionModel(num_templates=4).fit(workflow_stream(10))
        with pytest.raises(ValueError):
            model.score_windows([0, 1, 2], window=1)
        with pytest.raises(ValueError):
            model.surprise([0])


class TestWorkflowMining:
    def test_most_likely_next_recovers_workflow(self):
        model = TransitionModel(num_templates=4).fit(workflow_stream(100))
        assert model.most_likely_next(0, top=1)[0][0] == 1
        assert model.most_likely_next(1, top=1)[0][0] == 2
        assert model.most_likely_next(3, top=1)[0][0] == 0  # wraps around

    def test_noisy_workflow_still_recovered(self):
        model = TransitionModel(num_templates=4).fit(
            workflow_stream(300, noise=0.15, seed=11)
        )
        assert model.most_likely_next(0, top=1)[0][0] == 1
