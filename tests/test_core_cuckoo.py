"""Tests for the cuckoo hash table (Figure 5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cuckoo import CuckooHashTable
from repro.errors import CapacityError, PlacementError
from repro.params import CuckooParams


@pytest.fixture
def table():
    return CuckooHashTable()


class TestBasicOperations:
    def test_insert_then_lookup(self, table):
        row = table.add_term(b"RAS", iset_index=0, negative=False)
        found = table.lookup(b"RAS")
        assert found is not None
        assert found[0] == row
        assert found[1].token == b"RAS"

    def test_lookup_missing_returns_none(self, table):
        assert table.lookup(b"nothing") is None

    def test_flags_recorded(self, table):
        table.add_term(b"FATAL", iset_index=2, negative=True)
        _, entry = table.lookup(b"FATAL")
        assert entry.flags[2].valid and entry.flags[2].negative
        assert not entry.flags[0].valid

    def test_same_token_multiple_sets_merges(self, table):
        row1 = table.add_term(b"RAS", 0, negative=False)
        row2 = table.add_term(b"RAS", 1, negative=True)
        assert row1 == row2
        assert table.occupied == 1
        _, entry = table.lookup(b"RAS")
        assert entry.flags[0].valid and not entry.flags[0].negative
        assert entry.flags[1].valid and entry.flags[1].negative

    def test_conflicting_polarity_same_set_rejected(self, table):
        table.add_term(b"A", 0, negative=False)
        with pytest.raises(PlacementError):
            table.add_term(b"A", 0, negative=True)

    def test_flag_pair_bound_enforced(self, table):
        with pytest.raises(CapacityError):
            table.add_term(b"A", iset_index=8, negative=False)
        with pytest.raises(CapacityError):
            table.add_term(b"A", iset_index=-1, negative=False)

    def test_lookup_candidates_only_two_rows(self, table):
        r0, r1 = table.candidate_rows(b"token")
        assert 0 <= r0 < 256 and 0 <= r1 < 256


class TestColumns:
    def test_column_stored(self, table):
        table.add_term(b"sshd", 0, negative=False, column=4)
        _, entry = table.lookup(b"sshd")
        assert entry.column == 4

    def test_conflicting_columns_rejected(self, table):
        table.add_term(b"sshd", 0, negative=False, column=4)
        with pytest.raises(PlacementError):
            table.add_term(b"sshd", 1, negative=False, column=5)
        with pytest.raises(PlacementError):
            table.add_term(b"sshd", 1, negative=False, column=None)


class TestOverflow:
    def test_short_token_uses_no_overflow(self, table):
        table.add_term(b"x" * 16, 0, negative=False)
        assert table.overflow_used == 0

    def test_long_token_reserves_overflow(self, table):
        table.add_term(b"x" * 17, 0, negative=False)
        assert table.overflow_used == 1
        table.add_term(b"y" * 48, 0, negative=False)
        assert table.overflow_used == 3

    def test_overflow_exhaustion_raises(self):
        params = CuckooParams(overflow_rows=2)
        table = CuckooHashTable(params)
        table.add_term(b"a" * 32, 0, negative=False)  # 1 row
        with pytest.raises(CapacityError):
            table.add_term(b"b" * 64, 0, negative=False)  # needs 3 more


class TestLoadFactorAndDisplacement:
    def test_load_factor_tracks_occupancy(self, table):
        for i in range(64):
            table.add_term(f"tok{i}".encode(), 0, negative=False)
        assert table.occupied == 64
        assert table.load_factor == pytest.approx(0.25)

    def test_fill_to_half_load_succeeds(self):
        # cuckoo hashing statistically succeeds at load factor <= 0.5
        table = CuckooHashTable()
        for i in range(128):
            table.add_term(f"token-{i}".encode(), i % 8, negative=False)
        assert table.load_factor == pytest.approx(0.5)

    def test_past_max_load_factor_rejected(self):
        params = CuckooParams(rows=16, max_load_factor=0.5)
        table = CuckooHashTable(params)
        for i in range(8):
            table.add_term(f"t{i}".encode(), 0, negative=False)
        with pytest.raises(PlacementError):
            table.add_term(b"one-too-many", 0, negative=False)

    def test_all_inserted_tokens_remain_findable_after_kicks(self):
        table = CuckooHashTable()
        tokens = [f"displacement-test-{i}".encode() for i in range(100)]
        for t in tokens:
            table.add_term(t, 0, negative=False)
        for token in tokens:
            found = table.lookup(token)
            assert found is not None
            assert found[1].token == token

    def test_entries_enumeration(self, table):
        table.add_term(b"A", 0, negative=False)
        table.add_term(b"B", 1, negative=True)
        entries = table.entries()
        assert len(entries) == 2
        assert {e.token for _, e in entries} == {b"A", b"B"}


class TestCuckooProperties:
    @given(
        st.sets(
            st.binary(min_size=1, max_size=24).filter(
                lambda t: not any(d in t for d in b" \t\n")
            ),
            max_size=100,
        )
    )
    @settings(max_examples=50)
    def test_insert_lookup_consistency(self, tokens):
        table = CuckooHashTable()
        placed = {}
        for i, token in enumerate(sorted(tokens)):
            placed[token] = table.add_term(token, i % 8, negative=False)
        for token, row in placed.items():
            found = table.lookup(token)
            assert found is not None
            # entries stay within their two candidate rows
            assert found[0] in table.candidate_rows(token)

    @given(st.binary(min_size=1, max_size=16))
    @settings(max_examples=100)
    def test_hashes_deterministic(self, token):
        t1, t2 = CuckooHashTable(), CuckooHashTable()
        assert t1.candidate_rows(token) == t2.candidate_rows(token)

    def test_different_seeds_give_different_placement(self):
        tokens = [f"seed-check-{i}".encode() for i in range(40)]
        rows_a = [CuckooHashTable(seed=1).candidate_rows(t) for t in tokens]
        rows_b = [CuckooHashTable(seed=2).candidate_rows(t) for t in tokens]
        assert rows_a != rows_b
