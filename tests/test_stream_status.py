"""Stream artifact kinds: config/status validators and the CLI loop."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.query import parse_query
from repro.errors import QueryError
from repro.stream import (
    STREAM_CONFIG_KIND,
    STREAM_STATUS_KIND,
    StandingQuery,
    StandingQueryRegistry,
    Threshold,
    WindowSpec,
    build_stream_config,
    load_stream_config,
    looks_like_stream_config,
    looks_like_stream_status,
    parse_stream_config,
    validate_stream_config,
    validate_stream_status,
)
from repro.system.mithrilog import MithriLogSystem
from repro.system.streaming import StreamingIngestor

REPO_ROOT = Path(__file__).resolve().parents[1]


def sample_queries():
    return [
        StandingQuery(
            name="errors",
            query=parse_query("ERROR"),
            window=WindowSpec(kind="sliding", width_s=0.05),
            threshold=Threshold(value=40.0),
        ),
        StandingQuery(name="shape", query=parse_query("req")),
    ]


class TestConfigArtifacts:
    def test_build_parse_round_trip(self):
        payload = build_stream_config(sample_queries(), check_interval_s=0.01)
        assert looks_like_stream_config(payload)
        assert validate_stream_config(payload) == []
        queries, interval = parse_stream_config(payload)
        assert interval == 0.01
        assert [q.to_dict() for q in queries] == [
            q.to_dict() for q in sample_queries()
        ]

    def test_load_from_disk(self, tmp_path):
        path = tmp_path / "stream.json"
        path.write_text(json.dumps(build_stream_config(sample_queries())))
        queries, interval = load_stream_config(path)
        assert len(queries) == 2
        assert interval == 0.005

    def test_unreadable_or_corrupt_files_rejected(self, tmp_path):
        with pytest.raises(QueryError):
            load_stream_config(tmp_path / "absent.json")
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json")
        with pytest.raises(QueryError):
            load_stream_config(garbled)

    def test_example_config_validates(self):
        payload = json.loads(
            (REPO_ROOT / "examples" / "stream_config.json").read_text()
        )
        assert validate_stream_config(payload) == []

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda p: p.__setitem__("version", 99), "version"),
            (lambda p: p.__setitem__("check_interval_s", 0), "check_interval_s"),
            (lambda p: p.__setitem__("queries", []), "non-empty"),
            (
                lambda p: p["queries"][0].__delitem__("query"),
                "name and query",
            ),
            (
                lambda p: p["queries"][1].__setitem__(
                    "name", p["queries"][0]["name"]
                ),
                "duplicate",
            ),
            (
                lambda p: p["queries"][0].__setitem__("aggregates", ["p99"]),
                "aggregate",
            ),
            (
                lambda p: p["queries"][0]["window"].__setitem__("hop_s", 1),
                "unknown keys",
            ),
            (
                lambda p: p["queries"][0]["threshold"].__setitem__("op", ">"),
                "op",
            ),
        ],
    )
    def test_validator_catches_corruption(self, mutate, fragment):
        payload = build_stream_config(sample_queries())
        mutate(payload)
        problems = validate_stream_config(payload)
        assert problems
        assert any(fragment in problem for problem in problems)

    def test_kind_mismatch_short_circuits(self):
        assert validate_stream_config({"kind": "nope"}) != []
        assert validate_stream_config([1]) != []
        assert not looks_like_stream_config({"kind": STREAM_STATUS_KIND})

    def test_parse_raises_on_invalid(self):
        with pytest.raises(QueryError):
            parse_stream_config({"kind": STREAM_CONFIG_KIND, "version": 1})


class TestStatusArtifacts:
    @pytest.fixture()
    def snapshot(self):
        system = MithriLogSystem(seed=0)
        ingestor = StreamingIngestor(system, batch_lines=100)
        registry = StandingQueryRegistry(system)
        registry.attach(ingestor)
        for standing in sample_queries():
            registry.register(standing)
        with ingestor:
            for i in range(400):
                marker = b"ERROR" if i % 3 == 0 else b"INFO"
                ingestor.append(b"svc %s req=%d" % (marker, i))
        return registry.status_payload()

    def test_real_snapshot_validates(self, snapshot):
        assert looks_like_stream_status(snapshot)
        assert validate_stream_status(snapshot) == []

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda p: p.__setitem__("version", 0), "version"),
            (lambda p: p.__setitem__("evaluations", -1), "evaluations"),
            (
                lambda p: p["queries"][0].__setitem__("alert_state", "paging"),
                "alert_state",
            ),
            (
                lambda p: p["queries"][1].__setitem__("alert_state", "firing"),
                "without a threshold",
            ),
            (
                lambda p: p["queries"][0].__delitem__("window_state"),
                "window_state",
            ),
            (
                lambda p: p["queries"][0]["window_state"].__setitem__(
                    "matches_total", -2
                ),
                "matches_total",
            ),
            (
                lambda p: p["queries"][0]["definition"].__setitem__(
                    "aggregates", ["p99"]
                ),
                "definition",
            ),
            (
                lambda p: p["queries"][0]["window_state"]["series"][
                    "count"
                ].__setitem__("points", [[1.0, 1.0], [0.5, 1.0]]),
                "backwards",
            ),
            (
                lambda p: p["queries"][0]["window_state"]["series"][
                    "count"
                ].__setitem__("points", [[1.0]]),
                "malformed",
            ),
            (
                lambda p: p.__setitem__("monitor_timeline", "soon"),
                "monitor_timeline",
            ),
        ],
    )
    def test_validator_catches_corruption(self, snapshot, mutate, fragment):
        payload = json.loads(json.dumps(snapshot))
        mutate(payload)
        problems = validate_stream_status(payload)
        assert problems
        assert any(fragment in problem for problem in problems)

    def test_kind_mismatch_short_circuits(self):
        assert validate_stream_status({"kind": "nope"}) != []
        assert validate_stream_status(7) != []


class TestStreamCLI:
    @pytest.fixture()
    def burst_log(self, tmp_path):
        path = tmp_path / "burst.log"
        lines = []
        for i in range(1500):
            if 600 <= i < 1100:
                lines.append(f"svc ERROR backend timeout req={i}")
            else:
                lines.append(f"svc INFO served req={i}")
        path.write_text("\n".join(lines) + "\n")
        return path

    def register(self, tmp_path, name="errors", expression="ERROR"):
        config = tmp_path / "stream.json"
        code = main(
            [
                "stream",
                "register",
                "--name",
                name,
                "--expression",
                expression,
                "--window",
                "sliding",
                "--width-ms",
                "1000",
                "--threshold",
                "50",
                "--out",
                str(config),
            ]
        )
        assert code == 0
        return config

    def test_register_writes_a_valid_config(self, tmp_path):
        config = self.register(tmp_path)
        payload = json.loads(config.read_text())
        assert validate_stream_config(payload) == []
        assert payload["queries"][0]["name"] == "errors"

    def test_register_appends_and_refuses_duplicates(self, tmp_path):
        config = self.register(tmp_path)
        code = main(
            [
                "stream",
                "register",
                "--name",
                "shape",
                "--expression",
                "req",
                "--out",
                str(config),
            ]
        )
        assert code == 0
        payload = json.loads(config.read_text())
        assert [q["name"] for q in payload["queries"]] == ["errors", "shape"]
        # registering the same name again is an error, not a rewrite
        assert (
            main(
                [
                    "stream",
                    "register",
                    "--name",
                    "errors",
                    "--expression",
                    "x",
                    "--out",
                    str(config),
                ]
            )
            == 1
        )

    def test_status_detects_the_burst(self, tmp_path, burst_log, capsys):
        config = self.register(tmp_path)
        out_path = tmp_path / "status.json"
        code = main(
            [
                "stream",
                "status",
                "--config",
                str(config),
                "--log",
                str(burst_log),
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        assert "firing" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert validate_stream_status(payload) == []

    def test_fail_on_alert_exit_contract(self, tmp_path, burst_log):
        config = self.register(tmp_path)
        assert (
            main(
                [
                    "stream",
                    "status",
                    "--config",
                    str(config),
                    "--log",
                    str(burst_log),
                    "--fail-on-alert",
                ]
            )
            == 1
        )

    def test_clean_log_stays_quiet(self, tmp_path):
        config = self.register(tmp_path)
        clean = tmp_path / "clean.log"
        clean.write_text(
            "\n".join(f"svc INFO served req={i}" for i in range(800)) + "\n"
        )
        assert (
            main(
                [
                    "stream",
                    "status",
                    "--config",
                    str(config),
                    "--log",
                    str(clean),
                    "--fail-on-alert",
                ]
            )
            == 0
        )

    def test_bundle_out_writes_an_incident(self, tmp_path, burst_log):
        config = self.register(tmp_path)
        bundles = tmp_path / "incidents"
        code = main(
            [
                "stream",
                "status",
                "--config",
                str(config),
                "--log",
                str(burst_log),
                "--bundle-out",
                str(bundles),
            ]
        )
        assert code == 0
        assert list(bundles.glob("*.json"))
