"""Grand-tour integration test: every feature in one realistic pipeline.

Simulates a deployment's lifecycle on one store:

  stream-ingest with WAL durability and snapshot cadence
  -> crash + recovery
  -> compaction
  -> checkpoint, save, reload
  -> planner-driven queries (indexed, scanned, time-bounded)
  -> scheduler-batched template workload
  -> template tagging into the analytics layer (counts, PCA, transitions)

Every stage's answers are verified against the grep oracle or against
the pre-stage answers, so any cross-feature interaction bug surfaces
here even if each feature's own tests pass.
"""

import numpy as np
import pytest

from repro.analytics import PCAAnomalyDetector, TransitionModel, count_windows
from repro.baselines.grep import grep_lines
from repro.core.query import parse_query
from repro.core.tagger import TemplateTagger
from repro.datasets.synthetic import generator_for
from repro.datasets.timestamps import extract_epochs
from repro.index.compaction import compact_index
from repro.system.planner import QueryPlanner
from repro.system.scheduler import QueryScheduler
from repro.system.streaming import StreamingIngestor
from repro.system.wal import JournaledMithriLog
from repro.templates.fttree import FTTree, FTTreeParams
from repro.templates.querygen import build_workload


@pytest.fixture(scope="module")
def corpus():
    return generator_for("Spirit2").generate(5000)


@pytest.fixture(scope="module")
def epochs(corpus):
    extracted = extract_epochs(corpus)
    assert extracted is not None
    return extracted


@pytest.fixture(scope="module")
def deployment(tmp_path_factory, corpus, epochs):
    """The full lifecycle up to the recovered, compacted, reloaded store."""
    store_dir = tmp_path_factory.mktemp("tour-store")

    # 1. durable streaming ingest with snapshots
    journaled = JournaledMithriLog(store_dir)
    span = epochs[-1] - epochs[0]
    ingestor = StreamingIngestor(
        journaled.system, batch_lines=256, snapshot_every_s=max(span / 6, 1.0)
    )
    # journal batches as the streamer persists them
    for base in range(0, len(corpus), 256):
        chunk = corpus[base : base + 256]
        stamps = epochs[base : base + 256]
        journaled.wal.append(chunk, stamps)
        ingestor.extend(chunk, stamps)
    ingestor.flush()

    # 2. crash before any checkpoint: recover from the WAL alone
    recovered = JournaledMithriLog.recover(store_dir)
    assert recovered.system.total_lines == len(corpus)

    # 3. compact the fragmented index, checkpoint, reload
    compact_index(recovered.system.index)
    recovered.checkpoint()
    reloaded = JournaledMithriLog.recover(store_dir)
    return reloaded.system


QUERIES = (
    "session AND opened",
    "kernel: AND NOT nfs:",
    "NOT kernel:",
    "panic:",
)


class TestLifecycleCorrectness:
    @pytest.mark.parametrize("expr", QUERIES)
    def test_queries_match_oracle_after_lifecycle(self, deployment, corpus, expr):
        query = parse_query(expr)
        outcome = deployment.query(query)
        expected = grep_lines(query, corpus)
        assert sorted(outcome.matched_lines) == sorted(expected)

    def test_time_bounds_survive_lifecycle(self, deployment, corpus, epochs):
        cut = epochs[len(epochs) // 2]
        query = parse_query("session AND opened")
        bounded = deployment.query(query, time_range=(cut, None))
        full = deployment.query(query)
        assert len(bounded.matched_lines) <= len(full.matched_lines)
        assert set(bounded.matched_lines).issubset(set(full.matched_lines))
        # snapshots existed, so the bound actually pruned pages
        assert bounded.stats.candidate_pages <= full.stats.candidate_pages

    def test_planner_agrees_with_direct_paths(self, deployment, corpus):
        planner = QueryPlanner(deployment)
        for expr in QUERIES:
            query = parse_query(expr)
            _plan, outcome = planner.execute(query)
            expected = grep_lines(query, corpus)
            assert sorted(outcome.matched_lines) == sorted(expected), expr


class TestWorkloadAndAnalytics:
    @pytest.fixture(scope="class")
    def tree(self, corpus):
        return FTTree.from_lines(
            corpus,
            FTTreeParams(max_depth=10, prune_threshold=32, max_doc_frequency=0.9),
        )

    def test_scheduled_template_workload(self, deployment, corpus, tree):
        workload = build_workload(tree, num_pairs=2, num_eights=1, max_singles=10)
        scheduler = QueryScheduler(deployment)
        run = scheduler.run(list(workload.singles))
        assert run.passes <= -(-len(workload.singles) // 8) + 2
        for query, count in zip(workload.singles, run.per_query_counts):
            assert count == len(grep_lines(query, corpus))

    def test_tagging_and_analytics_pipeline(self, deployment, corpus, epochs, tree):
        tagger = TemplateTagger.from_tree(tree)
        tags = [tagger.tag_line(line) for line in corpus]
        coverage = sum(1 for t in tags if t is not None) / len(tags)
        assert coverage > 0.8

        matrix = count_windows(tags, epochs, window_s=60.0, num_templates=len(tree.templates))
        assert matrix.counts.sum() == len(corpus)
        if matrix.num_windows >= 4:
            detector = PCAAnomalyDetector().fit(matrix.counts)
            scores = detector.scores(matrix.counts)
            assert np.isfinite(scores).all()

        model = TransitionModel(num_templates=len(tree.templates)).fit(tags)
        assert model.surprise(tags[:100]) > 0
