"""Tests for the prefix-tree extractor and the query workload generator."""

import pytest

from repro.core.query import Query
from repro.errors import QueryError
from repro.templates.fttree import FTTree, FTTreeParams, WILDCARD
from repro.templates.prefixtree import PrefixTree, PrefixTreeParams
from repro.templates.querygen import build_workload, combine


def corpus():
    lines = []
    lines += [f"sshd auth failure user u{i}".encode() for i in range(30)]
    lines += [f"kernel panic cpu {i}".encode() for i in range(20)]
    lines += [b"cron job started"] * 15
    return lines


class TestPrefixTree:
    def test_templates_positional(self):
        tree = PrefixTree.from_lines(corpus(), PrefixTreeParams(prune_threshold=8))
        paths = {t.tokens for t in tree.templates}
        assert any(p[:3] == (b"sshd", b"auth", b"failure") for p in paths)

    def test_variable_column_becomes_wildcard(self):
        tree = PrefixTree.from_lines(corpus(), PrefixTreeParams(prune_threshold=8))
        sshd = next(t for t in tree.templates if t.tokens[0] == b"sshd")
        assert sshd.tokens[-1] == WILDCARD  # the user id column

    def test_query_carries_column_constraints(self):
        tree = PrefixTree.from_lines(corpus(), PrefixTreeParams(prune_threshold=8))
        sshd = next(t for t in tree.templates if t.tokens[0] == b"sshd")
        query = tree.template_query(sshd)
        terms = query.intersections[0].terms
        assert all(term.column is not None for term in terms)
        assert query.matches_line(b"sshd auth failure user u99")
        # same tokens, wrong positions: must not match
        assert not query.matches_line(b"u99 sshd auth failure user")

    def test_all_wildcard_template_rejected(self):
        tree = PrefixTree.from_lines(corpus())
        from repro.templates.fttree import Template

        with pytest.raises(QueryError):
            tree.template_query(
                Template(template_id=0, tokens=(WILDCARD, WILDCARD), support=5)
            )

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PrefixTreeParams(max_depth=0)
        with pytest.raises(ValueError):
            PrefixTreeParams(prune_threshold=1)


class TestQueryWorkload:
    @pytest.fixture
    def tree(self):
        return FTTree.from_lines(corpus(), FTTreeParams(prune_threshold=8))

    def test_workload_shapes(self, tree):
        workload = build_workload(tree, num_pairs=10, num_eights=4)
        assert len(workload.pairs) == 10
        assert len(workload.eights) == 4
        assert len(workload.singles) == len(tree.templates)
        assert workload.total_queries() == len(workload.singles) + 14

    def test_workload_deterministic(self, tree):
        w1 = build_workload(tree, seed=7)
        w2 = build_workload(tree, seed=7)
        assert w1.pairs == w2.pairs
        assert w1.eights == w2.eights

    def test_different_seeds_differ(self, tree):
        w1 = build_workload(tree, seed=1, num_pairs=20)
        w2 = build_workload(tree, seed=2, num_pairs=20)
        assert w1.pairs != w2.pairs

    def test_pairs_are_unions_of_two(self, tree):
        workload = build_workload(tree, num_pairs=5)
        for pair in workload.pairs:
            assert len(pair.intersections) >= 2

    def test_combo_semantics_is_or(self, tree):
        workload = build_workload(tree, num_pairs=5, num_eights=2)
        q = workload.pairs[0]
        line = b"cron job started"
        memberwise = any(
            single.matches_line(line)
            and set(single.intersections).issubset(set(q.intersections))
            for single in workload.singles
        )
        if memberwise:
            assert q.matches_line(line)

    def test_batches_map(self, tree):
        workload = build_workload(tree, num_pairs=3, num_eights=2)
        batches = workload.all_batches
        assert set(batches) == {1, 2, 8}
        assert batches[2] == workload.pairs

    def test_max_singles_truncates(self, tree):
        workload = build_workload(tree, max_singles=1)
        assert len(workload.singles) == 1

    def test_combine_empty_rejected(self):
        with pytest.raises(QueryError):
            combine([])

    def test_combine_single(self):
        q = Query.single("x")
        assert combine([q]) == q
