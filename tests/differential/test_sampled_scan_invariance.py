"""Sampled-scan invariance: workers × backend × run must not matter.

The approximate scan path picks its page sample in the parent, keyed on
``(seed, template fingerprint, page id)``, *before* the executor
partitions pages over workers. These tests pin the consequence: the
matched lines, per-query counts, estimates, and simulated stats of a
sampled scan are identical at any worker count and on every available
array backend — and different seeds genuinely move the sample.
"""

import pytest

from repro.core.backend import available_backends
from repro.core.query import parse_query
from repro.datasets.synthetic import generator_for
from repro.system.mithrilog import MithriLogSystem

BACKENDS = available_backends()
WORKER_COUNTS = (1, 2, 4)


def signature(outcome):
    """Everything observable about a sampled scan, hashed into a tuple."""
    stats = outcome.stats
    estimates = tuple(
        (
            est.matches_seen,
            est.pages_scanned,
            est.pages_total,
            round(est.estimate, 9),
            round(est.ci_low, 9),
            round(est.ci_high, 9),
        )
        for est in (outcome.estimates or ())
    )
    return (
        tuple(outcome.matched_lines),
        tuple(outcome.per_query_counts),
        estimates,
        stats.pages_sampled,
        stats.candidate_pages,
        round(stats.elapsed_s, 12),
    )


@pytest.fixture(scope="module")
def corpus():
    return generator_for("Liberty2", seed=3).generate(3000)


def build(corpus, backend=None):
    kwargs = {"seed": 3, "cache_pages": 0}
    if backend is not None:
        kwargs["scan_backend"] = backend
    system = MithriLogSystem(**kwargs)
    system.ingest(corpus)
    return system


QUERIES = ("session AND opened", "kernel:", "root")


class TestWorkerInvariance:
    @pytest.mark.parametrize("text", QUERIES)
    def test_identical_at_any_worker_count(self, corpus, text):
        query = parse_query(text)
        signatures = set()
        for workers in WORKER_COUNTS:
            system = build(corpus)
            outcome = system.query(
                query, workers=workers, sample_fraction=0.3, sample_seed=1
            )
            signatures.add(signature(outcome))
            system.close()
        assert len(signatures) == 1

    def test_batched_queries_share_one_sample(self, corpus):
        # a batch is sampled once (by the union fingerprint), so every
        # member sees the same page subset at every worker count
        queries = [parse_query(t) for t in QUERIES]
        signatures = set()
        for workers in WORKER_COUNTS:
            system = build(corpus)
            outcome = system.query(
                *queries, workers=workers, sample_fraction=0.4
            )
            assert len(outcome.estimates) == len(queries)
            signatures.add(signature(outcome))
            system.close()
        assert len(signatures) == 1


class TestBackendInvariance:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_each_backend_matches_the_reference(self, corpus, backend):
        query = parse_query("session AND opened")
        system = build(corpus, backend=backend)
        outcome = system.query(query, sample_fraction=0.3, sample_seed=1)
        system.close()
        oracle = build(corpus)
        expected = oracle.query(query, sample_fraction=0.3, sample_seed=1)
        oracle.close()
        assert signature(outcome) == signature(expected)


class TestSampleSemantics:
    def test_seed_moves_the_sample(self, corpus):
        query = parse_query("session")
        system = build(corpus)
        a = system.query(query, sample_fraction=0.3, sample_seed=0)
        b = system.query(query, sample_fraction=0.3, sample_seed=99)
        system.close()
        assert a.stats.pages_sampled > 0 and b.stats.pages_sampled > 0
        assert signature(a) != signature(b)

    def test_sampled_scan_reads_fewer_pages(self, corpus):
        query = parse_query("session")
        system = build(corpus)
        exact = system.query(query)
        sampled = system.query(query, sample_fraction=0.2)
        system.close()
        assert 0 < sampled.stats.pages_sampled < exact.stats.candidate_pages
        assert exact.estimates is None
        est = sampled.estimates[0]
        assert est.pages_total == exact.stats.candidate_pages
        # the estimate is honest about the truth it subsampled
        assert est.covers(exact.per_query_counts[0]) or (
            est.relative_error(exact.per_query_counts[0]) < 1.0
        )

    def test_repeat_runs_bit_identical(self, corpus):
        query = parse_query("kernel:")

        def run():
            system = build(corpus)
            outcome = system.query(
                query, workers=2, sample_fraction=0.25, sample_seed=7
            )
            system.close()
            return signature(outcome)

        assert run() == run()
