"""Differential harness: vectorized scan path vs the reference kernels.

PR 3's kernels are the oracle; the vectorized zero-copy path (offset
-array tokenizer, arena decoder, signature-prefiltered filter kernel)
must be byte-for-byte equivalent to them on *arbitrary* inputs, on both
array backends. Three layers of evidence:

1. **Hypothesis** — randomized pages (structured log lines, multibyte
   UTF-8, raw binary including ``\\r``/NUL/empty-token shapes), codecs
   with randomized parameters, and randomized query programs.
2. **Replayable corpus** — ``corpus_cases.json`` pins every edge case
   worth keeping forever; new divergences found by randomization get
   appended there so they replay on every run without hypothesis.
3. **End-to-end invariance** — full scans must produce identical
   matches, per-query counts, and *simulated* stats (breakdown,
   bottleneck, profile) across kernel × backend × workers.

Backend force-selection lives here too: the suite proves the fallback
leg really runs without numpy and that explicit selection fails loudly
when the requested backend is absent.
"""

import base64
import json
import os
from pathlib import Path

import pytest

try:
    from hypothesis import assume, given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised on minimal installs
    HAVE_HYPOTHESIS = False

from repro.compression.arena import DecodeArena
from repro.compression.lzah import LZAHCompressor
from repro.core import backend as backend_mod
from repro.core.backend import (
    BackendUnavailableError,
    available_backends,
    resolve_backend,
    resolve_kernel,
)
from repro.core.hashfilter import HashFilter, compile_queries
from repro.core.query import IntersectionSet, Query, Term
from repro.core.softmatch import SoftwareBatchMatcher
from repro.core.tokenizer import split_tokens, tokenize_page
from repro.core.vectokenizer import tokenize_page_offsets
from repro.errors import CompressedFormatError
from repro.exec.executor import ScanProgramSpec, _partition_kernel
from repro.params import CuckooParams, LZAHParams

BACKENDS = available_backends()

CORPUS_PATH = Path(__file__).with_name("corpus_cases.json")
CORPUS = [
    (entry["name"], base64.b64decode(entry["b64"]))
    for entry in json.loads(CORPUS_PATH.read_text())["pages"]
]
CORPUS_IDS = [name for name, _ in CORPUS]
CORPUS_PAGES = [data for _, data in CORPUS]


def _assert_tokenization_matches(payload: bytes, backend: str) -> None:
    """One page: offset arrays must re-materialise the reference output."""
    page = tokenize_page_offsets(payload, backend)
    raw_lines, token_lists = page.to_token_lists()
    want_lines, want_tokens = tokenize_page(payload)
    assert raw_lines == want_lines
    assert token_lists == want_tokens
    # the offsets themselves must be consistent, not just the bytes
    assert page.num_lines == len(want_lines)
    assert page.num_tokens == sum(len(t) for t in want_tokens)
    for j in range(page.num_tokens):
        start, end = int(page.token_starts[j]), int(page.token_ends[j])
        line = int(page.token_lines[j])
        assert int(page.line_starts[line]) <= start < end <= int(page.line_ends[line]) or (
            # tokens never cross their line's span except via the tab
            # translation, which cannot move bytes — so this must hold
            False
        )


# ---------------------------------------------------------------------------
# replayable corpus: every pinned page through every variant
# ---------------------------------------------------------------------------


class TestCorpusReplay:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("payload", CORPUS_PAGES, ids=CORPUS_IDS)
    def test_tokenizer_matches_reference(self, payload, backend):
        _assert_tokenization_matches(payload, backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("payload", CORPUS_PAGES, ids=CORPUS_IDS)
    def test_filter_matches_reference(self, payload, backend):
        queries = (
            Query(intersections=(IntersectionSet(terms=(Term(token=b"session"),)),)),
            Query(
                intersections=(
                    IntersectionSet(
                        terms=(Term(token=b"svc"), Term(token=b"ERR", column=2))
                    ),
                )
            ),
            Query(
                intersections=(
                    IntersectionSet(
                        terms=(
                            Term(token=b"opened"),
                            Term(token=b"admin", negative=True),
                        )
                    ),
                )
            ),
        )
        program = compile_queries(queries, seed=0)
        page = tokenize_page_offsets(payload, backend)
        fast = HashFilter(program).evaluate_token_arrays(page)
        _, token_lists = tokenize_page(payload)
        slow = HashFilter(program).evaluate_token_lists(token_lists)
        assert fast == slow

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("payload", CORPUS_PAGES, ids=CORPUS_IDS)
    def test_softmatch_matches_query_oracle(self, payload, backend):
        """The software-fallback batch matcher (no compiled table) agrees
        with per-line ``Query.matches_tokens`` on every pinned page."""
        queries = (
            Query(intersections=(IntersectionSet(terms=(Term(token=b"session"),)),)),
            Query(
                intersections=(
                    IntersectionSet(
                        terms=(Term(token=b"svc"), Term(token=b"ERR", column=2))
                    ),
                )
            ),
            Query(
                intersections=(
                    IntersectionSet(
                        terms=(
                            Term(token=b"opened"),
                            Term(token=b"admin", negative=True),
                        )
                    ),
                    IntersectionSet(terms=(Term(token=b"x" * 64, negative=True),)),
                )
            ),
        )
        page = tokenize_page_offsets(payload, backend)
        fast = SoftwareBatchMatcher(queries).evaluate(page)
        _, token_lists = tokenize_page(payload)
        slow = [
            tuple(q.matches_tokens(tokens) for q in queries)
            for tokens in token_lists
        ]
        assert fast == slow

    @pytest.mark.parametrize("payload", CORPUS_PAGES, ids=CORPUS_IDS)
    def test_decoder_matches_reference(self, payload):
        codec = LZAHCompressor()
        blob = codec.compress(payload)
        arena = DecodeArena(initial_bytes=1)
        assert bytes(codec.decompress_into(blob, arena)) == codec.decompress(blob)
        assert codec.decompress(blob) == payload


# ---------------------------------------------------------------------------
# hypothesis: randomized pages, codecs, query programs
# ---------------------------------------------------------------------------

if HAVE_HYPOTHESIS:
    VOCAB = [
        b"session", b"opened", b"closed", b"root", b"admin", b"svc", b"ERR",
        b"kernel", b"x" * 64, "日誌".encode(), "café".encode(), b"0", b"a b".replace(b" ", b""),
    ]

    log_line = st.lists(
        st.sampled_from(VOCAB + [b"", b" ", b"\t"]), min_size=0, max_size=8
    ).map(lambda parts: b" ".join(parts))

    structured_page = st.lists(log_line, min_size=0, max_size=20).map(
        lambda lines: b"".join(ln + b"\n" for ln in lines)
    )

    # raw binary exercises \r, NUL, multibyte fragments, unterminated tails
    binary_page = st.binary(min_size=0, max_size=512)

    any_page = st.one_of(structured_page, binary_page)

    query_strategy = st.lists(
        st.lists(
            st.tuples(
                st.sampled_from(VOCAB),
                st.booleans(),  # negative
                st.one_of(st.none(), st.integers(min_value=0, max_value=4)),
            ),
            min_size=1,
            max_size=3,
            unique_by=lambda t: t[0],
        ).map(
            lambda terms: IntersectionSet(
                terms=tuple(
                    Term(token=token, negative=neg, column=col)
                    for token, neg, col in terms
                )
            )
        ),
        min_size=1,
        max_size=2,
    ).map(lambda isets: Query(intersections=tuple(isets)))

    class TestHypothesisDifferential:
        @settings(max_examples=150, deadline=None)
        @given(payload=any_page, backend=st.sampled_from(BACKENDS))
        def test_tokenizer_differential(self, payload, backend):
            _assert_tokenization_matches(payload, backend)

        @settings(max_examples=100, deadline=None)
        @given(
            payload=any_page,
            backend=st.sampled_from(BACKENDS),
            queries=st.lists(query_strategy, min_size=1, max_size=3),
            seed=st.integers(min_value=0, max_value=3),
        )
        def test_filter_differential(self, payload, backend, queries, seed):
            from repro.errors import CapacityError, PlacementError

            try:
                program = compile_queries(tuple(queries), seed=seed)
            except (PlacementError, CapacityError):
                # some random programs legitimately exceed the hardware
                # provisioning; the system runs those in software, where
                # test_softmatch_differential covers the vectorized path
                assume(False)
            page = tokenize_page_offsets(payload, backend)
            fast_filter = HashFilter(program)
            fast = fast_filter.evaluate_token_arrays(page)
            raw_lines, token_lists = tokenize_page(payload)
            slow_filter = HashFilter(program)
            slow = slow_filter.evaluate_token_lists(token_lists)
            assert fast == slow
            assert fast_filter.lines_processed == slow_filter.lines_processed
            assert fast_filter.tokens_processed == slow_filter.tokens_processed
            # and both agree with the per-line query oracles
            for tokens, verdict in zip(token_lists, slow):
                assert verdict == tuple(q.matches_tokens(tokens) for q in queries)

        @settings(max_examples=100, deadline=None)
        @given(
            payload=any_page,
            backend=st.sampled_from(BACKENDS),
            queries=st.lists(query_strategy, min_size=1, max_size=4),
        )
        def test_softmatch_differential(self, payload, backend, queries):
            """Software-fallback batch matcher vs per-line query oracle.

            No compilation involved, so *every* random program is in
            scope — including ones that exceed hardware provisioning,
            which is precisely when the system routes through softmatch.
            """
            page = tokenize_page_offsets(payload, backend)
            fast = SoftwareBatchMatcher(tuple(queries)).evaluate(page)
            _, token_lists = tokenize_page(payload)
            slow = [
                tuple(q.matches_tokens(tokens) for q in queries)
                for tokens in token_lists
            ]
            assert fast == slow

        @settings(max_examples=75, deadline=None)
        @given(
            payload=any_page,
            word_bytes=st.sampled_from([8, 16, 32]),
            realign=st.booleans(),
        )
        def test_decoder_differential(self, payload, word_bytes, realign):
            codec = LZAHCompressor(
                LZAHParams(word_bytes=word_bytes, newline_realign=realign)
            )
            blob = codec.compress(payload)
            arena = DecodeArena(initial_bytes=1)
            via_arena = bytes(codec.decompress_into(blob, arena))
            via_fast = codec.decompress(blob)
            via_words = b"".join(c for c, _p in codec.decompress_words(blob))
            assert via_arena == via_fast == via_words == payload

        @settings(max_examples=60, deadline=None)
        @given(
            payload=structured_page.filter(bool),
            flip_at=st.integers(min_value=0, max_value=10_000),
            flip_bits=st.integers(min_value=1, max_value=255),
        )
        def test_decoder_corruption_differential(self, payload, flip_at, flip_bits):
            """All three decoders agree on corrupted streams too: either
            all raise CompressedFormatError or all return the same bytes
            (a flip in chunk padding can be semantically invisible)."""
            codec = LZAHCompressor()
            blob = bytearray(codec.compress(payload))
            blob[flip_at % len(blob)] ^= flip_bits
            blob = bytes(blob)
            outcomes = []
            for decode in (
                codec.decompress,
                lambda b: bytes(codec.decompress_into(b, DecodeArena())),
                lambda b: b"".join(c for c, _p in codec.decompress_words(b)),
            ):
                try:
                    outcomes.append(("ok", decode(blob)))
                except CompressedFormatError:
                    outcomes.append(("error", None))
            assert outcomes[0] == outcomes[1] == outcomes[2]

        @settings(max_examples=30, deadline=None)
        @given(
            pages=st.lists(structured_page, min_size=1, max_size=4),
            backend=st.sampled_from(BACKENDS),
        )
        def test_partition_kernel_software_differential(self, pages, backend):
            """Same whole-partition equivalence for a *software-fallback*
            program (``offloaded=False``): the vectorized kernel routes
            through SoftwareBatchMatcher instead of the cuckoo table."""
            queries = (
                Query(
                    intersections=(
                        IntersectionSet(terms=(Term(token=b"session"),)),
                        IntersectionSet(
                            terms=(Term(token=b"ERR", column=2),)
                        ),
                    )
                ),
                Query(
                    intersections=(
                        IntersectionSet(
                            terms=(
                                Term(token=b"opened"),
                                Term(token=b"root", negative=True),
                            )
                        ),
                    )
                ),
            )
            codec = LZAHCompressor()
            items = [(False, codec.compress(p)) for p in pages]
            results = {}
            for kernel in ("reference", "vectorized"):
                spec = ScanProgramSpec(
                    queries=queries,
                    cuckoo_params=CuckooParams(),
                    seed=0,
                    offloaded=False,
                    lzah_params=LZAHParams(),
                    kernel=kernel,
                    backend=backend,
                )
                results[kernel] = _partition_kernel(spec, items, want_decoded=True)
            ref, vec = results["reference"], results["vectorized"]
            assert vec.data == ref.data
            assert vec.per_query_counts == ref.per_query_counts
            assert vec.lines_seen == ref.lines_seen
            assert vec.lines_kept == ref.lines_kept
            assert vec.bytes_decompressed == ref.bytes_decompressed
            assert vec.decoded == ref.decoded
            def counts(stages):
                return {name: (s.calls, s.units) for name, s in stages}

            assert counts(vec.stages) == counts(ref.stages)

        @settings(max_examples=40, deadline=None)
        @given(
            pages=st.lists(structured_page, min_size=1, max_size=4),
            backend=st.sampled_from(BACKENDS),
        )
        def test_partition_kernel_differential(self, pages, backend):
            """Whole-partition equivalence: output bytes, per-query
            counts, and deterministic stage units match across kernels."""
            queries = (
                Query(
                    intersections=(
                        IntersectionSet(terms=(Term(token=b"session"),)),
                    )
                ),
                Query(
                    intersections=(
                        IntersectionSet(
                            terms=(
                                Term(token=b"opened"),
                                Term(token=b"admin", negative=True),
                            )
                        ),
                    )
                ),
            )
            codec = LZAHCompressor()
            items = [(False, codec.compress(p)) for p in pages]
            results = {}
            for kernel in ("reference", "vectorized"):
                spec = ScanProgramSpec(
                    queries=queries,
                    cuckoo_params=CuckooParams(),
                    seed=0,
                    offloaded=True,
                    lzah_params=LZAHParams(),
                    kernel=kernel,
                    backend=backend,
                )
                results[kernel] = _partition_kernel(spec, items, want_decoded=True)
            ref, vec = results["reference"], results["vectorized"]
            assert vec.data == ref.data
            assert vec.per_query_counts == ref.per_query_counts
            assert vec.lines_seen == ref.lines_seen
            assert vec.lines_kept == ref.lines_kept
            assert vec.bytes_decompressed == ref.bytes_decompressed
            assert vec.decoded == ref.decoded
            def counts(stages):
                return {name: (s.calls, s.units) for name, s in stages}

            assert counts(vec.stages) == counts(ref.stages)


# ---------------------------------------------------------------------------
# backend force-selection
# ---------------------------------------------------------------------------


class TestBackendSelection:
    def test_fallback_always_available(self):
        assert "fallback" in available_backends()
        assert resolve_backend("fallback") == "fallback"

    def test_auto_prefers_numpy_when_available(self):
        if backend_mod.numpy_or_none() is not None:
            assert resolve_backend(None) == "numpy"
            assert resolve_backend("auto") == "numpy"
        else:
            assert resolve_backend(None) == "fallback"

    def test_explicit_numpy_without_numpy_raises(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_NUMPY", False)
        assert available_backends() == ("fallback",)
        assert resolve_backend("auto") == "fallback"
        with pytest.raises(BackendUnavailableError):
            resolve_backend("numpy")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(backend_mod.BACKEND_ENV, "fallback")
        assert resolve_backend(None) == "fallback"
        monkeypatch.setenv(backend_mod.BACKEND_ENV, "bogus")
        with pytest.raises(ValueError):
            resolve_backend(None)

    def test_env_var_selects_kernel(self, monkeypatch):
        monkeypatch.setenv(backend_mod.KERNEL_ENV, "reference")
        assert resolve_kernel(None) == "reference"
        monkeypatch.setenv(backend_mod.KERNEL_ENV, "auto")
        assert resolve_kernel(None) == "vectorized"
        monkeypatch.setenv(backend_mod.KERNEL_ENV, "bogus")
        with pytest.raises(ValueError):
            resolve_kernel(None)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_force_each_backend_end_to_end(self, backend):
        """Each importable backend, force-selected, produces identical
        scan results on a small end-to-end system."""
        from repro.core.query import parse_query
        from repro.datasets.synthetic import generator_for
        from repro.system.mithrilog import MithriLogSystem

        corpus = list(generator_for("Liberty2", seed=3).iter_lines(600))
        query = parse_query("session AND opened")
        system = MithriLogSystem(seed=3, cache_pages=0, scan_backend=backend)
        system.ingest(corpus)
        outcome = system.scan_all(query)
        system.close()
        oracle = MithriLogSystem(seed=3, cache_pages=0, scan_kernel="reference")
        oracle.ingest(corpus)
        expected = oracle.scan_all(query)
        oracle.close()
        assert outcome.matched_lines == expected.matched_lines
        assert outcome.per_query_counts == expected.per_query_counts
        assert outcome.stats.profile == expected.stats.profile

    def test_tokenizer_backends_agree_without_numpy(self, monkeypatch):
        """Force the numpy probe to 'absent': auto-resolution must pick
        the fallback and still match the reference tokenizer."""
        monkeypatch.setattr(backend_mod, "_NUMPY", False)
        for _name, payload in CORPUS:
            page = tokenize_page_offsets(payload)
            assert page.backend == "fallback"
            raw_lines, token_lists = page.to_token_lists()
            assert raw_lines == payload.splitlines()
            assert token_lists == [split_tokens(ln) for ln in raw_lines]
