"""Windowed aggregates: membership rules, pruning, and the load-bearing
hypothesis property — the incrementally maintained window state equals a
batch recompute over the full event history, for any append schedule and
both window kinds.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QueryError
from repro.stream.windows import (
    WINDOW_AGGREGATES,
    WindowAggregator,
    WindowSpec,
)


class TestWindowSpec:
    def test_defaults(self):
        spec = WindowSpec()
        assert spec.kind == "tumbling"
        assert spec.width_s == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [{"kind": "hopping"}, {"width_s": 0.0}, {"width_s": -1.0}],
    )
    def test_bad_specs_rejected(self, kwargs):
        with pytest.raises(QueryError):
            WindowSpec(**kwargs)

    def test_sliding_start_trails_now(self):
        spec = WindowSpec(kind="sliding", width_s=0.25)
        assert spec.start_at(1.0) == pytest.approx(0.75)

    def test_tumbling_start_aligns_to_buckets(self):
        spec = WindowSpec(kind="tumbling", width_s=0.5)
        assert spec.start_at(1.3) == pytest.approx(1.0)
        # a boundary instant opens the new bucket
        assert spec.start_at(1.5) == pytest.approx(1.5)

    def test_round_trip(self):
        spec = WindowSpec(kind="sliding", width_s=0.1)
        assert WindowSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_refuses_unknown_keys(self):
        with pytest.raises(QueryError):
            WindowSpec.from_dict({"kind": "tumbling", "hop_s": 0.1})


class TestWindowAggregator:
    def agg(self, kind="sliding", width_s=1.0):
        return WindowAggregator("q", WindowSpec(kind=kind, width_s=width_s))

    def test_observe_returns_live_values(self):
        agg = self.agg()
        values = agg.observe(0.5, 3, {"tmpl-a", "tmpl-b"})
        assert values["count"] == 3.0
        assert values["rate"] == pytest.approx(3.0)
        assert values["distinct_templates"] == 2.0

    def test_sliding_window_forgets(self):
        agg = self.agg(width_s=0.1)
        agg.observe(0.0, 5)
        agg.observe(0.05, 2)
        assert agg.value("count", 0.05) == 7.0
        # 0.0 falls out once the trailing window passes it (strict >)
        assert agg.value("count", 0.1) == 2.0
        assert agg.value("count", 0.2) == 0.0

    def test_tumbling_window_resets_at_the_boundary(self):
        agg = self.agg(kind="tumbling", width_s=0.1)
        agg.observe(0.05, 4)
        agg.observe(0.08, 1)
        assert agg.value("count", 0.09) == 5.0
        # the next bucket starts empty; a boundary observation joins it
        agg.observe(0.1, 2)
        assert agg.value("count", 0.1) == 2.0

    def test_rate_uses_the_nominal_width(self):
        agg = self.agg(kind="tumbling", width_s=0.5)
        agg.observe(0.1, 10)
        # half-full bucket reads low, not extrapolated
        assert agg.value("rate", 0.1) == pytest.approx(20.0)

    def test_distinct_templates_dedup_across_observations(self):
        agg = self.agg()
        agg.observe(0.1, 1, {"a", "b"})
        agg.observe(0.2, 1, {"b", "c"})
        assert agg.value("distinct_templates", 0.2) == 3.0

    def test_time_backwards_rejected(self):
        agg = self.agg()
        agg.observe(1.0, 0)
        with pytest.raises(QueryError):
            agg.observe(0.5, 0)

    def test_negative_matches_rejected(self):
        with pytest.raises(QueryError):
            self.agg().observe(0.0, -1)

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(QueryError):
            self.agg().value("p99", 0.0)

    def test_latest_tracks_the_series(self):
        agg = self.agg()
        assert agg.latest("count") is None
        agg.observe(0.1, 4)
        assert agg.latest("count") == 4.0

    def test_pruning_never_touches_the_live_window(self):
        agg = self.agg(width_s=0.01)
        for i in range(200):
            agg.observe(i * 0.005, 1)
        # far more observations than the ring retains, yet the live
        # window (trailing 10 ms = the last two observations) is exact
        assert agg.value("count", 199 * 0.005) == 2.0
        assert agg.matches_total == 200
        assert agg.evaluations == 200

    def test_to_dict_shape(self):
        agg = self.agg()
        agg.observe(0.1, 2, {"t"})
        payload = agg.to_dict()
        assert payload["evaluations"] == 1
        assert payload["matches_total"] == 2
        assert set(payload["series"]) == set(WINDOW_AGGREGATES)


def batch_recompute(spec, events, aggregate, now_s):
    """Reference implementation: the aggregate over the full history."""
    start = spec.start_at(now_s)
    if spec.kind == "sliding":
        live = [e for e in events if start < e[0] <= now_s]
    else:
        live = [e for e in events if start <= e[0] <= now_s]
    if aggregate == "count":
        return float(sum(matches for _, matches, _ in live))
    if aggregate == "rate":
        return sum(matches for _, matches, _ in live) / spec.width_s
    distinct = set()
    for _, _, fingerprints in live:
        distinct.update(fingerprints)
    return float(len(distinct))


_schedules = st.lists(
    st.tuples(
        st.floats(
            min_value=0.0,
            max_value=0.25,
            allow_nan=False,
            allow_infinity=False,
        ),  # inter-observation gap
        st.integers(min_value=0, max_value=20),  # matches
        st.sets(st.integers(min_value=0, max_value=5), max_size=4),
    ),
    min_size=1,
    max_size=30,
)


class TestIncrementalEqualsBatch:
    """Satellite property: incremental window state == batch recompute.

    The aggregator prunes observations two widths back; the reference
    keeps everything. Agreement at every step proves pruning never
    reaches into a live window, for any append schedule.
    """

    @settings(max_examples=60, deadline=None)
    @given(
        schedule=_schedules,
        kind=st.sampled_from(["tumbling", "sliding"]),
        width_s=st.sampled_from([0.01, 0.07, 0.5]),
    )
    def test_any_append_schedule(self, schedule, kind, width_s):
        spec = WindowSpec(kind=kind, width_s=width_s)
        agg = WindowAggregator("q", spec)
        events = []
        now = 0.0
        for gap, matches, tmpl_ids in schedule:
            now += gap
            fingerprints = {f"tmpl{i}" for i in tmpl_ids}
            live = agg.observe(now, matches, fingerprints)
            events.append((now, matches, fingerprints))
            for aggregate in WINDOW_AGGREGATES:
                expected = batch_recompute(spec, events, aggregate, now)
                assert live[aggregate] == pytest.approx(expected), (
                    f"{aggregate} diverged at t={now}"
                )

    @settings(max_examples=30, deadline=None)
    @given(
        schedule=_schedules,
        probe_gap=st.floats(
            min_value=0.0,
            max_value=1.0,
            allow_nan=False,
            allow_infinity=False,
        ),
    )
    def test_probing_between_observations(self, schedule, probe_gap):
        # reads at arbitrary later instants (no observe) also agree
        spec = WindowSpec(kind="sliding", width_s=0.07)
        agg = WindowAggregator("q", spec)
        events = []
        now = 0.0
        for gap, matches, tmpl_ids in schedule:
            now += gap
            fingerprints = {f"tmpl{i}" for i in tmpl_ids}
            agg.observe(now, matches, fingerprints)
            events.append((now, matches, fingerprints))
        probe = now + probe_gap
        for aggregate in WINDOW_AGGREGATES:
            assert agg.value(aggregate, probe) == pytest.approx(
                batch_recompute(spec, events, aggregate, probe)
            )

    def test_reference_matches_on_a_pathological_boundary(self):
        # tumbling boundary: floor() alignment must agree exactly
        spec = WindowSpec(kind="tumbling", width_s=0.1)
        agg = WindowAggregator("q", spec)
        for t in (0.1, 0.2, 0.30000000000000004):  # 3 * 0.1 in floats
            agg.observe(t, 1)
            assert agg.value("count", t) == batch_recompute(
                spec, [(t, 1, set())], "count", t
            )
