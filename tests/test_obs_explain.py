"""EXPLAIN / EXPLAIN ANALYZE: plan trees, attribution, determinism.

The acceptance contract: a report's canonical form is a pure function of
(store, query, seed) — identical at any worker count and with a cold or
warm page cache — and its bottleneck attribution sums exactly to the
simulated scan time. A golden file under ``tests/data/`` pins the whole
canonical rendering against drift.
"""

import json
from pathlib import Path

import pytest

from repro.core.query import parse_query
from repro.datasets.synthetic import generator_for
from repro.obs.explain import (
    ExplainError,
    looks_like_explain,
    validate_explain_report,
)
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.system.mithrilog import MithriLogSystem

SEED = 7
NUM_LINES = 2000
EXPRESSION = "session AND opened"
GOLDEN = Path(__file__).parent / "data" / "explain_liberty2_session.json"


def build_system(cache_pages=0):
    system = MithriLogSystem(seed=SEED, cache_pages=cache_pages)
    system.ingest(list(generator_for("Liberty2", seed=SEED).iter_lines(NUM_LINES)))
    return system


def analyze(system, workers=1):
    return system.explain(parse_query(EXPRESSION), analyze=True, workers=workers)


@pytest.fixture(scope="module")
def report():
    system = build_system()
    result = analyze(system)
    system.close()
    return result


class TestReportShape:
    def test_plan_tree_nodes(self, report):
        names = [node.name for node in report.plan.walk()]
        assert names[0] == "query"
        assert "index_lookup" in names and "scan" in names
        scan = report.plan.find("scan")
        assert [c.name for c in scan.children] == [
            "flash_read", "decompress", "filter", "host_transfer"
        ]
        assert report.mode == "analyze"

    def test_estimates_and_actuals_coexist(self, report):
        root = report.plan
        assert "use_index" in root.estimated
        assert root.actual["matches"] >= 1
        index = report.plan.find("index_lookup")
        assert index.estimated["pages"] >= 0
        assert index.actual["pruned_pages"] >= 0

    def test_attribution_sums_to_scan_time(self, report):
        scan = report.plan.find("scan")
        assert sum(report.attribution.values()) == pytest.approx(
            scan.actual["time_s"], abs=1e-15
        )
        # winner-takes-all: exactly one stage owns the window
        nonzero = [k for k, v in report.attribution.items() if v > 0]
        assert nonzero == [report.bottleneck]

    def test_utilization_bounds_and_bottleneck(self, report):
        assert report.utilization[report.bottleneck] == pytest.approx(1.0)
        for stage, value in report.utilization.items():
            assert 0.0 <= value <= 1.0, stage

    def test_program_summary(self, report):
        assert report.program["queries"] == 1
        assert report.program["mode"] in ("hardware", "software")
        assert report.program["positive_terms"] == 2

    def test_render_human_tree(self, report):
        text = report.render()
        assert text.startswith("EXPLAIN ANALYZE")
        for needle in ("├─", "└─", "flash_read", "bottleneck:", "cache:"):
            assert needle in text
        assert report.bottleneck in text

    def test_validator_accepts_own_output(self, report):
        payload = json.loads(report.to_json())
        assert looks_like_explain(payload)
        assert validate_explain_report(payload) >= 7


class TestEstimateMode:
    def test_plain_explain_executes_nothing(self):
        system = build_system()
        before = system.clock.now
        report = system.explain(parse_query(EXPRESSION))
        assert report.mode == "estimate"
        assert report.plan.actual is None
        assert report.bottleneck is None and not report.attribution
        # planning is free: the simulated clock never advanced
        assert system.clock.now == before
        assert validate_explain_report(json.loads(report.to_json())) >= 3

    def test_explain_counter_by_mode(self):
        with use_registry(MetricsRegistry()) as registry:
            system = build_system()
            system.explain(parse_query(EXPRESSION))
            analyze(system)
            counter = registry.counter(
                "mithrilog_explain_requests_total", "", labelnames=("mode",)
            )
            assert counter.value(mode="estimate") == 1
            assert counter.value(mode="analyze") == 1


class TestDeterminism:
    def test_canonical_identical_across_worker_counts(self):
        canon = {}
        for workers in (1, 4):
            system = build_system()
            canon[workers] = analyze(system, workers=workers).canonical()
            system.close()
        assert canon[1] == canon[4]

    def test_canonical_identical_cold_vs_warm_cache(self):
        system = build_system(cache_pages=10_000)
        cold = analyze(system)
        warm = analyze(system)
        assert cold.cache["misses"] > 0 and warm.cache["hits"] > 0
        assert cold.canonical() == warm.canonical()

    def test_golden_file(self, report):
        """The canonical rendering, pinned. Regenerate deliberately with
        ``python tests/test_obs_explain.py`` after a modelled change."""
        expected = json.loads(GOLDEN.read_text())
        actual = json.loads(
            json.dumps(report.canonical(), sort_keys=True)
        )
        assert actual == expected


class TestValidatorRejections:
    def payload(self, report):
        return json.loads(report.to_json())

    def test_rejects_non_report(self):
        with pytest.raises(ExplainError, match="not an explain report"):
            validate_explain_report({"hello": 1})

    def test_rejects_unknown_mode(self, report):
        payload = self.payload(report)
        payload["mode"] = "guess"
        with pytest.raises(ExplainError, match="unknown explain mode"):
            validate_explain_report(payload)

    def test_rejects_malformed_node(self, report):
        payload = self.payload(report)
        payload["plan"]["children"][0] = {"no": "name"}
        with pytest.raises(ExplainError, match="malformed plan node"):
            validate_explain_report(payload)

    def test_rejects_attribution_mismatch(self, report):
        payload = self.payload(report)
        stage = next(iter(payload["attribution"]))
        payload["attribution"][stage] = (
            float(payload["attribution"][stage]) + 1.0
        )
        with pytest.raises(ExplainError, match="attribution sums to"):
            validate_explain_report(payload)

    def test_rejects_missing_attribution(self, report):
        payload = self.payload(report)
        del payload["attribution"]
        with pytest.raises(ExplainError, match="lacks bottleneck attribution"):
            validate_explain_report(payload)

    def test_rejects_out_of_range_utilization(self, report):
        payload = self.payload(report)
        stage = next(iter(payload["utilization"]))
        payload["utilization"][stage] = 1.5
        with pytest.raises(ExplainError, match="outside"):
            validate_explain_report(payload)


def _regenerate_golden() -> None:  # pragma: no cover - manual tool
    system = build_system()
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(
        json.dumps(analyze(system).canonical(), indent=2, sort_keys=True) + "\n"
    )
    system.close()
    print(f"wrote {GOLDEN}")


if __name__ == "__main__":  # pragma: no cover
    _regenerate_golden()
