"""Tests for the QoS scheduler: weighted fairness and compile-probe packing."""

from collections import Counter

import pytest

from repro.core.query import parse_query
from repro.params import SystemParams
from repro.service.admission import AdmissionController
from repro.service.qos import QoSScheduler
from repro.service.request import Request, TenantConfig

PARAMS = SystemParams()


def scheduler(max_batch=8):
    return QoSScheduler(PARAMS.cuckoo, seed=0, max_batch=max_batch)


def fill(gate, tenant, count, text="alpha"):
    for _ in range(count):
        refusal, _ = gate.offer(
            Request(tenant=tenant, query=parse_query(text)), 0.0, 0.0
        )
        assert refusal is None


class TestPacking:
    def test_singles_pack_into_one_pass(self):
        gate = AdmissionController([TenantConfig(name="t0", queue_limit=16)])
        fill(gate, "t0", 8)
        batch = scheduler().next_batch(gate)
        assert len(batch) == 8
        assert gate.total_backlog == 0

    def test_max_batch_caps_the_pass(self):
        gate = AdmissionController([TenantConfig(name="t0", queue_limit=16)])
        fill(gate, "t0", 8)
        batch = scheduler(max_batch=3).next_batch(gate)
        assert len(batch) == 3
        assert gate.total_backlog == 5

    def test_oversized_program_parks_tenant(self):
        # eight 8-way unions exhaust the flag-pair budget: after the first
        # member, further heads stop fitting and the pass closes early
        big = " OR ".join(f'"tok{i}"' for i in range(8))
        gate = AdmissionController([TenantConfig(name="t0", queue_limit=16)])
        fill(gate, "t0", 4, text=big)
        batch = scheduler().next_batch(gate)
        assert 1 <= len(batch) < 4
        assert gate.total_backlog == 4 - len(batch)

    def test_first_member_always_ships(self):
        # even a program too large to compile alone leaves as a batch of
        # one — the engine falls back to software evaluation for it
        monster = " OR ".join(f'"tok{i}"' for i in range(40))
        gate = AdmissionController([TenantConfig(name="t0")])
        fill(gate, "t0", 1, text=monster)
        batch = scheduler().next_batch(gate)
        assert len(batch) == 1
        assert gate.total_backlog == 0

    def test_empty_queues_give_empty_batch(self):
        gate = AdmissionController([TenantConfig(name="t0")])
        assert len(scheduler().next_batch(gate)) == 0


class TestWeightedFairness:
    def drain(self, gate, sched):
        served = []
        while gate.total_backlog:
            batch = sched.next_batch(gate)
            served.extend(batch.tenants)
        return served

    def test_equal_weights_interleave(self):
        gate = AdmissionController(
            [
                TenantConfig(name="a", queue_limit=16),
                TenantConfig(name="b", queue_limit=16),
            ]
        )
        fill(gate, "a", 6)
        fill(gate, "b", 6)
        sched = scheduler(max_batch=2)
        first = sched.next_batch(gate)
        # one from each: neither tenant gets both slots of the pass
        assert sorted(first.tenants) == ["a", "b"]

    def test_heavier_weight_served_more(self):
        gate = AdmissionController(
            [
                TenantConfig(name="heavy", weight=3.0, queue_limit=32),
                TenantConfig(name="light", weight=1.0, queue_limit=32),
            ]
        )
        fill(gate, "heavy", 12)
        fill(gate, "light", 12)
        sched = scheduler(max_batch=4)
        served = []
        for _ in range(3):  # first three passes under contention
            served.extend(sched.next_batch(gate).tenants)
        counts = Counter(served)
        assert counts["heavy"] > counts["light"]
        # ... but everything is eventually served (no starvation)
        served.extend(self.drain(gate, sched))
        assert Counter(served) == {"heavy": 12, "light": 12}

    def test_reset_forgets_virtual_work(self):
        sched = scheduler()
        sched.virtual_work["a"] = 5.0
        sched.reset()
        assert sched.virtual_work == {}


class TestSampledPassQuarantine:
    """Exact and sampled work never share an accelerator pass: a pass
    runs one scan mode, so a degraded head is quarantined from exact
    members (and vice versa) while same-mode heads still pack across
    tenants."""

    def two_tenant_gate(self):
        return AdmissionController(
            [
                TenantConfig(name="a", queue_limit=16),
                TenantConfig(name="b", queue_limit=16),
            ]
        )

    def offer_opted(self, gate, tenant, fraction=0.25):
        refusal, _ = gate.offer(
            Request(
                tenant=tenant,
                query=parse_query("alpha"),
                sample_fraction=fraction,
            ),
            0.0,
            0.0,
        )
        assert refusal is None

    def test_degraded_head_excluded_from_an_exact_pass(self):
        gate = self.two_tenant_gate()
        fill(gate, "a", 1)
        self.offer_opted(gate, "b")
        gate.head("b").approx = True  # as the overload path would mark it
        sched = scheduler()
        first = sched.next_batch(gate)
        assert len(first) == 1
        second = sched.next_batch(gate)
        assert len(second) == 1
        # one pass each, opposite modes
        assert {first.approx, second.approx} == {False, True}

    def test_same_mode_heads_pack_across_tenants(self):
        gate = self.two_tenant_gate()
        self.offer_opted(gate, "a")
        self.offer_opted(gate, "b")
        for tenant in ("a", "b"):
            gate.head(tenant).approx = True
        batch = scheduler().next_batch(gate)
        assert len(batch) == 2
        assert batch.approx
        assert batch.sample_fraction == 0.25
        assert sorted(batch.tenants) == ["a", "b"]

    def test_different_fractions_do_not_pack(self):
        gate = self.two_tenant_gate()
        self.offer_opted(gate, "a", fraction=0.25)
        self.offer_opted(gate, "b", fraction=0.5)
        for tenant in ("a", "b"):
            gate.head(tenant).approx = True
        sched = scheduler()
        first = sched.next_batch(gate)
        second = sched.next_batch(gate)
        assert len(first) == 1 and len(second) == 1
        assert {first.sample_fraction, second.sample_fraction} == {0.25, 0.5}

    def test_exact_batch_reports_no_fraction(self):
        gate = self.two_tenant_gate()
        fill(gate, "a", 2)
        batch = scheduler().next_batch(gate)
        assert not batch.approx
        assert batch.sample_fraction is None


class TestScheduledRunAttribution:
    """Satellite: per-query queue/service times on the system scheduler."""

    def test_times_align_with_groups(self):
        from repro.datasets.synthetic import generator_for
        from repro.system.mithrilog import MithriLogSystem
        from repro.system.scheduler import QueryScheduler

        system = MithriLogSystem()
        system.ingest(generator_for("Liberty2").generate(1500))
        queries = [parse_query('"FAILURE"'), parse_query('"kernel:"')]
        run = QueryScheduler(system).run(queries)
        assert len(run.queue_times_s) == len(queries)
        assert len(run.service_times_s) == len(queries)
        for group, outcome in zip(run.groups, run.outcomes):
            for index in group:
                assert run.service_times_s[index] == pytest.approx(
                    outcome.stats.elapsed_s
                )
        # queue time is the makespan consumed before the group starts:
        # first group waits zero, and every latency is within makespan
        assert run.queue_times_s[run.groups[0][0]] == 0.0
        for latency in run.per_query_latency_s:
            assert 0 < latency <= run.makespan_s + 1e-12
        # latency decomposition is exact
        assert run.per_query_latency_s == [
            q + s for q, s in zip(run.queue_times_s, run.service_times_s)
        ]
