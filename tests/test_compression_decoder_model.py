"""Tests for the hardware decoder cycle model (Figure 10)."""

import pytest

from repro.compression.decoder_model import DecoderCycleModel
from repro.compression.lzah import LZAHCompressor
from repro.params import CLOCK_HZ, DATAPATH_BYTES, LZAHParams

LINE = b"Jul  5 12:00:01 sn352 kernel: RAS KERNEL INFO generating core.2275\n"


@pytest.fixture
def model():
    return DecoderCycleModel()


class TestDecoderCycles:
    def test_empty_stream_zero_cycles(self, model):
        compressed = LZAHCompressor().compress(b"")
        count = model.count(compressed)
        assert count.cycles == 0
        assert count.throughput_bytes_per_sec == 0.0

    def test_one_cycle_per_output_word(self, model):
        data = b"x" * 160  # 10 full words, no newlines
        compressed = LZAHCompressor().compress(data)
        count = model.count(compressed)
        assert count.output_words == 10
        assert count.header_words == 1
        assert count.cycles == 11

    def test_cycles_independent_of_compression_ratio(self, model):
        # same word count whether matched or literal
        compressible = (b"z" * 15 + b"\n") * 256
        codec = LZAHCompressor()
        count = model.count(codec.compress(compressible))
        assert count.output_words == 256
        assert count.header_words == 2

    def test_deterministic_rate_is_wire_speed(self, model):
        assert model.deterministic_rate_bytes_per_sec() == pytest.approx(
            DATAPATH_BYTES * CLOCK_HZ
        )

    def test_throughput_close_to_wire_speed_on_full_words(self, model):
        data = bytes(range(32, 127)) * 173  # full words, no newline bytes
        data = data[: 1024 * 16]
        compressed = LZAHCompressor().compress(data)
        count = model.count(compressed)
        # header-word overhead is 1/128
        assert count.throughput_bytes_per_sec == pytest.approx(
            model.deterministic_rate_bytes_per_sec() * 128 / 129, rel=1e-6
        )

    def test_short_lines_reduce_effective_rate(self, model):
        # 4-byte lines emit one word per 4 useful bytes
        data = b"ab\n" * 1000
        compressed = LZAHCompressor().compress(data)
        count = model.count(compressed)
        assert count.throughput_bytes_per_sec < (
            model.deterministic_rate_bytes_per_sec() / 4
        )

    def test_decompressed_bytes_tracked(self, model):
        data = LINE * 20
        count = model.count(LZAHCompressor().compress(data))
        assert count.decompressed_bytes == len(data)

    def test_custom_clock_scales_time(self):
        slow = DecoderCycleModel(clock_hz=CLOCK_HZ // 2)
        data = LINE * 20
        compressed = LZAHCompressor().compress(data)
        fast_count = DecoderCycleModel().count(compressed)
        slow_count = slow.count(compressed)
        assert slow_count.seconds == pytest.approx(2 * fast_count.seconds)

    def test_params_must_match_stream(self):
        params = LZAHParams(word_bytes=8, hash_table_bytes=64 * 8)
        data = LINE * 5
        compressed = LZAHCompressor(params).compress(data)
        model = DecoderCycleModel(params)
        assert model.count(compressed).decompressed_bytes == len(data)
