"""Unit tests for the simulated flash array."""

import pytest

from repro.errors import PageBoundsError, PageCorruptionError, StorageError
from repro.params import StorageParams
from repro.sim import SimClock
from repro.storage.flash import FlashArray
from repro.storage.page import Page


@pytest.fixture
def flash():
    return FlashArray(StorageParams(capacity_pages=64))


class TestFlashFunctional:
    def test_append_returns_sequential_addresses(self, flash):
        a0 = flash.append_page(Page(b"a"))
        a1 = flash.append_page(Page(b"b"))
        assert (a0, a1) == (0, 1)
        assert flash.pages_written == 2

    def test_read_returns_written_page(self, flash):
        addr = flash.append_page(Page(b"payload"))
        assert flash.read_page(addr).data == b"payload"

    def test_read_unwritten_page_raises(self, flash):
        with pytest.raises(StorageError):
            flash.read_page(3)

    def test_out_of_bounds_rejected(self, flash):
        with pytest.raises(PageBoundsError):
            flash.read_page(64)
        with pytest.raises(PageBoundsError):
            flash.write_page(-1, Page(b"x"))

    def test_explicit_write_address(self, flash):
        flash.write_page(10, Page(b"x"))
        assert flash.read_page(10).data == b"x"
        assert flash.next_free_address == 11

    def test_append_after_explicit_write_continues(self, flash):
        flash.write_page(5, Page(b"x"))
        assert flash.append_page(Page(b"y")) == 6

    def test_read_pages_preserves_request_order(self, flash):
        for payload in (b"a", b"b", b"c"):
            flash.append_page(Page(payload))
        pages = flash.read_pages([2, 0, 1])
        assert [p.data for p in pages] == [b"c", b"a", b"b"]

    def test_corruption_detected_on_read(self, flash):
        addr = flash.append_page(Page(b"important"))
        flash.corrupt_page(addr)
        with pytest.raises(PageCorruptionError):
            flash.read_page(addr)

    def test_corrupt_unwritten_page_raises(self, flash):
        with pytest.raises(StorageError):
            flash.corrupt_page(0)

    def test_contains(self, flash):
        flash.append_page(Page(b"a"))
        assert 0 in flash
        assert 1 not in flash


class TestFlashTiming:
    def test_single_read_pays_latency_plus_stream(self):
        params = StorageParams(
            capacity_pages=4, internal_bandwidth=4096, latency_s=1.0
        )
        flash = FlashArray(params)
        addr = flash.append_page(Page(b"x" * 4096))
        clock = SimClock()
        flash.read_page(addr, clock=clock)
        assert clock.now == pytest.approx(2.0)  # 1s latency + 4096B @ 4096B/s

    def test_sequential_run_amortises_latency(self):
        params = StorageParams(
            capacity_pages=8, internal_bandwidth=4096, latency_s=1.0
        )
        flash = FlashArray(params)
        for _ in range(4):
            flash.append_page(Page(b"x" * 4096))
        clock = SimClock()
        flash.read_pages([0, 1, 2, 3], clock=clock)
        # one latency charge + 4 pages streamed
        assert clock.now == pytest.approx(1.0 + 4.0)

    def test_random_reads_pay_latency_each(self):
        params = StorageParams(
            capacity_pages=8, internal_bandwidth=4096, latency_s=1.0
        )
        flash = FlashArray(params)
        for _ in range(4):
            flash.append_page(Page(b"x" * 4096))
        clock = SimClock()
        flash.read_pages([0, 2, 1, 3], clock=clock)  # no sequential runs
        assert clock.now == pytest.approx(4.0 + 4.0)

    def test_untimed_read_does_not_need_clock(self, flash):
        addr = flash.append_page(Page(b"a"))
        flash.read_page(addr)  # no clock, no error
