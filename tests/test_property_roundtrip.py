"""Property-based round-trip tests for the two on-disk codecs.

Two invariants, driven by hypothesis over randomized inputs (empty
lines, very long lines, multibyte UTF-8) and by exhaustive single-byte
corruption sweeps:

1. ``decode(encode(x)) == x`` for the LZAH page codec and the WAL
   record codec;
2. corrupting any single byte of an encoded blob either raises a
   *detected* error or decodes to the identical payload — never to
   silently wrong data.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compression.lzah import LZAHCompressor
from repro.errors import MithriLogError, TornRecordError, WalRecordError
from repro.system.wal import decode_record, encode_record

# -- strategies ----------------------------------------------------------

_text_line = st.text(
    alphabet=st.characters(blacklist_characters="\n", blacklist_categories=("Cs",)),
    max_size=120,
).map(lambda s: s.encode("utf-8"))

_binary_line = st.binary(max_size=400).map(lambda b: b.replace(b"\n", b" "))

_long_line = st.just(b"x" * 3000)

_lines = st.lists(
    st.one_of(st.just(b""), _text_line, _binary_line, _long_line),
    min_size=1,
    max_size=12,
)

_stamps = st.lists(
    st.floats(min_value=0.0, max_value=2e9, allow_nan=False), min_size=1, max_size=12
)


# -- LZAH round trip ------------------------------------------------------


class TestLZAHRoundTrip:
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(lines=_lines)
    def test_roundtrip_lines(self, lines):
        codec = LZAHCompressor()
        data = b"\n".join(lines) + b"\n"
        assert codec.decompress(codec.compress(data)) == data

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.binary(max_size=4000))
    def test_roundtrip_arbitrary_bytes(self, data):
        codec = LZAHCompressor()
        assert codec.decompress(codec.compress(data)) == data

    def test_roundtrip_repetitive_multibyte_utf8(self):
        codec = LZAHCompressor()
        data = ("naïve café żółć 日本語ログ " * 200).encode("utf-8")
        blob = codec.compress(data)
        assert codec.decompress(blob) == data
        assert len(blob) < len(data)  # repetition actually compresses

    def test_single_byte_corruption_never_silent(self):
        rng = random.Random(42)
        payloads = [
            b"",
            b"GET /index.html 200\n" * 40,
            bytes(rng.randrange(256) for _ in range(600)),
            ("sshd session öpened für user 日本\n" * 30).encode("utf-8"),
        ]
        codec = LZAHCompressor()
        for data in payloads:
            blob = codec.compress(data)
            for pos in range(len(blob)):
                for flip in (0xFF, 0x01):
                    bad = bytearray(blob)
                    bad[pos] ^= flip
                    try:
                        out = codec.decompress(bytes(bad))
                    except MithriLogError:
                        continue  # detected: fine
                    assert out == data, (
                        f"silent corruption at byte {pos} (xor {flip:#x})"
                    )


# -- WAL record codec -----------------------------------------------------


class TestWalRecordRoundTrip:
    @settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(lines=_lines, data=st.data())
    def test_roundtrip(self, lines, data):
        with_stamps = data.draw(st.booleans())
        stamps = (
            data.draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=2e9, allow_nan=False),
                    min_size=len(lines),
                    max_size=len(lines),
                )
            )
            if with_stamps
            else None
        )
        blob = encode_record(lines, stamps)
        out_lines, out_stamps, next_pos = decode_record(blob)
        assert out_lines == list(lines)
        assert out_stamps == stamps
        assert next_pos == len(blob)

    def test_concatenated_records_decode_in_sequence(self):
        batches = [[b"a", b"b"], [b""], [b"long " * 500]]
        blob = b"".join(encode_record(lines) for lines in batches)
        pos, seen = 0, []
        while pos < len(blob):
            lines, _, pos = decode_record(blob, pos)
            seen.append(lines)
        assert seen == batches

    def test_truncated_record_is_torn(self):
        blob = encode_record([b"hello", b"world"], [1.0, 2.0])
        for cut in range(len(blob)):
            with pytest.raises(TornRecordError):
                decode_record(blob[:cut])

    def test_single_byte_corruption_never_silent(self):
        rng = random.Random(7)
        cases = [
            ([b"one line"], None),
            ([b"", b"two", b"drei \xc3\xbc"], [0.5, 1.5, 2.5]),
            ([bytes(rng.randrange(256) for _ in range(80)).replace(b"\n", b" ")], None),
        ]
        for lines, stamps in cases:
            blob = encode_record(lines, stamps)
            for pos in range(len(blob)):
                bad = bytearray(blob)
                bad[pos] ^= 0xFF
                try:
                    out_lines, out_stamps, _ = decode_record(bytes(bad))
                except WalRecordError:  # includes TornRecordError
                    continue
                assert out_lines == lines and out_stamps == stamps, (
                    f"silent corruption at byte {pos}"
                )

    def test_empty_batch_rejected(self):
        with pytest.raises(WalRecordError):
            encode_record([])

    def test_misaligned_timestamps_rejected(self):
        with pytest.raises(WalRecordError):
            encode_record([b"a", b"b"], [1.0])

    def test_crc_protects_against_bit_rot(self):
        blob = bytearray(encode_record([b"payload"]))
        blob[-1] ^= 0x10  # flip a bit inside the compressed body
        with pytest.raises(WalRecordError):
            decode_record(bytes(blob))
