"""Tests for the HAWK-style multi-byte-per-step matcher."""

import re

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.regexdfa import MultiByteMatcher, RegexMatcher
from repro.errors import QueryParseError

PATTERNS = [
    "FATAL",
    "err[0-9]+",
    "(cat|dog)+",
    "ab*c?d",
    r"\w+:\d+",
    "a.c",
]


class TestEquivalenceWithSingleByte:
    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_matches_single_byte_engine(self, pattern, width):
        single = RegexMatcher(pattern)
        multi = MultiByteMatcher(pattern, width=width)
        probes = [
            b"", b"F", b"FATAL", b"xFATALy", b"err1", b"err", b"catdog",
            b"abbbd", b"abc", b"a:1", b"tag:42", b"axc", b"a\nc", b"zz",
            b"odd-length-probe!", b"even-len-probe!!",
        ]
        for probe in probes:
            assert multi.search(probe) == single.search(probe), (pattern, probe)

    @given(st.sampled_from(PATTERNS), st.binary(max_size=33))
    @settings(max_examples=300)
    def test_agrees_with_python_re(self, pattern, data):
        multi = MultiByteMatcher(pattern, width=2)
        assert multi.search(data) == bool(re.search(pattern.encode(), data))

    def test_match_inside_block_not_stepped_over(self):
        # 'ab' ends at an odd offset: a 2-wide step must still catch it
        multi = MultiByteMatcher("ab", width=2)
        assert multi.search(b"xaby")
        assert multi.search(b"ab")
        assert multi.search(b"xxxab")

    def test_empty_matching_pattern(self):
        assert MultiByteMatcher("a*", width=2).search(b"zzz")


class TestAreaScaling:
    def test_wide_table_grows_geometrically(self):
        w1 = MultiByteMatcher("err[0-9]+", width=1)
        w2 = MultiByteMatcher("err[0-9]+", width=2)
        w3 = MultiByteMatcher("err[0-9]+", width=3)
        # entries scale ~ classes^width: the HAWK area explosion
        assert w2.wide_table_entries > 3 * w1.wide_table_entries
        assert w3.wide_table_entries > 3 * w2.wide_table_entries

    def test_invalid_width_rejected(self):
        with pytest.raises(QueryParseError):
            MultiByteMatcher("a", width=0)
