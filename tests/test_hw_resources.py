"""Unit tests for the FPGA resource accounting (Tables 2 and 4)."""

import pytest

from repro.hw.resources import (
    DECOMPRESSOR,
    HASH_FILTER,
    LZAH_IP,
    LZRW_IP,
    PIPELINE,
    PROTOTYPE_TOTAL,
    TOKENIZER,
    VC707,
    compression_efficiency_table,
    hare_comparison,
    mithrilog_resource_table,
    pipeline_component_sum,
)


class TestTable2:
    """The derived percentages must match the paper's published ones."""

    def test_decompressor_lut_fraction(self):
        report = mithrilog_resource_table()[0]
        assert report.lut_fraction == pytest.approx(0.014, abs=0.001)

    def test_tokenizer_lut_fraction(self):
        report = mithrilog_resource_table()[1]
        assert report.lut_fraction == pytest.approx(0.003, abs=0.001)

    def test_filter_lut_fraction(self):
        report = mithrilog_resource_table()[2]
        assert report.lut_fraction == pytest.approx(0.10, abs=0.005)

    def test_pipeline_lut_fraction(self):
        report = mithrilog_resource_table()[3]
        assert report.lut_fraction == pytest.approx(0.20, abs=0.005)

    def test_total_lut_fraction(self):
        report = mithrilog_resource_table()[4]
        assert report.lut_fraction == pytest.approx(0.74, abs=0.005)

    def test_total_ramb36_fraction(self):
        report = mithrilog_resource_table()[4]
        assert report.ramb36_fraction == pytest.approx(0.41, abs=0.01)

    def test_pipeline_components_agree_with_published_pipeline(self):
        # cross-boundary synthesis optimisation makes the whole cheaper
        # than the sum of standalone parts, but not wildly so
        comp = pipeline_component_sum()
        assert 0.75 * comp.luts <= PIPELINE.luts <= 1.25 * comp.luts

    def test_four_pipelines_fit_in_two_vc707(self):
        assert 4 * PIPELINE.luts <= 2 * VC707.luts

    def test_rows_render(self):
        for report in mithrilog_resource_table():
            row = report.row()
            assert report.module.name in row
            assert "%" in row


class TestTable4:
    def test_lzah_throughput_is_wire_speed(self):
        assert LZAH_IP.gbytes_per_sec == pytest.approx(3.2)

    def test_lzah_efficiency(self):
        assert LZAH_IP.gbps_per_klut == pytest.approx(0.8)

    def test_lzah_beats_all_other_ips_on_efficiency(self):
        others = [ip for ip in compression_efficiency_table() if ip.name != "LZAH"]
        assert all(LZAH_IP.gbps_per_klut > ip.gbps_per_klut for ip in others)

    def test_lzrw_efficiency_matches_paper(self):
        assert LZRW_IP.gbps_per_klut == pytest.approx(0.27, abs=0.01)

    def test_table_order_matches_paper(self):
        names = [ip.name for ip in compression_efficiency_table()]
        assert names == ["LZ4", "LZRW", "Snappy", "LZAH"]


class TestHareComparison:
    def test_order_of_magnitude_gap(self):
        hare, mithrilog = hare_comparison()
        assert hare.kluts_per_gbps == pytest.approx(145, rel=0.05)
        assert mithrilog.kluts_per_gbps == pytest.approx(19, rel=0.05)
        assert hare.kluts_per_gbps / mithrilog.kluts_per_gbps > 7


class TestModuleScaling:
    def test_scaled_multiplies_all_resources(self):
        eight = TOKENIZER.scaled(8, "8x Tokenizer")
        assert eight.luts == 8 * TOKENIZER.luts
        assert eight.name == "8x Tokenizer"

    def test_prototype_total_exceeds_four_pipelines(self):
        # total includes PCIe/flash/aurora infrastructure beyond the pipelines
        assert PROTOTYPE_TOTAL.luts < 4 * PIPELINE.luts + 50_000
        assert PROTOTYPE_TOTAL.luts >= 3 * PIPELINE.luts
