"""Perf-regression watchdog: series semantics and exit codes.

The contract CI leans on: a ≥20% drop of the watched metric below the
baseline median exits 1, the committed trajectory passes, and unusable
input exits 2 rather than silently passing.
"""

import json
from pathlib import Path

import pytest

from repro.obs.watch import (
    DEFAULT_TOLERANCE,
    Regression,
    WatchError,
    evaluate_trajectory,
    load_trajectories,
    main,
)

REPO_ROOT = Path(__file__).parent.parent
COMMITTED_TRAJECTORY = REPO_ROOT / "BENCH_hotpath.json"


def record(config, speedup, bench="hotpath", **extra):
    return {"bench": bench, "config": config, "speedup": speedup, **extra}


def series(config, *speedups):
    return [record(config, s) for s in speedups]


def write_trajectory(path, records):
    path.write_text(json.dumps(records))
    return path


class TestEvaluateTrajectory:
    def test_regression_at_default_tolerance(self):
        # baseline median of [5.0, 4.0, 6.0] is 5.0; 3.9 is a 22% drop
        found = evaluate_trajectory(series("batched", 5.0, 4.0, 6.0, 3.9))
        assert len(found) == 1
        regression = found[0]
        assert (regression.bench, regression.config) == ("hotpath", "batched")
        assert regression.baseline == pytest.approx(5.0)
        assert regression.current == pytest.approx(3.9)
        assert regression.drop == pytest.approx(0.22)

    def test_drop_below_tolerance_passes(self):
        assert evaluate_trajectory(series("batched", 5.0, 4.5)) == []

    def test_exact_tolerance_boundary_fails(self):
        # the check is >=, so exactly 20% below the median regresses
        assert evaluate_trajectory(series("batched", 5.0, 4.0))

    def test_improvement_passes(self):
        assert evaluate_trajectory(series("batched", 5.0, 9.0)) == []

    def test_median_baseline_ignores_outlier(self):
        # one historic outlier (12.0) must not move the bar: the median
        # of [5.0, 12.0, 5.2] is 5.2, and 4.6 is only ~12% below it
        assert evaluate_trajectory(series("b", 5.0, 12.0, 5.2, 4.6)) == []

    def test_short_series_skipped(self):
        assert evaluate_trajectory(series("batched", 5.0)) == []

    def test_min_runs_raises_the_floor(self):
        records = series("batched", 5.0, 3.0)
        assert evaluate_trajectory(records)
        assert evaluate_trajectory(records, min_runs=3) == []

    def test_series_group_by_bench_and_config(self):
        records = (
            series("batched", 5.0, 5.1)
            + series("serial", 1.0, 1.0)
            + [record("batched", 2.0, bench="other")]  # different bench
        )
        assert evaluate_trajectory(records) == []

    def test_records_missing_metric_or_config_ignored(self):
        records = [
            {"bench": "hotpath", "config": "batched"},  # no speedup
            {"bench": "hotpath", "speedup": 9.9},  # no config
        ] + series("batched", 5.0, 5.0)
        assert evaluate_trajectory(records) == []

    def test_alternate_metric(self):
        records = [
            record("batched", 5.0, wall_s=1.0),
            record("batched", 5.0, wall_s=2.0),
        ]
        assert evaluate_trajectory(records, metric="speedup") == []
        # wall_s doubled — but as a bigger-is-better metric that is only
        # a regression when watched explicitly... it isn't: it grew.
        assert evaluate_trajectory(records, metric="wall_s") == []

    def test_non_positive_tolerance_rejected(self):
        with pytest.raises(WatchError, match="tolerance must be positive"):
            evaluate_trajectory(series("b", 1.0, 1.0), tolerance=0.0)

    def test_regression_renders_human_line(self):
        regression = Regression(
            bench="hotpath", config="batched", metric="speedup",
            baseline=5.0, current=3.9,
        )
        text = str(regression)
        assert "hotpath/batched" in text
        assert "22.0% below" in text
        assert "median 5" in text


class TestLoadTrajectories:
    def test_concatenates_in_argument_order(self, tmp_path):
        a = write_trajectory(tmp_path / "a.json", series("batched", 5.0))
        b = write_trajectory(tmp_path / "b.json", series("batched", 3.0))
        values = [r["speedup"] for r in load_trajectories([a, b])]
        assert values == [5.0, 3.0]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(WatchError, match="unreadable trajectory"):
            load_trajectories([tmp_path / "nope.json"])

    def test_non_list_payload_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "a list"}')
        with pytest.raises(WatchError, match="list of records"):
            load_trajectories([bad])


class TestMainExitCodes:
    def test_committed_trajectory_passes(self):
        assert COMMITTED_TRAJECTORY.exists()
        assert main([str(COMMITTED_TRAJECTORY)]) == 0

    def test_synthetic_regression_exits_one(self, tmp_path):
        # the acceptance scenario: batched speedup drops >=20% vs the
        # committed history when a fresh CI artifact joins the series
        baseline = json.loads(COMMITTED_TRAJECTORY.read_text())
        batched = next(
            r for r in baseline if r["config"] == "batched-16q"
        )
        regressed = dict(batched, speedup=batched["speedup"] * 0.75)
        fresh = write_trajectory(tmp_path / "fresh.json", [regressed])
        assert main([str(COMMITTED_TRAJECTORY), str(fresh)]) == 1

    def test_matching_fresh_run_passes(self, tmp_path):
        baseline = json.loads(COMMITTED_TRAJECTORY.read_text())
        fresh = write_trajectory(tmp_path / "fresh.json", baseline)
        assert main([str(COMMITTED_TRAJECTORY), str(fresh)]) == 0

    def test_unreadable_file_exits_two(self, tmp_path):
        assert main([str(tmp_path / "nope.json")]) == 2

    def test_bad_tolerance_exits_two(self, tmp_path):
        good = write_trajectory(tmp_path / "t.json", series("b", 1.0, 1.0))
        assert main([str(good), "--tolerance", "-1"]) == 2

    def test_json_verdict(self, tmp_path, capsys):
        records = series("batched", 5.0, 4.0, 6.0, 3.0)
        path = write_trajectory(tmp_path / "t.json", records)
        assert main([str(path), "--json"]) == 1
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["metric"] == "speedup"
        assert verdict["tolerance"] == DEFAULT_TOLERANCE
        assert verdict["records"] == 4
        [regression] = verdict["regressions"]
        assert regression["config"] == "batched"
        assert regression["drop"] == pytest.approx(0.4)

    def test_custom_tolerance_tightens(self, tmp_path):
        path = write_trajectory(
            tmp_path / "t.json", series("batched", 5.0, 4.6)
        )
        assert main([str(path)]) == 0  # 8% drop passes at default 20%
        assert main([str(path), "--tolerance", "0.05"]) == 1
