"""Tests for epoch extraction from log lines."""


from repro.datasets.synthetic import generator_for
from repro.datasets.timestamps import extract_epoch, extract_epochs


class TestExtractEpoch:
    def test_hpc4_column(self):
        line = b"- 1117838570 2005.06.03 R02-M1 RAS KERNEL INFO ok"
        assert extract_epoch(line) == 1117838570.0

    def test_alert_tag_prefix(self):
        line = b"KERNDTLB 1117838573 2005.06.03 node data TLB error"
        assert extract_epoch(line) == 1117838573.0

    def test_out_of_range_numbers_rejected(self):
        assert extract_epoch(b"- 42 small number") is None
        assert extract_epoch(b"- 99999999999 too big") is None

    def test_no_epoch(self):
        assert extract_epoch(b"plain message without numbers") is None
        assert extract_epoch(b"") is None

    def test_synthetic_generators_covered(self):
        for name in ("BGL2", "Liberty2", "Spirit2", "Thunderbird"):
            lines = generator_for(name).generate(50)
            assert all(extract_epoch(line) is not None for line in lines), name


class TestExtractEpochs:
    def test_full_coverage(self):
        lines = generator_for("BGL2").generate(100)
        epochs = extract_epochs(lines)
        assert epochs is not None
        assert len(epochs) == 100
        assert epochs == sorted(epochs)

    def test_sparse_gaps_interpolated(self):
        lines = generator_for("BGL2").generate(50)
        lines[20] = b"corrupted line without epoch"
        epochs = extract_epochs(lines)
        assert epochs is not None
        assert epochs[20] == epochs[19]

    def test_strict_mode_rejects_gaps(self):
        lines = generator_for("BGL2").generate(50)
        lines[3] = b"no epoch here"
        assert extract_epochs(lines, strict=True) is None

    def test_hopeless_coverage_returns_none(self):
        assert extract_epochs([b"a", b"b", b"c"]) is None

    def test_too_many_gaps_returns_none(self):
        lines = generator_for("BGL2").generate(10)
        for i in range(0, 10, 2):
            lines[i] = b"stripped"
        assert extract_epochs(lines) is None


class TestCliTimestampFlag:
    def test_ingest_with_timestamps_and_time_query(self, tmp_path, capsys):
        from repro.cli import main

        log = tmp_path / "x.log"
        main(["generate", "--dataset", "BGL2", "--lines", "500", "--out", str(log)])
        code = main(
            ["ingest", "--log", str(log), "--store", str(tmp_path / "s"),
             "--timestamps"]
        )
        assert code == 0
        assert "time index:" in capsys.readouterr().out
        code = main(
            ["query", "--store", str(tmp_path / "s"),
             "--since", "1117838570", "KERNEL"]
        )
        assert code == 0
        assert "matching lines" in capsys.readouterr().out
