"""Coverage for the ``repro.errors`` hierarchy.

Every public exception class must be raised by at least one real code
path; an introspective completeness check keeps the parametrization
honest when new classes are added. Also pins the ``IndexError_`` ->
``LogIndexError`` rename (deprecated alias kept).
"""

import inspect

import pytest

import repro.errors as errors_module
from repro.compression.lzah import LZAHCompressor
from repro.core.cuckoo import CuckooHashTable
from repro.core.query import parse_query
from repro.errors import (
    BadBlockError,
    CapacityError,
    CompressedFormatError,
    CompressionError,
    IngestError,
    LogIndexError,
    MithriLogError,
    PageBoundsError,
    PageCorruptionError,
    PageReadError,
    PlacementError,
    QueryError,
    QueryParseError,
    ReadRetryExhaustedError,
    ShardUnavailableError,
    StorageError,
    TornRecordError,
    UnwrittenPageError,
    WalRecordError,
)
from repro.faults import AlwaysSchedule, PageFaultInjector, ShardFaultInjector
from repro.index.storetree import NodePool
from repro.params import PAGE_BYTES, StorageParams
from repro.storage.device import MithriLogDevice, ReadMode
from repro.storage.flash import FlashArray
from repro.storage.page import Page
from repro.system.mithrilog import MithriLogSystem
from repro.system.wal import decode_record, encode_record


def _conflicting_placement():
    table = CuckooHashTable()
    table.add_term(b"token", 0, negative=False)
    table.add_term(b"token", 0, negative=True)


def _overprovisioned_iset():
    CuckooHashTable().add_term(b"token", 10**6, negative=False)


def _oversized_page():
    Page(b"x" * (PAGE_BYTES + 1))


def _out_of_bounds_read():
    FlashArray(StorageParams(capacity_pages=4)).read_page(99)


def _unwritten_read():
    FlashArray().read_page(0)


def _corrupt_page_read():
    Page(b"payload").corrupted(0).verify()


def _injected_read_error():
    PageFaultInjector(read_errors=AlwaysSchedule()).on_read(0, Page(b"x"))


def _bad_block_read():
    PageFaultInjector(bad_addresses={0}).on_read(0, Page(b"x"))


def _retry_exhaustion():
    device = MithriLogDevice(StorageParams(capacity_pages=8))
    (address,) = device.append_pages([Page(b"doomed")])
    device.flash.corrupt_page(address)  # persistent: every re-read fails
    device.read([address], mode=ReadMode.RAW)


def _corrupt_wal_record():
    blob = bytearray(encode_record([b"line"]))
    blob[-1] ^= 0xFF
    decode_record(bytes(blob))


def _torn_wal_record():
    decode_record(encode_record([b"line"])[:-3])


def _down_shard():
    ShardFaultInjector(shard_down=AlwaysSchedule()).on_query(0)


def _truncated_lzah_stream():
    LZAHCompressor().decompress(b"short")


def _misaligned_ingest():
    MithriLogSystem().ingest([b"a"], timestamps=[1.0, 2.0])


def _misaligned_node_pool():
    NodePool(FlashArray(), 100, 4096)


def _empty_query_call():
    MithriLogSystem().query()


TRIGGERS = {
    MithriLogError: _empty_query_call,
    QueryError: _empty_query_call,
    QueryParseError: lambda: parse_query(""),
    PlacementError: _conflicting_placement,
    CapacityError: _overprovisioned_iset,
    StorageError: _oversized_page,
    PageBoundsError: _out_of_bounds_read,
    UnwrittenPageError: _unwritten_read,
    PageReadError: _injected_read_error,
    PageCorruptionError: _corrupt_page_read,
    BadBlockError: _bad_block_read,
    ReadRetryExhaustedError: _retry_exhaustion,
    WalRecordError: _corrupt_wal_record,
    TornRecordError: _torn_wal_record,
    ShardUnavailableError: _down_shard,
    CompressionError: _truncated_lzah_stream,
    CompressedFormatError: _truncated_lzah_stream,
    LogIndexError: _misaligned_node_pool,
    IngestError: _misaligned_ingest,
}


@pytest.mark.parametrize(
    "exc, trigger", TRIGGERS.items(), ids=[e.__name__ for e in TRIGGERS]
)
def test_every_exception_has_a_raising_code_path(exc, trigger):
    with pytest.raises(exc):
        trigger()


def test_trigger_map_is_complete():
    """Adding an exception class without a trigger fails this test."""
    public = {
        obj
        for _, obj in inspect.getmembers(errors_module, inspect.isclass)
        if issubclass(obj, MithriLogError)
    }
    assert public == set(TRIGGERS)


def test_exact_types_for_leaf_exceptions():
    """Leaf triggers raise precisely their class, not a parent."""
    leaves = [
        exc
        for exc in TRIGGERS
        if not any(other is not exc and issubclass(other, exc) for other in TRIGGERS)
    ]
    for exc in leaves:
        with pytest.raises(exc) as caught:
            TRIGGERS[exc]()
        assert type(caught.value) is exc, exc.__name__


def test_retryable_tuple_contains_only_transients():
    assert set(errors_module.RETRYABLE_STORAGE_ERRORS) == {
        PageReadError,
        PageCorruptionError,
    }
    for exc in (BadBlockError, UnwrittenPageError, PageBoundsError):
        assert not issubclass(exc, errors_module.RETRYABLE_STORAGE_ERRORS)


class TestDeprecatedAlias:
    def test_index_error_alias_warns_and_resolves(self):
        with pytest.deprecated_call():
            alias = errors_module.IndexError_
        assert alias is LogIndexError

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            errors_module.NoSuchError


class TestUnwrittenPageRegression:
    """Reading a never-written page must raise the bounds family, not
    leak a raw ``KeyError`` (the old behaviour for single-page reads)."""

    def test_read_page_and_read_pages_agree(self):
        flash = FlashArray(StorageParams(capacity_pages=8))
        flash.append_page(Page(b"written"))
        with pytest.raises(UnwrittenPageError):
            flash.read_page(5)
        with pytest.raises(UnwrittenPageError):
            flash.read_pages([0, 5])
        with pytest.raises(PageBoundsError):
            flash.read_page(5)  # the subclass relationship holds

    def test_unwritten_is_not_retried_by_the_device(self):
        device = MithriLogDevice(StorageParams(capacity_pages=8))
        device.append_pages([Page(b"written")])
        with pytest.raises(UnwrittenPageError):
            device.read([0, 5], mode=ReadMode.RAW)
