"""Tests for sim-clock span tracing and Chrome trace export."""

import json

import pytest

from repro.obs.tracing import SpanTracer, TraceError, validate_chrome_trace
from repro.sim.clock import SimClock


class TestRecord:
    def test_explicit_interval(self):
        tracer = SpanTracer()
        span = tracer.record("flash_read", 1.5, 0.25, category="query",
                             track="flash", bytes=4096)
        assert span.end_s == pytest.approx(1.75)
        assert span.args == {"bytes": 4096}
        assert len(tracer) == 1
        assert tracer.names() == {"flash_read"}

    def test_track_defaults_to_name(self):
        tracer = SpanTracer()
        assert tracer.record("decompress", 0.0, 1.0).track == "decompress"

    def test_negative_duration_rejected(self):
        with pytest.raises(TraceError):
            SpanTracer().record("x", 0.0, -1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(TraceError):
            SpanTracer().record("x", -0.5, 1.0)


class TestSpanContext:
    def test_brackets_sim_clock(self):
        clock = SimClock()
        tracer = SpanTracer(clock=clock)
        clock.advance(2.0)
        with tracer.span("work") as info:
            clock.advance(0.5)
            info["pages"] = 3
        (span,) = tracer.spans
        assert span.start_s == pytest.approx(2.0)
        assert span.duration_s == pytest.approx(0.5)
        assert span.args["pages"] == 3
        assert span.wall_duration_s >= 0.0

    def test_wall_fallback_without_clock(self):
        tracer = SpanTracer()
        with tracer.span("wall"):
            pass
        (span,) = tracer.spans
        assert span.start_s == 0.0
        assert span.duration_s >= 0.0

    def test_records_even_on_exception(self):
        tracer = SpanTracer(clock=SimClock())
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("inside")
        assert tracer.names() == {"boom"}


class TestChromeExport:
    def test_sim_seconds_become_microseconds(self):
        tracer = SpanTracer()
        tracer.record("q", 0.001, 0.002, category="query")
        trace = tracer.to_chrome_trace()
        (event,) = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert event["ts"] == pytest.approx(1000.0)
        assert event["dur"] == pytest.approx(2000.0)
        assert event["cat"] == "query"
        assert trace["displayTimeUnit"] == "ms"

    def test_tracks_get_tids_and_thread_names(self):
        tracer = SpanTracer()
        tracer.record("a", 0, 1, track="flash")
        tracer.record("b", 0, 1, track="host")
        trace = tracer.to_chrome_trace()
        meta = {e["args"]["name"]: e["tid"]
                for e in trace["traceEvents"] if e["ph"] == "M"}
        assert set(meta) == {"flash", "host"}
        events = {e["name"]: e["tid"]
                  for e in trace["traceEvents"] if e["ph"] == "X"}
        assert events["a"] == meta["flash"]
        assert events["b"] == meta["host"]

    def test_write_and_validate_roundtrip(self, tmp_path):
        tracer = SpanTracer()
        tracer.record("one", 0.0, 1.0)
        path = tracer.write_chrome_trace(tmp_path / "sub" / "trace.json")
        assert path.exists()
        assert validate_chrome_trace(path) == 1
        # and the file is plain JSON Perfetto can open
        assert "traceEvents" in json.loads(path.read_text())

    def test_clear(self):
        tracer = SpanTracer()
        tracer.record("x", 0, 1)
        tracer.clear()
        assert len(tracer) == 0


class TestValidate:
    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            validate_chrome_trace({"traceEvents": []})

    def test_metadata_only_trace_rejected(self):
        trace = {"traceEvents": [{"ph": "M", "name": "thread_name"}]}
        with pytest.raises(TraceError):
            validate_chrome_trace(trace)

    def test_malformed_event_rejected(self):
        with pytest.raises(TraceError):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})

    def test_missing_ts_rejected(self):
        with pytest.raises(TraceError):
            validate_chrome_trace({"traceEvents": [{"ph": "X", "name": "a"}]})

    def test_non_dict_rejected(self):
        with pytest.raises(TraceError):
            validate_chrome_trace({"events": []})

    def test_unreadable_file_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            validate_chrome_trace(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(TraceError):
            validate_chrome_trace(bad)
