"""End-to-end tests for prefix-tree (column-constrained) queries.

Section 4.3's prefix-tree extension adds a column field to the hash-table
entry; these tests drive that capability through the *whole* stack —
extraction, compilation, inverted-index narrowing (which ignores columns
and therefore over-approximates, as it must), and the filter engine.
"""

import pytest

from repro.baselines.grep import grep_lines
from repro.core.query import Query, Term
from repro.system.mithrilog import MithriLogSystem
from repro.templates.prefixtree import PrefixTree, PrefixTreeParams


def corpus():
    lines = []
    lines += [f"sshd auth failure user u{i}".encode() for i in range(40)]
    lines += [f"kernel panic cpu {i}".encode() for i in range(30)]
    lines += [b"cron job started ok"] * 25
    # adversarial: same tokens as the sshd template, wrong positions
    lines += [f"u{i} sshd failure auth user".encode() for i in range(20)]
    return lines


@pytest.fixture(scope="module")
def system():
    sys = MithriLogSystem()
    sys.ingest(corpus())
    return sys


@pytest.fixture(scope="module")
def tree():
    # the root level legitimately has ~23 distinct first tokens (the 20
    # scrambled lines); only genuine variable fields exceed 25
    return PrefixTree.from_lines(corpus(), PrefixTreeParams(prune_threshold=25))


class TestPrefixQueriesEndToEnd:
    def test_template_query_through_system(self, system, tree):
        sshd = next(t for t in tree.templates if t.tokens[0] == b"sshd")
        query = tree.template_query(sshd)
        outcome = system.query(query)
        expected = grep_lines(query, corpus())
        assert sorted(outcome.matched_lines) == sorted(expected)
        # the adversarial scrambled lines must NOT match
        assert all(not ln.startswith(b"u") for ln in outcome.matched_lines)
        assert len(outcome.matched_lines) == 40

    def test_column_query_offloads(self, system):
        query = Query.single(Term(b"panic", column=1))
        assert system.engine.compile(query)  # placement succeeds
        outcome = system.query(query)
        assert outcome.stats.offloaded
        assert len(outcome.matched_lines) == 30

    def test_index_superset_despite_columns(self, system):
        # the inverted index narrows by token only; column filtering
        # happens in the engine, so results stay exact
        query = Query.single(Term(b"sshd", column=0))
        indexed = system.query(query, use_index=True)
        scanned = system.query(query, use_index=False)
        assert indexed.matched_lines == scanned.matched_lines

    def test_all_templates_classify_their_own_lines(self, system, tree):
        for template in tree.templates:
            query = tree.template_query(template)
            outcome = system.query(query)
            assert len(outcome.matched_lines) >= template.support * 0.9

    def test_mixed_column_and_plain_queries_concurrently(self, system):
        q_col = Query.single(Term(b"sshd", column=0))
        q_plain = Query.single(Term(b"cron"))
        outcome = system.query(q_col, q_plain)
        assert outcome.per_query_counts[0] == 40
        assert outcome.per_query_counts[1] == 25
