"""Tests for the side-by-side comparison harness."""

import pytest

from repro.datasets.synthetic import generator_for
from repro.system.comparison import ComparisonHarness
from repro.system.report import log_bins, render_histogram, render_scatter_summary, render_table
from repro.templates.fttree import FTTree, FTTreeParams
from repro.templates.querygen import build_workload


@pytest.fixture(scope="module")
def harness():
    lines = generator_for("BGL2").generate(4000)
    return ComparisonHarness(lines)


@pytest.fixture(scope="module")
def workload(harness):
    tree = FTTree.from_lines(harness.lines, FTTreeParams(prune_threshold=12))
    return build_workload(tree, num_pairs=4, num_eights=2, max_singles=6)


class TestScanComparison:
    def test_mithrilog_beats_scan_db_on_average(self, harness, workload):
        result = harness.run_scan_comparison(workload)
        assert result.average_improvement() > 2.0

    def test_mithrilog_flat_across_batch_sizes(self, harness, workload):
        result = harness.run_scan_comparison(workload)
        t1 = result.mean_gbps("MithriLog", 1)
        t8 = result.mean_gbps("MithriLog", 8)
        assert t8 == pytest.approx(t1, rel=0.2)

    def test_scan_db_degrades_with_batch_size(self, harness, workload):
        result = harness.run_scan_comparison(workload)
        assert result.mean_gbps("MonetDB", 8) < result.mean_gbps("MonetDB", 1)

    def test_sample_bookkeeping(self, harness, workload):
        result = harness.run_scan_comparison(workload)
        expected = 2 * workload.total_queries()
        assert len(result.samples) == expected


class TestEndToEnd:
    def test_mithrilog_wins_in_total(self, harness, workload):
        result = harness.run_end_to_end(workload)
        assert result.total_improvement() > 1.0

    def test_agreement_with_oracle(self, harness, workload):
        harness.verify_agreement(list(workload.singles)[:3])


class TestReportRenderers:
    def test_render_table(self):
        text = render_table("Table X", ["a", "b"], [[1, 2.5], ["x", 3.0]])
        assert "Table X" in text and "2.50" in text

    def test_render_histogram_counts_everything(self):
        text = render_histogram("H", [0.1, 0.5, 5.0], [0.01, 1.0, 10.0])
        assert text.count("|") == 2
        assert "2" in text and "1" in text

    def test_log_bins_monotone(self):
        bins = log_bins(0.01, 100, 8)
        assert len(bins) == 9
        assert all(a < b for a, b in zip(bins, bins[1:]))
        assert bins[0] == pytest.approx(0.01)
        assert bins[-1] == pytest.approx(100)

    def test_log_bins_validation(self):
        with pytest.raises(ValueError):
            log_bins(0, 10, 4)
        with pytest.raises(ValueError):
            log_bins(10, 1, 4)

    def test_scatter_summary(self):
        text = render_scatter_summary("S", [(0.1, 1.0), (0.2, 3.0)])
        assert "faster on 2" in text

    def test_scatter_summary_empty(self):
        assert "no samples" in render_scatter_summary("S", [])
