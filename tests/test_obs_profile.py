"""Host-side stage profiling and trace-context propagation.

The worker-invisibility fix is the point under test: scan work done in
pool subprocesses must surface in the *parent's* metrics registry and
span tracer (the workers' own registries die with the pool), and the
deterministic profile counts must be identical at any worker count.
"""

import pickle

import pytest

from repro.core.query import parse_query
from repro.datasets.synthetic import generator_for
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.profile import (
    PartitionProfile,
    ProfileBuilder,
    StageProfile,
    TraceContext,
    merge_profiles,
    profile_counts,
    profile_to_dict,
)
from repro.obs.tracing import SpanTracer
from repro.system.cluster import MithriLogCluster
from repro.system.mithrilog import MithriLogSystem

SEED = 7
QUERY = parse_query("session OR root")


def corpus(lines=3000):
    return list(generator_for("Liberty2", seed=SEED).iter_lines(lines))


class TestProfileBuilder:
    def test_add_accumulates(self):
        builder = ProfileBuilder()
        builder.add("decompress", units=100, wall_s=0.5)
        builder.add("decompress", calls=2, units=50, wall_s=0.25)
        profile = builder.build()
        assert profile["decompress"] == StageProfile(
            calls=3, units=150, wall_s=0.75
        )

    def test_wrap_counts_calls_and_units(self):
        builder = ProfileBuilder()
        double = builder.wrap("filter", lambda x: x * 2, units_of=len)
        assert double("ab") == "abab"
        assert double("c") == "cc"
        profile = builder.build()
        assert profile["filter"].calls == 2
        assert profile["filter"].units == 6
        assert profile["filter"].wall_s >= 0.0

    def test_wrap_charges_wall_on_exception_and_propagates(self):
        builder = ProfileBuilder()

        def boom():
            raise ValueError("kaput")

        wrapped = builder.wrap("filter", boom)
        with pytest.raises(ValueError, match="kaput"):
            wrapped()
        profile = builder.build()
        # the attempted call and its wall time are charged; no units accrue
        assert profile["filter"].calls == 1
        assert profile["filter"].units == 0
        assert profile["filter"].wall_s >= 0.0

    def test_merge_profiles_sums_stages(self):
        a = {"decompress": StageProfile(calls=1, units=10, wall_s=0.1)}
        b = {
            "decompress": StageProfile(calls=2, units=20, wall_s=0.2),
            "filter": StageProfile(calls=5, units=50, wall_s=0.5),
        }
        merged = merge_profiles([a, b])
        assert merged["decompress"].calls == 3
        assert merged["decompress"].units == 30
        assert merged["decompress"].wall_s == pytest.approx(0.3)
        assert merged["filter"].calls == 5

    def test_profile_to_dict_and_counts(self):
        profile = {"filter": StageProfile(calls=2, units=7, wall_s=0.125)}
        assert profile_to_dict(profile) == {
            "filter": {"calls": 2, "units": 7, "wall_s": 0.125}
        }
        assert profile_counts(profile) == {"filter": {"calls": 2, "units": 7}}


class TestTraceContext:
    def test_tags_omit_unset_coordinates(self):
        context = TraceContext(trace_id="q1")
        assert context.tags() == {"trace_id": "q1"}

    def test_child_adds_coordinates(self):
        context = TraceContext(trace_id="cq3")
        child = context.child(shard=2)
        assert child.tags() == {"trace_id": "cq3", "shard": 2}
        grandchild = child.child(partition=1)
        assert grandchild.tags() == {
            "trace_id": "cq3", "shard": 2, "partition": 1
        }

    def test_partition_profile_is_picklable(self):
        record = PartitionProfile(
            index=1, pages=4, bytes_decompressed=100, lines_seen=10,
            lines_kept=3,
            stages=(("filter", StageProfile(calls=4, units=10, wall_s=0.1)),),
        )
        clone = pickle.loads(pickle.dumps(record))
        assert clone == record
        assert clone.stage_dict()["filter"].units == 10


class TestWorkerVisibility:
    """Pool-worker scan work must land in the parent-process registry."""

    def run_scan(self, workers):
        with use_registry(MetricsRegistry()) as registry:
            system = MithriLogSystem(seed=SEED, cache_pages=0)
            system.ingest(corpus())
            outcome = system.query(QUERY, use_index=False, workers=workers)
            system.close()
            calls = registry.counter(
                "mithrilog_profile_calls_total", "", labelnames=("stage",)
            )
            units = registry.counter(
                "mithrilog_profile_units_total", "", labelnames=("stage",)
            )
            wall = registry.counter(
                "mithrilog_profile_wall_seconds_total", "", labelnames=("stage",)
            )
            return outcome, {
                "calls": {
                    s: calls.value(stage=s)
                    for s in ("decompress", "tokenize", "filter")
                    if calls.value(stage=s)
                },
                "units": {
                    s: units.value(stage=s)
                    for s in ("decompress", "tokenize", "filter")
                    if units.value(stage=s)
                },
                "wall": {
                    s: wall.value(stage=s)
                    for s in ("decompress", "tokenize", "filter")
                },
            }

    def test_pool_workers_report_to_parent_registry(self):
        outcome, observed = self.run_scan(workers=4)
        stats = outcome.stats
        assert observed["calls"].get("decompress") == stats.pages_read
        assert observed["calls"].get("tokenize") == stats.pages_read
        assert observed["calls"].get("filter") == stats.pages_read
        assert observed["units"].get("tokenize") == stats.lines_seen
        assert observed["units"].get("decompress") == stats.bytes_decompressed
        # wall time is measured in the workers and merged in the parent
        assert sum(observed["wall"].values()) > 0.0

    def test_kernel_counts_identical_across_pool_sizes(self):
        _, two = self.run_scan(workers=2)
        _, four = self.run_scan(workers=4)
        assert two["calls"] == four["calls"]
        assert two["units"] == four["units"]

    def test_serial_path_reports_to_registry_too(self):
        # workers=1 runs the same partition kernel inline, so the stage
        # accounting is page-granular and identical to the pool path's
        outcome, observed = self.run_scan(workers=1)
        stats = outcome.stats
        assert observed["calls"].get("decompress") == stats.pages_read
        assert observed["units"].get("decompress") == stats.bytes_decompressed
        assert observed["calls"].get("filter") == stats.pages_read
        assert observed["units"].get("filter") == stats.lines_seen
        _, pooled = self.run_scan(workers=4)
        assert observed["calls"] == pooled["calls"]
        assert observed["units"] == pooled["units"]


class TestSynthesizedStatsProfile:
    def test_profile_identical_across_worker_counts(self):
        outcomes = {}
        for workers in (1, 4):
            system = MithriLogSystem(seed=SEED, cache_pages=0)
            system.ingest(corpus())
            outcomes[workers] = system.query(
                QUERY, use_index=False, workers=workers
            )
            system.close()
        assert outcomes[1].stats.profile == outcomes[4].stats.profile
        profile = outcomes[4].stats.profile
        stats = outcomes[4].stats
        assert profile["tokenize"]["units"] == stats.lines_seen
        assert profile["decompress"]["units"] == stats.bytes_decompressed

    def test_cache_hits_reduce_decompress_calls(self):
        system = MithriLogSystem(seed=SEED, cache_pages=10_000)
        system.ingest(corpus(1500))
        cold = system.query(QUERY, use_index=False)
        warm = system.query(QUERY, use_index=False)
        assert cold.stats.cache_hits == 0
        assert warm.stats.cache_hits == warm.stats.pages_read
        assert warm.stats.profile["decompress"]["calls"] == 0
        assert (
            cold.stats.profile["decompress"]["calls"] == cold.stats.pages_read
        )

    def test_host_profile_present_on_both_paths(self):
        system = MithriLogSystem(seed=SEED, cache_pages=0)
        system.ingest(corpus(1500))
        serial = system.query(QUERY, use_index=False)
        pooled = system.query(QUERY, use_index=False, workers=2)
        system.close()
        assert "decompress" in set(serial.stats.host_profile)
        assert {"decompress", "tokenize", "filter"} <= set(
            pooled.stats.host_profile
        )
        assert pooled.stats.partitions == 2


class TestPartitionSpans:
    def test_scan_partition_spans_carry_trace_context(self):
        system = MithriLogSystem(seed=SEED, cache_pages=0)
        system.tracer = SpanTracer(clock=system.clock)
        system.ingest(corpus())
        system.query(QUERY, use_index=False, workers=3)
        system.close()
        partition_spans = [
            s for s in system.tracer.spans if s.name.startswith("scan_partition[")
        ]
        assert len(partition_spans) == 3
        assert {s.track for s in partition_spans} == {"workers"}
        trace_ids = {s.args.get("trace_id") for s in partition_spans}
        assert len(trace_ids) == 1 and trace_ids == {"q1"}
        assert sorted(s.args["partition"] for s in partition_spans) == [0, 1, 2]
        # the partitions' modelled decompress work covers the whole scan
        query_span = next(s for s in system.tracer.spans if s.name == "query")
        assert query_span.args.get("trace_id") == "q1"

    def test_serial_path_emits_no_partition_spans(self):
        system = MithriLogSystem(seed=SEED, cache_pages=0)
        system.tracer = SpanTracer(clock=system.clock)
        system.ingest(corpus(1500))
        system.query(QUERY, use_index=False)
        assert not [
            s for s in system.tracer.spans if s.name.startswith("scan_partition")
        ]


class TestClusterPropagation:
    def test_shards_share_one_trace_id_with_shard_coordinates(self):
        cluster = MithriLogCluster(num_shards=2, seed=SEED)
        for shard in cluster.shards:
            shard.tracer = SpanTracer(clock=shard.clock)
        cluster.ingest(corpus())
        cluster.query(QUERY, use_index=False)
        tagged = []
        for index, shard in enumerate(cluster.shards):
            spans = [s for s in shard.tracer.spans if s.name == "query"]
            assert spans, f"shard {index} recorded no query span"
            tagged.append((spans[0].args["trace_id"], spans[0].args["shard"]))
        assert [t for t, _ in tagged] == ["cq1"] * 2
        assert [s for _, s in tagged] == [0, 1]

    def test_cluster_profile_merges_shard_counts(self):
        cluster = MithriLogCluster(num_shards=2, seed=SEED)
        cluster.ingest(corpus())
        outcome = cluster.query(QUERY, use_index=False)
        merged = outcome.profile
        assert merged["tokenize"]["units"] == sum(
            o.stats.profile["tokenize"]["units"] for o in outcome.per_shard
        )
        assert merged["tokenize"]["units"] == sum(
            o.stats.lines_seen for o in outcome.per_shard
        )
