"""Tests for the synthetic dataset generators and corpus loader."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.loader import chunk_lines_into_pages, read_log_lines
from repro.datasets.schema import DATASET_SPECS
from repro.datasets.synthetic import all_generators, generator_for
from repro.errors import IngestError


class TestSchema:
    def test_table1_values(self):
        assert DATASET_SPECS["BGL2"].paper_templates == 93
        assert DATASET_SPECS["Liberty2"].paper_templates == 197
        assert DATASET_SPECS["Spirit2"].paper_templates == 241
        assert DATASET_SPECS["Thunderbird"].paper_templates == 125

    def test_avg_line_lengths_plausible(self):
        for spec in DATASET_SPECS.values():
            assert 80 < spec.avg_line_bytes < 200

    def test_scaling(self):
        spec = DATASET_SPECS["BGL2"]
        assert spec.scaled_lines(0.001) == 4700
        with pytest.raises(ValueError):
            spec.scaled_lines(0.0)


class TestGenerators:
    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            generator_for("nope")

    def test_deterministic_per_seed(self):
        a = generator_for("BGL2", seed=5).generate(50)
        b = generator_for("BGL2", seed=5).generate(50)
        assert a == b

    def test_seeds_differ(self):
        a = generator_for("BGL2", seed=1).generate(50)
        b = generator_for("BGL2", seed=2).generate(50)
        assert a != b

    @pytest.mark.parametrize("name", sorted(DATASET_SPECS))
    def test_line_shape(self, name):
        lines = generator_for(name).generate(200)
        assert len(lines) == 200
        for line in lines:
            assert b"\n" not in line
            fields = line.split()
            assert len(fields) >= 6
            assert fields[1].isdigit()  # epoch column

    @pytest.mark.parametrize("name", sorted(DATASET_SPECS))
    def test_mean_line_length_near_table1(self, name):
        lines = generator_for(name).generate(2000)
        mean = sum(len(ln) + 1 for ln in lines) / len(lines)
        target = DATASET_SPECS[name].avg_line_bytes
        assert 0.5 * target < mean < 1.8 * target

    def test_timestamps_monotone(self):
        lines = generator_for("Liberty2").generate(500)
        epochs = [int(ln.split()[1]) for ln in lines]
        assert epochs == sorted(epochs)

    def test_template_skew(self):
        # Zipf weighting: the most common message dominates the rarest
        gen = generator_for("Thunderbird")
        lines = gen.generate(5000)
        from collections import Counter

        # bucket by the facility token (field 8 of the syslog format)
        facilities = Counter(ln.split()[8] for ln in lines if len(ln.split()) > 8)
        counts = facilities.most_common()
        assert counts[0][1] > 10 * counts[-1][1]

    def test_variable_fields_vary(self):
        lines = generator_for("BGL2").generate(300)
        nodes = {ln.split()[3] for ln in lines}
        assert len(nodes) > 50

    def test_all_generators_cover_specs(self):
        gens = all_generators()
        assert set(gens) == set(DATASET_SPECS)

    def test_fttree_recovers_templates(self):
        from repro.templates.fttree import FTTree, FTTreeParams

        gen = generator_for("Liberty2")
        lines = gen.generate(4000)
        tree = FTTree.from_lines(lines, FTTreeParams(max_depth=6, prune_threshold=12))
        # scaled corpora won't hit Table 1's 197, but the library must be
        # substantial and smaller than the line count by orders of magnitude
        assert 10 <= len(tree.templates) <= 400

    def test_generate_text_newline_terminated(self):
        text = generator_for("BGL2").generate_text(10)
        assert text.endswith(b"\n")
        assert len(text.splitlines()) == 10


class TestLoader:
    def test_read_log_lines_roundtrip(self, tmp_path):
        path = tmp_path / "x.log"
        path.write_bytes(b"one\ntwo\n\nthree\n")
        assert read_log_lines(path) == [b"one", b"two", b"", b"three"]

    def test_read_limit(self, tmp_path):
        path = tmp_path / "x.log"
        path.write_bytes(b"a\nb\nc\n")
        assert read_log_lines(path, limit=2) == [b"a", b"b"]

    def test_chunks_respect_budget(self):
        lines = [b"x" * 100] * 100
        for text, chunk in chunk_lines_into_pages(lines, page_bytes=1024):
            assert len(text) <= 1024
            assert text == b"".join(ln + b"\n" for ln in chunk)

    def test_chunks_break_at_line_boundaries(self):
        lines = [b"abc", b"de", b"fghi"]
        chunks = list(chunk_lines_into_pages(lines, page_bytes=8))
        rebuilt = [ln for _, chunk in chunks for ln in chunk]
        assert rebuilt == lines
        for text, _ in chunks:
            assert text.endswith(b"\n")

    def test_oversized_line_rejected(self):
        with pytest.raises(IngestError):
            list(chunk_lines_into_pages([b"x" * 5000], page_bytes=4096))

    def test_target_fill_scales_budget(self):
        lines = [b"y" * 100] * 10
        loose = list(chunk_lines_into_pages(lines, page_bytes=256, target_fill=2.0))
        tight = list(chunk_lines_into_pages(lines, page_bytes=256, target_fill=1.0))
        assert len(loose) < len(tight)

    @given(st.lists(st.binary(max_size=64).filter(lambda ln: b"\n" not in ln), max_size=60))
    @settings(max_examples=60)
    def test_chunking_loses_nothing(self, lines):
        chunks = list(chunk_lines_into_pages(lines, page_bytes=256))
        rebuilt = [ln for _, chunk in chunks for ln in chunk]
        assert rebuilt == lines
        assert b"".join(t for t, _ in chunks) == b"".join(ln + b"\n" for ln in lines)
