"""The query journal: records, serialisation, validation, replay.

The load-bearing property, pinned with hypothesis over randomized
service workloads: every tenant's journal tallies conserve —
``ok + rejected + shed + timed_out + approximated == submitted`` — and
the exported payload passes the same validator CI runs over artifacts.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.datasets.synthetic import generator_for
from repro.obs.journal import (
    JournalError,
    JournalRecord,
    QueryJournal,
    load_journal,
    looks_like_journal,
    replay_requests,
    template_fingerprint,
    validate_journal_payload,
)
from repro.service import (
    QueryService,
    Request,
    make_tenants,
    open_loop_requests,
    query_pool,
)
from repro.system.mithrilog import MithriLogSystem


@pytest.fixture(scope="module")
def corpus():
    return generator_for("Liberty2").generate(1200)


@pytest.fixture(scope="module")
def tenants():
    return make_tenants(3)


@pytest.fixture(scope="module")
def pool(corpus):
    return query_pool(corpus, max_queries=10, num_pairs=3)


def service_run(corpus, tenants, requests, journal, max_backlog=6):
    system = MithriLogSystem()
    system.ingest(corpus)
    service = QueryService(
        system, tenants, max_backlog=max_backlog, journal=journal
    )
    return service.run(requests)


def make_record(seq=0, outcome="ok", tenant="t0", template=None, **overrides):
    fields = dict(
        seq=seq,
        window="",
        tenant=tenant,
        template=template or template_fingerprint("q"),
        outcome=outcome,
        reason="" if outcome == "ok" else "queue_full",
        priority=0,
        arrival_s=0.0,
        queue_s=0.001,
        service_s=0.002 if outcome == "ok" else 0.0,
        latency_s=0.003 if outcome == "ok" else 0.001,
        completed_at_s=0.01,
        matches=5 if outcome == "ok" else 0,
        batch_size=2 if outcome == "ok" else 0,
        stage="flash" if outcome == "ok" else "",
    )
    if outcome != "ok":
        fields["queue_s"] = 0.001
        fields["service_s"] = 0.0
        fields["latency_s"] = 0.001
    fields.update(overrides)
    return JournalRecord(**fields)


class TestFingerprint:
    def test_stable_and_compact(self):
        assert template_fingerprint("find ERROR") == template_fingerprint(
            "find ERROR"
        )
        assert len(template_fingerprint("anything")) == 12

    def test_distinct_texts_distinct_prints(self):
        assert template_fingerprint("a") != template_fingerprint("b")


class TestJournalWriting:
    def test_windows_stamp_records(self):
        journal = QueryJournal()
        journal.begin_window("warm")
        journal.note_submitted("t0")
        journal.append(make_record(seq=0))
        journal.begin_window("hot")
        journal.note_submitted("t0")
        journal.append(make_record(seq=1))
        # append() does not rewrite the window field; observe() does the
        # stamping — emulate it here
        assert journal.windows() == [""]
        assert len(journal.in_window(None)) == 2

    def test_observe_direct_counts_intake(self):
        journal = QueryJournal()
        journal.begin_window("direct")
        record = journal.observe_direct(
            "find KERNEL",
            latency_s=0.004,
            matches=7,
            stage="filter",
            completed_at_s=0.004,
        )
        assert record.window == "direct"
        assert record.outcome == "ok"
        assert journal.conserved()
        assert journal.templates[record.template] == "find KERNEL"

    def test_unknown_outcome_rejected(self):
        journal = QueryJournal()
        with pytest.raises(JournalError):
            journal.append(make_record(outcome="exploded"))

    def test_register_template_interned_once(self):
        journal = QueryJournal()
        a = journal.register_template("find X")
        b = journal.register_template("find X")
        assert a == b
        assert len(journal.templates) == 1


class TestRetention:
    def _fill(self, journal, n):
        journal.register_template("q")
        for i in range(n):
            journal.note_submitted("t0")
            journal.append(make_record(seq=journal.next_seq))

    def test_unbounded_by_default(self):
        journal = QueryJournal()
        self._fill(journal, 10)
        assert len(journal) == 10
        assert journal.evicted == 0

    def test_ring_keeps_newest(self):
        journal = QueryJournal(max_entries=4)
        self._fill(journal, 10)
        assert len(journal) == 4
        assert journal.evicted == 6
        # the survivors are the most recent appends
        assert [r.seq for r in journal.records] == [6, 7, 8, 9]

    def test_tallies_stay_exact_across_eviction(self):
        journal = QueryJournal(max_entries=3)
        self._fill(journal, 8)
        tally = journal.tenant_tallies()["t0"]
        assert tally["submitted"] == 8
        assert tally["ok"] == 8
        assert journal.conserved()

    def test_invalid_max_entries_rejected(self):
        with pytest.raises(JournalError):
            QueryJournal(max_entries=0)
        with pytest.raises(JournalError):
            QueryJournal(max_entries=-3)

    def test_payload_round_trip_records_evictions(self):
        journal = QueryJournal(max_entries=2)
        self._fill(journal, 5)
        payload = journal.to_payload()
        assert payload["evicted"] == 3
        assert validate_journal_payload(payload) == []
        loaded = QueryJournal.from_payload(payload)
        assert loaded.evicted == 3
        assert loaded.next_seq == 5
        assert loaded.to_payload() == payload

    def test_validator_rejects_phantom_evictions(self):
        # tallies smaller than the records present cannot be explained
        # by eviction
        journal = QueryJournal(max_entries=2)
        self._fill(journal, 5)
        payload = json.loads(journal.to_json())
        payload["evicted"] = 7  # claims more missing than the tallies show
        problems = validate_journal_payload(payload)
        assert any("evicted" in p for p in problems)

    def test_validator_rejects_undeclared_shortfall(self):
        journal = QueryJournal(max_entries=2)
        self._fill(journal, 5)
        payload = json.loads(journal.to_json())
        del payload["evicted"]  # records are missing but none declared
        problems = validate_journal_payload(payload)
        assert problems


class TestServiceIntegration:
    def test_every_response_journalled(self, corpus, tenants, pool):
        journal = QueryJournal()
        journal.begin_window("run")
        requests = open_loop_requests(
            pool, tenants, offered_qps=2500, duration_s=0.04, seed=3
        )
        report = service_run(corpus, tenants, requests, journal)
        assert len(journal) == report.submitted
        assert journal.conserved()
        assert journal.windows() == ["run"]
        ok_records = [r for r in journal if r.outcome == "ok"]
        assert ok_records
        # OK records carry the pass's bottleneck stage and latency split
        for record in ok_records:
            assert record.stage != ""
            assert record.latency_s == pytest.approx(
                record.queue_s + record.service_s
            )

    def test_journal_matches_report_outcomes(self, corpus, tenants, pool):
        journal = QueryJournal()
        requests = open_loop_requests(
            pool, tenants, offered_qps=4000, duration_s=0.03, seed=4
        )
        report = service_run(corpus, tenants, requests, journal)
        counts = report.outcome_counts()
        journalled = {o: 0 for o in counts}
        for record in journal:
            journalled[record.outcome] += 1
        assert journalled == counts

    def test_direct_system_queries_journalled(self, corpus, pool):
        journal = QueryJournal()
        system = MithriLogSystem(journal=journal)
        system.ingest(corpus)
        system.query(pool[0], pool[1])
        assert len(journal) == 2
        assert all(r.batch_size == 2 for r in journal)
        assert all(r.tenant == "_direct" for r in journal)
        assert journal.conserved()


class TestSerialisation:
    def test_round_trip(self, corpus, tenants, pool, tmp_path):
        journal = QueryJournal(meta={"bench": "test"})
        journal.begin_window("w")
        requests = open_loop_requests(
            pool, tenants, offered_qps=1500, duration_s=0.03, seed=5
        )
        service_run(corpus, tenants, requests, journal)
        path = journal.write(tmp_path / "journal.json")
        loaded = load_journal(path)
        assert loaded.to_payload() == journal.to_payload()
        assert loaded.conserved()

    def test_validator_accepts_good_payload(self):
        journal = QueryJournal()
        journal.observe_direct(
            "q", latency_s=0.001, matches=1, stage="flash", completed_at_s=0.001
        )
        assert validate_journal_payload(journal.to_payload()) == []

    def test_validator_rejects_kind_mismatch(self):
        assert validate_journal_payload({"kind": "nope"}) != []
        assert not looks_like_journal([1, 2])

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda p: p.__setitem__("version", 99), "version"),
            (
                lambda p: p["records"][0].__setitem__("template", "ffff"),
                "template map",
            ),
            (
                lambda p: p["records"][0].__setitem__("stage", "gpu"),
                "unknown bottleneck stage",
            ),
            (
                lambda p: p["records"][0].__setitem__("latency_s", 9.0),
                "latency_s != queue_s + service_s",
            ),
            (
                lambda p: p["tenants"]["_direct"].__setitem__("submitted", 5),
                "conservation",
            ),
            (
                lambda p: p["tenants"]["_direct"].__setitem__("ok", 3),
                "tally",
            ),
            (
                lambda p: p["records"][0].__setitem__("mode", "psychic"),
                "unknown execution mode",
            ),
            (
                lambda p: p["records"][0].__setitem__(
                    "outcome", "approximated"
                ),
                "must be sampled",
            ),
            (
                lambda p: p["records"][0].__setitem__("mode", "sampled"),
                "sample_fraction",
            ),
        ],
    )
    def test_validator_catches_corruption(self, mutate, fragment):
        journal = QueryJournal()
        journal.observe_direct(
            "q", latency_s=0.001, matches=1, stage="flash", completed_at_s=0.001
        )
        payload = json.loads(journal.to_json())
        mutate(payload)
        problems = validate_journal_payload(payload)
        assert problems
        assert any(fragment in problem for problem in problems)

    def test_from_payload_refuses_corrupt(self):
        journal = QueryJournal()
        journal.observe_direct(
            "q", latency_s=0.001, matches=1, stage="flash", completed_at_s=0.001
        )
        payload = json.loads(journal.to_json())
        payload["records"][0]["outcome"] = "exploded"
        with pytest.raises(JournalError):
            QueryJournal.from_payload(payload)


class TestReplay:
    def test_replay_rebuilds_workload(self, corpus, tenants, pool):
        journal = QueryJournal()
        journal.begin_window("original")
        requests = open_loop_requests(
            pool, tenants, offered_qps=1200, duration_s=0.03, seed=6
        )
        service_run(corpus, tenants, requests, journal)
        replayed = replay_requests(journal)
        assert len(replayed) == len(requests)
        assert [r.arrival_s for r in replayed] == sorted(
            r.arrival_s for r in replayed
        )
        original = sorted(
            (r.tenant, str(r.query), r.priority, r.arrival_s)
            for r in requests
        )
        rebuilt = sorted(
            (r.tenant, str(r.query), r.priority, r.arrival_s)
            for r in replayed
        )
        assert rebuilt == original

    def test_replay_served_identically(self, corpus, tenants, pool):
        journal = QueryJournal()
        requests = open_loop_requests(
            pool, tenants, offered_qps=1200, duration_s=0.02, seed=7
        )
        first = service_run(corpus, tenants, requests, journal)
        second = service_run(
            corpus, tenants, replay_requests(journal), QueryJournal()
        )
        sig = lambda rep: tuple(  # noqa: E731
            (r.request.tenant, r.outcome.value, round(r.latency_s, 12))
            for r in rep.responses
        )
        assert sig(first) == sig(second)

    def overload_requests(self, pool, fraction=0.2):
        """A burst dense enough to trip the degrade-to-sampled path."""
        return [
            Request(
                tenant=f"tenant{i % 3}",
                query=pool[i % len(pool)],
                arrival_s=i * 1e-5,
                sample_fraction=fraction,
            )
            for i in range(40)
        ]

    def test_replay_preserves_the_sampled_mode(self, corpus, tenants, pool):
        journal = QueryJournal()
        requests = self.overload_requests(pool)
        service_run(corpus, tenants, requests, journal, max_backlog=4)
        sampled = [r for r in journal if r.mode == "sampled"]
        assert sampled, "overload burst produced no approximated answers"
        assert all(r.outcome == "approximated" for r in sampled)
        assert all(r.sample_fraction == 0.2 for r in sampled)
        # the opt-in survives even on records that settled exactly, so a
        # replayed workload re-offers the same eligibility
        replayed = replay_requests(journal)
        assert len(replayed) == len(requests)
        assert all(r.sample_fraction == 0.2 for r in replayed)

    def test_sampled_replay_served_identically(self, corpus, tenants, pool):
        journal = QueryJournal()
        first = service_run(
            corpus,
            tenants,
            self.overload_requests(pool),
            journal,
            max_backlog=4,
        )
        assert first.approximated > 0
        second = service_run(
            corpus,
            tenants,
            replay_requests(journal),
            QueryJournal(),
            max_backlog=4,
        )
        sig = lambda rep: tuple(  # noqa: E731
            (r.request.tenant, r.outcome.value, round(r.latency_s, 12))
            for r in rep.responses
        )
        assert sig(first) == sig(second)

    def test_window_filter(self):
        journal = QueryJournal()
        journal.begin_window("a")
        journal.observe_direct(
            "qa", latency_s=0.001, matches=0, stage="flash", completed_at_s=0.001
        )
        journal.begin_window("b")
        journal.observe_direct(
            "qb", latency_s=0.001, matches=0, stage="flash", completed_at_s=0.002
        )
        only_b = replay_requests(journal, windows=["b"])
        assert len(only_b) == 1
        assert str(only_b[0].query) == '("qb")'


class TestConservationProperty:
    _request_specs = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),  # tenant index
            st.integers(min_value=0, max_value=9),  # pool query index
            st.integers(min_value=0, max_value=2),  # priority
            st.sampled_from([None, 0.002, 0.05]),  # deadline_s
            st.floats(min_value=0.0, max_value=0.02, allow_nan=False),
            st.sampled_from([None, 0.2, 0.5]),  # sample_fraction opt-in
        ),
        min_size=1,
        max_size=20,
    )

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(specs=_request_specs)
    def test_journal_conserves_per_tenant(self, corpus, tenants, pool, specs):
        requests = [
            Request(
                tenant=f"tenant{t}",
                query=pool[q % len(pool)],
                priority=p,
                deadline_s=d,
                arrival_s=a,
                sample_fraction=f,
            )
            for t, q, p, d, a, f in specs
        ]
        journal = QueryJournal()
        service_run(corpus, tenants, requests, journal, max_backlog=3)
        assert journal.conserved()
        for tally in journal.tenant_tallies().values():
            assert (
                tally["ok"]
                + tally["rejected"]
                + tally["shed"]
                + tally["timed_out"]
                + tally["approximated"]
                == tally["submitted"]
            )
        assert validate_journal_payload(journal.to_payload()) == []

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        burst=st.integers(min_value=20, max_value=40),
        fraction=st.sampled_from([0.1, 0.3]),
    )
    def test_conserves_under_degrading_overload(
        self, corpus, tenants, pool, burst, fraction
    ):
        """A dense opted-in burst exercises the approximated outcome and
        conservation must still close the books."""
        requests = [
            Request(
                tenant=f"tenant{i % 3}",
                query=pool[i % len(pool)],
                arrival_s=i * 1e-5,
                sample_fraction=fraction,
            )
            for i in range(burst)
        ]
        journal = QueryJournal()
        report = service_run(corpus, tenants, requests, journal, max_backlog=3)
        assert report.approximated > 0
        assert journal.conserved()
        tally = {
            k: sum(t[k] for t in journal.tenant_tallies().values())
            for k in (
                "submitted",
                "ok",
                "rejected",
                "shed",
                "timed_out",
                "approximated",
            )
        }
        assert tally["approximated"] == report.approximated
        assert (
            tally["ok"]
            + tally["rejected"]
            + tally["shed"]
            + tally["timed_out"]
            + tally["approximated"]
            == tally["submitted"]
        )
        assert validate_journal_payload(journal.to_payload()) == []
