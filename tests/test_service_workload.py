"""Workload generation and end-to-end service properties.

The load-bearing properties, pinned with hypothesis over randomized
workloads:

- **conservation** — every submitted request receives exactly one
  outcome: ``ok + rejected + shed + timed_out == submitted`` per tenant;
- **determinism** — the same workload against an equivalent backend
  produces identical outcomes, latencies and match counts;
- **worker invariance** — outcomes are identical at any worker count.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.datasets.synthetic import generator_for
from repro.errors import QueryError
from repro.faults.injectors import ServiceFaultInjector
from repro.faults.schedules import AtOperationsSchedule
from repro.service import (
    ClosedLoopSource,
    Outcome,
    QueryService,
    Request,
    TenantConfig,
    estimate_capacity,
    make_tenants,
    open_loop_requests,
    query_pool,
    run_sweep,
    zipf_shares,
)
from repro.system.mithrilog import MithriLogSystem

LINES = 1200


@pytest.fixture(scope="module")
def corpus():
    return generator_for("Liberty2").generate(LINES)


@pytest.fixture(scope="module")
def backend(corpus):
    system = MithriLogSystem()
    system.ingest(corpus)
    return system


@pytest.fixture(scope="module")
def tenants():
    return make_tenants(3)


@pytest.fixture(scope="module")
def pool(corpus):
    return query_pool(corpus, max_queries=12, num_pairs=4)


def signature(report):
    """Backend-state-independent run fingerprint (relative times only)."""
    return tuple(
        (
            r.request.tenant,
            r.outcome.value,
            r.reason,
            round(r.latency_s, 12),
            r.matches,
            r.batch_size,
        )
        for r in report.responses
    )


class TestGenerators:
    def test_zipf_shares_normalised_and_skewed(self):
        shares = zipf_shares(4)
        assert sum(shares) == pytest.approx(1.0)
        assert shares == sorted(shares, reverse=True)
        with pytest.raises(QueryError):
            zipf_shares(0)

    def test_make_tenants_weights_track_shares(self):
        tenants = make_tenants(3)
        assert [t.name for t in tenants] == ["tenant0", "tenant1", "tenant2"]
        assert tenants[0].weight > tenants[1].weight > tenants[2].weight

    def test_query_pool_deterministic(self, corpus):
        a = query_pool(corpus, max_queries=8)
        b = query_pool(corpus, max_queries=8)
        assert [str(q) for q in a] == [str(q) for q in b]
        assert 0 < len(a) <= 8

    def test_open_loop_deterministic_and_sorted(self, pool, tenants):
        a = open_loop_requests(pool, tenants, offered_qps=500, duration_s=0.1, seed=9)
        b = open_loop_requests(pool, tenants, offered_qps=500, duration_s=0.1, seed=9)
        assert a == b
        stamps = [r.arrival_s for r in a]
        assert stamps == sorted(stamps)
        assert all(0 <= s < 0.1 for s in stamps)

    def test_open_loop_skew_favours_tenant0(self, pool, tenants):
        requests = open_loop_requests(
            pool, tenants, offered_qps=2000, duration_s=0.2, seed=1
        )
        by_tenant = {t.name: 0 for t in tenants}
        for request in requests:
            by_tenant[request.tenant] += 1
        assert by_tenant["tenant0"] > by_tenant["tenant2"]

    def test_closed_loop_bounds_total_requests(self, pool, tenants):
        source = ClosedLoopSource(pool, tenants, clients=2, max_requests=7)
        initial = source.initial_requests()
        assert len(initial) <= 7
        fed = len(initial)
        for response_stub in range(20):
            follow = source.on_complete(
                type(
                    "R", (), {"request": initial[0], "ok": True}
                )(),
                now_s=0.01 * response_stub,
            )
            fed += len(follow)
        assert fed == 7


class TestServiceEndToEnd:
    def test_ok_responses_carry_matches_and_batches(self, backend, tenants, pool):
        service = QueryService(backend, tenants)
        report = service.run(
            open_loop_requests(pool, tenants, offered_qps=300, duration_s=0.05, seed=2)
        )
        assert report.conserved()
        assert report.passes > 0
        oks = [r for r in report.responses if r.ok]
        assert oks
        assert all(r.batch_size >= 1 for r in oks)
        assert all(r.latency_s > 0 for r in oks)

    def test_batching_packs_across_tenants(self, backend, tenants, pool):
        # all arrivals at t=0: the first pass should carry several tenants
        requests = [
            Request(tenant=t.name, query=pool[i % len(pool)])
            for i, t in enumerate(tenants * 4)
        ]
        service = QueryService(backend, tenants)
        report = service.run(requests)
        assert report.conserved()
        assert report.passes < len(requests)  # batching happened
        multi = [r for r in report.responses if r.batch_size > 1]
        assert multi

    def test_overload_sheds_and_bounds_backlog(self, backend, tenants, pool):
        service = QueryService(backend, tenants, max_backlog=4)
        report = service.run(
            open_loop_requests(pool, tenants, offered_qps=8000, duration_s=0.05, seed=3)
        )
        counts = report.outcome_counts()
        assert counts["shed"] > 0
        assert report.conserved()

    def test_deadlines_time_out_under_slow_pass(self, backend, tenants, pool):
        injector = ServiceFaultInjector(
            slow_passes=AtOperationsSchedule([0]), slowdown=2000.0
        )
        requests = open_loop_requests(
            pool, tenants, offered_qps=2000, duration_s=0.02, seed=4,
            deadline_s=0.005,
        )
        service = QueryService(backend, tenants, fault_injector=injector)
        report = service.run(requests)
        counts = report.outcome_counts()
        assert counts["timed_out"] > 0
        assert report.conserved()
        assert injector.log.events  # the slow pass was recorded

    def test_compile_fault_rejects_explicitly(self, backend, tenants, pool):
        injector = ServiceFaultInjector(
            compile_rejects=AtOperationsSchedule([0, 1])
        )
        service = QueryService(backend, tenants, fault_injector=injector)
        report = service.run(
            [Request(tenant="tenant0", query=pool[0]) for _ in range(4)]
        )
        rejected = [r for r in report.responses if r.outcome is Outcome.REJECTED]
        assert len(rejected) == 2
        assert all(r.reason == "compile_fault" for r in rejected)
        assert report.conserved()

    def test_unknown_tenant_still_answered(self, backend, tenants, pool):
        service = QueryService(backend, tenants)
        report = service.run([Request(tenant="ghost", query=pool[0])])
        assert report.submitted == 1
        assert report.responses[0].reason == "unknown_tenant"
        assert report.conserved()

    def test_text_queries_coerced_at_front_door(self, backend, tenants):
        service = QueryService(backend, tenants)
        report = service.run(
            [Request(tenant="tenant0", query="FAILURE AND kernel:")]
        )
        assert report.responses[0].ok

    def test_cluster_backend(self, corpus, tenants, pool):
        from repro.system.cluster import MithriLogCluster

        cluster = MithriLogCluster(num_shards=2)
        cluster.ingest(corpus)
        service = QueryService(cluster, tenants)
        report = service.run(
            open_loop_requests(pool, tenants, offered_qps=200, duration_s=0.05, seed=5)
        )
        assert report.conserved()
        assert report.queries_served > 0

    def test_cluster_backend_refuses_approximate_mode(self, corpus, tenants):
        # sampled passes need the single-system sampled scan path; the
        # scatter-gather backend silently defaults the mode off, and
        # asking for it explicitly is a loud error
        from repro.system.cluster import MithriLogCluster

        cluster = MithriLogCluster(num_shards=2)
        cluster.ingest(corpus)
        assert not QueryService(cluster, tenants).admission.approx_on_overload
        with pytest.raises(QueryError):
            QueryService(cluster, tenants, approx_on_overload=True)


class TestDeterminismProperties:
    # strategies kept small: each example executes real accelerator passes
    _request_specs = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # tenant index (3 = ghost)
            st.integers(min_value=0, max_value=11),  # pool query index
            st.integers(min_value=0, max_value=2),  # priority
            st.sampled_from([None, 0.002, 0.05]),  # deadline_s
            st.floats(min_value=0.0, max_value=0.02, allow_nan=False),
        ),
        min_size=1,
        max_size=24,
    )

    def _build(self, specs, pool):
        names = ["tenant0", "tenant1", "tenant2", "ghost"]
        return [
            Request(
                tenant=names[t],
                query=pool[q % len(pool)],
                priority=p,
                deadline_s=d,
                arrival_s=a,
            )
            for t, q, p, d, a in specs
        ]

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(specs=_request_specs)
    def test_conserved_and_deterministic(self, corpus, tenants, pool, specs):
        requests = self._build(specs, pool)
        # Each run gets a freshly-ingested backend: determinism means
        # *equivalent initial conditions* produce identical outcomes. A
        # shared backend is not equivalent between runs — its clock has
        # advanced and its caches are warm, both of which legitimately
        # shift service times and can flip admission/batching decisions.
        def run_once():
            system = MithriLogSystem()
            system.ingest(corpus)
            return QueryService(system, tenants, max_backlog=6).run(requests)

        first = run_once()
        second = run_once()
        assert first.conserved() and second.conserved()
        assert signature(first) == signature(second)
        for stats in first.tenants.values():
            assert (
                stats.accepted + stats.rejected + stats.shed + stats.timed_out
                == stats.submitted
            )
        total = sum(s.submitted for s in first.tenants.values())
        assert total == len(requests)

    def test_worker_count_invariance(self, backend, tenants, pool):
        requests = open_loop_requests(
            pool, tenants, offered_qps=600, duration_s=0.05, seed=6,
            deadline_s=0.05,
        )
        runs = [
            QueryService(backend, tenants, max_backlog=8).run(
                requests, workers=workers
            )
            for workers in (1, 2)
        ]
        assert signature(runs[0]) == signature(runs[1])


class TestSweepHelpers:
    def test_capacity_and_sweep_records(self, corpus, tenants, pool):
        def factory():
            system = MithriLogSystem()
            system.ingest(corpus)
            return QueryService(system, tenants, max_backlog=16)

        capacity = estimate_capacity(factory, pool, tenants, probe_requests=12)
        assert capacity > 0
        points = run_sweep(
            factory, pool, tenants, capacity_qps=capacity,
            load_multiples=(0.5, 2.0), duration_s=0.03,
        )
        assert [p.load_multiple for p in points] == [0.5, 2.0]
        for point in points:
            record = point.record()
            assert record["bench"] == "service"
            assert record["config"].startswith("load-x")
            assert record["submitted"] > 0
