"""Tests for the HARE-like regex DFA engine."""

import re

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.regexdfa import (
    HareModel,
    RegexMatcher,
    RegexPredicate,
    escape_token,
)
from repro.errors import QueryParseError


class TestBasicMatching:
    def test_literal(self):
        m = RegexMatcher("FATAL")
        assert m.search(b"RAS KERNEL FATAL error")
        assert not m.search(b"RAS KERNEL INFO ok")

    def test_substring_semantics(self):
        # regexes match inside tokens - the capability token filters lack
        assert RegexMatcher("ERN").search(b"KERNEL")

    def test_alternation(self):
        m = RegexMatcher("cat|dog")
        assert m.search(b"hotdog stand")
        assert m.search(b"catalog")
        assert not m.search(b"bird")

    def test_star(self):
        m = RegexMatcher("ab*c")
        assert m.search(b"ac")
        assert m.search(b"abbbbc")
        assert not m.search(b"a-c")

    def test_plus(self):
        m = RegexMatcher("ab+c")
        assert not m.search(b"ac")
        assert m.search(b"abc")

    def test_optional(self):
        m = RegexMatcher("colou?r")
        assert m.search(b"color")
        assert m.search(b"colour")

    def test_dot_excludes_newline(self):
        m = RegexMatcher("a.c")
        assert m.search(b"abc")
        assert not m.search(b"a\nc")

    def test_char_class(self):
        m = RegexMatcher("err[0-9]+")
        assert m.search(b"err42")
        assert not m.search(b"errx")

    def test_negated_class(self):
        m = RegexMatcher("a[^0-9]c")
        assert m.search(b"abc")
        assert not m.search(b"a5c")

    def test_escapes(self):
        assert RegexMatcher(r"\d\d\d").search(b"port 443 open")
        assert RegexMatcher(r"a\.b").search(b"a.b")
        assert not RegexMatcher(r"a\.b").search(b"axb")
        assert RegexMatcher(r"\w+=\d+").search(b"code=102")

    def test_grouping(self):
        m = RegexMatcher("(ab)+c")
        assert m.search(b"ababc")
        assert not m.search(b"aac")

    def test_empty_pattern_matches_everything(self):
        assert RegexMatcher("a*").search(b"zzz")
        assert RegexMatcher("").search(b"")

    def test_malformed_patterns_rejected(self):
        for bad in ("(", "a)", "[", "a|*", "*a", "[z-a]"):
            with pytest.raises(QueryParseError):
                RegexMatcher(bad)

    def test_dfa_is_reasonably_small(self):
        m = RegexMatcher("(RAS|KERNEL) [A-Z]+ (INFO|FATAL)")
        assert m.dfa_states < 200


PATTERN_CORPUS = [
    "FATAL",
    "err[0-9]+",
    "(cat|dog)+",
    "ab*c?d",
    "k[a-f]*z",
    r"\w+:\d+",
    "x(y|z)*w",
    "[^ ]+@[^ ]+",
    "a.c.e",
    "(ab|ba)(ab|ba)*",
]


class TestAgainstPythonRe:
    @pytest.mark.parametrize("pattern", PATTERN_CORPUS)
    def test_known_patterns_agree(self, pattern):
        ours = RegexMatcher(pattern)
        ref = re.compile(pattern.encode())
        probes = [
            b"", b"FATAL", b"err123", b"catdogcat", b"abbcd", b"abd",
            b"kabcz", b"kz", b"user@host", b"a c e", b"abcde", b"axcxe",
            b"tag:42", b"xyzw", b"xw", b"ababab", b"ba", b"zzz",
        ]
        for probe in probes:
            assert ours.search(probe) == bool(ref.search(probe)), (pattern, probe)

    @given(
        st.sampled_from(PATTERN_CORPUS),
        st.binary(max_size=40),
    )
    @settings(max_examples=300)
    def test_random_inputs_agree(self, pattern, data):
        ours = RegexMatcher(pattern)
        ref = re.compile(pattern.encode())
        assert ours.search(data) == bool(ref.search(data))

    @given(
        st.lists(
            st.sampled_from(["a", "b", "ab", "a*", "b+", "(a|b)", "[ab]?", "."]),
            min_size=1,
            max_size=5,
        ),
        st.text(alphabet="ab\n x", max_size=12),
    )
    @settings(max_examples=300)
    def test_generated_patterns_agree(self, parts, text):
        pattern = "".join(parts)
        data = text.encode()
        ours = RegexMatcher(pattern)
        ref = re.compile(pattern.encode())
        assert ours.search(data) == bool(ref.search(data))


class TestRegexPredicate:
    def test_conjunction_with_negation(self):
        predicate = RegexPredicate.of(["failed"], ["pbs_mom:"])
        assert predicate.matches(b"job failed badly")
        assert not predicate.matches(b"job failed pbs_mom: cleanup")

    def test_matches_token_query_semantics_on_whole_tokens(self):
        from repro.core.query import parse_query

        query = parse_query("failed AND NOT pbs_mom:")
        predicate = RegexPredicate.of(
            [escape_token(b"failed")], [escape_token(b"pbs_mom:")]
        )
        lines = [
            b"job failed now",
            b"job failed pbs_mom: x",
            b"nothing here",
        ]
        for line in lines:
            assert predicate.matches(line) == query.matches_line(line)

    def test_substring_generality_difference(self):
        # 'fail' as regex matches inside 'failed'; the token filter doesn't
        from repro.core.query import parse_query

        predicate = RegexPredicate.of(["fail"])
        query = parse_query("fail")
        line = b"job failed"
        assert predicate.matches(line)
        assert not query.matches_line(line)

    def test_escape_token_handles_specials(self):
        token = b"a+b(c)[d]."
        m = RegexMatcher(escape_token(token))
        assert m.search(b"x a+b(c)[d]. y")
        assert not m.search(b"aab(c)[d]x")


class TestHareModel:
    def test_published_operating_point(self):
        model = HareModel()
        assert model.kluts_per_gbps == pytest.approx(137.5)
        assert model.scan_seconds(400_000_000) == pytest.approx(1.0)

    def test_mithrilog_efficiency_gap(self):
        from repro.hw.resources import PIPELINE

        model = HareModel()
        mithrilog = PIPELINE.luts / 1e3 / 3.2
        assert model.kluts_per_gbps / mithrilog > 5
