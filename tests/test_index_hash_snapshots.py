"""Tests for the two-hash in-memory table and snapshot index."""

import pytest

from repro.index.hashindex import HashIndexTable
from repro.index.snapshots import SnapshotIndex
from repro.index.storetree import NIL, TreeListStore
from repro.params import PAGE_BYTES, IndexParams, StorageParams
from repro.storage.flash import FlashArray


@pytest.fixture
def flash():
    return FlashArray(StorageParams(capacity_pages=8192))


@pytest.fixture
def store(flash):
    return TreeListStore(flash, PAGE_BYTES)


class TestHashIndexTable:
    def test_two_candidate_rows(self):
        table = HashIndexTable()
        rows = table.candidate_rows(b"kernel")
        assert len(rows) == 2

    def test_single_hash_configuration(self):
        table = HashIndexTable(IndexParams(num_hash_functions=1))
        assert len(table.candidate_rows(b"kernel")) == 1

    def test_insert_buffers_in_memory(self, store):
        table = HashIndexTable()
        table.insert(b"tok", 0, store)
        row = table.peek_row(table.choose_insert_row(b"tok"))
        assert row is not None
        assert store.leaves.nodes_written == 0

    def test_buffer_spills_at_sixteen(self, store):
        # single hash function so all pages land in one row
        table = HashIndexTable(IndexParams(num_hash_functions=1))
        for page in range(16):
            table.insert(b"tok", page, store)
        assert store.leaves.nodes_written == 1

    def test_root_persisted_after_256_pages(self, store):
        # 256 pages in one row = 16 full leaves = one persisted root
        table = HashIndexTable(IndexParams(num_hash_functions=1))
        for page in range(256):
            table.insert(b"tok", page, store)
        row = table.peek_row(table.candidate_rows(b"tok")[0])
        assert row is not None and row.head_root != NIL

    def test_two_hash_insert_splits_across_rows(self, store):
        # with two hash functions the same 16 pages split between two rows,
        # so neither buffer fills (the balancing Section 6.2 describes)
        table = HashIndexTable()
        for page in range(16):
            table.insert(b"tok", page, store)
        assert store.leaves.nodes_written == 0

    def test_duplicate_page_for_row_deduped(self, store):
        params = IndexParams(num_hash_functions=1)
        table = HashIndexTable(params)
        row_id = table.candidate_rows(b"tok")[0]
        table.insert(b"tok", 7, store)
        table.insert(b"tok", 7, store)
        assert table.peek_row(row_id).buffer == [7]

    def test_two_choice_balancing(self, store):
        # one very common token: its pages spread across both rows
        table = HashIndexTable()
        for page in range(0, 200, 2):
            table.insert(b"common", page, store)
            table.insert(b"other", page + 1, store)
        r0, r1 = table.candidate_rows(b"common")
        c0 = table.row(r0).total_pages
        c1 = table.row(r1).total_pages
        assert c0 > 0 and c1 > 0  # both rows received inserts

    def test_flush_all_persists_partials(self, store):
        table = HashIndexTable()
        table.insert(b"tok", 3, store)
        table.flush_all(store)
        rows = [table.row(r) for r in table.candidate_rows(b"tok")]
        assert any(r.head_root != NIL for r in rows)
        assert all(not r.buffer and not r.partial_root for r in rows)

    def test_memory_footprint_stays_small(self, store):
        table = HashIndexTable()
        for page in range(2000):
            table.insert(f"tok{page % 50}".encode(), page, store)
        # 50 tokens' worth of row state, each bounded by 16+16 entries
        assert table.memory_footprint_bytes() < 100 * (32 + 2) * 4

    def test_deterministic_hashing(self):
        assert HashIndexTable().candidate_rows(b"x") == HashIndexTable().candidate_rows(
            b"x"
        )

    def test_seed_changes_rows(self):
        tokens = [f"t{i}".encode() for i in range(20)]
        a = [HashIndexTable(seed=1).candidate_rows(t) for t in tokens]
        b = [HashIndexTable(seed=2).candidate_rows(t) for t in tokens]
        assert a != b


class TestSnapshotIndex:
    def test_threshold_gates_flush(self):
        snaps = SnapshotIndex(leaf_page_threshold=10)
        assert not snaps.should_flush(9)
        assert snaps.should_flush(10)

    def test_threshold_relative_to_last_flush(self):
        snaps = SnapshotIndex(leaf_page_threshold=10)
        snaps.record_flush(1.0, data_page_watermark=100, leaf_pages_created=10)
        assert not snaps.should_flush(15)
        assert snaps.should_flush(20)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SnapshotIndex(leaf_page_threshold=0)

    def test_timestamps_must_be_monotone(self):
        snaps = SnapshotIndex(leaf_page_threshold=1)
        snaps.record_flush(5.0, 10, 1)
        with pytest.raises(ValueError):
            snaps.record_flush(4.0, 20, 2)

    def test_page_range_unbounded_without_snapshots(self):
        snaps = SnapshotIndex(leaf_page_threshold=1)
        assert snaps.page_range_for_time(1.0, 2.0) == (0, None)

    def test_page_range_bounds(self):
        snaps = SnapshotIndex(leaf_page_threshold=1)
        snaps.record_flush(10.0, data_page_watermark=100, leaf_pages_created=1)
        snaps.record_flush(20.0, data_page_watermark=200, leaf_pages_created=2)
        snaps.record_flush(30.0, data_page_watermark=300, leaf_pages_created=3)
        low, high = snaps.page_range_for_time(15.0, 25.0)
        # everything before t=10 flush is certainly older than 15
        assert low == 100
        # first snapshot at/after 25 is t=30, watermark 300
        assert high == 300

    def test_page_range_conservative_for_exact_times(self):
        snaps = SnapshotIndex(leaf_page_threshold=1)
        snaps.record_flush(10.0, 100, 1)
        low, high = snaps.page_range_for_time(10.0, 10.0)
        assert low <= 100
        assert high is None or high >= 100

    def test_open_ended_ranges(self):
        snaps = SnapshotIndex(leaf_page_threshold=1)
        snaps.record_flush(10.0, 100, 1)
        assert snaps.page_range_for_time(None, None) == (0, None)
        low, high = snaps.page_range_for_time(None, 5.0)
        assert low == 0 and high == 100
