"""The incident flight recorder: capture, artifacts, validation."""

import json

import pytest

from repro.datasets.synthetic import generator_for
from repro.faults.injectors import ServiceFaultInjector
from repro.faults.schedules import AtOperationsSchedule
from repro.obs.journal import QueryJournal
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.recorder import (
    FlightRecorder,
    looks_like_incident_bundle,
    render_markdown,
    validate_incident_bundle,
    write_bundle,
)
from repro.obs.series import MetricSampler
from repro.obs.slo import SLO, SLOMonitor
from repro.service import (
    QueryService,
    make_tenants,
    open_loop_requests,
    query_pool,
)
from repro.system.mithrilog import MithriLogSystem


def twitchy_slo(**overrides):
    fields = dict(
        name="avail",
        objective="availability",
        target=0.9,
        fast_window_s=0.05,
        slow_window_s=0.25,
        burn_threshold=2.0,
        resolve_after_s=0.1,
    )
    fields.update(overrides)
    return SLO(**fields)


def synthetic_incident(journal=None, sampler=None, **recorder_kwargs):
    """Drive a monitor through an incident and return its recorder."""
    monitor = SLOMonitor([twitchy_slo()], interval_s=0.005, sampler=sampler)
    recorder = FlightRecorder(
        monitor, sampler=sampler, journal=journal, **recorder_kwargs
    )
    t = 0.0
    for _ in range(10):
        monitor.observe("t0", "ok", 0.001, now_s=t)
        monitor.evaluate(t)
        t += 0.005
    for _ in range(40):
        monitor.observe("t0", "shed", 0.0, now_s=t)
        monitor.evaluate(t)
        t += 0.005
    return recorder


class TestCapture:
    def test_fire_captures_one_bundle(self):
        recorder = synthetic_incident()
        assert len(recorder.bundles) == 1
        bundle = recorder.bundles[0]
        assert looks_like_incident_bundle(bundle)
        assert validate_incident_bundle(bundle) == []
        assert bundle["slo"]["name"] == "avail"
        assert bundle["alert"]["fired_at_s"] is not None
        assert bundle["journal"] == {"available": False}

    def test_incident_counter_increments(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            synthetic_incident()
            counter = registry.counter(
                "mithrilog_slo_incidents_recorded_total"
            )
            assert counter.value() == 1

    def test_sampler_series_windowed_into_bundle(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            registry.counter("mithrilog_demo_total").inc()
            sampler = MetricSampler(registry, interval_s=0.005)
            recorder = synthetic_incident(sampler=sampler)
        bundle = recorder.bundles[0]
        assert "series" in bundle
        window = bundle["window"]
        for series in bundle["series"]["series"]:
            for t_s, _ in series["points"]:
                assert window["start_s"] <= t_s <= window["end_s"]

    def test_journal_tail_restricted_to_window(self):
        journal = QueryJournal()
        for i in range(60):
            journal.note_submitted("t0")
            journal.observe_direct(
                "q",
                latency_s=0.001,
                matches=1,
                stage="flash",
                completed_at_s=i * 0.005,
                tenant="t0",
            )
        recorder = synthetic_incident(journal=journal)
        bundle = recorder.bundles[0]
        assert bundle["journal"]["available"]
        assert bundle["journal"]["records"]
        assert validate_incident_bundle(bundle) == []

    def test_bundle_json_serialisable(self):
        recorder = synthetic_incident()
        json.dumps(recorder.bundles[0])


class TestArtifacts:
    def test_write_bundle_deterministic_names(self, tmp_path):
        recorder = synthetic_incident()
        paths = write_bundle(recorder.bundles[0], tmp_path)
        assert [p.suffix for p in paths] == [".json", ".md"]
        again = write_bundle(recorder.bundles[0], tmp_path)
        assert paths == again  # same bundle, same file names

    def test_out_dir_writes_at_fire_time(self, tmp_path):
        recorder = synthetic_incident(out_dir=tmp_path)
        assert len(recorder.written) == 2
        payload = json.loads(recorder.written[0].read_text())
        assert validate_incident_bundle(payload) == []

    def test_markdown_mentions_the_essentials(self):
        recorder = synthetic_incident()
        text = render_markdown(recorder.bundles[0])
        assert "# Incident: `avail`" in text
        assert "Burn rates at fire" in text


class TestValidator:
    def make_bundle(self):
        return synthetic_incident().bundles[0]

    def test_rejects_kind_mismatch(self):
        assert validate_incident_bundle({"kind": "nope"})
        assert not looks_like_incident_bundle([1])

    def test_rejects_unfired_alert(self):
        bundle = self.make_bundle()
        del bundle["alert"]["fired_at_s"]
        assert any(
            "never fired" in p for p in validate_incident_bundle(bundle)
        )

    def test_rejects_subthreshold_burn(self):
        bundle = self.make_bundle()
        bundle["alert"]["burn_fast_at_fire"] = 0.1
        assert any(
            "burn" in p for p in validate_incident_bundle(bundle)
        )

    def test_rejects_record_outside_window(self):
        bundle = self.make_bundle()
        bundle["journal"] = {
            "available": True,
            "records": [{"completed_at_s": 1e9}],
        }
        assert any(
            "outside" in p for p in validate_incident_bundle(bundle)
        )

    def test_rejects_inverted_window(self):
        bundle = self.make_bundle()
        bundle["window"] = {"start_s": 2.0, "end_s": 1.0}
        assert any(
            "window" in p for p in validate_incident_bundle(bundle)
        )


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generator_for("Liberty2").generate(1500)

    def test_faulted_service_run_produces_valid_bundle(self, corpus, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            from repro.obs.expose import bootstrap_families

            bootstrap_families(registry)
            system = MithriLogSystem()
            system.ingest(corpus)
            tenants = make_tenants(3)
            pool = query_pool(corpus, max_queries=8, seed=0)
            journal = QueryJournal()
            injector = ServiceFaultInjector(
                slow_passes=AtOperationsSchedule(range(5, 40)),
                slowdown=8.0,
            )
            sampler = MetricSampler(registry, interval_s=0.005)
            monitor = SLOMonitor(
                [twitchy_slo()], interval_s=0.005, sampler=sampler
            )
            recorder = FlightRecorder(
                monitor,
                sampler=sampler,
                journal=journal,
                fault_logs=[injector.log],
                system=system,
                out_dir=tmp_path,
            )
            service = QueryService(
                system,
                tenants,
                max_backlog=8,
                journal=journal,
                monitor=monitor,
                fault_injector=injector,
            )
            requests = open_loop_requests(
                pool,
                tenants,
                offered_qps=700,
                duration_s=0.4,
                seed=0,
                deadline_s=0.05,
            )
            service.run(requests)
        fired = [a for a in monitor.alerts if a.fired_at_s is not None]
        assert fired, "fault injection should have tripped the SLO"
        assert recorder.bundles
        for bundle in recorder.bundles:
            assert validate_incident_bundle(bundle) == []
        # the slow template section names a real journal template
        bundle = recorder.bundles[0]
        slow = bundle.get("slow_template")
        if slow is not None:
            assert slow["template"] in journal.templates
            if "explain" in slow:
                from repro.obs.explain import looks_like_explain

                assert looks_like_explain(slow["explain"])
        assert recorder.written  # artifacts were written at fire time
