"""Tests for node pools and the linked list of trees (Section 6.1)."""

import pytest

from repro.errors import LogIndexError
from repro.index.storetree import (
    NIL,
    LeafNode,
    NodePool,
    RootNode,
    TreeListStore,
)
from repro.params import PAGE_BYTES, StorageParams
from repro.sim import SimClock
from repro.storage.flash import FlashArray


@pytest.fixture
def flash():
    return FlashArray(StorageParams(capacity_pages=4096))


@pytest.fixture
def store(flash):
    return TreeListStore(flash, PAGE_BYTES)


class TestNodeSerialisation:
    def test_leaf_roundtrip(self):
        leaf = LeafNode(addresses=(1, 2, 3))
        assert LeafNode.unpack(leaf.pack()).addresses == (1, 2, 3)

    def test_full_leaf_roundtrip(self):
        leaf = LeafNode(addresses=tuple(range(16)))
        assert LeafNode.unpack(leaf.pack()).addresses == tuple(range(16))

    def test_leaf_overflow_rejected(self):
        with pytest.raises(LogIndexError):
            LeafNode(addresses=tuple(range(17)))

    def test_root_roundtrip(self):
        root = RootNode(leaf_ids=(10, 20), next_root=99)
        again = RootNode.unpack(root.pack())
        assert again.leaf_ids == (10, 20)
        assert again.next_root == 99

    def test_root_nil_next(self):
        root = RootNode(leaf_ids=(1,), next_root=NIL)
        assert RootNode.unpack(root.pack()).next_root == NIL

    def test_root_node_padded_to_slot(self):
        assert len(RootNode(leaf_ids=(), next_root=NIL).pack()) == 128


class TestNodePool:
    def test_append_and_read_from_tail(self, flash):
        pool = NodePool(flash, node_bytes=64, page_bytes=PAGE_BYTES)
        node_id = pool.append(b"a" * 64)
        assert pool.read(node_id) == b"a" * 64
        assert pool.pages_spilled == 0  # still buffered

    def test_page_spills_when_full(self, flash):
        pool = NodePool(flash, node_bytes=64, page_bytes=PAGE_BYTES)
        ids = [pool.append(bytes([i]) * 64) for i in range(64)]  # exactly 1 page
        assert pool.pages_spilled == 1
        assert pool.read(ids[5]) == bytes([5]) * 64

    def test_read_across_spill_boundary(self, flash):
        pool = NodePool(flash, node_bytes=64, page_bytes=PAGE_BYTES)
        ids = [pool.append(bytes([i % 251]) * 64) for i in range(100)]
        for i, node_id in enumerate(ids):
            assert pool.read(node_id) == bytes([i % 251]) * 64

    def test_flush_pads_partial_page(self, flash):
        pool = NodePool(flash, node_bytes=64, page_bytes=PAGE_BYTES)
        node_id = pool.append(b"b" * 64)
        pool.flush()
        assert pool.pages_spilled == 1
        assert pool.read(node_id) == b"b" * 64
        # appends continue on a fresh page boundary
        next_id = pool.append(b"c" * 64)
        assert next_id == 64

    def test_unwritten_node_rejected(self, flash):
        pool = NodePool(flash, node_bytes=64, page_bytes=PAGE_BYTES)
        with pytest.raises(LogIndexError):
            pool.read(0)

    def test_wrong_node_size_rejected(self, flash):
        pool = NodePool(flash, node_bytes=64, page_bytes=PAGE_BYTES)
        with pytest.raises(LogIndexError):
            pool.append(b"short")

    def test_nondividing_page_size_rejected(self, flash):
        with pytest.raises(LogIndexError):
            NodePool(flash, node_bytes=72, page_bytes=PAGE_BYTES)

    def test_read_many_charges_each_page_once(self):
        def elapsed(read_batch: bool) -> float:
            flash = FlashArray(StorageParams(capacity_pages=4096))
            pool = NodePool(flash, node_bytes=64, page_bytes=PAGE_BYTES)
            ids = [pool.append(bytes([i]) * 64) for i in range(64)]
            clock = SimClock()
            if read_batch:
                pool.read_many(ids[:16], clock=clock)  # all on one page
            else:
                pool.read(ids[0], clock=clock)
            return clock.now

        # 16 nodes on one spilled page cost the same as a single node read
        assert elapsed(read_batch=True) == pytest.approx(elapsed(read_batch=False))

    def test_memory_footprint_small(self, flash):
        pool = NodePool(flash, node_bytes=64, page_bytes=PAGE_BYTES)
        for i in range(1000):
            pool.append(bytes([i % 251]) * 64)
        # tail (< 1 page) + 4 bytes per spilled page
        assert pool.memory_footprint_bytes < PAGE_BYTES + 4 * pool.pages_spilled + 64


class TestTreeListWalk:
    def _build_list(self, store, n_roots, leaves_per_root=16):
        head = NIL
        expected = []
        addr = 0
        for _ in range(n_roots):
            leaf_ids = []
            root_addrs = []
            for _ in range(leaves_per_root):
                addrs = list(range(addr, addr + 16))
                addr += 16
                leaf_ids.append(store.write_leaf(addrs))
                root_addrs.extend(addrs)
            head = store.write_root(leaf_ids, next_root=head)
            expected.append(root_addrs)
        return head, expected

    def test_single_root_walk(self, store):
        head, expected = self._build_list(store, n_roots=1)
        walk = store.walk(head)
        assert walk.addresses == expected[0]
        assert walk.root_visits == 1

    def test_multi_root_newest_first(self, store):
        head, expected = self._build_list(store, n_roots=3)
        walk = store.walk(head)
        assert walk.root_visits == 3
        # traversal order: newest root first
        assert walk.addresses == expected[2] + expected[1] + expected[0]

    def test_each_hop_yields_256_addresses(self, store):
        head, _ = self._build_list(store, n_roots=2)
        walk = store.walk(head)
        assert len(walk.addresses) == 2 * 256

    def test_walk_timing_amortises_leaves(self, store):
        # a full root's 16 leaves occupy 16*64=1KB: they share pages, so a
        # hop costs far less than 17 random accesses
        head, _ = self._build_list(store, n_roots=4)
        store.flush()
        clock = SimClock()
        store.walk(head, clock=clock)
        latency = store.leaves.flash.params.latency_s
        assert clock.now < 4 * 3 * latency + 0.01

    def test_cycle_detection(self, store):
        # hand-craft a self-referencing root
        leaf = store.write_leaf([1, 2, 3])
        root_id = store.write_root([leaf], next_root=0)  # points at itself
        with pytest.raises(LogIndexError):
            store.walk(root_id)
