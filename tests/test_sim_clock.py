"""Unit tests for the simulated clock."""

import pytest

from repro.sim import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(start=5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1.0)

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_advance_negative_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_to_future(self):
        clock = SimClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_advance_to_past_is_noop(self):
        clock = SimClock(start=10.0)
        clock.advance_to(3.0)
        assert clock.now == 10.0

    def test_cycles_to_seconds(self):
        clock = SimClock()
        assert clock.cycles_to_seconds(200_000_000, 200_000_000) == 1.0
        assert clock.cycles_to_seconds(100, 200) == 0.5

    def test_cycles_to_seconds_bad_clock(self):
        with pytest.raises(ValueError):
            SimClock().cycles_to_seconds(1, 0)

    def test_repr_mentions_time(self):
        assert "SimClock" in repr(SimClock())
