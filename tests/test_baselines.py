"""Tests for the software baseline engines."""

import pytest

from repro.baselines.grep import grep_indices, grep_lines
from repro.baselines.scandb import ScanDatabase
from repro.baselines.splunklike import SplunkLikeEngine
from repro.core.query import parse_query
from repro.datasets.synthetic import generator_for

LINES = [
    b"auth failure for root from 1.2.3.4",
    b"pbs_mom: job 17 spawned",
    b"job 18 failed with signal 11",
    b"RAS KERNEL INFO all ok",
    b"job 19 failed pbs_mom: cleanup",
] * 4


class TestGrep:
    def test_grep_lines(self):
        q = parse_query("failed")
        assert len(grep_lines(q, LINES)) == 8

    def test_grep_indices_in_order(self):
        q = parse_query("failed AND NOT pbs_mom:")
        idx = grep_indices(q, LINES)
        assert idx == [2, 7, 12, 17]


class TestScanDatabase:
    def test_matches_oracle(self):
        db = ScanDatabase(LINES)
        q = parse_query("failure OR spawned")
        assert db.execute(q).matching_indices == grep_indices(q, LINES)

    def test_scans_everything(self):
        db = ScanDatabase(LINES)
        result = db.execute(parse_query("failed"))
        assert result.lines_scanned == len(LINES)
        assert result.bytes_scanned == db.total_bytes

    def test_more_terms_cost_more_time(self):
        db = ScanDatabase(LINES)
        small = db.execute(parse_query("failed"))
        big = db.execute(parse_query(" OR ".join(f"t{i}" for i in range(40))))
        assert big.elapsed_s > small.elapsed_s
        assert big.effective_throughput(db.total_bytes) < small.effective_throughput(
            db.total_bytes
        )

    def test_cpu_bound_on_realistic_corpus(self):
        # the model must reproduce the paper's observation: CPU cost
        # dominates the 7 GB/s storage even for the simplest query
        lines = generator_for("Liberty2").generate(2000)
        db = ScanDatabase(lines)
        result = db.execute(parse_query("kernel:"))
        storage_time = db.total_bytes / db.cost_model.storage_bandwidth
        assert result.elapsed_s > storage_time

    def test_throughput_in_paper_band(self):
        # MonetDB singles land ~0.6-2.9 GB/s; 8-combos ~0.05-0.6 GB/s
        lines = generator_for("BGL2").generate(3000)
        db = ScanDatabase(lines)
        single = db.execute(parse_query("KERNEL AND INFO AND corrected"))
        gbps = single.effective_throughput(db.total_bytes) / 1e9
        assert 0.3 < gbps < 4.0
        combo = db.execute(
            parse_query(" OR ".join(f"(a{i} AND b{i} AND c{i} AND d{i} AND e{i})" for i in range(8)))
        )
        gbps8 = combo.effective_throughput(db.total_bytes) / 1e9
        assert gbps8 < gbps / 3


class TestSplunkLike:
    def test_matches_oracle(self):
        engine = SplunkLikeEngine(LINES, bucket_lines=4)
        q = parse_query("failed AND NOT pbs_mom:")
        assert engine.execute(q).matching_indices == grep_indices(q, LINES)

    def test_index_narrows_candidates(self):
        lines = generator_for("Liberty2").generate(4000)
        engine = SplunkLikeEngine(lines)
        rare = parse_query("panic:")
        result = engine.execute(rare)
        assert result.candidate_lines < len(lines)
        assert not result.full_scan

    def test_negative_only_query_scans_everything(self):
        engine = SplunkLikeEngine(LINES, bucket_lines=4)
        result = engine.execute(parse_query("NOT job"))
        assert result.full_scan
        assert result.candidate_lines == len(LINES)

    def test_amortization_divides_by_threads(self):
        engine = SplunkLikeEngine(LINES)
        result = engine.execute(parse_query("failed"))
        assert result.amortized_elapsed_s == pytest.approx(
            result.raw_elapsed_s / 12
        )

    def test_full_scan_slower_than_selective(self):
        lines = generator_for("Liberty2").generate(4000)
        engine = SplunkLikeEngine(lines)
        selective = engine.execute(parse_query("panic:"))
        negative = engine.execute(parse_query("NOT kernel:"))
        assert negative.amortized_elapsed_s > selective.amortized_elapsed_s

    def test_invalid_bucket_size(self):
        with pytest.raises(ValueError):
            SplunkLikeEngine(LINES, bucket_lines=0)

    def test_unknown_token_query_is_cheap(self):
        engine = SplunkLikeEngine(LINES, bucket_lines=4)
        result = engine.execute(parse_query("zzz-not-present"))
        assert result.matching_indices == []
        assert result.candidate_lines == 0
