"""Scan executor: worker-count invariance, batching, and determinism.

The parallel scan path must be indistinguishable from the serial one in
everything except host wall-clock: identical matched lines, identical
per-query counts, identical simulated stats, and — because flash access
stays in the main process in candidate order — an identical view of a
seeded fault schedule at any worker count.
"""

import pytest

from repro.core.query import parse_query
from repro.datasets.synthetic import generator_for
from repro.errors import QueryError
from repro.exec.executor import ScanExecutor, _partition_slices
from repro.faults import BernoulliSchedule, inject_page_faults
from repro.obs.tracing import SpanTracer
from repro.system.mithrilog import MithriLogSystem

SEED = 7
NUM_LINES = 3000

#: Simulated accounting that must not depend on the worker count.
STAT_FIELDS = (
    "pages_read",
    "bytes_from_flash",
    "bytes_decompressed",
    "bytes_to_host",
    "lines_seen",
    "lines_kept",
    "read_retries",
    "scan_time_s",
    "index_time_s",
)

QUERIES = [
    parse_query("session AND opened"),
    parse_query("root OR sshd"),
    parse_query("session AND NOT root"),
]


@pytest.fixture(scope="module")
def corpus():
    return list(generator_for("Liberty2", seed=SEED).iter_lines(NUM_LINES))


def build_system(corpus, cache_pages=0):
    system = MithriLogSystem(seed=SEED, cache_pages=cache_pages)
    system.ingest(corpus)
    return system


def assert_same_outcome(a, b):
    assert a.matched_lines == b.matched_lines
    assert a.per_query_counts == b.per_query_counts
    for field in STAT_FIELDS:
        assert getattr(a.stats, field) == getattr(b.stats, field), field


class TestWorkerInvariance:
    def test_parallel_matches_serial(self, corpus):
        serial = build_system(corpus).scan_all(*QUERIES)
        assert serial.matched_lines  # the workload is not vacuous
        parallel_system = build_system(corpus)
        try:
            parallel = parallel_system.scan_all(*QUERIES, workers=3)
        finally:
            parallel_system.close()
        assert_same_outcome(serial, parallel)

    def test_indexed_query_with_workers(self, corpus):
        serial = build_system(corpus).query(QUERIES[0])
        parallel_system = build_system(corpus)
        try:
            parallel = parallel_system.query(QUERIES[0], workers=2)
        finally:
            parallel_system.close()
        assert_same_outcome(serial, parallel)

    def test_seeded_fault_schedule_is_worker_invariant(self, corpus):
        outcomes = []
        for workers in (1, 3):
            system = build_system(corpus)
            inject_page_faults(
                system, read_errors=BernoulliSchedule(0.1, seed=SEED), seed=SEED
            )
            try:
                outcomes.append(system.scan_all(*QUERIES, workers=workers))
            finally:
                system.close()
        serial, parallel = outcomes
        assert serial.stats.read_retries > 0  # the schedule actually fired
        assert_same_outcome(serial, parallel)

    def test_limit_forces_serial_path(self, corpus):
        system = build_system(corpus)
        limited = system.query(QUERIES[0], use_index=False, limit=5, workers=4)
        assert len(limited.matched_lines) == 5
        assert not system._scan_executors  # no pool was ever created

    def test_invalid_worker_count(self, corpus):
        system = build_system(corpus)
        with pytest.raises(QueryError):
            system.query(QUERIES[0], workers=0)


class TestBatching:
    def test_batched_counts_match_individual_scans(self, corpus):
        system = build_system(corpus)
        batched = system.scan_all(*QUERIES)
        individual = [build_system(corpus).scan_all(q) for q in QUERIES]
        assert batched.per_query_counts == [
            len(o.matched_lines) for o in individual
        ]
        # the union of per-query matches is exactly the batched data
        union = set()
        for outcome in individual:
            union.update(outcome.matched_lines)
        assert set(batched.matched_lines) == union

    def test_batch_emits_one_span_per_query(self, corpus):
        system = build_system(corpus)
        system.tracer = SpanTracer(clock=system.clock)
        outcome = system.scan_all(*QUERIES)
        roots = [
            s for s in system.tracer.spans if s.name.startswith("query[")
        ]
        assert len(roots) == len(QUERIES)
        counts = {s.name: s.args["matches"] for s in roots}
        for i, count in enumerate(outcome.per_query_counts):
            assert counts[f"query[{i}]"] == count
        # the shared stage spans are still present, once
        names = [s.name for s in system.tracer.spans]
        for stage in ("index_lookup", "flash_read", "decompress", "filter",
                      "host_transfer"):
            assert names.count(stage) == 1

    def test_single_query_keeps_merged_span_shape(self, corpus):
        system = build_system(corpus)
        system.tracer = SpanTracer(clock=system.clock)
        system.scan_all(QUERIES[0])
        names = {s.name for s in system.tracer.spans if s.category == "query"}
        assert "query" in names
        assert not any(n.startswith("query[") for n in names)


class TestExecutorUnit:
    def test_partition_slices_cover_contiguously(self):
        for n in (0, 1, 2, 7, 16, 100):
            for workers in (1, 2, 3, 8):
                slices = _partition_slices(n, workers)
                assert len(slices) == min(workers, n) or n == 0
                flat = [i for start, stop in slices for i in range(start, stop)]
                assert flat == list(range(n))

    def test_executor_rejects_zero_workers(self):
        with pytest.raises(QueryError):
            ScanExecutor(0)

    def test_close_is_idempotent(self):
        executor = ScanExecutor(2)
        executor.close()
        executor.close()


class TestObservability:
    def test_scan_gauges_track_last_scan(self, corpus):
        from repro.obs.metrics import get_registry

        registry = get_registry()
        if registry is None:
            pytest.skip("metrics disabled")
        system = build_system(corpus)
        try:
            system.scan_all(*QUERIES, workers=2)
        finally:
            system.close()
        workers = registry.gauge("mithrilog_scan_workers", "")
        batch = registry.gauge("mithrilog_scan_batch_queries", "")
        assert workers.value() == 2
        assert batch.value() == len(QUERIES)
