"""Unit tests for bandwidth accounting."""

import pytest

from repro.sim import BandwidthMeter, LinkModel, SimClock


class TestBandwidthMeter:
    def test_empty_meter_reports_zero(self):
        assert BandwidthMeter().bytes_per_second() == 0.0

    def test_rate_computation(self):
        meter = BandwidthMeter()
        meter.record(1_000_000_000, 1.0)
        assert meter.bytes_per_second() == pytest.approx(1e9)
        assert meter.gigabytes_per_second() == pytest.approx(1.0)

    def test_accumulation_across_samples(self):
        meter = BandwidthMeter()
        meter.record(100, 1.0)
        meter.record(300, 1.0)
        assert meter.total_bytes == 400
        assert meter.samples == 2
        assert meter.bytes_per_second() == pytest.approx(200.0)

    def test_merge(self):
        a, b = BandwidthMeter(), BandwidthMeter()
        a.record(100, 1.0)
        b.record(200, 1.0)
        a.merge(b)
        assert a.total_bytes == 300
        assert a.total_seconds == 2.0

    def test_negative_inputs_rejected(self):
        meter = BandwidthMeter()
        with pytest.raises(ValueError):
            meter.record(-1, 1.0)
        with pytest.raises(ValueError):
            meter.record(1, -1.0)

    def test_reset(self):
        meter = BandwidthMeter()
        meter.record(100, 1.0)
        meter.reset()
        assert meter.total_bytes == 0
        assert meter.bytes_per_second() == 0.0


class TestLinkModel:
    def test_transfer_seconds_includes_latency(self):
        link = LinkModel(bandwidth=1000, latency_s=0.5)
        assert link.transfer_seconds(1000) == pytest.approx(1.5)

    def test_zero_byte_transfer_pays_latency_only(self):
        link = LinkModel(bandwidth=1000, latency_s=0.25)
        assert link.transfer_seconds(0) == pytest.approx(0.25)

    def test_transfers_serialise(self):
        link = LinkModel(bandwidth=1000)
        done1 = link.transfer(500, start_time=0.0)
        done2 = link.transfer(500, start_time=0.0)  # issued while busy
        assert done1 == pytest.approx(0.5)
        assert done2 == pytest.approx(1.0)

    def test_idle_gap_not_charged(self):
        link = LinkModel(bandwidth=1000)
        link.transfer(500, start_time=0.0)
        done = link.transfer(500, start_time=10.0)
        assert done == pytest.approx(10.5)

    def test_transfer_on_advances_clock(self):
        clock = SimClock()
        link = LinkModel(bandwidth=100)
        link.transfer_on(clock, 50)
        assert clock.now == pytest.approx(0.5)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LinkModel(bandwidth=0)
        with pytest.raises(ValueError):
            LinkModel(bandwidth=1, latency_s=-1)
        with pytest.raises(ValueError):
            LinkModel(bandwidth=1).transfer_seconds(-1)

    def test_meter_tracks_utilised_rate(self):
        link = LinkModel(bandwidth=1000)
        link.transfer(1000, start_time=0.0)
        assert link.meter.bytes_per_second() == pytest.approx(1000.0)

    def test_reset_clears_busy_horizon(self):
        link = LinkModel(bandwidth=1000)
        link.transfer(1000, start_time=0.0)
        link.reset()
        assert link.busy_until == 0.0
        assert link.meter.total_bytes == 0
