"""Tests for the hardware tokenizer model (Figure 4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tokenizer import (
    Tokenizer,
    TokenWord,
    reassemble_tokens,
    split_tokens,
)

PAPER_LINE = b"R24-M0-NC-I: J18-U01 RAS APP FATAL directory"


class TestSplitTokens:
    def test_basic_split(self):
        assert split_tokens(b"RAS KERNEL INFO") == [b"RAS", b"KERNEL", b"INFO"]

    def test_tabs_are_delimiters(self):
        assert split_tokens(b"a\tb c") == [b"a", b"b", b"c"]

    def test_runs_of_delimiters_collapse(self):
        assert split_tokens(b"a   b\t\tc") == [b"a", b"b", b"c"]

    def test_trailing_newline_stripped(self):
        assert split_tokens(b"a b\n") == [b"a", b"b"]

    def test_empty_line(self):
        assert split_tokens(b"") == []
        assert split_tokens(b"\n") == []
        assert split_tokens(b"   \n") == []

    def test_punctuation_stays_attached(self):
        assert split_tokens(b"pbs_mom: failed") == [b"pbs_mom:", b"failed"]


class TestTokenizer:
    def test_paper_example_words(self):
        words = Tokenizer().tokenize_line(PAPER_LINE)
        tokens = [t for t, _ in reassemble_tokens(iter(words))]
        assert tokens == [
            b"R24-M0-NC-I:",
            b"J18-U01",
            b"RAS",
            b"APP",
            b"FATAL",
            b"directory",
        ]

    def test_words_are_datapath_sized(self):
        for word in Tokenizer().tokenize_line(PAPER_LINE):
            assert len(word.data) == 16

    def test_short_tokens_zero_padded(self):
        words = Tokenizer().tokenize_line(b"RAS")
        assert words[0].data == b"RAS" + b"\0" * 13
        assert words[0].useful_bytes == 3

    def test_long_token_spans_words(self):
        token = b"x" * 35  # 3 words on a 16-byte datapath
        words = Tokenizer().tokenize_line(token)
        assert len(words) == 3
        assert [w.last_of_token for w in words] == [False, False, True]
        assert words[2].useful_bytes == 3

    def test_last_of_line_only_on_final_word(self):
        words = Tokenizer().tokenize_line(b"a b c")
        flags = [w.last_of_line for w in words]
        assert flags == [False, False, True]

    def test_empty_line_emits_one_flagged_word(self):
        words = Tokenizer().tokenize_line(b"")
        assert len(words) == 1
        assert words[0].last_of_line
        assert words[0].useful_bytes == 0
        assert words[0].data == b"\0" * 16

    def test_all_delimiter_line_emits_one_flagged_word(self):
        words = Tokenizer().tokenize_line(b"   \t ")
        assert len(words) == 1
        assert words[0].last_of_line

    def test_token_index_increments(self):
        words = Tokenizer().tokenize_line(b"a bb ccc")
        assert [w.token_index for w in words] == [0, 1, 2]

    def test_multiword_token_shares_index(self):
        words = Tokenizer().tokenize_line(b"%s next" % (b"y" * 20))
        assert [w.token_index for w in words] == [0, 0, 1]

    def test_custom_datapath_width(self):
        words = Tokenizer(datapath_bytes=4).tokenize_line(b"abcdef gh")
        assert [w.data for w in words] == [b"abcd", b"ef\0\0", b"gh\0\0"]

    def test_invalid_datapath_rejected(self):
        with pytest.raises(ValueError):
            Tokenizer(datapath_bytes=0)

    def test_ingest_cycles_two_bytes_per_cycle(self):
        tok = Tokenizer()
        assert tok.ingest_cycles(b"abcd") == 3  # 5 bytes incl newline -> 3
        assert tok.ingest_cycles(b"") == 1

    def test_ingest_cycles_invalid_rate(self):
        with pytest.raises(ValueError):
            Tokenizer().ingest_cycles(b"x", bytes_per_cycle=0)


class TestReassembly:
    def test_mid_token_stream_rejected(self):
        words = Tokenizer().tokenize_line(b"x" * 20)
        with pytest.raises(ValueError):
            list(reassemble_tokens(iter(words[:1])))

    @given(
        st.lists(
            st.binary(min_size=1, max_size=40).filter(
                lambda t: not any(d in t for d in b" \t\n")
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=150)
    def test_roundtrip_property(self, tokens):
        line = b" ".join(tokens)
        words = Tokenizer().tokenize_line(line)
        rebuilt = [t for t, _ in reassemble_tokens(iter(words))]
        assert rebuilt == tokens

    @given(st.binary(max_size=120))
    @settings(max_examples=150)
    def test_reassembly_matches_split_tokens(self, line):
        words = Tokenizer().tokenize_line(line)
        rebuilt = [t for t, _ in reassemble_tokens(iter(words)) if t]
        assert rebuilt == split_tokens(line)

    @given(st.binary(max_size=120))
    @settings(max_examples=100)
    def test_exactly_one_last_of_line(self, line):
        words = Tokenizer().tokenize_line(line)
        assert sum(1 for w in words if w.last_of_line) == 1
        assert words[-1].last_of_line


class TestTokenWord:
    def test_useful_bytes_bounded(self):
        with pytest.raises(ValueError):
            TokenWord(
                data=b"ab",
                last_of_token=True,
                last_of_line=True,
                token_index=0,
                useful_bytes=5,
            )
