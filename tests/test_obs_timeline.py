"""Utilization timelines: occupancy series, counter tracks, gauges.

The timeline module is a pure function of span data, so most tests run
on hand-built spans with known busy intervals; the integration tests pin
the end-to-end contract — a traced query exports counter tracks that the
trace validator accepts, and publishes busy-fraction gauges whose
bottleneck resource reads 1.0.
"""

import pytest

from repro.core.query import parse_query
from repro.datasets.synthetic import generator_for
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.timeline import (
    busy_fraction,
    busy_intervals,
    chrome_counter_events,
    occupancy_series,
    trace_window,
    utilization_summary,
)
from repro.obs.tracing import SpanTracer, TraceError, validate_chrome_trace
from repro.system.mithrilog import MithriLogSystem

SEED = 7


def spans_from(*intervals):
    """Build spans on given ``(track, start, duration)`` triples."""
    tracer = SpanTracer()
    for i, (track, start, duration) in enumerate(intervals):
        tracer.record(f"s{i}", start, duration, track=track)
    return tracer.spans


class TestBusyIntervals:
    def test_merges_overlapping_and_adjacent(self):
        spans = spans_from(
            ("flash", 0.0, 1.0), ("flash", 0.5, 1.0), ("flash", 1.5, 0.5),
            ("flash", 3.0, 1.0),
        )
        assert busy_intervals(spans, "flash") == [(0.0, 2.0), (3.0, 4.0)]

    def test_zero_duration_spans_contribute_nothing(self):
        spans = spans_from(("flash", 1.0, 0.0))
        assert busy_intervals(spans, "flash") == []

    def test_other_tracks_excluded(self):
        spans = spans_from(("flash", 0.0, 1.0), ("host", 0.0, 5.0))
        assert busy_intervals(spans, "flash") == [(0.0, 1.0)]


class TestBusyFraction:
    def test_known_fraction_over_full_window(self):
        # flash busy 1s of the 4s extent set by the host span
        spans = spans_from(("flash", 0.0, 1.0), ("host", 0.0, 4.0))
        assert busy_fraction(spans, "flash") == pytest.approx(0.25)
        assert busy_fraction(spans, "host") == pytest.approx(1.0)

    def test_explicit_window_clips(self):
        spans = spans_from(("flash", 0.0, 2.0))
        assert busy_fraction(spans, "flash", window=(1.0, 3.0)) == pytest.approx(0.5)

    def test_empty_spans(self):
        assert busy_fraction([], "flash") == 0.0
        assert trace_window([]) is None


class TestOccupancySeries:
    def test_strictly_increasing_timestamps(self):
        spans = spans_from(
            ("query", 0.0, 2.0), ("query", 1.0, 2.0), ("query", 1.0, 0.5),
        )
        series = occupancy_series(spans, "query")
        timestamps = [ts for ts, _ in series]
        assert timestamps == sorted(set(timestamps))
        assert series[0] == (0.0, 1)
        assert series[-1][1] == 0  # back to idle at the end

    def test_equal_levels_collapse(self):
        # two abutting spans: occupancy stays 1 across the boundary, so
        # the boundary emits no sample
        spans = spans_from(("flash", 0.0, 1.0), ("flash", 1.0, 1.0))
        assert occupancy_series(spans, "flash") == [(0.0, 1), (2.0, 0)]


class TestChromeCounterEvents:
    def test_tracks_named_and_strictly_increasing(self):
        spans = spans_from(
            ("flash", 0.0, 1.0), ("flash", 2.0, 1.0), ("host", 0.0, 4.0),
        )
        events = chrome_counter_events(spans)
        assert events, "resource tracks must produce counter samples"
        assert {e["name"] for e in events} == {"util:flash", "util:host"}
        by_track: dict = {}
        for event in events:
            assert event["ph"] == "C"
            previous = by_track.get(event["name"])
            assert previous is None or event["ts"] > previous
            by_track[event["name"]] = event["ts"]

    def test_non_resource_tracks_excluded_by_default(self):
        spans = spans_from(("query", 0.0, 1.0))
        assert chrome_counter_events(spans) == []


class TestValidatorCounterRules:
    def base_trace(self):
        return {
            "traceEvents": [
                {"ph": "X", "pid": 0, "tid": 1, "name": "q", "ts": 0, "dur": 5},
            ]
        }

    def test_accepts_increasing_samples(self):
        trace = self.base_trace()
        trace["traceEvents"] += [
            {"ph": "C", "pid": 0, "name": "util:flash", "ts": 0, "args": {"busy": 1}},
            {"ph": "C", "pid": 0, "name": "util:flash", "ts": 5, "args": {"busy": 0}},
        ]
        assert validate_chrome_trace(trace) == 1

    def test_rejects_overlapping_samples_on_one_track(self):
        trace = self.base_trace()
        trace["traceEvents"] += [
            {"ph": "C", "pid": 0, "name": "util:flash", "ts": 5, "args": {"busy": 1}},
            {"ph": "C", "pid": 0, "name": "util:flash", "ts": 5, "args": {"busy": 0}},
        ]
        with pytest.raises(TraceError, match="overlapping counter samples"):
            validate_chrome_trace(trace)

    def test_same_ts_on_distinct_tracks_is_fine(self):
        trace = self.base_trace()
        trace["traceEvents"] += [
            {"ph": "C", "pid": 0, "name": "util:flash", "ts": 5, "args": {"busy": 1}},
            {"ph": "C", "pid": 0, "name": "util:host", "ts": 5, "args": {"busy": 0}},
            {"ph": "C", "pid": 1, "name": "util:flash", "ts": 5, "args": {"busy": 0}},
        ]
        assert validate_chrome_trace(trace) == 1

    def test_counter_event_requires_ts(self):
        trace = self.base_trace()
        trace["traceEvents"].append(
            {"ph": "C", "pid": 0, "name": "util:flash", "args": {"busy": 1}}
        )
        with pytest.raises(TraceError, match="missing ts"):
            validate_chrome_trace(trace)


@pytest.fixture(scope="module")
def traced_query():
    system = MithriLogSystem(seed=SEED)
    system.tracer = SpanTracer(clock=system.clock)
    system.ingest(list(generator_for("Liberty2", seed=SEED).iter_lines(2000)))
    outcome = system.scan_all(parse_query("session"))
    return system, outcome


class TestEndToEnd:
    def test_traced_query_exports_counter_tracks(self, traced_query):
        system, _ = traced_query
        trace = system.tracer.to_chrome_trace(utilization=True)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert counters
        assert validate_chrome_trace(trace) >= 5
        # without the flag the export is unchanged from before
        plain = system.tracer.to_chrome_trace()
        assert not [e for e in plain["traceEvents"] if e["ph"] == "C"]

    def test_write_chrome_trace_utilization(self, traced_query, tmp_path):
        system, _ = traced_query
        path = system.tracer.write_chrome_trace(
            tmp_path / "util.json", utilization=True
        )
        assert validate_chrome_trace(path) >= 5

    def test_utilization_summary_bottleneck_is_saturated(self, traced_query):
        system, outcome = traced_query
        query_spans = [
            s for s in system.tracer.spans if s.category == "query"
        ]
        summary = utilization_summary(query_spans)
        stats = outcome.stats
        # each resource's busy fraction over the scan window matches the
        # stage-time arithmetic (the window includes the index walk)
        window = stats.elapsed_s
        for stage in ("flash", "decompress", "filter", "host"):
            expected = stats.breakdown[stage] / window
            assert summary[stage] == pytest.approx(expected), stage

    def test_busy_fraction_gauges_published(self):
        with use_registry(MetricsRegistry()) as registry:
            system = MithriLogSystem(seed=SEED)
            system.ingest(
                list(generator_for("Liberty2", seed=SEED).iter_lines(1500))
            )
            outcome = system.scan_all(parse_query("session"))
            gauge = registry.gauge(
                "mithrilog_util_busy_fraction", "", labelnames=("resource",)
            )
            stats = outcome.stats
            bottleneck = stats.bottleneck
            assert gauge.value(resource=bottleneck) == pytest.approx(1.0)
            for stage in ("flash", "decompress", "filter", "host"):
                expected = stats.breakdown[stage] / stats.scan_time_s
                assert gauge.value(resource=stage) == pytest.approx(expected)
