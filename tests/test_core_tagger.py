"""Tests for wire-speed template tagging."""

import pytest

from repro.core.query import Query, Term
from repro.core.tagger import TemplateTagger
from repro.errors import QueryError
from repro.templates.fttree import FTTree, FTTreeParams


def figure7_corpus():
    lines = []
    lines += [b"A B"] * 10
    lines += [b"A C D"] * 6
    lines += [b"A C D E"] * 4
    return lines


@pytest.fixture
def tree():
    return FTTree.from_lines(figure7_corpus(), FTTreeParams(prune_threshold=8))


class TestTaggerBasics:
    def test_empty_templates_rejected(self):
        with pytest.raises(QueryError):
            TemplateTagger([])

    def test_multi_intersection_query_rejected(self):
        bad = Query.single("A") | Query.single("B")
        with pytest.raises(QueryError):
            TemplateTagger([(0, bad)])

    def test_single_template_tagging(self):
        tagger = TemplateTagger([(7, Query.single("ERROR"))])
        assert tagger.tag_line(b"an ERROR happened") == 7
        assert tagger.tag_line(b"all fine") is None

    def test_most_specific_template_wins(self):
        broad = Query.single("A")
        narrow = Query.single("A", "B")
        tagger = TemplateTagger([(0, broad), (1, narrow)])
        assert tagger.tag_line(b"A alone") == 0
        assert tagger.tag_line(b"A B together") == 1

    def test_specificity_tie_breaks_to_lower_id(self):
        q1 = Query.single("A", "X")
        q2 = Query.single("A", "Y")
        tagger = TemplateTagger([(5, q1), (2, q2)])
        assert tagger.tag_line(b"A X Y") == 2

    def test_negative_terms_respected(self):
        query = Query.single(Term("A"), Term("B", negative=True))
        tagger = TemplateTagger([(0, query)])
        assert tagger.tag_line(b"A C") == 0
        assert tagger.tag_line(b"A B") is None


class TestMultiPass:
    def test_passes_respect_flag_pair_budget(self):
        templates = [(i, Query.single(f"tok{i}")) for i in range(20)]
        tagger = TemplateTagger(templates)
        assert tagger.num_passes == 3  # ceil(20 / 8)
        assert tagger.num_templates == 20

    def test_templates_beyond_first_pass_still_tag(self):
        templates = [(i, Query.single(f"tok{i}")) for i in range(20)]
        tagger = TemplateTagger(templates)
        assert tagger.tag_line(b"x tok17 y") == 17

    def test_specificity_compared_across_passes(self):
        templates = [(i, Query.single(f"pad{i}")) for i in range(8)]
        templates.append((99, Query.single("pad0", "extra")))  # second pass
        tagger = TemplateTagger(templates)
        assert tagger.num_passes == 2
        assert tagger.tag_line(b"pad0 extra") == 99


class TestAgainstTreeClassification:
    def test_agrees_with_fttree_on_figure7(self, tree):
        tagger = TemplateTagger.from_tree(tree)
        for line in figure7_corpus():
            expected = tree.classify_line(line)
            got = tagger.tag_line(line)
            assert got == (expected.template_id if expected else None), line

    def test_histogram_matches_supports(self, tree):
        tagger = TemplateTagger.from_tree(tree)
        hist = tagger.histogram(figure7_corpus())
        by_tokens = {t.tokens: t for t in tree.templates}
        assert hist[by_tokens[(b"A", b"B")].template_id] == 10
        assert hist[by_tokens[(b"A", b"C", b"D")].template_id] == 6
        assert hist[by_tokens[(b"A", b"C", b"D", b"E")].template_id] == 4

    def test_synthetic_corpus_high_agreement(self):
        from repro.datasets.synthetic import generator_for

        lines = generator_for("BGL2").generate(600)
        tree = FTTree.from_lines(
            lines, FTTreeParams(max_depth=10, prune_threshold=32, max_doc_frequency=0.9)
        )
        tagger = TemplateTagger.from_tree(tree)
        agree = 0
        total = 0
        for line in lines[:200]:
            expected = tree.classify_line(line)
            got = tagger.tag_line(line)
            total += 1
            if got == (expected.template_id if expected else None):
                agree += 1
        assert agree / total > 0.85

    def test_tag_lines_shape(self, tree):
        tagger = TemplateTagger.from_tree(tree)
        tagged = tagger.tag_lines([b"A B", b"unknown"])
        assert tagged[0].template_id is not None
        assert tagged[1].template_id is None
        assert tagged[0].line == b"A B"
