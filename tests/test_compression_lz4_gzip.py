"""Tests for the LZ4-block-format and gzip baselines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.gziplike import GzipCompressor
from repro.compression.lz4like import LZ4LikeCompressor
from repro.errors import CompressedFormatError

LINE = b"Jun 14 15:16:01 combo sshd(pam_unix)[19939]: authentication failure\n"


class TestLZ4RoundTrip:
    def test_empty(self):
        codec = LZ4LikeCompressor()
        assert codec.decompress(codec.compress(b"")) == b""

    def test_tiny_inputs(self):
        codec = LZ4LikeCompressor()
        for size in range(1, 20):
            data = b"ab" * size
            assert codec.decompress(codec.compress(data)) == data

    def test_log_corpus(self):
        codec = LZ4LikeCompressor()
        data = LINE * 300
        compressed = codec.compress(data)
        assert codec.decompress(compressed) == data
        assert len(compressed) < len(data) / 5

    def test_long_literal_runs(self):
        import random

        rng = random.Random(11)
        data = bytes(rng.randrange(256) for _ in range(5000))
        codec = LZ4LikeCompressor()
        assert codec.decompress(codec.compress(data)) == data

    def test_long_match_runs(self):
        codec = LZ4LikeCompressor()
        data = b"A" * 100_000
        compressed = codec.compress(data)
        assert codec.decompress(compressed) == data
        assert len(compressed) < 500

    def test_overlapping_matches(self):
        codec = LZ4LikeCompressor()
        data = b"abcabcabcabcabcabcabcabcabcabcabcabc" * 10
        assert codec.decompress(codec.compress(data)) == data

    @given(st.binary(max_size=4096))
    @settings(max_examples=150)
    def test_roundtrip_arbitrary(self, data):
        codec = LZ4LikeCompressor()
        assert codec.decompress(codec.compress(data)) == data


class TestLZ4Malformed:
    def test_empty_stream_rejected(self):
        with pytest.raises(CompressedFormatError):
            LZ4LikeCompressor().decompress(b"")

    def test_bad_offset_rejected(self):
        # token: 0 literals + match; offset 0xFFFF into empty history
        stream = bytes([0x00, 0xFF, 0xFF])
        with pytest.raises(CompressedFormatError):
            LZ4LikeCompressor().decompress(stream)

    def test_zero_offset_rejected(self):
        stream = bytes([0x10, ord("a"), 0x00, 0x00])
        with pytest.raises(CompressedFormatError):
            LZ4LikeCompressor().decompress(stream)

    def test_truncated_literals_rejected(self):
        stream = bytes([0x50, ord("a")])  # claims 5 literals, has 1
        with pytest.raises(CompressedFormatError):
            LZ4LikeCompressor().decompress(stream)


class TestGzip:
    def test_roundtrip(self):
        codec = GzipCompressor()
        data = LINE * 100
        assert codec.decompress(codec.compress(data)) == data

    def test_best_ratio_of_family(self):
        from repro.compression import (
            LZ4LikeCompressor,
            LZAHCompressor,
            LZRW1Compressor,
            compression_ratio,
        )

        data = LINE * 500
        gzip_ratio = compression_ratio(GzipCompressor(), data)
        for other in (LZ4LikeCompressor(), LZAHCompressor(), LZRW1Compressor()):
            assert gzip_ratio >= compression_ratio(other, data)

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            GzipCompressor(level=10)

    def test_malformed_stream_rejected(self):
        with pytest.raises(CompressedFormatError):
            GzipCompressor().decompress(b"not deflate data")

    @given(st.binary(max_size=2000))
    @settings(max_examples=50)
    def test_roundtrip_arbitrary(self, data):
        codec = GzipCompressor()
        assert codec.decompress(codec.compress(data)) == data


class TestCompressionRatioHelper:
    def test_empty_input_ratio_one(self):
        from repro.compression import compression_ratio

        assert compression_ratio(GzipCompressor(), b"") == 1.0

    def test_ratio_above_one_for_logs(self):
        from repro.compression import compression_ratio

        assert compression_ratio(GzipCompressor(), LINE * 50) > 5.0
