"""Property tests for the live SLO engine.

Two load-bearing invariants, pinned with hypothesis over randomized
service workloads (with and without injected faults):

1. **determinism** — identical seeds and traffic produce identical
   alert timelines, transition for transition;
2. **budget reconciliation** — the monitor's error-budget arithmetic
   agrees with the query journal's intake tallies: every in-scope
   settled event the journal counted is an event the monitor counted.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.datasets.synthetic import generator_for
from repro.faults.injectors import ServiceFaultInjector
from repro.faults.schedules import AtOperationsSchedule
from repro.obs.journal import QueryJournal
from repro.obs.slo import SLO, SLOMonitor
from repro.service import (
    QueryService,
    make_tenants,
    open_loop_requests,
    query_pool,
)
from repro.system.mithrilog import MithriLogSystem


@pytest.fixture(scope="module")
def corpus():
    return generator_for("Liberty2").generate(1200)


@pytest.fixture(scope="module")
def tenants():
    return make_tenants(3)


@pytest.fixture(scope="module")
def pool(corpus):
    return query_pool(corpus, max_queries=8, num_pairs=2)


def make_slos():
    return [
        SLO(
            name="avail",
            objective="availability",
            target=0.9,
            fast_window_s=0.05,
            slow_window_s=0.2,
            burn_threshold=2.0,
            resolve_after_s=0.1,
        ),
        SLO(
            name="lat",
            objective="latency",
            target=0.9,
            latency_threshold_s=0.02,
            fast_window_s=0.05,
            slow_window_s=0.2,
            burn_threshold=2.0,
            resolve_after_s=0.1,
        ),
    ]


def run_once(corpus, tenants, requests, fault_window):
    """One fresh service run; returns (monitor, journal, report)."""
    system = MithriLogSystem()
    system.ingest(corpus)
    injector = None
    if fault_window is not None:
        injector = ServiceFaultInjector(
            slow_passes=AtOperationsSchedule(
                range(fault_window[0], fault_window[1])
            ),
            slowdown=8.0,
        )
    journal = QueryJournal()
    monitor = SLOMonitor(make_slos(), interval_s=0.005)
    service = QueryService(
        system,
        tenants,
        max_backlog=6,
        journal=journal,
        monitor=monitor,
        fault_injector=injector,
    )
    report = service.run(requests)
    return monitor, journal, report


workload = st.tuples(
    st.integers(min_value=0, max_value=40),  # traffic seed
    st.sampled_from([400, 900, 1800]),  # offered qps
    st.sampled_from([None, (2, 20), (10, 60)]),  # slow-pass window
)


class TestDeterminism:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(spec=workload)
    def test_same_seed_same_alert_timeline(self, corpus, tenants, pool, spec):
        seed, qps, fault_window = spec
        requests = open_loop_requests(
            pool,
            tenants,
            offered_qps=qps,
            duration_s=0.1,
            seed=seed,
            deadline_s=0.04,
        )
        first, _, _ = run_once(corpus, tenants, requests, fault_window)
        second, _, _ = run_once(corpus, tenants, requests, fault_window)
        assert first.timeline() == second.timeline()
        assert [a.to_dict() for a in first.alerts] == [
            a.to_dict() for a in second.alerts
        ]


class TestBudgetReconciliation:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(spec=workload)
    def test_monitor_counts_match_journal_tallies(
        self, corpus, tenants, pool, spec
    ):
        seed, qps, fault_window = spec
        requests = open_loop_requests(
            pool,
            tenants,
            offered_qps=qps,
            duration_s=0.1,
            seed=seed,
            deadline_s=0.04,
        )
        monitor, journal, report = run_once(
            corpus, tenants, requests, fault_window
        )
        tallies = journal.tenant_tallies()
        settled = sum(
            t["ok"] + t["rejected"] + t["shed"] + t["timed_out"]
            for t in tallies.values()
        )
        bad = settled - sum(t["ok"] for t in tallies.values())
        # availability objective, tenant "*": every settled event is in
        # scope, non-OK outcomes consume budget
        budget = monitor.budget("avail")
        assert budget["total_events"] == settled == report.submitted
        assert budget["bad_events"] == bad
        # latency objective only scopes OK responses
        lat = monitor.budget("lat")
        assert lat["total_events"] == sum(t["ok"] for t in tallies.values())
        # any fired alert froze a budget snapshot consistent with the
        # final tallies (monotone counts: a snapshot cannot exceed them)
        for alert in monitor.alerts:
            if alert.fired_at_s is None:
                continue
            slo_budget = monitor.budget(alert.slo)
            assert alert.budget_total_events <= slo_budget["total_events"]
            assert alert.budget_bad_events <= slo_budget["bad_events"]
