"""Unit tests for the event queue."""

import pytest

from repro.sim import EventQueue, SimClock


class TestEventQueue:
    def test_empty_queue_step_returns_none(self):
        assert EventQueue().step() is None

    def test_events_dispatch_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule_at(2.0, lambda: order.append("b"))
        queue.schedule_at(1.0, lambda: order.append("a"))
        queue.schedule_at(3.0, lambda: order.append("c"))
        queue.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_dispatch_in_schedule_order(self):
        queue = EventQueue()
        order = []
        for name in "abc":
            queue.schedule_at(1.0, lambda n=name: order.append(n))
        queue.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        queue = EventQueue()
        queue.schedule_at(4.5, lambda: None)
        queue.run()
        assert queue.clock.now == 4.5

    def test_schedule_in_past_rejected(self):
        queue = EventQueue(SimClock(start=10.0))
        with pytest.raises(ValueError):
            queue.schedule_at(5.0, lambda: None)

    def test_schedule_after_relative(self):
        queue = EventQueue(SimClock(start=10.0))
        queue.schedule_after(2.0, lambda: None)
        queue.run()
        assert queue.clock.now == 12.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule_after(-1.0, lambda: None)

    def test_events_scheduled_during_dispatch_run(self):
        queue = EventQueue()
        order = []

        def first():
            order.append(1)
            queue.schedule_after(1.0, lambda: order.append(2))

        queue.schedule_at(1.0, first)
        dispatched = queue.run()
        assert order == [1, 2]
        assert dispatched == 2

    def test_run_until_stops_early(self):
        queue = EventQueue()
        hits = []
        queue.schedule_at(1.0, lambda: hits.append(1))
        queue.schedule_at(5.0, lambda: hits.append(5))
        queue.run(until=2.0)
        assert hits == [1]
        assert len(queue) == 1
