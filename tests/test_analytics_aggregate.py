"""Tests for result-set aggregation."""

import pytest

from repro.analytics.aggregate import (
    aggregate_matches,
    extract_fields,
    host_of,
    matches_over_time,
)
from repro.datasets.synthetic import generator_for


class TestFieldExtraction:
    def test_host_of_hpc4_line(self):
        line = b"- 1117838570 2005.06.03 ln257 Jun 3 ... sshd: msg"
        assert host_of(line) == b"ln257"

    def test_host_of_short_line(self):
        assert host_of(b"too short") is None

    def test_extract_key_values(self):
        line = b"sshd: auth failure rhost=1.2.3.4 user=root code=17"
        fields = extract_fields(line)
        assert fields[b"rhost"] == b"1.2.3.4"
        assert fields[b"user"] == b"root"
        assert fields[b"code"] == b"17"

    def test_malformed_pairs_ignored(self):
        fields = extract_fields(b"a= =b c = d plain")
        assert fields == {}

    def test_last_occurrence_wins(self):
        assert extract_fields(b"k=1 k=2")[b"k"] == b"2"


class TestTimeSeries:
    def test_bucketing(self):
        lines = [
            b"- 1000000000 d h one",
            b"- 1000000030 d h two",
            b"- 1000000070 d h three",
        ]
        series = matches_over_time(lines, bucket_s=60.0)
        assert series is not None
        assert series.counts == (2, 1)
        assert series.peak_bucket() == 0

    def test_no_epochs_returns_none(self):
        assert matches_over_time([b"plain text line"]) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            matches_over_time([], bucket_s=0)


class TestAggregateReport:
    @pytest.fixture(scope="class")
    def matches(self):
        lines = generator_for("Liberty2").generate(3000)
        return [ln for ln in lines if b"sshd" in ln]

    def test_totals_and_hosts(self, matches):
        report = aggregate_matches(matches)
        assert report.total == len(matches)
        assert report.top_hosts
        assert all(host.startswith(b"ln") for host, _count in report.top_hosts)

    def test_field_tabulation(self, matches):
        report = aggregate_matches(matches, fields=(b"rhost", b"user"))
        assert set(report.top_fields).issubset({b"rhost", b"user"})

    def test_auto_field_discovery(self, matches):
        report = aggregate_matches(matches, top_k=3)
        assert len(report.top_fields) <= 3

    def test_render(self, matches):
        text = aggregate_matches(matches).render()
        assert "matching lines" in text
        assert "top hosts:" in text

    def test_series_present_for_hpc4_lines(self, matches):
        report = aggregate_matches(matches)
        assert report.series is not None
        assert report.series.total == len(matches)

    def test_validation(self):
        with pytest.raises(ValueError):
            aggregate_matches([], top_k=0)

    def test_end_to_end_with_query(self):
        from repro.core.query import parse_query
        from repro.system.mithrilog import MithriLogSystem

        lines = generator_for("Liberty2").generate(2000)
        system = MithriLogSystem()
        system.ingest(lines)
        outcome = system.query(parse_query("Failed AND password"))
        report = aggregate_matches(outcome.matched_lines, fields=(b"user",))
        assert report.total == len(outcome.matched_lines)
