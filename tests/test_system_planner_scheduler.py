"""Tests for the query planner, scheduler and ingest cost model."""

import pytest

from repro.baselines.grep import grep_lines
from repro.core.query import Query, parse_query
from repro.datasets.synthetic import generator_for
from repro.system.mithrilog import MithriLogSystem
from repro.system.planner import QueryPlanner
from repro.system.scheduler import QueryScheduler


@pytest.fixture(scope="module")
def corpus():
    # large enough that the index-vs-scan crossover favours the index for
    # selective queries with real margin, not by a few microseconds (the
    # planner correctly prefers scanning tiny stores: two 100 microsecond
    # posting fetches outweigh a 70-page scan, and near the crossover the
    # decision is legitimately sensitive to page-packing details)
    return generator_for("Liberty2").generate(40_000)


@pytest.fixture(scope="module")
def system(corpus):
    sys = MithriLogSystem()
    sys.ingest(corpus)
    return sys


@pytest.fixture(scope="module")
def small_corpus():
    return generator_for("Liberty2").generate(2000)


@pytest.fixture(scope="module")
def small_system(small_corpus):
    sys = MithriLogSystem()
    sys.ingest(small_corpus)
    return sys


class TestPlanner:
    def test_selective_query_uses_index(self, system):
        plan = QueryPlanner(system).plan(parse_query("panic: AND BUG"))
        assert plan.use_index
        assert plan.estimated_selectivity < 0.5
        assert "narrows" in plan.reason

    def test_negative_only_query_scans(self, system):
        plan = QueryPlanner(system).plan(parse_query("NOT kernel:"))
        assert not plan.use_index
        assert plan.estimated_candidate_pages == plan.total_pages

    def test_universal_token_query_scans(self, system):
        # 'kernel:' rows accumulate a large share of all pages
        plan = QueryPlanner(system).plan(parse_query("kernel:"))
        assert plan.estimated_selectivity > 0.5

    def test_estimate_is_an_upper_bound(self, system):
        planner = QueryPlanner(system)
        query = parse_query("panic: AND BUG")
        estimated = planner.estimate_candidates(query)
        actual = len(system.index.candidate_pages(query).pages)
        assert actual <= estimated

    def test_execute_returns_correct_results(self, system, corpus):
        planner = QueryPlanner(system)
        for expr in ("panic:", "NOT kernel:", "session AND opened"):
            query = parse_query(expr)
            plan, outcome = planner.execute(query)
            expected = grep_lines(query, corpus)
            assert sorted(outcome.matched_lines) == sorted(expected), expr

    def test_planned_path_not_slower_than_both(self, system):
        planner = QueryPlanner(system)
        query = parse_query("panic: AND BUG")
        plan, outcome = planner.execute(query)
        other = system.query(query, use_index=not plan.use_index)
        assert outcome.stats.elapsed_s <= other.stats.elapsed_s * 1.5


class TestScheduler:
    def test_eight_singles_fit_one_pass(self, small_system):
        queries = [Query.single(f"tok{i}") for i in range(8)]
        groups = QueryScheduler(small_system).pack(queries)
        assert len(groups) == 1

    def test_nine_singles_need_two_passes(self, small_system):
        queries = [Query.single(f"tok{i}") for i in range(9)]
        groups = QueryScheduler(small_system).pack(queries)
        assert len(groups) == 2

    def test_mixed_sizes_pack_tightly(self, small_system):
        # 3-set + 3-set + 2-set = exactly one pass of 8
        q3a = parse_query("a1 OR a2 OR a3")
        q3b = parse_query("b1 OR b2 OR b3")
        q2 = parse_query("c1 OR c2")
        groups = QueryScheduler(small_system).pack([q3a, q3b, q2])
        assert len(groups) == 1

    def test_unpackable_query_runs_alone(self, small_system):
        big = Query.of(
            *[
                __import__("repro.core.query", fromlist=["IntersectionSet"])
                .IntersectionSet.of(f"t{i}")
                for i in range(8)
            ]
        )
        single = Query.single("extra")
        groups = QueryScheduler(small_system).pack([big, single])
        assert len(groups) == 2

    def test_results_match_serial_execution(self, small_system, small_corpus):
        queries = [
            parse_query("session AND opened"),
            parse_query("panic:"),
            parse_query("sshd AND NOT Failed"),
        ]
        run = QueryScheduler(small_system).run(queries)
        for query, count in zip(queries, run.per_query_counts):
            assert count == len(grep_lines(query, small_corpus))

    def test_batching_beats_serial_makespan(self, small_system):
        queries = [Query.single(f"token-{i}") for i in range(8)]
        scheduler = QueryScheduler(small_system)
        run = scheduler.run(queries, use_index=False)
        serial = scheduler.serial_makespan(queries, use_index=False)
        assert run.passes == 1
        assert run.makespan_s < serial / 4

    def test_empty_queue_rejected(self, small_system):
        with pytest.raises(ValueError):
            QueryScheduler(small_system).run([])


class TestIngestCostModel:
    def test_report_carries_timing(self, small_corpus):
        fresh = MithriLogSystem()
        report = fresh.ingest(small_corpus)
        assert report.elapsed_s > 0
        assert report.postings_inserted > 0
        assert report.bottleneck in ("storage", "compress", "host")
        assert set(report.breakdown) == {"storage", "compress", "host"}

    def test_index_is_not_the_bottleneck(self, small_corpus):
        # the Section 6 design claim: the index keeps up with the
        # accelerator-side bandwidth
        fresh = MithriLogSystem()
        report = fresh.ingest(small_corpus)
        assert report.host_time_s < max(
            report.storage_time_s, report.compress_time_s
        )

    def test_ingest_bandwidth_scale(self, small_corpus):
        fresh = MithriLogSystem()
        report = fresh.ingest(small_corpus)
        # bounded by the accelerator compressors: <= 12.8 GB/s
        assert 0 < report.ingest_bytes_per_sec <= 12.8e9
