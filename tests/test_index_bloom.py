"""Tests for the per-page Bloom-filter index."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.query import parse_query
from repro.core.tokenizer import split_tokens
from repro.errors import LogIndexError
from repro.index.bloom import BloomFilter, BloomParams, PageBloomIndex


class TestBloomFilter:
    def test_added_tokens_always_found(self):
        bloom = BloomFilter()
        for token in (b"alpha", b"beta", b"pbs_mom:"):
            bloom.add(token)
        assert b"alpha" in bloom
        assert b"beta" in bloom
        assert b"pbs_mom:" in bloom

    def test_absent_tokens_usually_missing(self):
        bloom = BloomFilter()
        for i in range(50):
            bloom.add(f"tok{i}".encode())
        false_hits = sum(
            1 for i in range(1000) if f"absent{i}".encode() in bloom
        )
        assert false_hits < 50  # ~FPR at 50 items in 2048 bits is tiny

    def test_fpr_estimate_monotone(self):
        params = BloomParams()
        assert params.false_positive_rate(0) == 0.0
        assert params.false_positive_rate(10) < params.false_positive_rate(500)

    def test_params_validation(self):
        with pytest.raises(LogIndexError):
            BloomParams(bits=1000)  # not a power of two
        with pytest.raises(LogIndexError):
            BloomParams(hashes=0)

    def test_memory_accounting(self):
        assert BloomFilter(BloomParams(bits=2048)).memory_bytes == 256

    @given(st.sets(st.binary(min_size=1, max_size=20), max_size=60))
    @settings(max_examples=60)
    def test_no_false_negatives_property(self, tokens):
        bloom = BloomFilter()
        for token in tokens:
            bloom.add(token)
        assert all(token in bloom for token in tokens)


class TestPageBloomIndex:
    PAGES = {
        0: [b"RAS", b"KERNEL", b"INFO"],
        1: [b"RAS", b"APP", b"FATAL"],
        2: [b"job", b"failed", b"pbs_mom:"],
        3: [b"job", b"failed"],
    }

    def build(self):
        index = PageBloomIndex()
        for addr in sorted(self.PAGES):
            index.index_page(addr, self.PAGES[addr])
        return index

    def test_superset_per_token(self):
        index = self.build()
        assert {0, 1}.issubset(index.lookup_token(b"RAS"))
        assert {2, 3}.issubset(index.lookup_token(b"failed"))

    def test_candidate_pages_query(self):
        index = self.build()
        pages = index.candidate_pages(parse_query("job AND pbs_mom:"))
        assert 2 in pages

    def test_negative_only_full_scan(self):
        index = self.build()
        pages = index.candidate_pages(parse_query("NOT job"))
        assert pages == sorted(self.PAGES)

    def test_out_of_order_rejected(self):
        index = self.build()
        with pytest.raises(LogIndexError):
            index.index_page(1, [b"x"])

    def test_memory_proportional_to_pages(self):
        index = self.build()
        assert index.memory_footprint_bytes() == 4 * 256

    def test_fpr_reporting(self):
        index = self.build()
        assert 0 <= index.mean_false_positive_rate() < 0.01

    def test_superset_on_real_corpus(self):
        from repro.datasets.synthetic import generator_for

        lines = generator_for("BGL2").generate(600)
        index = PageBloomIndex()
        page_lines: dict[int, list[bytes]] = {}
        for addr in range(0, 60):
            chunk = lines[addr * 10 : (addr + 1) * 10]
            page_lines[addr] = chunk
            index.index_page(addr, [t for ln in chunk for t in split_tokens(ln)])
        query = parse_query("KERNEL AND FATAL")
        candidates = set(index.candidate_pages(query))
        truly = {
            addr
            for addr, chunk in page_lines.items()
            if any(query.matches_line(ln) for ln in chunk)
        }
        assert truly.issubset(candidates)
