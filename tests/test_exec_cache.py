"""Decompressed-page cache: LRU behaviour, invalidation, corruption guard.

The cache may only ever change host wall-clock time. These tests pin the
ways it could silently change *results* instead: stale entries after a
page rewrite or compaction, wrongly-clean decodes of corrupted payloads,
and unbounded growth.
"""

import pytest

from repro.compression.arena import DecodeArena
from repro.compression.lzah import LZAHCompressor
from repro.core.query import parse_query
from repro.datasets.synthetic import generator_for
from repro.errors import ReadRetryExhaustedError
from repro.exec.cache import PageCache, payload_fingerprint
from repro.system.mithrilog import MithriLogSystem


class TestPageCacheUnit:
    def test_miss_then_hit(self):
        cache = PageCache(4)
        assert cache.get(0, 1, "lzah", b"payload") is None
        cache.put(0, 1, "lzah", b"payload", b"decoded text")
        assert cache.get(0, 1, "lzah", b"payload") == b"decoded text"
        assert cache.hits == 1 and cache.misses == 1

    def test_fingerprint_mismatch_is_a_miss(self):
        cache = PageCache(4)
        cache.put(0, 1, "lzah", b"payload", b"decoded")
        # same page, different stored bytes (rewritten or corrupted copy)
        assert cache.get(0, 1, "lzah", b"payloae") is None
        assert cache.get(0, 1, "lzah", b"payload\x00") is None

    def test_codec_mismatch_is_a_miss(self):
        cache = PageCache(4)
        cache.put(0, 1, ("lzah", "v1"), b"payload", b"decoded")
        assert cache.get(0, 1, ("lzah", "v2"), b"payload") is None

    def test_devices_are_namespaced(self):
        cache = PageCache(4)
        cache.put(0, 1, "lzah", b"payload", b"device zero")
        assert cache.get(1, 1, "lzah", b"payload") is None

    def test_lru_eviction_order(self):
        cache = PageCache(2)
        cache.put(0, 1, "c", b"p1", b"d1")
        cache.put(0, 2, "c", b"p2", b"d2")
        assert cache.get(0, 1, "c", b"p1") == b"d1"  # 1 is now most recent
        cache.put(0, 3, "c", b"p3", b"d3")  # evicts 2
        assert cache.get(0, 2, "c", b"p2") is None
        assert cache.get(0, 1, "c", b"p1") == b"d1"
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_invalidate_drops_only_that_page(self):
        cache = PageCache(4)
        cache.put(0, 1, "c", b"p1", b"d1")
        cache.put(0, 2, "c", b"p2", b"d2")
        cache.invalidate(0, 1)
        assert cache.get(0, 1, "c", b"p1") is None
        assert cache.get(0, 2, "c", b"p2") == b"d2"
        cache.invalidate(0, 99)  # unknown address: no-op

    def test_zero_capacity_disables(self):
        cache = PageCache(0)
        cache.put(0, 1, "c", b"p", b"d")
        assert len(cache) == 0
        assert cache.get(0, 1, "c", b"p") is None

    def test_get_or_decode_decodes_once(self):
        cache = PageCache(4)
        calls = []

        def decode(payload):
            calls.append(payload)
            return payload.upper()

        assert cache.get_or_decode(0, 1, "c", b"abc", decode) == b"ABC"
        assert cache.get_or_decode(0, 1, "c", b"abc", decode) == b"ABC"
        assert calls == [b"abc"]

    def test_clear(self):
        cache = PageCache(4)
        cache.put(0, 1, "c", b"p", b"d")
        cache.clear()
        assert len(cache) == 0

    def test_payload_fingerprint_sensitivity(self):
        assert payload_fingerprint(b"abc") == payload_fingerprint(b"abc")
        assert payload_fingerprint(b"abc") != payload_fingerprint(b"abd")
        assert payload_fingerprint(b"abc") != payload_fingerprint(b"abcd")


class TestArenaReuseGuard:
    """A recycled decode-arena buffer must never leak into the cache.

    The vectorized scan decodes every page into one reusable arena; if a
    view of that buffer were stored in the cache, the *next* page's
    decode would silently rewrite the cached entry in place — a stale
    read that no fingerprint could catch, because the compressed payload
    never changed. ``PageCache.put`` snapshots at the boundary.
    """

    def test_put_snapshots_mutable_buffers(self):
        cache = PageCache(4)
        buffer = bytearray(b"decoded page one")
        cache.put(0, 1, "lzah", b"payload", memoryview(buffer))
        buffer[:] = b"OVERWRITTEN....."  # the next page recycles the arena
        got = cache.get(0, 1, "lzah", b"payload")
        assert got == b"decoded page one"
        assert isinstance(got, bytes)

    def test_arena_recycling_cannot_corrupt_cached_pages(self):
        codec = LZAHCompressor()
        arena = DecodeArena(initial_bytes=1)
        cache = PageCache(8)
        page_one = b"first page lines here\n" * 40
        page_two = b"second page, different text\n" * 50
        blob_one = codec.compress(page_one)
        blob_two = codec.compress(page_two)
        decoded_one = codec.decompress_into(blob_one, arena)
        cache.put(0, 1, "lzah", blob_one, decoded_one)
        generation = arena.generation
        # decoding the next page recycles (and rewrites) the arena buffer
        codec.decompress_into(blob_two, arena)
        assert arena.generation > generation
        assert cache.get(0, 1, "lzah", blob_one) == page_one

    def test_recycled_arena_never_serves_stale_bytes_after_write(self, corpus):
        """End to end: warm the cache through the vectorized arena path,
        rewrite a flash page (the write listener invalidates), and check
        the next scan sees the new bytes — against a never-cached oracle.
        """
        system = MithriLogSystem(seed=5, scan_kernel="vectorized")
        system.ingest(corpus)
        first = system.scan_all(QUERY)  # cold: arena decodes fill the cache
        assert len(system.page_cache) > 0
        assert system.scan_all(QUERY).matched_lines == first.matched_lines
        assert system.page_cache.hits > 0
        # every cached value must be an immutable snapshot, not a view
        for entry in system.page_cache._entries.values():
            assert isinstance(entry[2], bytes)
        # rewrite one hot page with another page's contents (a compaction
        # -style move); the write listener must invalidate the stale decode
        victim = system.index.data_pages[0]
        donor = system.index.data_pages[1]
        donor_page = system.device.flash.read_page(donor)
        system.device.flash.write_page(victim, donor_page)
        key = (system.device.device_key, victim)
        assert key not in system.page_cache._entries
        rewritten = system.scan_all(QUERY)
        oracle = MithriLogSystem(seed=5, cache_pages=0)
        oracle.ingest(corpus)
        oracle.device.flash.write_page(
            oracle.index.data_pages[0],
            oracle.device.flash.read_page(oracle.index.data_pages[1]),
        )
        assert rewritten.matched_lines == oracle.scan_all(QUERY).matched_lines


@pytest.fixture(scope="module")
def corpus():
    return list(generator_for("Liberty2", seed=5).iter_lines(2000))


QUERY = parse_query("session AND opened")


class TestCacheInSystem:
    def test_repeat_scan_hits_and_results_match(self, corpus):
        system = MithriLogSystem(seed=5)
        system.ingest(corpus)
        first = system.scan_all(QUERY)
        assert system.page_cache.hits == 0
        second = system.scan_all(QUERY)
        assert system.page_cache.hits > 0
        assert second.matched_lines == first.matched_lines
        assert second.stats.bytes_decompressed == first.stats.bytes_decompressed

    def test_ingest_append_invalidates_new_pages_only(self, corpus):
        system = MithriLogSystem(seed=5)
        system.ingest(corpus[:1000])
        system.scan_all(QUERY)  # warm
        warm = len(system.page_cache)
        assert warm > 0
        system.ingest(corpus[1000:])  # appends fresh pages
        # appended pages were never cached; the warm entries survive
        assert len(system.page_cache) == warm
        oracle = MithriLogSystem(seed=5)
        oracle.ingest(corpus[:1000])
        oracle.ingest(corpus[1000:])
        assert (
            system.scan_all(QUERY).matched_lines
            == oracle.scan_all(QUERY).matched_lines
        )

    def test_page_rewrite_invalidates(self, corpus):
        system = MithriLogSystem(seed=5)
        system.ingest(corpus)
        system.scan_all(QUERY)  # warm the cache
        victim = system.index.data_pages[0]
        assert (system.device.device_key, victim) in system.page_cache._entries
        # rewrite the page in place (what an FTL move / compaction does)
        page = system.device.flash.read_page(victim)
        system.device.flash.write_page(victim, page)
        assert (
            system.device.device_key,
            victim,
        ) not in system.page_cache._entries

    def test_corrupted_page_still_fails_loudly(self, corpus):
        system = MithriLogSystem(seed=5)
        system.ingest(corpus)
        system.scan_all(QUERY)  # warm the cache with the clean decode
        victim = system.index.data_pages[0]
        system.device.flash.corrupt_page(victim, flip_at=40)
        # corrupt_page bypasses the write listener on purpose; the warm
        # cache must not mask the corruption — the scan fails exactly as
        # an uncached system's would (page checksum, retries exhausted)
        with pytest.raises(ReadRetryExhaustedError):
            system.scan_all(QUERY)
        uncached = MithriLogSystem(seed=5, cache_pages=0)
        uncached.ingest(corpus)
        uncached.device.flash.corrupt_page(
            uncached.index.data_pages[0], flip_at=40
        )
        with pytest.raises(ReadRetryExhaustedError):
            uncached.scan_all(QUERY)

    def test_cache_disabled_system_still_correct(self, corpus):
        cached = MithriLogSystem(seed=5)
        cached.ingest(corpus)
        uncached = MithriLogSystem(seed=5, cache_pages=0)
        uncached.ingest(corpus)
        cached.scan_all(QUERY)
        assert (
            cached.scan_all(QUERY).matched_lines
            == uncached.scan_all(QUERY).matched_lines
        )
        assert len(uncached.page_cache) == 0
