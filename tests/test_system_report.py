"""Tests for the benchmark text renderers (repro.system.report)."""


import pytest

from repro.system.report import (
    log_bins,
    render_histogram,
    render_scatter_summary,
    render_table,
)


class TestRenderTable:
    def test_title_rule_headers_rows(self):
        out = render_table(
            "Table X", ["Name", "GB/s"], [["BGL2", 4.5], ["Spirit2", 12]],
            col_width=10,
        )
        lines = out.splitlines()
        assert lines[0] == "Table X"
        assert set(lines[1]) == {"-"}
        assert len(lines[1]) == 20  # col_width * columns > len(title)
        assert lines[2].startswith("Name")
        assert "GB/s" in lines[2]

    def test_floats_two_decimals_others_verbatim(self):
        out = render_table("t", ["a", "b", "c"], [[1.2345, 7, "text"]])
        row = out.splitlines()[-1]
        assert "1.23" in row
        assert "1.2345" not in row
        assert "7" in row and "text" in row

    def test_column_width_respected(self):
        out = render_table("t", ["a", "b"], [["x", "y"]], col_width=8)
        row = out.splitlines()[-1]
        assert row.index("y") == 8

    def test_empty_rows(self):
        out = render_table("t", ["a"], [])
        assert out.splitlines()[-1].startswith("a")


class TestRenderHistogram:
    def test_counts_land_in_bins(self):
        out = render_histogram("h", [0.5, 1.5, 1.6], [0.0, 1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[0] == "h"
        assert lines[1].endswith(" 1")
        assert lines[2].endswith(" 2")

    def test_overflow_clamps_to_last_bin(self):
        out = render_histogram("h", [99.0], [0.0, 1.0, 2.0])
        assert out.splitlines()[-1].endswith(" 1")

    def test_below_range_dropped(self):
        out = render_histogram("h", [-5.0], [0.0, 1.0])
        assert out.splitlines()[-1].endswith(" 0")

    def test_bar_scales_to_peak(self):
        out = render_histogram(
            "h", [0.5] * 8 + [1.5] * 4, [0.0, 1.0, 2.0], width=8
        )
        lines = out.splitlines()
        assert "#" * 8 in lines[1]
        assert "#" * 4 in lines[2]
        assert "#" * 5 not in lines[2]

    def test_unit_in_labels(self):
        out = render_histogram("h", [0.5], [0.0, 1.0], unit="ms")
        assert "ms" in out.splitlines()[1]

    def test_empty_values(self):
        out = render_histogram("h", [], [0.0, 1.0])
        assert out.splitlines()[-1].endswith(" 0")


class TestLogBins:
    def test_log_spaced_edges(self):
        edges = log_bins(0.1, 1000.0, 4)
        assert len(edges) == 5
        assert edges[0] == pytest.approx(0.1)
        assert edges[-1] == pytest.approx(1000.0)
        ratios = [edges[i + 1] / edges[i] for i in range(4)]
        assert all(r == pytest.approx(10.0) for r in ratios)

    def test_monotonic(self):
        edges = log_bins(0.5, 64.0, 7)
        assert edges == sorted(edges)

    @pytest.mark.parametrize(
        "low,high,count", [(0.0, 1.0, 3), (-1.0, 1.0, 3), (2.0, 1.0, 3),
                           (1.0, 2.0, 0)]
    )
    def test_invalid_inputs_rejected(self, low, high, count):
        with pytest.raises(ValueError):
            log_bins(low, high, count)


class TestRenderScatterSummary:
    def test_quartiles_and_wins(self):
        pairs = [(float(i), float(i) + 1.0) for i in range(1, 9)]
        out = render_scatter_summary("fig16", pairs)
        lines = out.splitlines()
        assert lines[0] == "fig16"
        assert "samples: 8" in lines[1]
        assert "faster on 8 (100%)" in lines[1]
        # quartiles are index-based: ordered[n//4], ordered[n//2], ordered[3n//4]
        assert "q25=3.0000 median=5.0000 q75=7.0000" in lines[2]
        assert "q25=4.0000 median=6.0000 q75=8.0000" in lines[3]

    def test_custom_axis_labels(self):
        out = render_scatter_summary(
            "t", [(1.0, 2.0), (2.0, 1.0)], x_label="ours", y_label="theirs"
        )
        assert "ours" in out and "theirs" in out
        assert "faster on 1 (50%)" in out

    def test_empty_pairs(self):
        assert render_scatter_summary("t", []) == "t\n(no samples)"
