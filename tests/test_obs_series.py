"""Metric time-series: ring buffers, windowed rates, percentile snapshots."""

import pytest

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.series import (
    HistogramSnapshotSeries,
    MetricSampler,
    RingSeries,
    SeriesError,
)


class TestRingSeries:
    def test_append_and_window(self):
        s = RingSeries("x")
        for i in range(5):
            s.append(i * 0.1, float(i))
        assert s.latest().value == 4.0
        window = s.window(0.15, 0.35)
        assert [p.value for p in window] == [2.0, 3.0]

    def test_time_must_not_go_backwards(self):
        s = RingSeries("x")
        s.append(1.0, 1.0)
        with pytest.raises(SeriesError):
            s.append(0.5, 2.0)

    def test_same_instant_overwrites(self):
        s = RingSeries("x")
        s.append(1.0, 1.0)
        s.append(1.0, 9.0)
        assert len(s.points()) == 1
        assert s.latest().value == 9.0

    def test_ring_evicts_oldest(self):
        s = RingSeries("x", max_points=3)
        for i in range(10):
            s.append(float(i), float(i))
        assert [p.t_s for p in s.points()] == [7.0, 8.0, 9.0]

    def test_value_at_steps(self):
        s = RingSeries("x")
        s.append(1.0, 10.0)
        s.append(2.0, 20.0)
        assert s.value_at(0.5) == 0.0  # before first sample
        assert s.value_at(1.5) == 10.0
        assert s.value_at(5.0) == 20.0

    def test_counter_rate(self):
        s = RingSeries("c_total", kind="counter")
        s.append(0.0, 0.0)
        s.append(1.0, 10.0)
        s.append(2.0, 30.0)
        assert s.delta(1.0, now_s=2.0) == pytest.approx(20.0)
        assert s.rate(2.0, now_s=2.0) == pytest.approx(15.0)

    def test_to_dict_windowed(self):
        s = RingSeries("x", labels={"tenant": "t0"})
        s.append(0.0, 1.0)
        s.append(1.0, 2.0)
        d = s.to_dict(start_s=0.5, end_s=2.0)
        assert d["name"] == "x"
        assert d["labels"] == {"tenant": "t0"}
        assert d["points"] == [[1.0, 2.0]]


class TestHistogramSnapshotSeries:
    def make(self):
        h = HistogramSnapshotSeries("lat", edges=(0.01, 0.1, float("inf")))
        # cumulative bucket counts: 3 fast, 1 mid, 0 overflow
        h.append(0.0, (0, 0, 0), 0.0, 0)
        h.append(1.0, (3, 4, 4), 0.08, 4)
        h.append(2.0, (3, 9, 10), 0.9, 10)
        return h

    def test_windowed_counts_are_deltas(self):
        h = self.make()
        buckets, sum_, count = h.windowed_counts(1.0, now_s=2.0)
        assert buckets == [0, 5, 6]
        assert sum_ == pytest.approx(0.82)
        assert count == 6

    def test_percentile_interpolates(self):
        h = self.make()
        # over the full run: 3 below 10 ms, 9 below 100 ms, 10 total
        p50 = h.windowed_percentile(0.5, window_s=10.0, now_s=2.0)
        assert 0.01 <= p50 <= 0.1
        assert h.windowed_percentile(0.99, window_s=10.0, now_s=2.0) > p50

    def test_percentile_empty_window_is_none(self):
        h = self.make()
        assert h.windowed_percentile(0.5, window_s=0.1, now_s=10.0) is None

    def test_percentile_bounds_checked(self):
        h = self.make()
        with pytest.raises(SeriesError):
            h.windowed_percentile(1.5, window_s=1.0, now_s=2.0)

    def test_to_dict_encodes_inf_edge(self):
        d = self.make().to_dict()
        assert d["edges"][-1] == "inf"


class TestMetricSampler:
    def test_samples_counters_and_gauges(self):
        registry = MetricsRegistry()
        c = registry.counter("req_total", labelnames=("tenant",))
        g = registry.gauge("depth")
        sampler = MetricSampler(registry, interval_s=0.01)
        c.inc(3, tenant="t0")
        g.set(7.0)
        sampler.sample(0.0)
        c.inc(5, tenant="t0")
        sampler.sample(0.02)
        assert sampler.rate("req_total", window_s=0.02, now_s=0.02,
                            labels={"tenant": "t0"}) == pytest.approx(250.0)
        series = sampler.series("depth")
        assert series.latest().value == 7.0

    def test_maybe_sample_respects_cadence(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        sampler = MetricSampler(registry, interval_s=0.01)
        assert sampler.maybe_sample(0.0)
        assert not sampler.maybe_sample(0.005)
        assert sampler.maybe_sample(0.011)
        assert sampler.samples_taken == 2

    def test_histogram_percentile_from_snapshots(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat_seconds", buckets=(0.01, 0.1))
        sampler = MetricSampler(registry, interval_s=0.01)
        sampler.sample(0.0)
        for _ in range(9):
            h.observe(0.005)
        h.observe(0.05)
        sampler.sample(0.02)
        p50 = sampler.percentile("lat_seconds", 0.5, window_s=0.1, now_s=0.02)
        assert p50 is not None and p50 <= 0.01
        p99 = sampler.percentile("lat_seconds", 0.99, window_s=0.1, now_s=0.02)
        assert p99 > p50

    def test_uses_active_registry_by_default(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            registry.counter("c_total").inc()
            sampler = MetricSampler(interval_s=0.01)
            sampler.sample(0.0)
        assert sampler.series("c_total") is not None

    def test_to_dict_round_trips_json(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        sampler = MetricSampler(registry, interval_s=0.01)
        sampler.sample(0.0)
        payload = sampler.to_dict()
        json.dumps(payload)
        assert payload["samples_taken"] == 1
        assert any(s["name"] == "c_total" for s in payload["series"])
        assert any(h["name"] == "h_seconds" for h in payload["histograms"])
