"""Unit tests for the accelerator-attached storage device."""

import pytest

from repro.errors import StorageError
from repro.params import StorageParams
from repro.sim import SimClock
from repro.storage.device import MithriLogDevice, ReadMode
from repro.storage.page import Page


def rot13_page(payload: bytes) -> bytes:
    """Toy 'decompressor' for tests: self-inverse byte transform."""
    return bytes(b ^ 0x20 for b in payload)


@pytest.fixture
def device():
    return MithriLogDevice(StorageParams(capacity_pages=64))


class TestRawReads:
    def test_raw_read_roundtrip(self, device):
        addrs = device.append_pages([Page(b"alpha"), Page(b"beta")])
        result = device.read(addrs, mode=ReadMode.RAW)
        assert result.data == b"alphabeta"
        assert result.pages_read == 2
        assert result.bytes_to_host == 9
        assert result.selectivity == 1.0

    def test_raw_read_does_not_require_configuration(self, device):
        addrs = device.append_pages([Page(b"x")])
        device.read(addrs, mode=ReadMode.RAW)  # no configure() call


class TestDecompressReads:
    def test_decompress_applied_per_page(self, device):
        stored = rot13_page(b"hello")
        addrs = device.append_pages([Page(stored)])
        device.configure(decompress_page=rot13_page)
        result = device.read(addrs, mode=ReadMode.DECOMPRESS)
        assert result.data == b"hello"
        assert result.bytes_decompressed == 5

    def test_decompress_without_config_raises(self, device):
        addrs = device.append_pages([Page(b"x")])
        with pytest.raises(StorageError):
            device.read(addrs, mode=ReadMode.DECOMPRESS)


class TestFilterReads:
    def test_filter_keeps_matching_lines(self, device):
        text = b"keep me\ndrop me\nkeep too\n"
        addrs = device.append_pages([Page(text)])
        device.configure(
            decompress_page=lambda p: p,
            line_filter=lambda line: line.startswith(b"keep"),
        )
        result = device.read(addrs, mode=ReadMode.FILTER)
        assert result.data == b"keep me\nkeep too\n"
        assert result.lines_seen == 3
        assert result.lines_kept == 2
        assert result.selectivity == pytest.approx(2 / 3)

    def test_filter_dropping_everything_returns_empty(self, device):
        addrs = device.append_pages([Page(b"a\nb\n")])
        device.configure(decompress_page=lambda p: p, line_filter=lambda _: False)
        result = device.read(addrs, mode=ReadMode.FILTER)
        assert result.data == b""
        assert result.bytes_to_host == 0

    def test_filter_without_filter_config_raises(self, device):
        addrs = device.append_pages([Page(b"x\n")])
        device.configure(decompress_page=lambda p: p)
        with pytest.raises(StorageError):
            device.read(addrs, mode=ReadMode.FILTER)

    def test_reconfigure_replaces_previous_query(self, device):
        addrs = device.append_pages([Page(b"a\nb\n")])
        device.configure(decompress_page=lambda p: p, line_filter=lambda ln: ln == b"a")
        assert device.read(addrs, mode=ReadMode.FILTER).data == b"a\n"
        device.configure(decompress_page=lambda p: p, line_filter=lambda ln: ln == b"b")
        assert device.read(addrs, mode=ReadMode.FILTER).data == b"b\n"


class TestDeviceTiming:
    def test_filtering_reduces_host_link_traffic(self):
        params = StorageParams(
            capacity_pages=16,
            internal_bandwidth=10_000,
            external_bandwidth=1_000,
            latency_s=0.0,
        )
        device = MithriLogDevice(params)
        text = b"k\n" + b"d\n" * 499  # 1000 bytes, only one line kept
        addrs = device.append_pages([Page(text)])
        device.configure(decompress_page=lambda p: p, line_filter=lambda ln: ln == b"k")

        clock = SimClock()
        filtered = device.read(addrs, mode=ReadMode.FILTER, clock=clock)
        filtered_time = filtered.elapsed_s

        device.host_link.reset()
        device.flash.internal_link.reset()
        clock2 = SimClock()
        raw = device.read(addrs, mode=ReadMode.RAW, clock=clock2)
        raw_time = raw.elapsed_s

        assert filtered.bytes_to_host < raw.bytes_to_host
        assert filtered_time < raw_time

    def test_elapsed_zero_without_clock(self, device):
        addrs = device.append_pages([Page(b"x")])
        assert device.read(addrs, mode=ReadMode.RAW).elapsed_s == 0.0
