"""Unit tests for flash pages."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PageCorruptionError, StorageError
from repro.storage.page import PAGE_BYTES, Page, split_into_pages


class TestPage:
    def test_checksum_computed_on_construction(self):
        page = Page(b"hello")
        page.verify()  # must not raise

    def test_oversized_payload_rejected(self):
        with pytest.raises(StorageError):
            Page(b"x" * (PAGE_BYTES + 1))

    def test_full_page_accepted(self):
        Page(b"x" * PAGE_BYTES).verify()

    def test_empty_page_accepted(self):
        Page(b"").verify()

    def test_corrupted_page_fails_verify(self):
        page = Page(b"hello world").corrupted()
        with pytest.raises(PageCorruptionError):
            page.verify()

    def test_corrupting_empty_page_rejected(self):
        with pytest.raises(StorageError):
            Page(b"").corrupted()

    def test_corruption_at_offset(self):
        page = Page(b"abcdef").corrupted(flip_at=3)
        assert page.data[3] != b"abcdef"[3]
        assert page.data[:3] == b"abc"

    def test_len(self):
        assert len(Page(b"abc")) == 3

    @given(st.binary(max_size=PAGE_BYTES))
    def test_any_payload_roundtrips_checksum(self, payload):
        Page(payload).verify()


class TestSplitIntoPages:
    def test_exact_multiple(self):
        pages = split_into_pages(b"ab" * 4, page_bytes=4)
        assert [p.data for p in pages] == [b"abab", b"abab"]

    def test_short_tail(self):
        pages = split_into_pages(b"abcde", page_bytes=4)
        assert [p.data for p in pages] == [b"abcd", b"e"]

    def test_empty_payload_gives_one_empty_page(self):
        pages = split_into_pages(b"", page_bytes=4)
        assert len(pages) == 1
        assert pages[0].data == b""

    def test_invalid_page_size_rejected(self):
        with pytest.raises(StorageError):
            split_into_pages(b"abc", page_bytes=0)
        with pytest.raises(StorageError):
            split_into_pages(b"abc", page_bytes=PAGE_BYTES + 1)

    @given(st.binary(min_size=1, max_size=5000), st.integers(1, PAGE_BYTES))
    def test_concatenation_recovers_payload(self, payload, size):
        pages = split_into_pages(payload, page_bytes=size)
        assert b"".join(p.data for p in pages) == payload
