"""Tests for the filter pipeline (Figure 3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.lzah import LZAHCompressor
from repro.core.hashfilter import compile_queries
from repro.core.pipeline import FilterPipeline
from repro.core.query import Query, parse_query
from repro.params import PipelineParams

LINES = [
    b"R23-M0 RAS KERNEL INFO instruction cache parity error corrected",
    b"R23-M0 RAS KERNEL FATAL data TLB error interrupt",
    b"job 1234 failed on node sn201",
    b"pbs_mom: spawned job 99",
    b"",
    b"R23-M0 RAS APP FATAL ciod: error creating node map",
]


@pytest.fixture
def program():
    return compile_queries([parse_query("RAS AND KERNEL AND NOT FATAL")])


class TestPipelineProcessing:
    def test_verdicts_in_input_order(self, program):
        pipeline = FilterPipeline(program)
        result = pipeline.process_lines(LINES)
        assert result.kept_any() == [True, False, False, False, False, False]

    def test_matches_oracle_line_by_line(self, program):
        pipeline = FilterPipeline(program)
        query = parse_query("RAS AND KERNEL AND NOT FATAL")
        result = pipeline.process_lines(LINES)
        for line, verdict in zip(LINES, result.verdicts):
            assert verdict == (query.matches_line(line),)

    def test_more_lines_than_lanes(self, program):
        pipeline = FilterPipeline(program)
        lines = LINES * 10  # 60 lines across 8 lanes
        result = pipeline.process_lines(lines)
        assert result.lines == 60
        assert result.kept_any() == [ln.startswith(b"R23-M0 RAS KERNEL INFO") for ln in lines]

    def test_token_counter(self, program):
        pipeline = FilterPipeline(program)
        result = pipeline.process_lines([b"a b c", b"d e"])
        assert result.tokens == 5

    def test_lanes_and_filters_instantiated_per_params(self, program):
        params = PipelineParams(tokenizers=4, hash_filters=2, datapath_bytes=8)
        pipeline = FilterPipeline(program, params)
        assert len(pipeline.lanes) == 4
        assert len(pipeline.filters) == 2

    def test_work_spreads_across_filters(self, program):
        pipeline = FilterPipeline(program)
        pipeline.process_lines(LINES * 4)
        counts = [f.lines_processed for f in pipeline.filters]
        assert all(c > 0 for c in counts)
        assert sum(counts) == len(LINES) * 4


class TestDecompressorHookup:
    def test_compressed_page_filtering(self, program):
        codec = LZAHCompressor()
        text = b"\n".join(LINES) + b"\n"
        page = codec.compress(text)
        pipeline = FilterPipeline(program, decompressor=codec)
        result = pipeline.process_compressed_page(page)
        assert result.lines == len(LINES)
        assert result.kept_any()[0] is True

    def test_missing_decompressor_raises(self, program):
        pipeline = FilterPipeline(program)
        with pytest.raises(ValueError):
            pipeline.process_compressed_page(b"anything")


class TestPipelineCycles:
    def test_cycle_count_positive(self, program):
        pipeline = FilterPipeline(program)
        count = pipeline.count_cycles(LINES)
        assert count.cycles > 0
        assert count.raw_bytes == sum(len(ln) + 1 for ln in LINES)

    def test_throughput_below_wire_speed(self, program):
        pipeline = FilterPipeline(program)
        count = pipeline.count_cycles(LINES * 20)
        wire = pipeline.params.wire_speed_bytes_per_sec
        assert 0 < count.throughput_bytes_per_sec <= wire

    @given(
        st.lists(
            st.binary(max_size=60).filter(lambda ln: b"\n" not in ln),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50)
    def test_functional_result_independent_of_lane_count(self, lines):
        program = compile_queries([Query.single("needle")])
        narrow = FilterPipeline(program, PipelineParams(tokenizers=8))
        wide = FilterPipeline(program, PipelineParams(tokenizers=16))
        assert (
            narrow.process_lines(lines).verdicts
            == wide.process_lines(lines).verdicts
        )
