"""Public-API hygiene: every module imports, every export resolves.

Cheap insurance against broken ``__all__`` lists, circular imports and
dangling re-exports — failures here mean a user's first import breaks.
"""

import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _finder, name, _ispkg in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports(module_name):
    module = importlib.import_module(module_name)
    assert module is not None


@pytest.mark.parametrize(
    "module_name",
    [
        "repro",
        "repro.core",
        "repro.compression",
        "repro.index",
        "repro.storage",
        "repro.system",
        "repro.templates",
        "repro.datasets",
        "repro.baselines",
        "repro.analytics",
        "repro.hw",
        "repro.sim",
    ],
)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{module_name} should declare __all__"
    for name in exported:
        assert hasattr(module, name), f"{module_name}.{name} is dangling"


def test_every_public_callable_has_a_docstring():
    import inspect

    missing = []
    for module_name in MODULES:
        if any(part.startswith("_") for part in module_name.split(".")):
            continue
        module = importlib.import_module(module_name)
        if not module.__doc__:
            missing.append(module_name)
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not obj.__doc__:
                    missing.append(f"{module_name}.{name}")
    assert not missing, f"missing docstrings: {missing}"


def test_version_is_exposed():
    assert repro.__version__
