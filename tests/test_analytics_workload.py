"""Workload mining: slices, percentiles, hot templates, drift.

The pinned property: mining is a pure function of the journal — the
same records always produce byte-identical profiles (dict equality on
``to_dict()``), regardless of how often or in what process you mine.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analytics.workload import (
    DIMENSIONS,
    SliceStats,
    drift,
    hot_templates,
    mine,
)
from repro.errors import QueryError
from repro.obs.journal import QueryJournal, template_fingerprint


def fill(journal, template, n, latency_ms, tenant="t0", stage="flash",
         outcome="ok", window=None):
    """Append n uniform records for one template."""
    if window is not None:
        journal.begin_window(window)
    for i in range(n):
        if outcome == "ok":
            journal.observe_direct(
                template,
                latency_s=latency_ms / 1e3,
                matches=3,
                stage=stage,
                completed_at_s=0.01 * (len(journal.records) + 1),
                tenant=tenant,
            )
        else:
            from tests.test_obs_journal import make_record

            journal.note_submitted(tenant)
            journal.append(
                make_record(
                    seq=len(journal.records),
                    outcome=outcome,
                    tenant=tenant,
                    template=journal.register_template(template),
                    window=journal.window,
                )
            )


class TestSliceStats:
    def test_absorb_splits_ok_and_losses(self):
        journal = QueryJournal()
        fill(journal, "fast", 4, 1.0)
        fill(journal, "fast", 2, 0.0, outcome="shed")
        profile = mine(journal)
        stats = profile.slices("template")[template_fingerprint("fast")]
        assert stats.count == 6
        assert stats.ok == 4
        assert stats.shed == 2
        assert stats.lost == 2
        assert stats.loss_rate == pytest.approx(2 / 6)
        # refusals contribute no latency samples
        assert stats.p50_ms == pytest.approx(1.0)

    def test_min_service_is_cheapest_pass(self):
        journal = QueryJournal()
        for ms in (5.0, 1.0, 3.0):
            journal.observe_direct(
                "q", latency_s=ms / 1e3, matches=0, stage="flash",
                completed_at_s=0.01,
            )
        profile = mine(journal)
        stats = profile.slices("template")[template_fingerprint("q")]
        assert stats.min_service_ms == pytest.approx(1.0)
        assert stats.p99_service_ms == pytest.approx(5.0)

    def test_unknown_dimension_raises(self):
        journal = QueryJournal()
        fill(journal, "q", 1, 1.0)
        with pytest.raises(QueryError):
            mine(journal).slices("constellation")


class TestProfile:
    def test_total_rolls_up_tenants(self):
        journal = QueryJournal()
        fill(journal, "a", 3, 2.0, tenant="t0")
        fill(journal, "b", 2, 4.0, tenant="t1")
        fill(journal, "a", 1, 0.0, tenant="t1", outcome="rejected")
        profile = mine(journal)
        assert profile.total.count == 6
        assert profile.total.ok == 5
        assert profile.total.rejected == 1
        assert set(profile.slices("tenant")) == {"t0", "t1"}
        assert set(profile.slices("outcome")) == {"ok", "rejected"}

    def test_goodput_uses_simulated_span(self):
        journal = QueryJournal()
        fill(journal, "q", 10, 1.0)
        profile = mine(journal)
        assert profile.duration_s > 0
        assert profile.goodput_qps == pytest.approx(
            profile.total.ok / profile.duration_s
        )

    def test_hot_templates_ranked_by_count(self):
        journal = QueryJournal()
        fill(journal, "rare", 2, 1.0)
        fill(journal, "hot", 7, 1.0)
        ranking = mine(journal).hot_templates(top=2)
        assert ranking[0]["template"] == template_fingerprint("hot")
        assert ranking[0]["count"] == 7
        assert ranking[0]["share"] == pytest.approx(7 / 9)
        assert ranking[0]["query"] == "hot"
        assert hot_templates(journal, top=1)[0]["template"] == (
            template_fingerprint("hot")
        )

    def test_window_selection(self):
        journal = QueryJournal()
        fill(journal, "a", 3, 1.0, window="w1")
        fill(journal, "b", 5, 1.0, window="w2")
        assert mine(journal, window="w1").records == 3
        assert mine(journal, window="w2").records == 5
        assert mine(journal).records == 8

    def test_profile_dict_has_every_dimension(self):
        journal = QueryJournal()
        fill(journal, "q", 2, 1.0)
        payload = mine(journal).to_dict()
        assert payload["kind"] == "mithrilog_workload_profile"
        assert set(payload["slices"]) == set(DIMENSIONS)

    def test_mine_accepts_exported_payload(self):
        journal = QueryJournal()
        fill(journal, "q", 3, 1.0)
        from_payload = mine(journal.to_payload())
        assert from_payload.to_dict() == mine(journal).to_dict()


class TestDrift:
    def test_identical_windows_no_drift(self):
        journal = QueryJournal()
        fill(journal, "a", 4, 1.0, window="w1")
        fill(journal, "b", 4, 1.0, window="w1")
        fill(journal, "a", 4, 1.0, window="w2")
        fill(journal, "b", 4, 1.0, window="w2")
        report = drift(mine(journal, window="w1"), mine(journal, window="w2"))
        assert report.l1_share_distance == pytest.approx(0.0)
        assert not report.drifted
        assert report.emerged == [] and report.vanished == []

    def test_disjoint_windows_full_drift(self):
        journal = QueryJournal()
        fill(journal, "old", 4, 1.0, window="w1")
        fill(journal, "new", 4, 1.0, window="w2")
        report = drift(mine(journal, window="w1"), mine(journal, window="w2"))
        assert report.l1_share_distance == pytest.approx(2.0)
        assert report.drifted
        assert report.emerged == [template_fingerprint("new")]
        assert report.vanished == [template_fingerprint("old")]

    def test_latency_shift_reported(self):
        journal = QueryJournal()
        fill(journal, "q", 4, 1.0, window="w1")
        fill(journal, "q", 4, 9.0, window="w2")
        report = drift(mine(journal, window="w1"), mine(journal, window="w2"))
        assert report.latency_shifts[0]["delta_ms"] == pytest.approx(8.0)
        assert report.to_dict()["kind"] == "mithrilog_workload_drift"


class TestDeterminismProperty:
    _records = st.lists(
        st.tuples(
            st.sampled_from(["alpha", "beta", "gamma"]),  # template text
            st.sampled_from(["t0", "t1"]),  # tenant
            st.floats(min_value=0.1, max_value=50.0, allow_nan=False),  # ms
            st.sampled_from(["flash", "filter", "host"]),  # stage
        ),
        min_size=1,
        max_size=40,
    )

    @settings(max_examples=25, deadline=None)
    @given(specs=_records)
    def test_mining_is_deterministic(self, specs):
        def build():
            journal = QueryJournal()
            for i, (template, tenant, ms, stage) in enumerate(specs):
                journal.observe_direct(
                    template,
                    latency_s=ms / 1e3,
                    matches=1,
                    stage=stage,
                    completed_at_s=0.001 * (i + 1),
                    tenant=tenant,
                )
            return journal

        first = mine(build())
        second = mine(build())
        assert first.to_dict() == second.to_dict()
        # percentiles are nearest-rank members of the sample, not
        # interpolated values
        for stats in first.slices("template").values():
            assert stats.p99_ms in stats._latencies_ms

    @settings(max_examples=15, deadline=None)
    @given(specs=_records)
    def test_slice_counts_partition_records(self, specs):
        journal = QueryJournal()
        for i, (template, tenant, ms, stage) in enumerate(specs):
            journal.observe_direct(
                template,
                latency_s=ms / 1e3,
                matches=1,
                stage=stage,
                completed_at_s=0.001 * (i + 1),
                tenant=tenant,
            )
        profile = mine(journal)
        for dimension in DIMENSIONS:
            total = sum(s.count for s in profile.slices(dimension).values())
            assert total == profile.records


class TestSealIdempotent:
    def test_seal_keeps_percentiles_stable(self):
        stats = SliceStats(dimension="template", value="x")
        stats._latencies_ms.extend([3.0, 1.0, 2.0])
        stats.seal()
        first = stats.p50_ms
        stats.seal()
        assert stats.p50_ms == first == 2.0
