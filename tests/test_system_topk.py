"""Tests for top-k (limit) and newest-first query execution."""

import pytest

from repro.baselines.grep import grep_lines
from repro.core.query import parse_query
from repro.datasets.synthetic import generator_for
from repro.errors import StorageError
from repro.system.mithrilog import MithriLogSystem


@pytest.fixture(scope="module")
def corpus():
    return generator_for("Liberty2").generate(5000)


@pytest.fixture(scope="module")
def system(corpus):
    sys = MithriLogSystem()
    sys.ingest(corpus)
    return sys


class TestLimit:
    def test_limit_caps_matches(self, system, corpus):
        query = parse_query("kernel:")
        outcome = system.query(query, limit=5)
        assert len(outcome.matched_lines) == 5
        expected = grep_lines(query, corpus)
        # a prefix of the storage-ordered full result
        assert outcome.matched_lines == expected[:5]

    def test_limit_reads_fewer_pages(self, system):
        query = parse_query("kernel:")
        limited = system.query(query, limit=3)
        full = system.query(query)
        assert limited.stats.pages_read < full.stats.pages_read
        assert limited.stats.bytes_from_flash < full.stats.bytes_from_flash
        assert limited.stats.elapsed_s < full.stats.elapsed_s

    def test_limit_larger_than_matches_returns_all(self, system, corpus):
        query = parse_query("panic:")
        expected = grep_lines(query, corpus)
        outcome = system.query(query, limit=len(expected) + 100)
        assert sorted(outcome.matched_lines) == sorted(expected)

    def test_invalid_limit(self, system):
        with pytest.raises(StorageError):
            system.query(parse_query("kernel:"), limit=0)


class TestNewestFirst:
    def test_newest_first_returns_tail_matches(self, system, corpus):
        query = parse_query("kernel:")
        expected = grep_lines(query, corpus)
        outcome = system.query(query, newest_first=True, limit=4)
        # the matches come from the newest region of the log
        tail = set(expected[-200:])
        assert all(line in tail for line in outcome.matched_lines)
        assert len(outcome.matched_lines) == 4

    def test_newest_first_without_limit_same_set(self, system, corpus):
        query = parse_query("panic:")
        expected = sorted(grep_lines(query, corpus))
        outcome = system.query(query, newest_first=True)
        assert sorted(outcome.matched_lines) == expected

    def test_newest_first_visits_high_addresses_first(self, system):
        query = parse_query("kernel:")
        limited = system.query(query, newest_first=True, limit=1)
        # one match from the newest pages: barely any data touched
        assert limited.stats.pages_read <= 3
