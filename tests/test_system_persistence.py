"""Tests for store persistence (save/load round trips)."""

import pytest

from repro.core.query import parse_query
from repro.datasets.synthetic import generator_for
from repro.errors import StorageError
from repro.system.mithrilog import MithriLogSystem
from repro.system.persistence import load_store, save_store


@pytest.fixture(scope="module")
def corpus():
    return generator_for("BGL2").generate(1200)


@pytest.fixture()
def saved(tmp_path, corpus):
    system = MithriLogSystem()
    epochs = [float(ln.split()[1]) for ln in corpus]
    system.ingest(corpus, timestamps=epochs)
    system.index.flush(timestamp=epochs[-1])
    save_store(system, tmp_path / "store")
    return system, tmp_path / "store"


class TestRoundTrip:
    def test_query_results_identical(self, saved, corpus):
        original, path = saved
        loaded = load_store(path)
        for expr in ("KERNEL AND INFO", "FATAL AND NOT APP", "NOT RAS"):
            query = parse_query(expr)
            a = original.query(query)
            b = loaded.query(query)
            assert a.matched_lines == b.matched_lines, expr
            assert a.stats.candidate_pages == b.stats.candidate_pages, expr

    def test_metadata_restored(self, saved):
        original, path = saved
        loaded = load_store(path)
        assert loaded.original_bytes == original.original_bytes
        assert loaded.total_lines == original.total_lines
        assert loaded.index.total_data_pages == original.index.total_data_pages
        assert loaded.accelerator_rate == original.accelerator_rate

    def test_snapshots_restored(self, saved):
        original, path = saved
        loaded = load_store(path)
        assert loaded.index.snapshots.snapshots == original.index.snapshots.snapshots

    def test_params_restored(self, saved):
        _original, path = saved
        loaded = load_store(path)
        assert loaded.params.storage.page_bytes == 4096
        assert loaded.params.cuckoo.rows == 256

    def test_loaded_store_supports_further_ingest(self, saved, corpus):
        _original, path = saved
        loaded = load_store(path)
        more = generator_for("BGL2", seed=99).generate(200)
        report = loaded.ingest(more)
        assert report.lines == 200
        outcome = loaded.query(parse_query("KERNEL"))
        assert outcome.stats.total_pages == loaded.index.total_data_pages

    def test_save_load_save_stable(self, saved, tmp_path):
        _original, path = saved
        loaded = load_store(path)
        save_store(loaded, tmp_path / "store2")
        reloaded = load_store(tmp_path / "store2")
        query = parse_query("KERNEL AND INFO")
        assert reloaded.query(query).matched_lines == loaded.query(query).matched_lines


class TestErrorHandling:
    def test_missing_store_raises(self, tmp_path):
        with pytest.raises(StorageError):
            load_store(tmp_path / "nope")

    def test_bad_version_rejected(self, saved, tmp_path):
        import json

        _original, path = saved
        meta = json.loads((path / "store.json").read_text())
        meta["version"] = 999
        (path / "store.json").write_text(json.dumps(meta))
        with pytest.raises(StorageError):
            load_store(path)

    def test_truncated_pages_rejected(self, saved):
        _original, path = saved
        blob = (path / "pages.bin").read_bytes()
        (path / "pages.bin").write_bytes(blob[:-5])
        with pytest.raises(StorageError):
            load_store(path)

    def test_corrupted_page_rejected(self, saved):
        from repro.errors import PageCorruptionError

        _original, path = saved
        blob = bytearray((path / "pages.bin").read_bytes())
        blob[40] ^= 0xFF  # flip a payload byte, keep the stored checksum
        (path / "pages.bin").write_bytes(bytes(blob))
        with pytest.raises(PageCorruptionError):
            load_store(path)
