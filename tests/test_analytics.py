"""Tests for the higher-order analytics layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analytics.anomaly import PCAAnomalyDetector
from repro.analytics.clustering import KMeans, silhouette
from repro.analytics.counting import count_windows


class TestCountWindows:
    def test_basic_bucketing(self):
        matrix = count_windows(
            template_ids=[0, 1, 0, None],
            timestamps=[0.0, 1.0, 10.0, 11.0],
            window_s=5.0,
            num_templates=2,
        )
        assert matrix.num_windows == 3
        assert matrix.counts[0].tolist() == [1, 1, 0]
        assert matrix.counts[1].tolist() == [0, 0, 0]  # quiet window kept
        assert matrix.counts[2].tolist() == [1, 0, 1]  # untagged in last col

    def test_window_of(self):
        matrix = count_windows([0], [100.0], window_s=10.0, num_templates=1)
        assert matrix.window_of(100.0) == 0
        with pytest.raises(ValueError):
            matrix.window_of(200.0)

    def test_volumes(self):
        matrix = count_windows(
            [0, 0, 1], [0.0, 0.1, 6.0], window_s=5.0, num_templates=2
        )
        assert matrix.volumes().tolist() == [2, 1]

    def test_empty_input(self):
        matrix = count_windows([], [], window_s=5.0, num_templates=3)
        assert matrix.num_windows == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            count_windows([0], [], window_s=5.0, num_templates=1)
        with pytest.raises(ValueError):
            count_windows([0], [0.0], window_s=0.0, num_templates=1)
        with pytest.raises(ValueError):
            count_windows([5], [0.0], window_s=1.0, num_templates=2)

    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.floats(0, 1000)),
            min_size=1,
            max_size=100,
        ),
        st.floats(0.5, 50),
    )
    @settings(max_examples=80)
    def test_counts_conserve_lines(self, tagged, window):
        ids = [t for t, _ in tagged]
        stamps = [s for _, s in tagged]
        matrix = count_windows(ids, stamps, window_s=window, num_templates=5)
        assert matrix.counts.sum() == len(tagged)


def _normal_windows(rng, n, templates=6):
    """Stationary mix: two correlated template groups plus noise."""
    base = rng.poisson(lam=20, size=(n, 1))
    pattern = np.array([[3, 3, 1, 1, 0.5, 0.2]])
    return (base * pattern + rng.poisson(2, size=(n, templates))).astype(float)


class TestPCAAnomaly:
    def test_injected_spike_detected(self):
        rng = np.random.default_rng(1)
        train = _normal_windows(rng, 200)
        test = _normal_windows(rng, 50)
        test[17, 5] += 500  # a rare template explodes
        detector = PCAAnomalyDetector().fit(train)
        report = detector.detect(test)
        assert 17 in report.anomalous_windows()

    def test_normal_windows_mostly_clean(self):
        rng = np.random.default_rng(2)
        detector = PCAAnomalyDetector().fit(_normal_windows(rng, 300))
        report = detector.detect(_normal_windows(rng, 100))
        assert len(report.anomalous_windows()) <= 5

    def test_scores_nonnegative(self):
        rng = np.random.default_rng(3)
        X = _normal_windows(rng, 50)
        detector = PCAAnomalyDetector().fit(X)
        assert (detector.scores(X) >= 0).all()

    def test_subspace_smaller_than_feature_space(self):
        rng = np.random.default_rng(4)
        detector = PCAAnomalyDetector(variance=0.9).fit(_normal_windows(rng, 200))
        assert 1 <= detector.num_components < 6

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PCAAnomalyDetector().scores(np.zeros((3, 3)))
        with pytest.raises(RuntimeError):
            PCAAnomalyDetector().threshold()

    def test_degenerate_constant_input(self):
        X = np.ones((10, 4))
        detector = PCAAnomalyDetector().fit(X)
        assert detector.scores(X).max() == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PCAAnomalyDetector(variance=0.0)
        with pytest.raises(ValueError):
            PCAAnomalyDetector().fit(np.zeros(5))
        with pytest.raises(ValueError):
            PCAAnomalyDetector().fit(np.zeros((1, 5)))

    def test_custom_threshold(self):
        rng = np.random.default_rng(5)
        X = _normal_windows(rng, 100)
        detector = PCAAnomalyDetector().fit(X)
        report = detector.detect(X, threshold=float("inf"))
        assert report.anomalous_windows() == []


def _blobs(rng, centers, per=30, spread=0.3):
    points = []
    for cx, cy in centers:
        points.append(rng.normal((cx, cy), spread, size=(per, 2)))
    return np.vstack(points)


class TestKMeans:
    def test_separated_blobs_recovered(self):
        rng = np.random.default_rng(7)
        X = _blobs(rng, [(0, 0), (10, 10), (0, 10)])
        result = KMeans(k=3, seed=1).fit(X)
        assert result.k == 3
        sizes = sorted(result.cluster_sizes().tolist())
        assert sizes == [30, 30, 30]

    def test_deterministic(self):
        rng = np.random.default_rng(8)
        X = _blobs(rng, [(0, 0), (5, 5)])
        a = KMeans(k=2, seed=3).fit(X)
        b = KMeans(k=2, seed=3).fit(X)
        assert np.array_equal(a.labels, b.labels)

    def test_inertia_decreases_with_k(self):
        rng = np.random.default_rng(9)
        X = _blobs(rng, [(0, 0), (8, 0), (4, 7)])
        i2 = KMeans(k=2, seed=0).fit(X).inertia
        i3 = KMeans(k=3, seed=0).fit(X).inertia
        assert i3 < i2

    def test_silhouette_prefers_true_k(self):
        rng = np.random.default_rng(10)
        X = _blobs(rng, [(0, 0), (12, 0), (6, 10)])
        s3 = silhouette(X, KMeans(k=3, seed=0).fit(X).labels)
        s2 = silhouette(X, KMeans(k=2, seed=0).fit(X).labels)
        assert s3 > s2 > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            KMeans(k=0)
        with pytest.raises(ValueError):
            KMeans(k=5).fit(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            KMeans(k=1, max_iter=0)
        with pytest.raises(ValueError):
            silhouette(np.zeros((4, 2)), np.zeros(4, dtype=int))

    def test_more_clusters_than_distinct_points_ok(self):
        X = np.array([[0.0, 0.0]] * 5 + [[5.0, 5.0]] * 5)
        result = KMeans(k=2, seed=0).fit(X)
        assert set(result.labels.tolist()) == {0, 1}
