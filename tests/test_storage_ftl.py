"""Tests for the flash translation layer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PageBoundsError, StorageError
from repro.params import StorageParams
from repro.storage.ftl import FlashTranslationLayer, FTLFlashArray
from repro.storage.page import Page


def make_ftl(blocks=8, pages=4, threshold=2):
    return FlashTranslationLayer(
        num_blocks=blocks, pages_per_block=pages, gc_threshold=threshold
    )


class TestBasicMapping:
    def test_write_read_roundtrip(self):
        ftl = make_ftl()
        ftl.write(5, Page(b"hello"))
        assert ftl.read(5).data == b"hello"
        assert 5 in ftl
        assert 6 not in ftl

    def test_read_unwritten_raises(self):
        with pytest.raises(StorageError):
            make_ftl().read(0)

    def test_negative_logical_rejected(self):
        with pytest.raises(PageBoundsError):
            make_ftl().write(-1, Page(b"x"))

    def test_overwrite_returns_latest(self):
        ftl = make_ftl()
        ftl.write(3, Page(b"old"))
        ftl.write(3, Page(b"new"))
        assert ftl.read(3).data == b"new"

    def test_overwrite_invalidates_old_slot(self):
        ftl = make_ftl()
        ftl.write(3, Page(b"old"))
        ftl.write(3, Page(b"new"))
        # two NAND programs, one live page
        assert ftl.nand_writes == 2
        assert len(ftl._l2p) == 1

    def test_capacity_enforced(self):
        ftl = make_ftl(blocks=6, pages=2, threshold=2)
        for logical in range(ftl.capacity_pages):
            ftl.write(logical, Page(b"x"))
        with pytest.raises(StorageError):
            ftl.write(ftl.capacity_pages, Page(b"one too many"))

    def test_too_few_blocks_rejected(self):
        with pytest.raises(StorageError):
            FlashTranslationLayer(num_blocks=3, gc_threshold=2)


class TestGarbageCollection:
    def test_sustained_overwrites_trigger_gc(self):
        ftl = make_ftl(blocks=8, pages=4, threshold=2)
        for round_ in range(20):
            for logical in range(8):
                ftl.write(logical, Page(f"{round_}-{logical}".encode()))
        stats = ftl.stats()
        assert stats.erases > 0
        # data stays correct through relocations
        for logical in range(8):
            assert ftl.read(logical).data == f"19-{logical}".encode()

    def test_append_only_workload_has_unit_write_amplification(self):
        ftl = make_ftl(blocks=16, pages=4, threshold=2)
        for logical in range(ftl.capacity_pages):
            ftl.write(logical, Page(b"log data"))
        stats = ftl.stats()
        assert stats.write_amplification == pytest.approx(1.0)
        assert stats.gc_relocations == 0

    def test_mixed_hot_cold_workload_amplifies_writes(self):
        # cold pages share blocks with hot ones, so GC must relocate them
        ftl = make_ftl(blocks=8, pages=4, threshold=2)
        # interleave cold and hot writes so they share erase blocks
        for i in range(12):
            ftl.write(i, Page(b"cold"))
            ftl.write(100 + i % 2, Page(bytes([i]) * 8))
        for round_ in range(40):  # keep hammering the hot pages
            ftl.write(100 + round_ % 2, Page(bytes([round_ % 251]) * 8))
        stats = ftl.stats()
        assert stats.gc_relocations > 0
        assert stats.write_amplification > 1.0
        for logical in range(12):
            assert ftl.read(logical).data == b"cold"

    def test_wear_levelling_bounds_spread(self):
        ftl = make_ftl(blocks=10, pages=4, threshold=2)
        for round_ in range(60):
            for logical in range(10):
                ftl.write(logical, Page(bytes([round_ % 251]) * 4))
        stats = ftl.stats()
        assert stats.erases > 5
        # least- and most-worn blocks stay within a small band
        assert stats.wear_spread <= max(4, stats.erases // 2)

    @given(st.lists(st.tuples(st.integers(0, 11), st.binary(min_size=1, max_size=16)), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_latest_write_always_wins(self, writes):
        ftl = make_ftl(blocks=10, pages=4, threshold=2)
        latest: dict[int, bytes] = {}
        for logical, payload in writes:
            ftl.write(logical, Page(payload))
            latest[logical] = payload
        for logical, payload in latest.items():
            assert ftl.read(logical).data == payload


class TestFTLFlashArray:
    def test_drop_in_for_flash_array(self):
        flash = FTLFlashArray(StorageParams(capacity_pages=256))
        addr = flash.append_page(Page(b"payload"))
        assert flash.read_page(addr).data == b"payload"
        assert flash.pages_written == 1

    def test_system_runs_on_ftl_flash(self):
        from repro.core.query import parse_query
        from repro.datasets.synthetic import generator_for
        from repro.storage.device import MithriLogDevice
        from repro.system.mithrilog import MithriLogSystem

        params = StorageParams(capacity_pages=4096)
        device = MithriLogDevice(params, flash=FTLFlashArray(params))
        system = MithriLogSystem(device=device)
        lines = generator_for("BGL2").generate(800)
        system.ingest(lines)
        system.index.flush(timestamp=0.0)  # rewrites index pages -> FTL work
        outcome = system.query(parse_query("KERNEL AND INFO"))
        from repro.baselines.grep import grep_lines

        assert sorted(outcome.matched_lines) == sorted(
            grep_lines(parse_query("KERNEL AND INFO"), lines)
        )
        assert device.flash.ftl.nand_writes >= device.flash.ftl.host_writes
