"""Tests for the inverted-index facade, including the superset invariant."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.query import Term, parse_query
from repro.core.tokenizer import split_tokens
from repro.errors import LogIndexError
from repro.index.inverted import InvertedIndex
from repro.params import IndexParams, StorageParams
from repro.storage.flash import FlashArray


def build_index(pages: dict[int, list[bytes]], **kwargs) -> InvertedIndex:
    flash = FlashArray(StorageParams(capacity_pages=65536))
    index = InvertedIndex(flash, **kwargs)
    for addr in sorted(pages):
        index.index_page(addr, pages[addr])
    return index


PAGES = {
    0: [b"RAS", b"KERNEL", b"INFO"],
    1: [b"RAS", b"APP", b"FATAL"],
    2: [b"job", b"failed", b"pbs_mom:"],
    3: [b"job", b"failed"],
    4: [b"idle", b"heartbeat"],
}


class TestLookup:
    def test_single_token_superset(self):
        index = build_index(PAGES)
        pages, _ = index.lookup_token(b"RAS")
        assert {0, 1}.issubset(pages)

    def test_unknown_token_may_be_empty(self):
        index = build_index(PAGES)
        pages, _ = index.lookup_token(b"never-indexed-token-xyz")
        # probabilistic: can only contain pages of colliding tokens
        assert set(pages).issubset(set(PAGES))

    def test_results_sorted_ascending(self):
        index = build_index(PAGES)
        pages, _ = index.lookup_token(b"job")
        assert pages == sorted(pages)


class TestCandidatePages:
    def test_positive_intersection(self):
        index = build_index(PAGES)
        result = index.candidate_pages(parse_query("job AND pbs_mom:"))
        assert 2 in result.pages
        assert result.stats.tokens_looked_up == 2
        assert not result.stats.full_scan

    def test_union_of_intersections(self):
        index = build_index(PAGES)
        result = index.candidate_pages(parse_query("FATAL OR heartbeat"))
        assert {1, 4}.issubset(result.pages)

    def test_negative_only_query_full_scans(self):
        index = build_index(PAGES)
        result = index.candidate_pages(parse_query("NOT job"))
        assert result.stats.full_scan
        assert result.pages == tuple(sorted(PAGES))

    def test_negative_terms_ignored_when_positives_exist(self):
        index = build_index(PAGES)
        result = index.candidate_pages(parse_query("failed AND NOT pbs_mom:"))
        # the index narrows by 'failed' only; the filter removes page 2 later
        assert {2, 3}.issubset(result.pages)
        assert result.stats.tokens_looked_up == 1

    def test_selectivity(self):
        index = build_index(PAGES)
        result = index.candidate_pages(parse_query("heartbeat"))
        assert result.selectivity(index.total_data_pages) <= 1.0

    def test_superset_invariant_on_real_lines(self):
        lines_per_page = {
            10: [b"RAS KERNEL INFO cache parity", b"RAS KERNEL FATAL tlb"],
            20: [b"job 9 failed pbs_mom: cleanup"],
            30: [b"idle node heartbeat ok"],
        }
        pages = {
            addr: [t for line in lines for t in split_tokens(line)]
            for addr, lines in lines_per_page.items()
        }
        index = build_index(pages)
        query = parse_query("failed AND NOT pbs_mom:")
        result = index.candidate_pages(query)
        truly_matching = {
            addr
            for addr, lines in lines_per_page.items()
            if any(query.matches_line(line) for line in lines)
        }
        assert truly_matching.issubset(set(result.pages))


class TestIngestInvariants:
    def test_out_of_order_page_rejected(self):
        flash = FlashArray(StorageParams(capacity_pages=1024))
        index = InvertedIndex(flash)
        index.index_page(5, [b"a"])
        with pytest.raises(LogIndexError):
            index.index_page(5, [b"b"])
        with pytest.raises(LogIndexError):
            index.index_page(3, [b"c"])

    def test_memory_footprint_bounded(self):
        pages = {i: [f"tok{i % 40}".encode(), b"common"] for i in range(3000)}
        index = build_index(pages, params=IndexParams(hash_rows=1 << 10))
        # far below holding all 3000*2 postings in memory
        assert index.memory_footprint_bytes() < 200_000

    def test_snapshot_triggered_during_ingest(self):
        flash = FlashArray(StorageParams(capacity_pages=65536))
        params = IndexParams(snapshot_leaf_threshold=1)
        index = InvertedIndex(flash, params=params)
        # a leaf *page* spills after 64 leaf nodes = 1024 buffered addresses
        # per row; several common tokens get there quickly
        common = [f"common{i}".encode() for i in range(8)]
        for addr in range(2600):
            index.index_page(addr, common, timestamp=float(addr))
        assert len(index.snapshots.snapshots) >= 1

    def test_flush_then_query_still_works(self):
        index = build_index(PAGES)
        index.flush(timestamp=1.0)
        pages, _ = index.lookup_token(b"RAS")
        assert {0, 1}.issubset(pages)


class TestTimeBoundedQueries:
    def _timed_index(self):
        # drive snapshots explicitly at known times: page addr == timestamp
        flash = FlashArray(StorageParams(capacity_pages=65536))
        index = InvertedIndex(flash)
        for addr in range(200):
            tokens = [b"tick", f"u{addr}".encode()]
            index.index_page(addr, tokens)
            if addr in (50, 100, 150):
                index.flush(timestamp=float(addr))
        index.flush(timestamp=200.0)
        return index

    def test_time_range_narrows_candidates(self):
        index = self._timed_index()
        full = index.candidate_pages(parse_query("tick"))
        bounded = index.candidate_pages(
            parse_query("tick"), time_range=(150.0, 199.0)
        )
        assert len(bounded.pages) < len(full.pages)
        assert set(bounded.pages).issubset(set(full.pages))

    def test_time_range_keeps_matching_pages(self):
        index = self._timed_index()
        bounded = index.candidate_pages(
            parse_query("u175"), time_range=(150.0, 199.0)
        )
        assert 175 in bounded.pages


class TestSupersetProperty:
    @given(
        st.dictionaries(
            st.integers(0, 400),
            st.lists(
                st.sampled_from([b"a", b"bb", b"ccc", b"dd", b"e", b"ff"]),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=60,
        ),
        st.sampled_from([b"a", b"bb", b"ccc", b"dd"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_index_never_misses_a_page(self, pages, token):
        index = build_index(pages, params=IndexParams(hash_rows=64))
        found, _ = index.lookup_token(token)
        expected = {addr for addr, toks in pages.items() if token in toks}
        assert expected.issubset(set(found))
