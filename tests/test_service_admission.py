"""Tests for service admission control: buckets, queues, quotas, shedding."""

import pytest

from repro.core.query import parse_query
from repro.errors import QueryError
from repro.service.admission import AdmissionController, TokenBucket
from repro.service.request import (
    Outcome,
    Request,
    Response,
    TenantConfig,
    TenantStats,
    coerce_query,
)

QUERY = parse_query("alpha")


def make_request(tenant="t0", priority=0, deadline_s=None, arrival_s=0.0):
    return Request(
        tenant=tenant,
        query=QUERY,
        priority=priority,
        deadline_s=deadline_s,
        arrival_s=arrival_s,
    )


class TestTokenBucket:
    def test_starts_full_and_spends(self):
        bucket = TokenBucket(rate_per_s=2.0, capacity=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)

    def test_refills_on_simulated_time(self):
        bucket = TokenBucket(rate_per_s=10.0, capacity=1.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        assert bucket.try_take(0.1)  # 0.1 s * 10/s = 1 token back

    def test_capacity_clamps_refill(self):
        bucket = TokenBucket(rate_per_s=100.0, capacity=2.0)
        bucket.try_take(0.0)
        bucket.refill(1000.0)
        assert bucket.tokens == 2.0

    def test_infinite_rate_never_refuses(self):
        bucket = TokenBucket(rate_per_s=float("inf"), capacity=float("inf"))
        for _ in range(100):
            assert bucket.try_take(0.0)


class TestRequestValidation:
    def test_empty_tenant_rejected(self):
        with pytest.raises(QueryError):
            Request(tenant="", query=QUERY)

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(QueryError):
            make_request(deadline_s=0.0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(QueryError):
            make_request(arrival_s=-1.0)

    def test_coerce_accepts_text_and_bytes(self):
        assert coerce_query("alpha AND beta") is not None
        assert coerce_query(b"alpha") is not None
        assert coerce_query(QUERY) is QUERY

    def test_coerce_refuses_other_types(self):
        with pytest.raises(QueryError):
            coerce_query(42)


class TestTenantConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"weight": 0.0},
            {"queue_limit": 0},
            {"rate_per_s": 0.0},
            {"burst": 0.0},
            {"quota_queries": -1},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(QueryError):
            TenantConfig(name="t", **kwargs)

    def test_duplicate_tenants_rejected(self):
        with pytest.raises(QueryError):
            AdmissionController(
                [TenantConfig(name="t"), TenantConfig(name="t")]
            )


class TestAdmissionGate:
    def test_unknown_tenant_rejected(self):
        gate = AdmissionController([TenantConfig(name="t0")])
        refusal, shed = gate.offer(make_request(tenant="ghost"), 0.0, 0.0)
        assert refusal.outcome is Outcome.REJECTED
        assert refusal.reason == "unknown_tenant"
        assert shed == []

    def test_admits_within_limits(self):
        gate = AdmissionController([TenantConfig(name="t0")])
        refusal, shed = gate.offer(make_request(), 0.0, 0.0)
        assert refusal is None and shed == []
        assert gate.total_backlog == 1

    def test_quota_exhaustion(self):
        gate = AdmissionController(
            [TenantConfig(name="t0", quota_queries=2)]
        )
        assert gate.offer(make_request(), 0.0, 0.0)[0] is None
        assert gate.offer(make_request(), 0.0, 0.0)[0] is None
        refusal, _ = gate.offer(make_request(), 0.0, 0.0)
        assert refusal.outcome is Outcome.REJECTED
        assert refusal.reason == "quota"

    def test_rate_limit_refuses_then_recovers(self):
        gate = AdmissionController(
            [TenantConfig(name="t0", rate_per_s=1.0, burst=1.0)]
        )
        assert gate.offer(make_request(), 0.0, 0.0)[0] is None
        refusal, _ = gate.offer(make_request(), 0.0, 0.0)
        assert refusal.reason == "rate_limit"
        assert gate.offer(make_request(), 1.5, 1.5)[0] is None  # refilled

    def test_queue_bound(self):
        gate = AdmissionController([TenantConfig(name="t0", queue_limit=2)])
        for _ in range(2):
            assert gate.offer(make_request(), 0.0, 0.0)[0] is None
        refusal, _ = gate.offer(make_request(), 0.0, 0.0)
        assert refusal.reason == "queue_full"

    def test_per_tenant_isolation(self):
        gate = AdmissionController(
            [
                TenantConfig(name="noisy", queue_limit=1),
                TenantConfig(name="quiet", queue_limit=1),
            ]
        )
        assert gate.offer(make_request(tenant="noisy"), 0.0, 0.0)[0] is None
        # noisy's full queue does not block quiet
        assert gate.offer(make_request(tenant="quiet"), 0.0, 0.0)[0] is None


class TestOverloadShedding:
    def two_tenant_gate(self, max_backlog=2):
        return AdmissionController(
            [TenantConfig(name="t0"), TenantConfig(name="t1")],
            max_backlog=max_backlog,
        )

    def test_low_priority_victim_evicted(self):
        gate = self.two_tenant_gate()
        gate.offer(make_request(tenant="t0", priority=0), 0.0, 0.0)
        gate.offer(make_request(tenant="t1", priority=2), 0.0, 0.0)
        refusal, shed = gate.offer(
            make_request(tenant="t0", priority=1), 1.0, 1.0
        )
        assert refusal is None  # newcomer got the freed slot
        assert len(shed) == 1
        assert shed[0].outcome is Outcome.SHED
        assert shed[0].request.priority == 0
        assert shed[0].reason == "overload"
        assert gate.total_backlog == 2

    def test_newcomer_shed_when_lowest(self):
        gate = self.two_tenant_gate()
        gate.offer(make_request(tenant="t0", priority=1), 0.0, 0.0)
        gate.offer(make_request(tenant="t1", priority=1), 0.0, 0.0)
        refusal, shed = gate.offer(
            make_request(tenant="t0", priority=0), 1.0, 1.0
        )
        assert refusal is not None
        assert refusal.outcome is Outcome.SHED
        assert shed == []
        assert gate.total_backlog == 2

    def test_tie_sheds_youngest(self):
        gate = self.two_tenant_gate()
        gate.offer(make_request(tenant="t0", priority=0), 0.0, 0.0)  # seq 1
        gate.offer(make_request(tenant="t1", priority=0), 0.0, 0.0)  # seq 2
        _, shed = gate.offer(
            make_request(tenant="t0", priority=1), 1.0, 1.0
        )
        assert len(shed) == 1
        assert shed[0].request.tenant == "t1"  # the younger equal-priority


class TestDeadlines:
    def test_expired_requests_cancelled(self):
        gate = AdmissionController([TenantConfig(name="t0")])
        gate.offer(make_request(deadline_s=1.0), 0.0, 0.0)
        gate.offer(make_request(deadline_s=10.0), 0.0, 0.0)
        assert gate.expire_deadlines(0.5) == []
        expired = gate.expire_deadlines(2.0)
        assert len(expired) == 1
        assert expired[0].outcome is Outcome.TIMED_OUT
        assert expired[0].reason == "deadline"
        assert expired[0].queue_time_s == pytest.approx(2.0)
        assert gate.total_backlog == 1

    def test_patient_requests_never_expire(self):
        gate = AdmissionController([TenantConfig(name="t0")])
        gate.offer(make_request(), 0.0, 0.0)
        assert gate.expire_deadlines(1e9) == []


class TestApproximateAdmission:
    """The degrade-instead-of-shed path for sample_fraction opt-ins."""

    def two_tenant_gate(self, approx_on_overload=True):
        return AdmissionController(
            [
                TenantConfig(name="t0", queue_limit=16),
                TenantConfig(name="t1", queue_limit=16),
            ],
            max_backlog=2,
            approx_on_overload=approx_on_overload,
        )

    def opted(self, tenant="t0", priority=0):
        return Request(
            tenant=tenant,
            query=QUERY,
            priority=priority,
            sample_fraction=0.25,
        )

    def test_opted_in_newcomer_degrades_instead_of_shedding(self):
        gate = self.two_tenant_gate()
        gate.offer(make_request(tenant="t0", priority=1), 0.0, 0.0)
        gate.offer(make_request(tenant="t1", priority=1), 0.0, 0.0)
        # lowest priority in the building: would be shed at the door,
        # but the opt-in converts that into a queued sampled pass
        refusal, shed = gate.offer(self.opted(priority=0), 1.0, 1.0)
        assert refusal is None and shed == []
        assert gate.total_backlog == 3  # grows past max_backlog
        assert gate.degraded_to_sample == 1
        queued = [q for q in gate.pending() if q.approx]
        assert len(queued) == 1
        assert queued[0].request.sample_fraction == 0.25

    def test_opted_in_victim_gets_one_reprieve(self):
        gate = self.two_tenant_gate()
        gate.offer(self.opted(tenant="t0", priority=0), 0.0, 0.0)
        gate.offer(make_request(tenant="t1", priority=1), 0.0, 0.0)
        refusal, shed = gate.offer(
            make_request(tenant="t1", priority=2), 1.0, 1.0
        )
        # the would-be victim stays queued, marked for a sampled pass
        assert refusal is None and shed == []
        assert gate.total_backlog == 3
        victim = gate.head("t0")
        assert victim.approx
        assert gate.degraded_to_sample == 1

    def test_second_eviction_is_genuine(self):
        gate = self.two_tenant_gate()
        gate.offer(self.opted(tenant="t0", priority=0), 0.0, 0.0)
        gate.offer(make_request(tenant="t1", priority=1), 0.0, 0.0)
        gate.offer(make_request(tenant="t1", priority=2), 1.0, 1.0)
        assert gate.head("t0").approx  # reprieve spent
        refusal, shed = gate.offer(
            make_request(tenant="t1", priority=2), 2.0, 2.0
        )
        assert refusal is None
        assert len(shed) == 1
        assert shed[0].outcome is Outcome.SHED
        assert shed[0].request.tenant == "t0"

    def test_non_opted_requests_shed_as_before(self):
        gate = self.two_tenant_gate()
        gate.offer(make_request(tenant="t0", priority=1), 0.0, 0.0)
        gate.offer(make_request(tenant="t1", priority=1), 0.0, 0.0)
        refusal, shed = gate.offer(
            make_request(tenant="t0", priority=0), 1.0, 1.0
        )
        assert refusal is not None
        assert refusal.outcome is Outcome.SHED
        assert shed == []

    def test_opt_out_flag_restores_pure_shedding(self):
        gate = self.two_tenant_gate(approx_on_overload=False)
        gate.offer(make_request(tenant="t0", priority=1), 0.0, 0.0)
        gate.offer(make_request(tenant="t1", priority=1), 0.0, 0.0)
        refusal, _ = gate.offer(self.opted(priority=0), 1.0, 1.0)
        assert refusal is not None
        assert refusal.outcome is Outcome.SHED
        assert gate.degraded_to_sample == 0

    def test_sample_key_distinguishes_degraded_requests(self):
        gate = self.two_tenant_gate()
        gate.offer(self.opted(tenant="t0"), 0.0, 0.0)
        exact = gate.head("t0")
        assert exact.sample_key == (False, None)
        exact.approx = True
        assert exact.sample_key == (True, 0.25)


class TestTenantStats:
    def test_conservation_cross_checks_intake(self):
        stats = TenantStats()
        stats.note_submitted()
        assert not stats.conserved()  # intake without an outcome yet
        stats.record(
            Response(request=make_request(), outcome=Outcome.OK)
        )
        assert stats.conserved()
        assert stats.accepted == 1
