"""Tests for the structured CLI/library logger."""

import pytest

from repro.obs.log import LEVELS, Logger, format_fields, get_logger, set_level


class TestFormatFields:
    def test_key_value_rendering(self):
        assert format_fields({"a": 1, "b": "x"}) == "a=1 b=x"

    def test_floats_compact(self):
        assert format_fields({"r": 0.25}) == "r=0.25"

    def test_spaces_quoted(self):
        assert format_fields({"msg": "two words"}) == 'msg="two words"'

    def test_empty(self):
        assert format_fields({}) == ""


class TestStreams:
    def test_info_to_stdout_without_prefix(self, capsys):
        Logger("t").info("hello", n=2)
        captured = capsys.readouterr()
        assert captured.out == "hello n=2\n"
        assert captured.err == ""

    def test_warning_and_error_to_stderr_with_prefix(self, capsys):
        logger = Logger("t")
        logger.warning("careful")
        logger.error("broken")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "warning: careful\n" in captured.err
        assert "error: broken\n" in captured.err

    def test_debug_hidden_by_default(self, capsys):
        logger = Logger("t")
        logger.debug("noise")
        assert capsys.readouterr().err == ""
        logger.verbose()
        logger.debug("noise")
        assert "debug: noise" in capsys.readouterr().err


class TestLevels:
    def test_quiet_suppresses_info_keeps_errors(self, capsys):
        logger = Logger("t")
        logger.quiet()
        logger.info("report")
        logger.error("still visible")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "still visible" in captured.err

    def test_is_enabled(self):
        logger = Logger("t", level="warning")
        assert not logger.is_enabled("info")
        assert logger.is_enabled("error")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            Logger("t", level="loud")

    def test_numeric_level_accepted(self):
        logger = Logger("t", level=LEVELS["error"])
        assert not logger.is_enabled("warning")


class TestRegistry:
    def test_get_logger_is_singleton_per_name(self):
        assert get_logger("repro.x") is get_logger("repro.x")
        assert get_logger("repro.x") is not get_logger("repro.y")

    def test_set_level_by_name_and_globally(self, capsys):
        a, b = get_logger("repro.a"), get_logger("repro.b")
        set_level("quiet", "repro.a")
        a.info("hidden")
        b.info("shown")
        assert capsys.readouterr().out == "shown\n"
        set_level("quiet")
        b.info("now hidden")
        assert capsys.readouterr().out == ""
        set_level("info")  # restore for other tests
