"""Tests for index compaction."""


from repro.baselines.grep import grep_lines
from repro.core.query import parse_query
from repro.datasets.synthetic import generator_for
from repro.index.compaction import compact_index, compact_row
from repro.system.mithrilog import MithriLogSystem


def fragmented_system(n_lines=3000, flush_every=200):
    """Ingest with frequent snapshot flushes: maximum fragmentation."""
    lines = generator_for("Liberty2").generate(n_lines)
    system = MithriLogSystem()
    t = 0.0
    for base in range(0, n_lines, flush_every):
        system.ingest(lines[base : base + flush_every])
        t += 1.0
        system.index.flush(timestamp=t)
    return system, lines


class TestCompaction:
    def test_query_results_unchanged(self):
        system, lines = fragmented_system()
        queries = [
            parse_query("session AND opened"),
            parse_query("kernel: AND NOT nfs:"),
            parse_query("panic:"),
        ]
        before = [sorted(system.query(q).matched_lines) for q in queries]
        report = compact_index(system.index)
        after = [sorted(system.query(q).matched_lines) for q in queries]
        assert before == after
        assert report.rows  # something was compacted

    def test_root_visits_reduced(self):
        system, _lines = fragmented_system()
        report = compact_index(system.index)
        assert report.total_visits_after <= report.total_visits_before
        # heavy fragmentation (15 flushes) leaves real savings on the table
        assert report.visits_saved > 0

    def test_query_time_improves_on_fragmented_store(self):
        system, _lines = fragmented_system()
        query = parse_query("session AND opened")
        before = system.query(query).stats
        compact_index(system.index)
        after = system.query(query).stats
        assert after.index_root_visits <= before.index_root_visits
        assert after.index_time_s <= before.index_time_s

    def test_single_row_compaction(self):
        system, _lines = fragmented_system(n_lines=1000, flush_every=100)
        row_id = next(iter(system.index.table._rows))
        result = compact_row(system.index, row_id)
        assert result.addresses >= 0
        assert result.root_visits_after <= max(result.root_visits_before, 1)

    def test_compaction_idempotent(self):
        system, _lines = fragmented_system(n_lines=1500, flush_every=150)
        compact_index(system.index)
        report2 = compact_index(system.index)
        assert report2.visits_saved == 0

    def test_further_ingest_after_compaction(self):
        system, lines = fragmented_system(n_lines=1200, flush_every=150)
        compact_index(system.index)
        more = generator_for("Liberty2", seed=77).generate(300)
        system.ingest(more)
        query = parse_query("session AND opened")
        expected = grep_lines(query, lines + more)
        assert sorted(system.query(query).matched_lines) == sorted(expected)
