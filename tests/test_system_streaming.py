"""Tests for streaming ingestion."""

import pytest

from repro.baselines.grep import grep_lines
from repro.core.query import parse_query
from repro.datasets.synthetic import generator_for
from repro.errors import IngestError
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.system.mithrilog import MithriLogSystem
from repro.system.streaming import StreamingIngestor


@pytest.fixture(scope="module")
def corpus():
    return generator_for("Liberty2").generate(2000)


class TestArrival:
    def test_batches_persist_automatically(self, corpus):
        ingestor = StreamingIngestor(MithriLogSystem(), batch_lines=100)
        for line in corpus[:250]:
            ingestor.append(line)
        assert ingestor.lines_ingested == 200
        assert ingestor.pending_lines == 50

    def test_flush_persists_tail(self, corpus):
        ingestor = StreamingIngestor(MithriLogSystem(), batch_lines=100)
        ingestor.extend(corpus[:130])
        assert ingestor.flush() == 30
        assert ingestor.pending_lines == 0
        assert ingestor.flush() == 0

    def test_newline_in_append_rejected(self):
        ingestor = StreamingIngestor(MithriLogSystem())
        with pytest.raises(IngestError):
            ingestor.append(b"two\nlines")

    def test_validation(self):
        with pytest.raises(IngestError):
            StreamingIngestor(MithriLogSystem(), batch_lines=0)
        with pytest.raises(IngestError):
            StreamingIngestor(MithriLogSystem(), snapshot_every_s=0)
        ingestor = StreamingIngestor(MithriLogSystem())
        with pytest.raises(IngestError):
            ingestor.extend([b"a"], timestamps=[1.0, 2.0])

    def test_context_manager_flushes(self, corpus):
        system = MithriLogSystem()
        with StreamingIngestor(system, batch_lines=10_000) as ingestor:
            ingestor.extend(corpus[:120])
        assert ingestor.pending_lines == 0
        assert system.total_lines == 120


class TestQueryMidStream:
    def test_results_complete_including_pending(self, corpus):
        query = parse_query("session AND opened")
        expected = grep_lines(query, corpus[:500])
        ingestor = StreamingIngestor(MithriLogSystem(), batch_lines=128)
        ingestor.extend(corpus[:500])
        assert ingestor.pending_lines > 0  # some tail not yet persisted
        outcome = ingestor.query(query)
        assert sorted(outcome.matched_lines) == sorted(expected)

    def test_pending_excluded_when_asked(self, corpus):
        query = parse_query("session AND opened")
        ingestor = StreamingIngestor(MithriLogSystem(), batch_lines=128)
        ingestor.extend(corpus[:500])
        with_pending = ingestor.query(query, include_pending=True)
        without = ingestor.query(query, include_pending=False)
        assert len(without.matched_lines) <= len(with_pending.matched_lines)

    def test_per_query_counts_cover_pending(self, corpus):
        q1 = parse_query("kernel:")
        q2 = parse_query("sshd")
        ingestor = StreamingIngestor(MithriLogSystem(), batch_lines=128)
        ingestor.extend(corpus[:500])
        outcome = ingestor.query(q1, q2)
        assert outcome.per_query_counts[0] == len(grep_lines(q1, corpus[:500]))
        assert outcome.per_query_counts[1] == len(grep_lines(q2, corpus[:500]))


class TestSnapshotCadence:
    def test_snapshots_fire_on_time_cadence(self, corpus):
        epochs = [float(ln.split()[1]) for ln in corpus]
        span = epochs[-1] - epochs[0]
        system = MithriLogSystem()
        ingestor = StreamingIngestor(
            system, batch_lines=100, snapshot_every_s=span / 5
        )
        ingestor.extend(corpus, timestamps=epochs)
        ingestor.flush()
        assert len(system.index.snapshots.snapshots) >= 3

    def test_no_snapshots_without_timestamps(self, corpus):
        system = MithriLogSystem()
        ingestor = StreamingIngestor(system, batch_lines=100, snapshot_every_s=1.0)
        ingestor.extend(corpus[:300])
        ingestor.flush()
        assert len(system.index.snapshots.snapshots) == 0


class TestPendingCap:
    def test_cap_validation(self):
        with pytest.raises(IngestError):
            StreamingIngestor(MithriLogSystem(), max_pending_lines=0)
        with pytest.raises(IngestError):
            StreamingIngestor(MithriLogSystem(), overflow="drop-oldest")

    def test_raise_policy_surfaces_backpressure(self, corpus):
        ingestor = StreamingIngestor(
            MithriLogSystem(), batch_lines=512, max_pending_lines=3
        )
        ingestor.extend(corpus[:3])
        with pytest.raises(IngestError, match="pending buffer full"):
            ingestor.append(corpus[3])
        # the buffer itself is intact: flushing drains it and unblocks
        assert ingestor.flush() == 3
        ingestor.append(corpus[3])
        assert ingestor.pending_lines == 1

    def test_shed_policy_drops_and_counts(self, corpus):
        ingestor = StreamingIngestor(
            MithriLogSystem(),
            batch_lines=512,
            max_pending_lines=5,
            overflow="shed",
        )
        ingestor.extend(corpus[:20])
        assert ingestor.pending_lines == 5
        assert ingestor.lines_shed == 15
        ingestor.flush()
        assert ingestor.lines_ingested == 5

    def test_cap_above_batch_never_binds(self, corpus):
        # auto-flush at batch_lines empties the buffer before the cap
        ingestor = StreamingIngestor(
            MithriLogSystem(), batch_lines=50, max_pending_lines=100
        )
        ingestor.extend(corpus[:500])
        assert ingestor.lines_shed == 0
        assert ingestor.pending_lines < 50


class TestBackpressureMetrics:
    """The arrival buffer exports its state: pending-depth gauge and
    overflow-shed counter, both registered at construction so dashboards
    see zeros instead of holes before the first event."""

    def test_pending_gauge_tracks_the_buffer(self, corpus):
        registry = MetricsRegistry()
        with use_registry(registry):
            ingestor = StreamingIngestor(MithriLogSystem(), batch_lines=100)
            gauge = registry.get("mithrilog_ingest_pending_lines")
            assert gauge.value() == 0.0
            ingestor.extend(corpus[:30])
            assert gauge.value() == 30.0
            ingestor.extend(corpus[30:120])  # crosses one auto-flush
            assert gauge.value() == float(ingestor.pending_lines) == 20.0
            ingestor.flush()
            assert gauge.value() == 0.0

    def test_overflow_shed_counter(self, corpus):
        registry = MetricsRegistry()
        with use_registry(registry):
            ingestor = StreamingIngestor(
                MithriLogSystem(),
                batch_lines=512,
                max_pending_lines=5,
                overflow="shed",
            )
            counter = registry.get("mithrilog_ingest_overflow_shed_total")
            assert counter.value() == 0.0
            ingestor.extend(corpus[:20])
            assert counter.value() == 15.0
            assert counter.value() == float(ingestor.lines_shed)

    def test_raise_policy_sheds_nothing(self, corpus):
        registry = MetricsRegistry()
        with use_registry(registry):
            ingestor = StreamingIngestor(
                MithriLogSystem(), batch_lines=512, max_pending_lines=3
            )
            ingestor.extend(corpus[:3])
            with pytest.raises(IngestError):
                ingestor.append(corpus[3])
            counter = registry.get("mithrilog_ingest_overflow_shed_total")
            assert counter.value() == 0.0

    def test_disabled_registry_keeps_ingest_working(self, corpus):
        with use_registry(None):
            ingestor = StreamingIngestor(MithriLogSystem(), batch_lines=100)
            ingestor.extend(corpus[:250])
            assert ingestor.lines_ingested == 200
