"""Standing queries: incremental evaluation, windows, threshold alerts.

The registry watches the future, not the past: pages sealed before a
query registers never count, and each flush is evaluated exactly once
over only its newly sealed pages.
"""

import pytest

from repro.core.query import parse_query
from repro.errors import QueryError
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import AlertState
from repro.stream import (
    StandingQuery,
    StandingQueryRegistry,
    Threshold,
    WindowSpec,
    validate_stream_status,
)
from repro.system.mithrilog import MithriLogSystem
from repro.system.streaming import StreamingIngestor

CLEAN = [b"svc worker-%d INFO served req=%d" % (i % 4, i) for i in range(600)]
NOISY = [b"svc worker-%d ERROR backend timeout req=%d" % (i % 4, i) for i in range(600)]


def fresh(batch_lines=100, interval_s=0.0005):
    system = MithriLogSystem(seed=0)
    ingestor = StreamingIngestor(system, batch_lines=batch_lines)
    registry = StandingQueryRegistry(system, interval_s=interval_s)
    registry.attach(ingestor)
    return system, ingestor, registry


def stream(ingestor, lines):
    with ingestor:
        for line in lines:
            ingestor.append(line)


class TestRegistration:
    def test_duplicate_name_rejected(self):
        _, _, registry = fresh()
        registry.register(StandingQuery(name="q", query=parse_query("ERROR")))
        with pytest.raises(QueryError):
            registry.register(
                StandingQuery(name="q", query=parse_query("WARN"))
            )

    def test_unknown_query_lookups_rejected(self):
        _, _, registry = fresh()
        with pytest.raises(QueryError):
            registry.aggregator("ghost")
        with pytest.raises(QueryError):
            registry.alert_state("ghost")

    def test_nameless_and_aggregate_less_queries_rejected(self):
        with pytest.raises(QueryError):
            StandingQuery(name="", query=parse_query("x"))
        with pytest.raises(QueryError):
            StandingQuery(name="q", query=parse_query("x"), aggregates=())
        with pytest.raises(QueryError):
            StandingQuery(
                name="q", query=parse_query("x"), aggregates=("median",)
            )

    def test_text_queries_coerced_at_the_front_door(self):
        # the same str/bytes coercion every other front door offers
        standing = StandingQuery(name="q", query="ERROR AND backend")
        assert str(standing.query) == str(parse_query("ERROR AND backend"))
        assert str(StandingQuery(name="b", query=b"ERROR").query) == str(
            parse_query("ERROR")
        )
        with pytest.raises(QueryError):
            StandingQuery(name="q", query=42)

    def test_registration_order_preserved(self):
        _, _, registry = fresh()
        for name in ("c", "a", "b"):
            registry.register(
                StandingQuery(name=name, query=parse_query("x"))
            )
        assert [q.name for q in registry.standing] == ["c", "a", "b"]


class TestThresholdValidation:
    def test_bad_aggregate_rejected(self):
        with pytest.raises(QueryError):
            Threshold(value=1.0, aggregate="p99")

    def test_bad_op_rejected(self):
        with pytest.raises(QueryError):
            Threshold(value=1.0, op=">")

    def test_breach_directions(self):
        assert Threshold(value=10.0, op=">=").breached(10.0)
        assert not Threshold(value=10.0, op=">=").breached(9.9)
        assert Threshold(value=10.0, op="<=").breached(10.0)
        assert not Threshold(value=10.0, op="<=").breached(10.1)

    def test_round_trip(self):
        threshold = Threshold(value=40.0, aggregate="rate", op="<=")
        assert Threshold.from_dict(threshold.to_dict()) == threshold
        with pytest.raises(QueryError):
            Threshold.from_dict({"value": 1.0, "severity": "page"})


class TestIncrementalEvaluation:
    def test_history_is_not_backfilled(self):
        system = MithriLogSystem(seed=0)
        system.ingest(NOISY[:300])  # matching history, sealed pre-registration
        ingestor = StreamingIngestor(system, batch_lines=100)
        registry = StandingQueryRegistry(system)
        registry.attach(ingestor)
        registry.register(
            StandingQuery(name="errors", query=parse_query("ERROR"))
        )
        stream(ingestor, CLEAN[:200])  # nothing in the stream matches
        agg = registry.aggregator("errors")
        assert agg.matches_total == 0
        # the history is still there for batch queries — only the
        # standing evaluation skips it
        assert system.query(parse_query("ERROR")).per_query_counts[0] == 300

    def test_matches_track_streamed_lines_exactly(self):
        _, ingestor, registry = fresh()
        registry.register(
            StandingQuery(name="errors", query=parse_query("ERROR"))
        )
        mixed = CLEAN[:150] + NOISY[:250] + CLEAN[150:200]
        stream(ingestor, mixed)
        assert registry.aggregator("errors").matches_total == 250

    def test_each_flush_evaluates_once_per_query(self):
        _, ingestor, registry = fresh(batch_lines=100)
        registry.register(StandingQuery(name="a", query=parse_query("req")))
        registry.register(StandingQuery(name="b", query=parse_query("INFO")))
        stream(ingestor, CLEAN[:300])  # 3 full batches, no ragged tail
        assert registry.aggregator("a").evaluations == 3
        assert registry.aggregator("b").evaluations == 3
        assert registry.evaluations == 6

    def test_evaluate_new_pages_reports_the_page_delta(self):
        system, ingestor, registry = fresh()
        registry.register(StandingQuery(name="q", query=parse_query("req")))
        stream(ingestor, CLEAN[:200])
        before = len(system.index.data_pages)
        assert before > 0
        # no new pages sealed since the flush listener already ran
        assert registry.evaluate_new_pages() == 0

    def test_distinct_templates_counts_shapes_not_lines(self):
        _, ingestor, registry = fresh()
        registry.register(
            StandingQuery(
                name="errors",
                query=parse_query("ERROR"),
                window=WindowSpec(kind="sliding", width_s=10.0),
            )
        )
        stream(ingestor, NOISY[:200])
        agg = registry.aggregator("errors")
        distinct = agg.latest("distinct_templates")
        # 200 matched lines, but they all share one template shape
        assert distinct is not None
        assert 1 <= distinct < 10


class TestThresholdAlerts:
    def standing_error_watch(self):
        return StandingQuery(
            name="errors",
            query=parse_query("ERROR"),
            window=WindowSpec(kind="sliding", width_s=1.0),
            threshold=Threshold(value=50.0, aggregate="count", op=">="),
        )

    def test_clean_stream_never_fires(self):
        _, ingestor, registry = fresh()
        registry.register(self.standing_error_watch())
        stream(ingestor, CLEAN)
        assert registry.alert_state("errors") is AlertState.OK
        assert registry.monitor.alerts == []

    def test_burst_fires_the_alert(self):
        _, ingestor, registry = fresh()
        registry.register(self.standing_error_watch())
        stream(ingestor, CLEAN[:200] + NOISY)
        assert registry.alert_state("errors") is AlertState.FIRING
        assert any(
            alert.slo == "stream-errors" for alert in registry.monitor.alerts
        )

    def test_thresholdless_query_is_always_ok(self):
        _, ingestor, registry = fresh()
        registry.register(StandingQuery(name="shape", query=parse_query("req")))
        stream(ingestor, NOISY)
        assert registry.alert_state("shape") is AlertState.OK

    def test_flight_recorder_snapshots_at_fire_time(self, tmp_path):
        system, ingestor, registry = fresh()
        registry.register(self.standing_error_watch())
        recorder = FlightRecorder(
            registry.monitor, system=system, out_dir=tmp_path
        )
        stream(ingestor, CLEAN[:200] + NOISY)
        assert registry.alert_state("errors") is AlertState.FIRING
        assert recorder.written
        assert all(path.exists() for path in recorder.written)


class TestStatusPayload:
    def test_snapshot_validates(self):
        _, ingestor, registry = fresh()
        registry.register(
            StandingQuery(
                name="errors",
                query=parse_query("ERROR"),
                threshold=Threshold(value=50.0),
            )
        )
        registry.register(StandingQuery(name="shape", query=parse_query("req")))
        stream(ingestor, CLEAN[:200] + NOISY[:300])
        payload = registry.status_payload()
        assert validate_stream_status(payload) == []
        assert payload["evaluations"] == registry.evaluations
        assert payload["pages_seen"] > 0
        by_name = {
            entry["definition"]["name"]: entry for entry in payload["queries"]
        }
        assert "alerts" in by_name["errors"]
        assert "alerts" not in by_name["shape"]

    def test_deterministic_across_runs(self):
        def run():
            _, ingestor, registry = fresh()
            registry.register(
                StandingQuery(
                    name="errors",
                    query=parse_query("ERROR"),
                    threshold=Threshold(value=50.0),
                )
            )
            stream(ingestor, CLEAN[:100] + NOISY[:400])
            return registry.status_payload()

        assert run() == run()
