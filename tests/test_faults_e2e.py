"""End-to-end robustness: a cluster under injected storage faults.

The acceptance property of the fault framework: ingest >= 10k lines into
a sharded deployment, inject a 1% page-read fault rate (plus bit flips),
and every query must either return the exact grep-oracle result (after
the device's retries absorbed the faults) or come back *explicitly*
degraded, listing the failing shards — silent data loss is never an
outcome.
"""

import pytest

from repro.baselines.grep import grep_lines
from repro.core.query import parse_query
from repro.datasets.synthetic import generator_for
from repro.faults import (
    AddressSchedule,
    BernoulliSchedule,
    ShardFaultInjector,
    inject_page_faults,
)
from repro.system.cluster import MithriLogCluster

SEED = 20_210_818  # the paper's MICRO camera-ready year+date, fixed forever
NUM_LINES = 10_500
NUM_SHARDS = 4

QUERY_EXPRS = [
    "panic:",
    "session AND opened",
    "sshd AND NOT Failed",
    "NOT kernel:",  # full scan: touches every data page on every shard
]


@pytest.fixture(scope="module")
def corpus():
    return generator_for("Liberty2").generate(NUM_LINES)


@pytest.fixture(scope="module")
def cluster(corpus):
    built = MithriLogCluster(num_shards=NUM_SHARDS, seed=SEED)
    built.ingest(corpus)
    return built


def _shard_slices(corpus):
    base, extra = len(corpus) // NUM_SHARDS, len(corpus) % NUM_SHARDS
    slices, start = [], 0
    for index in range(NUM_SHARDS):
        size = base + (1 if index < extra else 0)
        slices.append(corpus[start : start + size])
        start += size
    return slices


class TestTransientFaultStorm:
    def test_queries_survive_one_percent_read_faults(self, cluster, corpus):
        log = inject_page_faults(
            cluster,
            read_errors=BernoulliSchedule(0.01, seed=SEED),
            bit_flips=BernoulliSchedule(0.005, seed=SEED + 1),
            seed=SEED,
        )
        try:
            retries = 0
            for expr in QUERY_EXPRS:
                query = parse_query(expr)
                outcome = cluster.query(query)
                oracle = grep_lines(query, corpus)
                if outcome.complete:
                    assert sorted(outcome.matched_lines) == sorted(oracle), expr
                else:
                    # degraded is an acceptable outcome, but it must be loud
                    assert outcome.degraded and outcome.failed_shards, expr
                    assert all(e.message for e in outcome.shard_errors)
                retries += sum(o.stats.read_retries for o in outcome.per_shard)
            # the storm was real and the retry machinery absorbed it
            assert log.count("read_error") > 0
            assert log.count("bit_flip") > 0
            assert retries > 0
        finally:
            for shard in cluster.shards:
                shard.device.flash.fault_injector = None

    def test_clean_run_after_injection_removed(self, cluster, corpus):
        query = parse_query("panic:")
        outcome = cluster.query(query)
        assert outcome.complete
        assert sorted(outcome.matched_lines) == sorted(grep_lines(query, corpus))


class TestPersistentFaultDegradation:
    def test_dead_page_degrades_exactly_one_shard(self, cluster, corpus):
        victim_page = cluster.shards[0].index.data_pages[0]
        # shards have independent address spaces: poison only shard 0's
        log = inject_page_faults(
            cluster.shards[0], bad_addresses={victim_page}, seed=SEED
        )
        try:
            query = parse_query("NOT kernel:")  # full scan hits the dead page
            outcome = cluster.scan_all(query)
            assert outcome.degraded
            assert outcome.failed_shards == [0]
            assert outcome.shard_errors[0].error in (
                "BadBlockError",
                "ReadRetryExhaustedError",
            )
            # healthy shards still answer, and answer correctly
            healthy_lines = [
                line for s in _shard_slices(corpus)[1:] for line in s
            ]
            assert sorted(outcome.matched_lines) == sorted(
                grep_lines(query, healthy_lines)
            )
            assert log.count("bad_block") > 0
        finally:
            for shard in cluster.shards:
                shard.device.flash.fault_injector = None

    def test_downed_shard_is_reported_not_hidden(self, cluster, corpus):
        cluster.fault_injector = ShardFaultInjector(
            shard_down=AddressSchedule({2})
        )
        try:
            query = parse_query("panic:")
            outcome = cluster.query(query)
            assert outcome.failed_shards == [2]
            healthy = [
                line
                for i, s in enumerate(_shard_slices(corpus))
                if i != 2
                for line in s
            ]
            assert sorted(outcome.matched_lines) == sorted(
                grep_lines(query, healthy)
            )
        finally:
            cluster.fault_injector = None
