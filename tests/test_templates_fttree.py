"""Tests for FT-tree extraction and the Section 4.3 query compiler."""

import pytest

from repro.core.query import Term
from repro.errors import QueryError
from repro.templates.fttree import FTTree, FTTreeParams, Template


def figure7_corpus():
    """A corpus realising the paper's Figure 7 tree.

    Global frequency order must be A > B > C > D > E. Three templates:
    T1 = {A, B}, T2 = {A, C, D} (a prefix of T3's path), T3 = {A, C, D, E}.
    """
    lines = []
    lines += [b"A B"] * 10
    lines += [b"A C D"] * 6
    lines += [b"A C D E"] * 4
    # frequencies: A=20, B=10, C=10, D=10, E=4 -> tie-break B < C < D by name
    return lines


class TestFigure7:
    @pytest.fixture
    def tree(self):
        return FTTree.from_lines(figure7_corpus(), FTTreeParams(prune_threshold=8))

    def test_frequency_order(self, tree):
        f = tree.frequencies
        assert f[b"A"] == 20
        assert f[b"A"] > f[b"B"] >= f[b"C"] >= f[b"D"] > f[b"E"]

    def test_three_templates_extracted(self, tree):
        paths = {t.tokens for t in tree.templates}
        assert (b"A", b"B") in paths
        assert (b"A", b"C", b"D") in paths
        assert (b"A", b"C", b"D", b"E") in paths
        assert len(paths) == 3

    def test_template1_query_needs_no_negation(self, tree):
        t1 = next(t for t in tree.templates if t.tokens == (b"A", b"B"))
        query = tree.template_query(t1)
        terms = query.intersections[0].terms
        # C is a lower-frequency sibling of B: no negation needed (paper)
        assert set(terms) == {Term(b"A"), Term(b"B")}

    def test_template3_query_negates_higher_frequency_sibling(self, tree):
        t3 = next(t for t in tree.templates if t.tokens == (b"A", b"C", b"D", b"E"))
        query = tree.template_query(t3)
        terms = set(query.intersections[0].terms)
        # paper: ((A and C and not B) and D and E)
        assert terms == {
            Term(b"A"),
            Term(b"C"),
            Term(b"B", negative=True),
            Term(b"D"),
            Term(b"E"),
        }

    def test_joined_queries_form_single_offloadable_union(self, tree):
        t1 = next(t for t in tree.templates if t.tokens == (b"A", b"B"))
        t3 = next(t for t in tree.templates if t.tokens == (b"A", b"C", b"D", b"E"))
        joined = tree.template_query(t1) | tree.template_query(t3)
        assert len(joined.intersections) == 2
        assert joined.matches_line(b"A B extra")
        assert joined.matches_line(b"A C D E")
        assert not joined.matches_line(b"A C D")  # T2, matches neither

    def test_queries_discriminate_corpus_lines(self, tree):
        t1 = next(t for t in tree.templates if t.tokens == (b"A", b"B"))
        q1 = tree.template_query(t1)
        for line in figure7_corpus():
            assert q1.matches_line(line) == (line == b"A B")


class TestPruning:
    def test_variable_field_collapses(self):
        # 'user' appears everywhere; the user id varies wildly
        lines = [f"login user u{i}".encode() for i in range(50)] * 2
        tree = FTTree.from_lines(lines, FTTreeParams(prune_threshold=8))
        # one template: {login, user} with the ids pruned into a wildcard
        paths = {t.tokens for t in tree.templates}
        assert any(set(p) == {b"login", b"user"} for p in paths)
        assert all(
            not any(tok.startswith(b"u") and tok[1:].isdigit() for tok in p)
            for p in paths
        )

    def test_structure_below_wildcard_survives(self):
        # variable middle field, but a constant rare token below it
        lines = [f"connect port-{i} zfinal".encode() for i in range(40)]
        tree = FTTree.from_lines(lines, FTTreeParams(prune_threshold=8, min_support=10))
        paths = {t.tokens for t in tree.templates}
        assert any(b"zfinal" in p for p in paths)

    def test_min_support_filters_rare_paths(self):
        lines = [b"common alpha"] * 10 + [b"common beta"]
        tree = FTTree.from_lines(lines, FTTreeParams(min_support=2))
        paths = {t.tokens for t in tree.templates}
        assert (b"common", b"alpha") in paths
        assert all(b"beta" not in p for p in paths)


class TestClassification:
    def test_lines_classify_to_their_template(self):
        corpus = figure7_corpus()
        tree = FTTree.from_lines(corpus, FTTreeParams(prune_threshold=8))
        t = tree.classify_line(b"A B")
        assert t is not None and t.tokens == (b"A", b"B")

    def test_unknown_line_classifies_none_or_partial(self):
        tree = FTTree.from_lines(figure7_corpus(), FTTreeParams(prune_threshold=8))
        assert tree.classify_line(b"X Y Z") is None


class TestStopwords:
    def test_universal_tokens_filtered_when_enabled(self):
        lines = [f"HDR always u{i}".encode() for i in range(20)] * 2
        tree = FTTree.from_lines(
            lines, FTTreeParams(max_doc_frequency=0.9, prune_threshold=8)
        )
        assert b"HDR" in tree.stopwords
        assert all(b"HDR" not in t.tokens for t in tree.templates)

    def test_disabled_by_default(self):
        lines = [b"HDR msg"] * 10
        tree = FTTree.from_lines(lines)
        assert tree.stopwords == frozenset()
        assert any(b"HDR" in t.tokens for t in tree.templates)

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError):
            FTTreeParams(max_doc_frequency=0.0)
        with pytest.raises(ValueError):
            FTTreeParams(max_doc_frequency=1.5)


class TestParams:
    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            FTTreeParams(max_depth=0)
        with pytest.raises(ValueError):
            FTTreeParams(prune_threshold=1)
        with pytest.raises(ValueError):
            FTTreeParams(min_support=0)

    def test_template_str(self):
        t = Template(template_id=3, tokens=(b"A", b"B"), support=7)
        assert "T3" in str(t) and "A B" in str(t)

    def test_template_query_rejects_missing_token(self):
        tree = FTTree.from_lines(figure7_corpus())
        fake = Template(template_id=99, tokens=(b"ZZZ",), support=5)
        with pytest.raises(QueryError):
            tree.template_query(fake)
