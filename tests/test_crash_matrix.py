"""Crash-recovery matrix: truncate the WAL at every interesting offset.

Drives N batches through the journaled system, then simulates a crash by
cutting the journal at every record boundary plus several mid-record
offsets. Recovery must (a) never raise, (b) retain every acknowledged
batch wholly before the cut, and (c) never resurrect partial data from
beyond it.
"""

import random

import pytest

from repro.datasets.synthetic import generator_for
from repro.system.wal import JournaledMithriLog, decode_record


@pytest.fixture(scope="module")
def journal_image(tmp_path_factory):
    """Six ingested batches plus the resulting WAL image and boundaries."""
    base = tmp_path_factory.mktemp("wal-matrix")
    corpus = generator_for("BGL2").generate(240)
    batches = [corpus[i * 40 : (i + 1) * 40] for i in range(6)]
    journaled = JournaledMithriLog(base / "store")
    boundaries = [0]
    for batch in batches:
        journaled.ingest(batch)
        boundaries.append(journaled.wal.size_bytes)
    blob = journaled.wal.path.read_bytes()
    return batches, blob, boundaries


def _recover_from_cut(tmp_path, blob, cut, tag):
    store_dir = tmp_path / f"cut-{tag}-{cut}"
    store_dir.mkdir()
    (store_dir / "wal.bin").write_bytes(blob[:cut])
    return JournaledMithriLog.recover(store_dir)


class TestCrashMatrix:
    def test_every_record_boundary(self, journal_image, tmp_path):
        batches, blob, boundaries = journal_image
        for k, cut in enumerate(boundaries):
            recovered = _recover_from_cut(tmp_path, blob, cut, "boundary")
            expected = sum(len(b) for b in batches[:k])
            assert recovered.system.total_lines == expected, f"cut at {cut}"
            # the journal was repaired to exactly the surviving records
            assert recovered.wal.size_bytes == cut
            assert recovered.wal.scan().clean

    def test_mid_record_cuts_drop_only_the_torn_batch(self, journal_image, tmp_path):
        batches, blob, boundaries = journal_image
        rng = random.Random(13)
        for k in range(len(boundaries) - 1):
            lo, hi = boundaries[k], boundaries[k + 1]
            cuts = {lo + 1, hi - 1} | {rng.randrange(lo + 1, hi) for _ in range(3)}
            for cut in sorted(cuts):
                recovered = _recover_from_cut(tmp_path, blob, cut, f"mid{k}")
                expected = sum(len(b) for b in batches[:k])
                assert recovered.system.total_lines == expected, f"cut at {cut}"
                # repair trimmed the torn tail back to the last boundary
                assert recovered.wal.size_bytes == boundaries[k]

    def test_boundaries_match_record_decoding(self, journal_image):
        """The ingest-time size offsets are real record boundaries."""
        batches, blob, boundaries = journal_image
        pos, decoded = 0, [0]
        while pos < len(blob):
            lines, _, pos = decode_record(blob, pos)
            decoded.append(pos)
        assert decoded == boundaries
        assert [len(lines) for lines in (b for b in batches)] == [40] * 6

    def test_recovery_accepts_new_writes_after_tear(self, journal_image, tmp_path):
        """The regression the repair step exists for: ingesting after a
        torn-tail recovery must not orphan the new batch."""
        batches, blob, boundaries = journal_image
        cut = boundaries[3] + 5  # mid-record tear inside batch 3
        recovered = _recover_from_cut(tmp_path, blob, cut, "regrow")
        before = recovered.system.total_lines
        recovered.ingest([b"fresh line one", b"fresh line two"])
        again = JournaledMithriLog.recover(recovered.store_dir)
        assert again.system.total_lines == before + 2

    def test_checkpoint_plus_tail_replay(self, journal_image, tmp_path):
        """A checkpointed store plus a torn WAL tail recovers to the
        checkpoint contents + complete tail records."""
        batches, blob, boundaries = journal_image
        store_dir = tmp_path / "ckpt"
        journaled = JournaledMithriLog(store_dir)
        journaled.ingest(batches[0])
        journaled.checkpoint()
        journaled.ingest(batches[1])
        journaled.ingest(batches[2])
        # crash mid-append of batch 2: cut the journal 7 bytes short
        wal_blob = journaled.wal.path.read_bytes()
        journaled.wal.path.write_bytes(wal_blob[:-7])
        recovered = JournaledMithriLog.recover(store_dir)
        assert recovered.system.total_lines == len(batches[0]) + len(batches[1])
