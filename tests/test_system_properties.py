"""System-level property tests and fault injection.

The strongest invariant of the whole stack: for ANY corpus and ANY
representable query, ingest -> (compress -> store -> index -> decompress
-> filter) returns exactly what a naive grep over the original lines
returns. Hypothesis drives that end to end, plus failure-path checks
(corrupted flash pages, placement-failure fallbacks, oversized lines).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines.grep import grep_lines
from repro.core.query import IntersectionSet, Query, Term
from repro.errors import (
    IngestError,
    PageCorruptionError,
    ReadRetryExhaustedError,
)
from repro.system.mithrilog import MithriLogSystem

TOKENS = [b"alpha", b"beta", b"gamma", b"delta", b"noise", b"RAS-99"]


@st.composite
def _corpus(draw):
    n = draw(st.integers(1, 60))
    lines = []
    for _ in range(n):
        k = draw(st.integers(0, 5))
        lines.append(b" ".join(draw(st.sampled_from(TOKENS)) for _ in range(k)))
    return lines


@st.composite
def _query(draw):
    n_sets = draw(st.integers(1, 3))
    sets = []
    for _ in range(n_sets):
        n_terms = draw(st.integers(1, 3))
        terms = tuple(
            Term(draw(st.sampled_from(TOKENS)), negative=draw(st.booleans()))
            for _ in range(n_terms)
        )
        sets.append(IntersectionSet(terms=terms))
    return Query.of(*sets).simplified()


class TestEndToEndOracle:
    @given(_corpus(), _query())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_ingest_query_equals_grep(self, lines, query):
        if not query.intersections:
            return  # fully contradictory query: trivially empty everywhere
        system = MithriLogSystem()
        system.ingest(lines)
        for use_index in (True, False):
            outcome = system.query(query, use_index=use_index)
            expected = grep_lines(query, lines)
            assert outcome.matched_lines == expected

    @given(_corpus())
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_stored_text_roundtrips(self, lines):
        """Decompressing every stored page reconstructs the corpus."""
        system = MithriLogSystem()
        system.ingest(lines)
        rebuilt = []
        for addr in system.index.data_pages:
            page = system.device.flash.read_page(addr)
            rebuilt.append(system.codec.decompress(page.data))
        assert b"".join(rebuilt) == b"".join(ln + b"\n" for ln in lines)

    @given(_corpus(), _corpus(), _query())
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_incremental_ingest_equals_single_ingest(self, first, second, query):
        if not query.intersections:
            return
        a = MithriLogSystem()
        a.ingest(first)
        a.ingest(second)
        b = MithriLogSystem()
        b.ingest(first + second)
        assert a.query(query).matched_lines == b.query(query).matched_lines


class TestFaultInjection:
    def test_corrupted_data_page_raises_on_query(self):
        system = MithriLogSystem()
        system.ingest([b"alpha beta"] * 200)
        victim = system.index.data_pages[0]
        system.device.flash.corrupt_page(victim)
        # in-place corruption is persistent: the device retries its
        # bounded budget, then surfaces the failure (never silent data)
        with pytest.raises(ReadRetryExhaustedError) as caught:
            system.query(Query.single("alpha"))
        assert isinstance(caught.value.__cause__, PageCorruptionError)

    def test_corrupted_index_page_raises_on_lookup(self):
        system = MithriLogSystem()
        lines = [f"common{i % 4} filler".encode() for i in range(600)]
        system.ingest(lines)
        # persist all index state to flash, then corrupt a leaf page
        system.index.flush(timestamp=0.0)
        leaves = system.index.store.leaves
        assert leaves.pages_spilled > 0
        system.device.flash.corrupt_page(leaves._page_addrs[0])
        with pytest.raises(PageCorruptionError):
            system.query(Query.single("common0"))

    def test_unoffloadable_query_falls_back_and_answers(self):
        system = MithriLogSystem()
        lines = [b"alpha beta", b"gamma delta", b"alpha gamma"]
        system.ingest(lines)
        # 9 intersection sets exceed the 8 flag pairs
        queries = [Query.single(t) for t in (b"alpha",) * 1] + [
            Query.single(f"pad{i}") for i in range(8)
        ]
        outcome = system.query(*queries)
        assert not outcome.stats.offloaded
        assert outcome.per_query_counts[0] == 2

    @staticmethod
    def _incompressible_line(nbytes: int) -> bytes:
        import random

        rng = random.Random(42)
        return bytes(rng.choice(range(0x21, 0x7F)) for _ in range(nbytes))

    def test_compressible_oversized_line_is_fine(self):
        # a 10 KB line of one repeated byte compresses into a page easily
        system = MithriLogSystem()
        report = system.ingest([b"x" * 10_000])
        assert report.pages_written == 1

    def test_incompressible_oversized_line_rejected_at_ingest(self):
        system = MithriLogSystem()
        with pytest.raises(IngestError):
            system.ingest([self._incompressible_line(8_000)])

    def test_ingest_failure_leaves_no_partial_page_entries(self):
        system = MithriLogSystem()
        system.ingest([b"alpha beta"] * 10)
        pages_before = system.index.total_data_pages
        with pytest.raises(IngestError):
            system.ingest([b"ok line", self._incompressible_line(8_000)])
        # the failed batch may have stored a prefix, but index bookkeeping
        # must stay internally consistent and queryable
        assert system.index.total_data_pages >= pages_before
        outcome = system.query(Query.single("alpha"))
        assert len(outcome.matched_lines) == 10
