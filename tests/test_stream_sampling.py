"""Tests for seeded page sampling and the Horvitz–Thompson estimator.

The two properties ``docs/STREAMING.md`` promises: sample membership is
a pure function of ``(seed, fingerprint, page id)`` — no RNG state, no
dependence on the rest of the candidate set — and the reported interval
is honest about its own uncertainty (exact when degenerate, rule-of-
three when empty).
"""

import math

import pytest

from repro.errors import QueryError
from repro.stream.sampling import (
    estimate_matches,
    page_in_sample,
    sample_pages,
)


class TestPageSelection:
    def test_membership_is_a_pure_function(self):
        decisions = [
            page_in_sample(7, "abc123", page, 0.3) for page in range(50)
        ]
        again = [
            page_in_sample(7, "abc123", page, 0.3) for page in range(50)
        ]
        assert decisions == again
        assert any(decisions) and not all(decisions)

    def test_seed_and_fingerprint_shift_the_sample(self):
        pages = list(range(300))
        base = sample_pages(pages, seed=0, fingerprint="q", fraction=0.25)
        reseeded = sample_pages(pages, seed=1, fingerprint="q", fraction=0.25)
        requeried = sample_pages(pages, seed=0, fingerprint="r", fraction=0.25)
        assert base != reseeded
        assert base != requeried

    def test_fraction_controls_the_sampling_rate(self):
        pages = list(range(2000))
        kept = sample_pages(pages, seed=3, fingerprint="q", fraction=0.2)
        # Bernoulli(0.2) over 2000 draws: ~400 expected, sd ~18
        assert 300 < len(kept) < 500

    def test_membership_ignores_other_candidates(self):
        # the same page is in or out regardless of what else is offered —
        # this is what makes the scan worker-partition-invariant
        pages = list(range(100))
        kept = set(sample_pages(pages, seed=5, fingerprint="q", fraction=0.4))
        for lo in (0, 25, 50):
            window = pages[lo : lo + 25]
            sub = sample_pages(window, seed=5, fingerprint="q", fraction=0.4)
            if set(window) & kept:
                assert set(sub) == set(window) & kept

    def test_order_preserved(self):
        pages = [9, 2, 31, 4, 17, 80, 5]
        kept = sample_pages(pages, seed=1, fingerprint="q", fraction=0.6)
        positions = [pages.index(p) for p in kept]
        assert positions == sorted(positions)

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.1, 1.5])
    def test_degenerate_fractions_rejected(self, fraction):
        with pytest.raises(QueryError):
            sample_pages([1, 2, 3], seed=0, fingerprint="q", fraction=fraction)

    def test_never_returns_an_empty_sample(self):
        pages = [10, 11, 12]
        kept = sample_pages(pages, seed=0, fingerprint="q", fraction=1e-9)
        assert len(kept) == 1
        # the fallback is deterministic too
        assert kept == sample_pages(
            pages, seed=0, fingerprint="q", fraction=1e-9
        )

    def test_empty_candidates_stay_empty(self):
        assert sample_pages([], seed=0, fingerprint="q", fraction=0.5) == []


class TestEstimator:
    def test_scales_by_the_realised_fraction(self):
        est = estimate_matches(
            matches_seen=10, pages_scanned=25, pages_total=100, fraction=0.25
        )
        assert est.estimate == pytest.approx(40.0)
        half = 1.96 * math.sqrt(10 * 0.75) / 0.25
        assert est.half_width == pytest.approx(half)
        assert est.ci_low == pytest.approx(40.0 - half)
        assert est.ci_high == pytest.approx(40.0 + half)
        assert est.covers(40)

    def test_full_sample_is_exact(self):
        est = estimate_matches(
            matches_seen=17, pages_scanned=50, pages_total=50, fraction=0.9
        )
        assert est.estimate == 17.0
        assert est.ci_low == est.ci_high == 17.0
        assert est.covers(17) and not est.covers(18)

    def test_zero_matches_uses_rule_of_three(self):
        est = estimate_matches(
            matches_seen=0, pages_scanned=20, pages_total=100, fraction=0.2
        )
        assert est.estimate == 0.0
        assert est.ci_low == 0.0
        assert est.ci_high == pytest.approx(3.0 / 0.2)
        assert est.covers(0) and est.covers(10)

    def test_no_pages_degenerates_to_the_raw_count(self):
        est = estimate_matches(
            matches_seen=0, pages_scanned=0, pages_total=0, fraction=0.5
        )
        assert est.estimate == 0.0
        assert est.half_width == 0.0

    def test_unsupported_confidence_rejected(self):
        with pytest.raises(QueryError):
            estimate_matches(1, 10, 100, 0.1, confidence=0.5)

    @pytest.mark.parametrize("confidence", [0.80, 0.90, 0.95, 0.99])
    def test_supported_confidence_levels(self, confidence):
        est = estimate_matches(5, 10, 100, 0.1, confidence=confidence)
        assert est.confidence == confidence
        assert est.ci_low <= est.estimate <= est.ci_high

    def test_wider_confidence_widens_the_interval(self):
        narrow = estimate_matches(5, 10, 100, 0.1, confidence=0.80)
        wide = estimate_matches(5, 10, 100, 0.1, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_relative_error_floors_at_one_match(self):
        est = estimate_matches(10, 25, 100, 0.25)
        assert est.relative_error(40) == pytest.approx(0.0)
        assert est.relative_error(80) == pytest.approx(0.5)
        # truth of zero would divide by zero without the floor
        assert est.relative_error(0) == pytest.approx(est.estimate)

    def test_interval_never_goes_negative(self):
        est = estimate_matches(1, 30, 100, 0.3)
        assert est.ci_low >= 0.0

    def test_to_dict_is_json_ready(self):
        payload = estimate_matches(10, 25, 100, 0.25).to_dict()
        assert payload["estimate"] == pytest.approx(40.0)
        assert set(payload) == {
            "matches_seen",
            "pages_scanned",
            "pages_total",
            "fraction",
            "estimate",
            "ci_low",
            "ci_high",
            "confidence",
        }
