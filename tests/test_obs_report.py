"""A/B workload reports: slice diffs, hidden regressions, validation."""

import json

import pytest

from repro.analytics.workload import mine
from repro.obs.check import check_file
from repro.obs.journal import QueryJournal
from repro.obs.report import (
    ReportError,
    build_ab_report,
    looks_like_ab_report,
    validate_ab_report,
)


def journal_with(spec):
    """spec: list of (template, tenant, n, latency_ms, outcome)."""
    journal = QueryJournal()
    at = 0.0
    for template, tenant, n, latency_ms, outcome in spec:
        for _ in range(n):
            at += 0.005
            if outcome == "ok":
                journal.observe_direct(
                    template,
                    latency_s=latency_ms / 1e3,
                    matches=1,
                    stage="flash",
                    completed_at_s=at,
                    tenant=tenant,
                )
            else:
                from tests.test_obs_journal import make_record

                journal.note_submitted(tenant)
                journal.append(
                    make_record(
                        seq=len(journal.records),
                        outcome=outcome,
                        tenant=tenant,
                        template=journal.register_template(template),
                    )
                )
    return journal


BASE = [
    ("fast", "t0", 10, 2.0, "ok"),
    ("fast", "t0", 6, 0.0, "shed"),
    ("slow", "t1", 10, 8.0, "ok"),
]


class TestClassification:
    def test_improvement_flagged(self):
        cand = [
            ("fast", "t0", 12, 1.0, "ok"),  # all served, twice as fast
            ("slow", "t1", 10, 8.0, "ok"),
        ]
        report = build_ab_report(
            mine(journal_with(BASE)), mine(journal_with(cand))
        )
        fast = next(
            s for s in report.slices
            if s.dimension == "tenant" and s.value == "t0"
        )
        assert fast.improved and not fast.regressed

    def test_regression_flagged(self):
        cand = [
            ("fast", "t0", 10, 6.0, "ok"),  # 3x slower
            ("fast", "t0", 6, 0.0, "shed"),
            ("slow", "t1", 10, 8.0, "ok"),
        ]
        report = build_ab_report(
            mine(journal_with(BASE)), mine(journal_with(cand))
        )
        fast = next(
            s for s in report.slices
            if s.dimension == "tenant" and s.value == "t0"
        )
        assert fast.regressed and not fast.improved

    def test_hidden_regression_needs_aggregate_win(self):
        # aggregate improves massively (slow tenant now fast and fully
        # served) while the fast tenant's slice quietly regresses
        cand = [
            ("fast", "t0", 10, 7.0, "ok"),
            ("slow", "t1", 30, 1.0, "ok"),
        ]
        report = build_ab_report(
            mine(journal_with(BASE)), mine(journal_with(cand))
        )
        assert report.aggregate_improved
        hidden = report.hidden_regressions
        assert any(s.dimension == "tenant" and s.value == "t0" for s in hidden)
        payload = report.to_payload()
        assert payload["hidden_regressions"]
        assert validate_ab_report(payload) == []

    def test_thin_slices_stay_unflagged(self):
        base = [("rare", "t0", 1, 1.0, "ok"), ("bulk", "t1", 10, 2.0, "ok")]
        cand = [("rare", "t0", 1, 50.0, "ok"), ("bulk", "t1", 10, 2.0, "ok")]
        report = build_ab_report(
            mine(journal_with(base)), mine(journal_with(cand)), min_count=2
        )
        rare = next(
            s for s in report.slices
            if s.dimension == "tenant" and s.value == "t0"
        )
        assert not rare.regressed and not rare.improved

    def test_unknown_dimension_rejected(self):
        profile = mine(journal_with(BASE))
        with pytest.raises(ReportError):
            build_ab_report(profile, profile, dimensions=("constellation",))

    def test_self_comparison_is_quiet(self):
        profile = mine(journal_with(BASE))
        report = build_ab_report(profile, profile)
        assert report.regressed_slices == []
        assert report.improved_slices == []
        assert not report.aggregate.improved
        assert not report.aggregate.regressed
        assert report.drift["l1_share_distance"] == pytest.approx(0.0)


class TestRendering:
    def test_markdown_sections(self):
        cand = [
            ("fast", "t0", 10, 7.0, "ok"),
            ("slow", "t1", 30, 1.0, "ok"),
        ]
        report = build_ab_report(
            mine(journal_with(BASE)),
            mine(journal_with(cand)),
            label_a="before",
            label_b="after",
        )
        md = report.render_markdown()
        assert "# A/B workload report: `before` vs `after`" in md
        assert "## Aggregate" in md
        assert "## Per-slice deltas" in md
        assert "Hidden regressions" in md
        assert "HIDDEN-REGRESSION" in md
        assert "## Workload drift" in md

    def test_json_round_trip_and_files(self, tmp_path):
        report = build_ab_report(
            mine(journal_with(BASE)), mine(journal_with(BASE))
        )
        json_path = report.write_json(tmp_path / "ab.json")
        md_path = report.write_markdown(tmp_path / "ab.md")
        payload = json.loads(json_path.read_text())
        assert looks_like_ab_report(payload)
        assert validate_ab_report(payload) == []
        assert md_path.read_text().startswith("# A/B workload report")


class TestValidator:
    def payload(self):
        return build_ab_report(
            mine(journal_with(BASE)), mine(journal_with(BASE))
        ).to_payload()

    def test_kind_mismatch(self):
        assert validate_ab_report({"kind": "nope"}) != []
        assert validate_ab_report("not even a dict") != []

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda p: p.__setitem__("version", 0), "version"),
            (lambda p: p.__setitem__("label_a", ""), "label_a"),
            (lambda p: p.pop("aggregate"), "aggregate"),
            (lambda p: p.pop("slices"), "slices"),
            (lambda p: p["slices"][0].pop("goodput_a_qps"), "missing keys"),
            (
                lambda p: p["slices"][0].update(hidden=True, regressed=False),
                "hidden",
            ),
            (
                lambda p: p["slices"][0].update(improved=True, regressed=True),
                "both improved and regressed",
            ),
        ],
    )
    def test_validator_catches_corruption(self, mutate, fragment):
        payload = self.payload()
        mutate(payload)
        problems = validate_ab_report(payload)
        assert problems
        assert any(fragment in problem for problem in problems)


class TestCheckIntegration:
    def test_check_file_validates_journal_and_report(self, tmp_path):
        journal = journal_with(BASE)
        journal_path = journal.write(tmp_path / "journal.json")
        report = build_ab_report(mine(journal), mine(journal))
        report_path = report.write_json(tmp_path / "ab.json")
        assert check_file(journal_path) is None
        assert check_file(report_path) is None

    def test_check_file_rejects_corrupt_artifacts(self, tmp_path):
        journal = journal_with(BASE)
        payload = json.loads(journal.to_json())
        payload["tenants"]["t0"]["submitted"] = 99
        bad = tmp_path / "bad_journal.json"
        bad.write_text(json.dumps(payload))
        problem = check_file(bad)
        assert problem is not None and "conservation" in problem

        report = build_ab_report(mine(journal), mine(journal)).to_payload()
        report["slices"][0]["hidden"] = True
        bad_report = tmp_path / "bad_report.json"
        bad_report.write_text(json.dumps(report))
        problem = check_file(bad_report)
        assert problem is not None
