"""Tests for the metrics registry primitives."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricError,
    MetricsRegistry,
    disable,
    enable,
    get_registry,
    use_registry,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        c = registry.counter("c_total", "help")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_cannot_decrease(self, registry):
        c = registry.counter("c_total")
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_labels_partition_values(self, registry):
        c = registry.counter("reads_total", labelnames=("mode",))
        c.inc(mode="filter")
        c.inc(3, mode="raw")
        assert c.value(mode="filter") == 1
        assert c.value(mode="raw") == 3
        assert c.samples() == [
            ({"mode": "filter"}, 1.0),
            ({"mode": "raw"}, 3.0),
        ]

    def test_wrong_labels_rejected(self, registry):
        c = registry.counter("reads_total", labelnames=("mode",))
        with pytest.raises(MetricError):
            c.inc(shard="0")
        with pytest.raises(MetricError):
            c.inc()  # labels required once declared

    def test_thread_safety(self, registry):
        c = registry.counter("c_total")

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 8000


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("mem_bytes")
        g.set(100)
        g.inc(5)
        g.dec(25)
        assert g.value() == 80


class TestHistogram:
    def test_cumulative_buckets(self, registry):
        h = registry.histogram("lat_seconds", buckets=(0.01, 0.1, 1.0))
        h.observe(0.005)
        h.observe(0.05)
        h.observe(5.0)  # lands only in +Inf
        ((labels, counts, total, count),) = h.series()
        assert labels == {}
        assert counts == [1, 2, 2, 3]  # cumulative, with implicit +Inf
        assert total == pytest.approx(5.055)
        assert count == 3

    def test_inf_bucket_appended(self, registry):
        h = registry.histogram("h", buckets=(1.0,))
        assert h.buckets[-1] == float("inf")

    def test_default_buckets_cover_sim_latencies(self, registry):
        h = registry.histogram("h")
        assert h.buckets == DEFAULT_BUCKETS

    def test_empty_buckets_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_shares_instances(self, registry):
        a = registry.counter("same_total", "first")
        b = registry.counter("same_total", "second help ignored")
        assert a is b
        a.inc()
        assert b.value() == 1

    def test_kind_clash_rejected(self, registry):
        registry.counter("x_total")
        with pytest.raises(MetricError):
            registry.gauge("x_total")

    def test_label_schema_clash_rejected(self, registry):
        registry.counter("x_total", labelnames=("a",))
        with pytest.raises(MetricError):
            registry.counter("x_total", labelnames=("b",))

    def test_collect_sorted_and_contains(self, registry):
        registry.counter("b_total")
        registry.gauge("a_gauge")
        assert [m.name for m in registry.collect()] == ["a_gauge", "b_total"]
        assert "b_total" in registry
        assert "missing" not in registry
        assert len(registry) == 2


class TestGlobalHandle:
    def test_default_on(self):
        assert get_registry() is not None

    def test_disable_enable_roundtrip(self):
        previous = disable()
        try:
            assert get_registry() is None
        finally:
            enable(previous)
        assert get_registry() is previous

    def test_use_registry_scopes_and_restores(self):
        outer = get_registry()
        fresh = MetricsRegistry()
        with use_registry(fresh):
            assert get_registry() is fresh
            with use_registry(None):
                assert get_registry() is None
            assert get_registry() is fresh
        assert get_registry() is outer

    def test_disabled_components_bind_null_handles(self):
        # the instrumentation pattern: constructed while disabled means
        # every metric handle is None and the hot path is one null check
        from repro.storage.flash import FlashArray

        with use_registry(None):
            flash = FlashArray()
        assert flash._m_pages_read is None
