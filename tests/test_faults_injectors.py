"""Unit tests for the fault-injection framework and the recovery policies.

Covers the schedules (determinism, composition), the three injectors
(page reads, WAL appends, cluster shards), FTL bad-block retirement, the
device's bounded retry-with-backoff, and the fault log accounting.
"""

import pytest

from repro.errors import (
    BadBlockError,
    PageCorruptionError,
    PageReadError,
    ReadRetryExhaustedError,
    ShardUnavailableError,
    StorageError,
)
from repro.faults import (
    AddressSchedule,
    AlwaysSchedule,
    AtOperationsSchedule,
    BernoulliSchedule,
    EveryNthSchedule,
    FaultLog,
    NeverSchedule,
    PageFaultInjector,
    RetryPolicy,
    ShardFaultInjector,
    WalFaultInjector,
    inject_page_faults,
)
from repro.params import StorageParams
from repro.sim.clock import SimClock
from repro.storage.device import MithriLogDevice, ReadMode
from repro.storage.flash import FlashArray
from repro.storage.ftl import FTLFlashArray, FlashTranslationLayer
from repro.storage.page import Page
from repro.system.wal import WriteAheadLog


class TestSchedules:
    def test_never_and_always(self):
        assert not NeverSchedule().fires(0)
        assert AlwaysSchedule().fires(12345)

    def test_bernoulli_is_deterministic_per_seed(self):
        def draw(seed):
            sched = BernoulliSchedule(0.3, seed=seed)
            return [sched.fires(i) for i in range(200)]

        a, b, c = draw(7), draw(7), draw(8)
        assert a == b
        assert a != c
        assert 20 < sum(a) < 100  # roughly the configured rate

    def test_bernoulli_reset_replays(self):
        sched = BernoulliSchedule(0.5, seed=3)
        first = [sched.fires(i) for i in range(50)]
        sched.reset()
        assert [sched.fires(i) for i in range(50)] == first

    def test_bernoulli_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            BernoulliSchedule(1.5)

    def test_every_nth(self):
        sched = EveryNthSchedule(3, offset=1)
        assert [sched.fires(i) for i in range(6)] == [
            False, True, False, False, True, False,
        ]

    def test_at_operations(self):
        sched = AtOperationsSchedule({2, 5})
        assert [sched.fires(i) for i in range(6)] == [
            False, False, True, False, False, True,
        ]

    def test_address_schedule_is_persistent(self):
        sched = AddressSchedule({7})
        assert sched.fires(0, 7) and sched.fires(999, 7)
        assert not sched.fires(0, 8)
        assert not sched.fires(0, None)

    def test_combinators(self):
        either = AtOperationsSchedule({1}) | AtOperationsSchedule({2})
        both = AtOperationsSchedule({1, 2}) & AtOperationsSchedule({2, 3})
        assert [either.fires(i) for i in range(4)] == [False, True, True, False]
        assert [both.fires(i) for i in range(4)] == [False, False, True, False]


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=1e-3, multiplier=2.0)
        assert policy.backoff(1) == pytest.approx(1e-3)
        assert policy.backoff(2) == pytest.approx(2e-3)
        assert policy.backoff(3) == pytest.approx(4e-3)
        assert policy.max_retries == 3

    def test_invalid_policies_rejected(self):
        with pytest.raises(StorageError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(StorageError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(StorageError):
            RetryPolicy(max_attempts=2).backoff(0)


@pytest.fixture
def flash():
    array = FlashArray(StorageParams(capacity_pages=64))
    for i in range(8):
        array.append_page(Page(f"page-{i}".encode()))
    return array


class TestPageFaultInjector:
    def test_read_error_raises_and_logs(self, flash):
        log = FaultLog()
        flash.fault_injector = PageFaultInjector(
            read_errors=AlwaysSchedule(), log=log
        )
        with pytest.raises(PageReadError):
            flash.read_page(0)
        assert log.count("read_error") == 1

    def test_bit_flip_caught_by_page_checksum(self, flash):
        flash.fault_injector = PageFaultInjector(bit_flips=AlwaysSchedule(), seed=1)
        with pytest.raises(PageCorruptionError):
            flash.read_page(0)
        # transient: the stored page is untouched, a clean re-read works
        flash.fault_injector = None
        assert flash.read_page(0).data == b"page-0"

    def test_bad_address_is_persistent(self, flash):
        injector = PageFaultInjector(bad_addresses={3})
        flash.fault_injector = injector
        for _ in range(3):
            with pytest.raises(BadBlockError):
                flash.read_page(3)
        assert flash.read_page(2).data == b"page-2"
        assert injector.log.count("bad_block") == 3

    def test_no_injector_reads_clean(self, flash):
        assert flash.read_pages(list(range(8)))[0].data == b"page-0"


class TestDeviceRetry:
    def _device(self, **kwargs):
        params = StorageParams(capacity_pages=64)
        device = MithriLogDevice(params, **kwargs)
        for i in range(6):
            device.append_pages([Page(f"line-{i}\n".encode())])
        return device

    def test_transient_fault_absorbed_by_retry(self):
        device = self._device()
        device.flash.fault_injector = PageFaultInjector(
            read_errors=EveryNthSchedule(3)  # ops 0, 3, 6, ...
        )
        result = device.read(list(range(6)), mode=ReadMode.RAW)
        assert result.data == b"".join(f"line-{i}\n".encode() for i in range(6))
        assert result.read_retries > 0

    def test_persistent_corruption_exhausts_retries(self):
        device = self._device(retry_policy=RetryPolicy(max_attempts=3))
        device.flash.corrupt_page(2)  # stored bits flipped: every read fails
        with pytest.raises(ReadRetryExhaustedError):
            device.read(list(range(6)), mode=ReadMode.RAW)

    def test_bad_block_fails_fast_without_retries(self):
        device = self._device()
        injector = PageFaultInjector(bad_addresses={1})
        device.flash.fault_injector = injector
        with pytest.raises(BadBlockError):
            device.read([0, 1], mode=ReadMode.RAW)
        # one batch probe + one per-page probe, never the full retry budget
        assert injector.log.count("bad_block") <= 2

    def test_backoff_charged_to_clock(self):
        device = self._device(
            retry_policy=RetryPolicy(max_attempts=3, backoff_s=1.0, multiplier=2.0)
        )
        device.flash.fault_injector = PageFaultInjector(
            read_errors=AtOperationsSchedule({0, 1})  # batch probe + 1st re-read
        )
        clock = SimClock()
        result = device.read([0], mode=ReadMode.RAW, clock=clock)
        assert result.data == b"line-0\n"
        assert clock.now >= 1.0  # the first backoff was paid in sim time
        assert result.read_retries >= 2

    def test_retry_count_surfaces_in_result(self):
        device = self._device()
        device.flash.fault_injector = PageFaultInjector(
            read_errors=AtOperationsSchedule({0})
        )
        result = device.read(list(range(6)), mode=ReadMode.RAW)
        assert result.read_retries == 1


class TestFTLBadBlocks:
    def test_retire_with_relocation_preserves_data(self):
        ftl = FlashTranslationLayer(num_blocks=8, pages_per_block=4)
        for logical in range(8):
            ftl.write(logical, Page(f"L{logical}".encode()))
        victim = ftl._l2p[0] // ftl.pages_per_block
        moved = ftl.retire_block(victim)
        assert moved > 0
        for logical in range(8):
            assert ftl.read(logical).data == f"L{logical}".encode()
        stats = ftl.stats()
        assert stats.retired_blocks == 1
        assert stats.lost_pages == 0

    def test_retire_without_relocation_loses_pages(self):
        ftl = FlashTranslationLayer(num_blocks=8, pages_per_block=4)
        for logical in range(8):
            ftl.write(logical, Page(f"L{logical}".encode()))
        victim = ftl._l2p[0] // ftl.pages_per_block
        ftl.retire_block(victim, relocate=False)
        with pytest.raises(BadBlockError):
            ftl.read(0)
        assert 0 in ftl  # it *was* written; the data is just gone
        assert ftl.stats().lost_pages > 0

    def test_rewriting_a_lost_page_revives_it(self):
        ftl = FlashTranslationLayer(num_blocks=8, pages_per_block=4)
        ftl.write(0, Page(b"old"))
        ftl.retire_block(ftl._l2p[0] // ftl.pages_per_block, relocate=False)
        ftl.write(0, Page(b"new"))
        assert ftl.read(0).data == b"new"
        assert ftl.stats().lost_pages == 0

    def test_retired_block_never_reused(self):
        ftl = FlashTranslationLayer(num_blocks=8, pages_per_block=4)
        ftl.retire_block(5)
        capacity = ftl.capacity_pages
        for logical in range(capacity):
            ftl.write(logical, Page(b"x"))
        used_blocks = {slot // ftl.pages_per_block for slot in ftl._p2l}
        assert 5 not in used_blocks

    def test_bad_block_surfaces_through_flash_interface(self):
        array = FTLFlashArray(StorageParams(capacity_pages=256))
        for i in range(64):
            array.append_page(Page(f"page-{i}".encode()))
        array.ftl.retire_block(0, relocate=False)
        lost = sorted(array.ftl._lost)
        assert lost
        with pytest.raises(BadBlockError):
            array.read_page(lost[0])
        with pytest.raises(BadBlockError):
            array.read_pages(lost[:2])


class TestWalFaultInjection:
    def test_torn_append_drops_only_last_batch(self, tmp_path):
        injector = WalFaultInjector(torn_writes=AtOperationsSchedule({1}), seed=5)
        wal = WriteAheadLog(tmp_path / "wal.bin", fault_injector=injector)
        wal.append([b"first"])
        wal.append([b"second (torn)"])
        assert injector.log.count("torn_write") == 1
        assert [lines for lines, _ in wal.replay()] == [[b"first"]]

    def test_repair_truncates_torn_tail(self, tmp_path):
        injector = WalFaultInjector(torn_writes=AtOperationsSchedule({1}), seed=5)
        wal = WriteAheadLog(tmp_path / "wal.bin", fault_injector=injector)
        wal.append([b"first"])
        wal.append([b"second (torn)"])
        report = wal.scan()
        assert report.torn and not report.clean
        dropped = wal.repair()
        assert dropped > 0
        assert wal.scan().clean
        # post-repair appends are reachable again
        wal.append([b"third"])
        assert [lines for lines, _ in wal.replay()] == [[b"first"], [b"third"]]

    def test_unrepaired_tear_would_orphan_later_batches(self, tmp_path):
        """The failure mode repair() exists for: appends after a tear are
        invisible to replay until the tear is cut out."""
        injector = WalFaultInjector(torn_writes=AtOperationsSchedule({1}), seed=5)
        wal = WriteAheadLog(tmp_path / "wal.bin", fault_injector=injector)
        wal.append([b"first"])
        wal.append([b"second (torn)"])
        wal.fault_injector = None
        wal.append([b"third (acknowledged!)"])
        assert [lines for lines, _ in wal.replay()] == [[b"first"]]


class TestShardFaultInjector:
    def test_down_shard_raises(self):
        injector = ShardFaultInjector(shard_down=AddressSchedule({1}))
        injector.on_query(0)  # healthy
        with pytest.raises(ShardUnavailableError):
            injector.on_query(1)
        assert injector.log.count("shard_down") == 1


class TestAttachHelpers:
    def test_attach_to_flash_array(self, flash):
        log = inject_page_faults(flash, read_errors=AlwaysSchedule())
        with pytest.raises(PageReadError):
            flash.read_page(0)
        assert log.count() == 1

    def test_attach_rejects_unknown_target(self):
        with pytest.raises(TypeError):
            inject_page_faults(object())


class TestFaultLog:
    def test_counts_and_summary(self):
        log = FaultLog()
        log.record("read_error", 0, address=4)
        log.record("read_error", 1, address=5)
        log.record("bit_flip", 2, address=4, detail="byte 17")
        assert log.count() == 3
        assert log.count("read_error") == 2
        assert log.by_kind() == {"read_error": 2, "bit_flip": 1}
        assert "read_error=2" in log.summary()
