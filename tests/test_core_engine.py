"""Tests for the multi-pipeline token filter engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import TokenFilterEngine
from repro.core.query import Query, Term, parse_query
from repro.errors import CapacityError, QueryError
from repro.params import CuckooParams

LINES = [
    b"auth failure for user root from 1.2.3.4",
    b"pbs_mom: job 17 spawned",
    b"job 18 failed with signal 11",
    b"RAS KERNEL INFO all ok",
    b"job 19 failed pbs_mom: cleanup",
]


@pytest.fixture
def engine():
    return TokenFilterEngine()


class TestCompileAndFilter:
    def test_simple_offload(self, engine):
        assert engine.compile(parse_query("failed AND NOT pbs_mom:")) is True
        assert engine.offloaded
        result = engine.filter_lines(LINES)
        assert result.offloaded
        assert result.kept_indices() == [2]

    def test_multi_query_verdicts(self, engine):
        engine.compile(parse_query("failure"), parse_query("pbs_mom:"))
        result = engine.filter_lines(LINES)
        assert result.num_queries == 2
        assert result.kept_indices(query=0) == [0]
        assert result.kept_indices(query=1) == [1, 4]
        assert result.kept_indices() == [0, 1, 4]
        assert result.kept_count() == 3

    def test_filter_before_compile_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.filter_lines(LINES)

    def test_compile_without_queries_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.compile()

    def test_recompile_replaces_program(self, engine):
        engine.compile(parse_query("failed"))
        engine.compile(parse_query("pbs_mom:"))
        result = engine.filter_lines(LINES)
        assert result.kept_indices() == [1, 4]

    def test_keep_line_predicate(self, engine):
        engine.compile(parse_query("failed"))
        assert engine.keep_line(LINES[2])
        assert not engine.keep_line(LINES[0])

    def test_empty_batch(self, engine):
        engine.compile(parse_query("failed"))
        result = engine.filter_lines([])
        assert result.lines == 0
        assert result.kept_indices() == []

    def test_invalid_pipeline_count(self):
        with pytest.raises(ValueError):
            TokenFilterEngine(num_pipelines=0)


class TestSoftwareFallback:
    def test_oversized_query_falls_back(self):
        engine = TokenFilterEngine()
        queries = [Query.single(f"token{i}") for i in range(9)]  # > 8 flag pairs
        assert engine.compile(*queries) is False
        assert not engine.offloaded
        result = engine.filter_lines([b"token3 here", b"nothing"])
        assert not result.offloaded
        assert result.kept_indices(query=3) == [0]

    def test_fallback_matches_hardware_semantics(self):
        query = parse_query("(A AND NOT B) OR C")
        hw = TokenFilterEngine()
        hw.compile(query)
        sw = TokenFilterEngine()
        sw.compile(query, *[Query.single(f"pad{i}") for i in range(8)])  # force fallback
        assert not sw.offloaded
        lines = [b"A x", b"A B", b"C", b"B C", b"x"]
        assert [v[0] for v in sw.filter_lines(lines).verdicts] == hw.filter_lines(
            lines
        ).kept_any()

    def test_fallback_disabled_raises(self):
        engine = TokenFilterEngine(allow_software_fallback=False)
        queries = [Query.single(f"token{i}") for i in range(9)]
        with pytest.raises(CapacityError):
            engine.compile(*queries)

    def test_load_factor_overflow_falls_back(self):
        # tiny table: >4 tokens exceeds the 0.5 load factor
        engine = TokenFilterEngine(cuckoo_params=CuckooParams(rows=8))
        query = Query.single(*(f"tk{i}" for i in range(6)))
        assert engine.compile(query) is False
        result = engine.filter_lines([b"tk0 tk1 tk2 tk3 tk4 tk5", b"tk0"])
        assert result.kept_indices() == [0]


class TestEngineOracleEquivalence:
    @given(
        st.lists(
            st.lists(
                st.sampled_from([b"alpha", b"beta", b"gamma", b"delta", b"noise"]),
                max_size=5,
            ),
            max_size=20,
        ),
        st.booleans(),
    )
    @settings(max_examples=100)
    def test_engine_equals_query_oracle(self, token_lines, negate):
        query = Query.single(Term(b"alpha"), Term(b"beta", negative=negate))
        engine = TokenFilterEngine(num_pipelines=2)
        engine.compile(query)
        lines = [b" ".join(tokens) for tokens in token_lines]
        result = engine.filter_lines(lines)
        expected = [query.matches_line(line) for line in lines]
        assert result.kept_any() == expected
