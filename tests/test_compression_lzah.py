"""Unit and property tests for LZAH (Section 5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.lzah import LZAHCompressor
from repro.errors import CompressedFormatError
from repro.params import LZAHParams


@pytest.fixture
def codec():
    return LZAHCompressor()


LINE = b"Jul  5 12:00:01 sn352 kernel: RAS KERNEL INFO generating core.2275\n"


class TestRoundTrip:
    def test_empty(self, codec):
        assert codec.decompress(codec.compress(b"")) == b""

    def test_short_line(self, codec):
        assert codec.decompress(codec.compress(b"hi\n")) == b"hi\n"

    def test_no_trailing_newline(self, codec):
        data = b"line one\nline two without newline"
        assert codec.decompress(codec.compress(data)) == data

    def test_repeated_lines(self, codec):
        data = LINE * 100
        assert codec.decompress(codec.compress(data)) == data

    def test_exact_word_multiple(self, codec):
        data = b"x" * 64
        assert codec.decompress(codec.compress(data)) == data

    def test_trailing_nul_bytes_preserved(self, codec):
        data = b"abc\n" + b"\0" * 10
        assert codec.decompress(codec.compress(data)) == data

    def test_empty_lines(self, codec):
        data = b"\n\n\na\n\n"
        assert codec.decompress(codec.compress(data)) == data

    def test_newline_at_word_boundary(self, codec):
        data = b"x" * 15 + b"\n" + b"y" * 16
        assert codec.decompress(codec.compress(data)) == data

    @given(st.binary(max_size=2048))
    @settings(max_examples=150)
    def test_roundtrip_arbitrary_bytes(self, data):
        codec = LZAHCompressor()
        assert codec.decompress(codec.compress(data)) == data

    @given(
        st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                max_size=60,
            ),
            max_size=40,
        )
    )
    @settings(max_examples=100)
    def test_roundtrip_text_lines(self, lines):
        codec = LZAHCompressor()
        data = "\n".join(lines).encode()
        assert codec.decompress(codec.compress(data)) == data

    @given(st.integers(2, 32), st.integers(1, 8), st.binary(max_size=600))
    @settings(max_examples=60)
    def test_roundtrip_parameter_variants(self, word, chunk_exp, data):
        params = LZAHParams(
            word_bytes=word,
            pairs_per_chunk=8 * chunk_exp,
            hash_table_bytes=64 * word,
        )
        codec = LZAHCompressor(params)
        assert codec.decompress(codec.compress(data)) == data


class TestCompressionBehaviour:
    def test_repeated_lines_shrink_substantially(self, codec):
        data = LINE * 500
        ratio = len(data) / len(codec.compress(data))
        assert ratio > 3.0

    def test_newline_realignment_enables_matches(self):
        # lines whose shared prefix would be destroyed by pure word-stepping
        lines = [
            b"INFO fixed prefix of this line varies " + str(i).encode() + b"\n"
            for i in range(200)
        ]
        data = b"".join(lines)
        codec = LZAHCompressor()
        compressed = codec.compress(data)
        assert codec.last_stats is not None
        assert codec.last_stats.match_rate > 0.3
        assert len(compressed) < len(data)

    def test_unique_data_expands_bounded(self, codec):
        import random

        rng = random.Random(3)
        data = bytes(rng.randrange(256) for _ in range(4096))
        compressed = codec.compress(data)
        # worst case ~ 1 header word per 128 pairs + full literal words
        assert len(compressed) < len(data) * 1.2 + 64

    def test_stats_track_matches_and_literals(self, codec):
        codec.compress(LINE * 10)
        stats = codec.last_stats
        assert stats.words == stats.matches + stats.literals
        assert stats.matches > 0

    def test_match_payloads_are_two_bytes(self):
        # all-matching stream compresses toward 16/2.125 ~ 7.5x
        data = (b"z" * 15 + b"\n") * 2000
        codec = LZAHCompressor()
        ratio = len(data) / len(codec.compress(data))
        assert 6.0 < ratio < 7.6


class TestWordStream:
    def test_words_are_zero_padded(self, codec):
        compressed = codec.compress(b"ab\ncdef\n")
        words = list(codec.decompress_words(compressed))
        assert words[0][1] == b"ab\n" + b"\0" * 13
        assert words[0][0] == b"ab\n"

    def test_full_words_unpadded(self, codec):
        compressed = codec.compress(b"x" * 32)
        for consumed, padded in codec.decompress_words(compressed):
            assert consumed == padded == b"x" * 16


class TestMalformedStreams:
    def test_too_short_stream(self, codec):
        with pytest.raises(CompressedFormatError):
            codec.decompress(b"\x01\x02")

    def test_match_to_empty_slot(self, codec):
        # 1 pair, header bit set, index 0, but nothing was ever inserted
        header_word = (1).to_bytes(16, "little")
        stream = (
            (16).to_bytes(4, "little")
            + (1).to_bytes(4, "little")
            + header_word
            + (0).to_bytes(2, "little")
        )
        with pytest.raises(CompressedFormatError):
            codec.decompress(stream)

    def test_declared_length_mismatch(self, codec):
        good = codec.compress(b"hello world, this is a test line\n")
        tampered = (999).to_bytes(4, "little") + good[4:]
        with pytest.raises(CompressedFormatError):
            codec.decompress(tampered)

    def test_truncated_literal(self, codec):
        good = codec.compress(b"some uncompressible text here")
        with pytest.raises(CompressedFormatError):
            codec.decompress(good[:-4])

    def test_oversized_table_index_rejected(self):
        params = LZAHParams(hash_table_bytes=64 * 16)  # 64 slots
        codec = LZAHCompressor(params)
        header_word = (1).to_bytes(16, "little")
        stream = (
            (16).to_bytes(4, "little")
            + (1).to_bytes(4, "little")
            + header_word
            + (5000).to_bytes(2, "little")
        )
        with pytest.raises(CompressedFormatError):
            codec.decompress(stream)

    def test_u16_index_capacity_enforced(self):
        with pytest.raises(ValueError):
            LZAHCompressor(LZAHParams(hash_table_bytes=16 * (1 << 17)))
