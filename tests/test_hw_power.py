"""Unit tests for the power model (Table 8)."""

import pytest

from repro.hw.power import (
    EfficiencyComparison,
    efficiency_comparison,
    mithrilog_power,
    software_power,
)


class TestTable8:
    def test_mithrilog_breakdown_matches_paper(self):
        power = mithrilog_power()
        assert power.cpu_memory_w == 90
        assert power.storage_w == 24
        assert power.fpga_w == 36
        assert power.total_w == 150

    def test_software_breakdown_matches_paper(self):
        power = software_power()
        assert power.cpu_memory_w == 160
        assert power.storage_w == 10
        assert power.fpga_w == 0
        assert power.total_w == 170

    def test_mithrilog_total_below_software(self):
        assert mithrilog_power().total_w < software_power().total_w

    def test_rows_shape(self):
        rows = mithrilog_power().rows()
        assert [label for label, _ in rows] == [
            "CPU+Memory (Watt)",
            "Total Storage (Watt)",
            "2x FPGA (Watt)",
            "Total (Watt)",
        ]
        assert rows[-1][1] == 150


class TestEfficiency:
    def test_order_of_magnitude_speedup_yields_order_of_magnitude_efficiency(self):
        comparison = efficiency_comparison(speedup=10.0)
        assert comparison.power_ratio < 1.0
        assert comparison.efficiency_gain > 10.0

    def test_unit_speedup_still_gains_from_lower_power(self):
        comparison = efficiency_comparison(speedup=1.0)
        assert comparison.efficiency_gain == pytest.approx(170 / 150)

    def test_invalid_speedup_rejected(self):
        with pytest.raises(ValueError):
            efficiency_comparison(speedup=0.0)
