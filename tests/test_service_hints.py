"""Template hints: mined identification, demotion, pass quarantine."""

import pytest

from repro.analytics.workload import mine
from repro.core.query import Query
from repro.errors import QueryError
from repro.obs.journal import QueryJournal, template_fingerprint
from repro.service import (
    AdmissionController,
    QoSScheduler,
    TemplateHintProvider,
    make_tenants,
    resolve_priority,
)
from repro.service.request import Outcome, Request
from repro.system.mithrilog import MithriLogSystem

SLOW = Query.single("slowtoken")
FAST = Query.single("fasttoken")
SLOW_FP = template_fingerprint(str(SLOW))
FAST_FP = template_fingerprint(str(FAST))


def hints_for_slow(**kwargs):
    return TemplateHintProvider([SLOW_FP], **kwargs)


class TestProvider:
    def test_is_slow_by_fingerprint(self):
        hints = hints_for_slow()
        assert hints.is_slow(SLOW)
        assert not hints.is_slow(FAST)
        # memoised path answers the same
        assert hints.is_slow(SLOW)
        assert len(hints) == 1

    def test_effective_priority_demotes_only_slow(self):
        hints = hints_for_slow(demotion=2)
        slow_req = Request(tenant="t0", query=SLOW, priority=5)
        fast_req = Request(tenant="t0", query=FAST, priority=5)
        assert hints.effective_priority(slow_req) == 3
        assert hints.effective_priority(fast_req) == 5
        assert resolve_priority(hints, slow_req) == 3
        assert resolve_priority(None, slow_req) == 5

    def test_demotion_must_be_positive(self):
        with pytest.raises(QueryError):
            TemplateHintProvider([SLOW_FP], demotion=0)

    def test_describe_carries_provenance(self):
        info = hints_for_slow(source="mined:baseline").describe()
        assert info["source"] == "mined:baseline"
        assert info["slow_templates"] == [SLOW_FP]


class TestFromProfile:
    def journal(self, slow_min_ms, fast_min_ms, n=6):
        # two cheap templates so the median-of-mins sits at the cheap
        # cost, one candidate outlier
        journal = QueryJournal()
        for i in range(n):
            for j, text in enumerate((str(FAST), "othertoken")):
                journal.observe_direct(
                    text,
                    latency_s=fast_min_ms / 1e3,
                    matches=1,
                    stage="flash",
                    completed_at_s=0.01 * (i + 1) + 0.002 * j,
                )
            journal.observe_direct(
                str(SLOW),
                latency_s=slow_min_ms / 1e3,
                matches=1,
                stage="index",
                completed_at_s=0.01 * (i + 1) + 0.005,
            )
        return journal

    def test_flags_template_with_outlying_min(self):
        profile = mine(self.journal(slow_min_ms=8.0, fast_min_ms=0.5))
        hints = TemplateHintProvider.from_profile(profile, latency_factor=2.0)
        assert hints.slow_templates == frozenset({SLOW_FP})
        assert hints.source == "mined:all"

    def test_uniform_costs_flag_nothing(self):
        profile = mine(self.journal(slow_min_ms=1.0, fast_min_ms=1.0))
        hints = TemplateHintProvider.from_profile(profile, latency_factor=2.0)
        assert hints.slow_templates == frozenset()

    def test_min_count_guards_thin_templates(self):
        profile = mine(self.journal(slow_min_ms=8.0, fast_min_ms=0.5, n=2))
        hints = TemplateHintProvider.from_profile(profile, min_count=4)
        assert hints.slow_templates == frozenset()
        assert hints.source == "mined:empty"

    def test_min_immune_to_co_rider_smearing(self):
        # the fast template sometimes rides an expensive pass (its p99
        # is inflated to the slow cost) but its *min* stays cheap — only
        # the genuinely slow template gets flagged
        journal = self.journal(slow_min_ms=8.0, fast_min_ms=0.5)
        for i in range(4):
            journal.observe_direct(
                str(FAST),
                latency_s=8.0 / 1e3,
                matches=1,
                stage="index",
                completed_at_s=0.2 + 0.01 * i,
            )
        hints = TemplateHintProvider.from_profile(mine(journal))
        assert hints.slow_templates == frozenset({SLOW_FP})

    def test_max_slow_caps_the_flag_list(self):
        # four cheap templates, two outliers; a cap of one must keep
        # only the *worst* offender, not an arbitrary flagged one
        journal = QueryJournal()
        costs = {"q0": 0.5, "q1": 0.5, "q2": 0.5, "q3": 0.5,
                 "q4": 8.0, "q5": 16.0}
        for k, (text, ms) in enumerate(sorted(costs.items())):
            for i in range(5):
                journal.observe_direct(
                    text,
                    latency_s=ms / 1e3,
                    matches=1,
                    stage="flash",
                    completed_at_s=0.01 * (k * 5 + i + 1),
                )
        uncapped = TemplateHintProvider.from_profile(
            mine(journal), latency_factor=2.0, min_count=4, max_slow=4
        )
        assert uncapped.slow_templates == frozenset(
            {template_fingerprint("q4"), template_fingerprint("q5")}
        )
        capped = TemplateHintProvider.from_profile(
            mine(journal), latency_factor=2.0, min_count=4, max_slow=1
        )
        assert capped.slow_templates == frozenset(
            {template_fingerprint("q5")}
        )


class TestAdmissionDemotion:
    def offer_all(self, admission, requests):
        responses = []
        for i, request in enumerate(requests):
            now = 0.001 * (i + 1)
            refusal, shed = admission.offer(request, now, now)
            if refusal is not None:
                responses.append(refusal)
            responses.extend(shed)
        return responses

    def test_slow_template_is_preferred_victim(self):
        tenants = make_tenants(1)
        admission = AdmissionController(
            tenants, max_backlog=1, hints=hints_for_slow()
        )
        name = tenants[0].name
        shed = self.offer_all(
            admission,
            [
                Request(tenant=name, query=SLOW, priority=1),
                Request(tenant=name, query=FAST, priority=1),
            ],
        )
        # equal declared priority: the hinted demotion evicts the queued
        # slow request so the fast newcomer gets the slot
        assert [r.outcome for r in shed] == [Outcome.SHED]
        assert shed[0].request.query is SLOW
        assert admission.pending()[0].request.query is FAST

    def test_without_hints_newcomer_sheds_on_tie(self):
        tenants = make_tenants(1)
        admission = AdmissionController(tenants, max_backlog=1)
        name = tenants[0].name
        shed = self.offer_all(
            admission,
            [
                Request(tenant=name, query=SLOW, priority=1),
                Request(tenant=name, query=FAST, priority=1),
            ],
        )
        assert shed[0].request.query is FAST
        assert admission.pending()[0].request.query is SLOW

    def test_declared_priority_still_outranks_demotion(self):
        tenants = make_tenants(1)
        admission = AdmissionController(
            tenants, max_backlog=1, hints=hints_for_slow(demotion=1)
        )
        name = tenants[0].name
        shed = self.offer_all(
            admission,
            [
                Request(tenant=name, query=SLOW, priority=5),
                Request(tenant=name, query=FAST, priority=1),
            ],
        )
        # slow-but-important (5-1=4) still beats fast-but-minor (1)
        assert shed[0].request.query is FAST


class TestPassQuarantine:
    def scheduler_and_admission(self, hints):
        system = MithriLogSystem()
        system.ingest([b"slowtoken fasttoken filler line"] * 8)
        tenants = make_tenants(2)
        admission = AdmissionController(tenants, hints=hints)
        scheduler = QoSScheduler(
            system.params.cuckoo,
            seed=system.engine.seed,
            max_batch=8,
            hints=hints,
        )
        return scheduler, admission, [t.name for t in tenants]

    def queue_mixed(self, admission, names):
        at = 0.0
        for query in (SLOW, FAST, FAST, SLOW):
            for name in names:
                at += 0.001
                refusal, shed = admission.offer(
                    Request(tenant=name, query=query), at, at
                )
                assert refusal is None and shed == []

    def test_slow_and_fast_never_share_a_pass(self):
        hints = hints_for_slow()
        scheduler, admission, names = self.scheduler_and_admission(hints)
        self.queue_mixed(admission, names)
        seen_mixed = False
        while admission.total_backlog:
            batch = scheduler.next_batch(admission)
            assert batch.members
            verdicts = {hints.is_slow(q) for q in batch.queries}
            seen_mixed = seen_mixed or len(verdicts) > 1
            assert len(verdicts) == 1
        assert not seen_mixed

    def test_no_hints_allows_sharing(self):
        scheduler, admission, names = self.scheduler_and_admission(None)
        self.queue_mixed(admission, names)
        probe = hints_for_slow()
        mixed = 0
        while admission.total_backlog:
            batch = scheduler.next_batch(admission)
            if len({probe.is_slow(q) for q in batch.queries}) > 1:
                mixed += 1
        assert mixed > 0
