"""Equivalence suite for the rewritten hot-path kernels.

The scan hot path (tokenizer, hash-filter batch kernel, LZAH decoder)
was rewritten for host speed; each rewrite keeps a byte-at-a-time
reference implementation, and this suite pins the fast paths to those
references on synthetic and adversarial inputs — empty pages,
delimiter-only lines, max-length tokens, every byte value.
"""

import random

import pytest

from repro.compression.lzah import LZAHCompressor
from repro.core.hashfilter import HashFilter, compile_queries
from repro.core.query import IntersectionSet, Query, Term, parse_query
from repro.core.tokenizer import (
    split_tokens,
    split_tokens_reference,
    tokenize_page,
)
from repro.datasets.synthetic import generator_for
from repro.errors import CompressedFormatError
from repro.params import LZAHParams
from repro.system.mithrilog import MithriLogSystem

ADVERSARIAL_LINES = [
    b"",
    b"\n",
    b" ",
    b"\t",
    b" \t \t ",  # delimiter-only
    b"\t\t\t\t\t\t\t\t",
    b"one",
    b" leading",
    b"trailing ",
    b"a b\tc  d\t\te",
    b"x" * 4096,  # max-length token
    b"x" * 4096 + b" " + b"y" * 4096,
    b"tab\tseparated\tcolumns\there",
    b"ends with newline\n",
    b"\tstarts with tab",
    b"null\x00byte inside",
    bytes(range(1, 256)).replace(b"\n", b""),  # every byte but the terminator
]


class TestTokenizer:
    @pytest.mark.parametrize("line", ADVERSARIAL_LINES)
    def test_adversarial_lines_match_reference(self, line):
        assert split_tokens(line) == split_tokens_reference(line)

    def test_random_lines_match_reference(self):
        rng = random.Random(11)
        alphabet = b"abcXYZ019 \t\t  "
        for _ in range(500):
            line = bytes(rng.choice(alphabet) for _ in range(rng.randint(0, 120)))
            assert split_tokens(line) == split_tokens_reference(line), line

    def test_tokenize_page_matches_per_line_path(self):
        rng = random.Random(12)
        alphabet = b"abcXYZ019 \t "
        for _ in range(100):
            lines = [
                bytes(rng.choice(alphabet) for _ in range(rng.randint(0, 60)))
                for _ in range(rng.randint(0, 30))
            ]
            payload = b"".join(ln + b"\n" for ln in lines)
            raw_lines, token_lists = tokenize_page(payload)
            assert raw_lines == payload.splitlines()
            assert token_lists == [split_tokens(ln) for ln in raw_lines]

    def test_tokenize_page_empty_and_delimiter_only_pages(self):
        for payload in (b"", b"\n", b"\n\n\n", b" \t \n\t\t\n", b"\t\n" * 50):
            raw_lines, token_lists = tokenize_page(payload)
            assert raw_lines == payload.splitlines()
            assert token_lists == [split_tokens(ln) for ln in raw_lines]

    def test_raw_lines_keep_tabs(self):
        # kept lines must be the raw bytes; only token *matching* sees
        # the tab->space translation
        raw_lines, token_lists = tokenize_page(b"a\tb\n")
        assert raw_lines == [b"a\tb"]
        assert token_lists == [[b"a", b"b"]]


def _random_token_lists(rng, vocabulary, lines):
    return [
        [rng.choice(vocabulary) for _ in range(rng.randint(0, 12))]
        for _ in range(lines)
    ]


class TestHashFilterBatchKernel:
    QUERIES = [
        parse_query('"alpha"'),
        parse_query('"beta" AND "gamma"'),
        parse_query('"delta" OR "alpha"'),
        parse_query('"epsilon" AND NOT "beta"'),
    ]

    def _program(self):
        return compile_queries(tuple(self.QUERIES), seed=0)

    def test_batch_verdicts_match_per_token_path(self):
        rng = random.Random(21)
        vocabulary = [
            b"alpha", b"beta", b"gamma", b"delta", b"epsilon",
            b"zeta", b"noise", b"x" * 300,
        ]
        token_lists = _random_token_lists(rng, vocabulary, 2000)
        fast = HashFilter(self._program()).evaluate_token_lists(token_lists)
        slow_filter = HashFilter(self._program())
        slow = [slow_filter.evaluate_tokens(tokens) for tokens in token_lists]
        assert fast == slow

    def test_batch_verdicts_match_query_oracles(self):
        rng = random.Random(22)
        vocabulary = [b"alpha", b"beta", b"gamma", b"delta", b"epsilon", b"n"]
        token_lists = _random_token_lists(rng, vocabulary, 500)
        verdicts = HashFilter(self._program()).evaluate_token_lists(token_lists)
        for tokens, verdict in zip(token_lists, verdicts):
            want = tuple(q.matches_tokens(tokens) for q in self.QUERIES)
            assert verdict == want, tokens

    def test_batch_counters_match_serial(self):
        token_lists = [[b"alpha"], [], [b"beta", b"gamma"]]
        fast = HashFilter(self._program())
        fast.evaluate_token_lists(token_lists)
        slow = HashFilter(self._program())
        for tokens in token_lists:
            slow.evaluate_tokens(tokens)
        assert fast.lines_processed == slow.lines_processed
        assert fast.tokens_processed == slow.tokens_processed

    def test_empty_batch(self):
        assert HashFilter(self._program()).evaluate_token_lists([]) == []

    def test_column_constrained_queries(self):
        constrained = Query(
            intersections=(
                IntersectionSet(
                    terms=(
                        Term(token=b"svc"),
                        Term(token=b"ERR", column=2),
                    )
                ),
            )
        )
        program = compile_queries((constrained,), seed=0)
        fast = HashFilter(program)
        cases = [
            [b"svc", b"x", b"ERR"],
            [b"svc", b"ERR", b"x"],
            [b"ERR", b"svc", b"ERR"],
            [b"svc"],
            [],
        ]
        verdicts = fast.evaluate_token_lists(cases)
        slow = HashFilter(program)
        assert verdicts == [slow.evaluate_tokens(tokens) for tokens in cases]


class TestLZAHDecoder:
    def _codec(self, **overrides):
        return LZAHCompressor(LZAHParams(**overrides)) if overrides else LZAHCompressor()

    @pytest.mark.parametrize(
        "payload",
        [
            b"",
            b"\n",
            b"a\n",
            b"one line\n",
            b"the same line\n" * 200,
            b"\t\t\t\n \n" * 40,
            (b"x" * 4096 + b"\n") * 3,
            bytes(range(256)) * 16,
        ],
    )
    def test_adversarial_roundtrip(self, payload):
        codec = self._codec()
        blob = codec.compress(payload)
        assert codec.decompress(blob) == payload

    def test_fast_decode_matches_word_reference(self):
        rng = random.Random(31)
        codec = self._codec()
        words = [b"alpha", b"beta", b"gamma", b"longer-token-here", b"1", b""]
        for _ in range(100):
            payload = b"".join(
                b" ".join(rng.choice(words) for _ in range(rng.randint(1, 12)))
                + b"\n"
                for _ in range(rng.randint(0, 40))
            )
            blob = codec.compress(payload)
            fast = codec.decompress(blob)
            via_words = b"".join(
                consumed for consumed, _padded in codec.decompress_words(blob)
            )
            assert via_words == fast
            assert fast == payload

    def test_corrupt_blob_raises_same_error_as_reference(self):
        codec = self._codec()
        blob = bytearray(codec.compress(b"hello corruptible world\n" * 50))
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(CompressedFormatError):
            codec.decompress(bytes(blob))
        with pytest.raises(CompressedFormatError):
            list(codec.decompress_words(bytes(blob)))

    def test_truncated_blob_raises(self):
        codec = self._codec()
        blob = codec.compress(b"some text that compresses\n" * 20)
        with pytest.raises(CompressedFormatError):
            codec.decompress(blob[: len(blob) // 2])


class TestScanInvariance:
    """``scan_all`` is invariant across workers × kernel variants.

    The tentpole guarantee: results, per-query counts, and every
    *simulated* stat (breakdown, bottleneck attribution, deterministic
    profile) are identical whether the scan runs the reference or the
    vectorized kernel, inline or fanned out over a pool. Only host
    wall-clock may differ.
    """

    QUERIES = (
        parse_query("session AND opened"),
        parse_query("root OR admin"),
        parse_query("session AND NOT root"),
    )

    @pytest.fixture(scope="class")
    def corpus(self):
        return list(generator_for("Liberty2", seed=13).iter_lines(2500))

    def run_variant(self, corpus, workers, kernel, queries=None, offloaded=True):
        system = MithriLogSystem(seed=13, cache_pages=0, scan_kernel=kernel)
        system.ingest(corpus)
        outcome = system.scan_all(*(queries or self.QUERIES), workers=workers)
        assert system.engine.offloaded is offloaded
        system.close()
        stats = outcome.stats
        return {
            "matches": outcome.matched_lines,
            "per_query": outcome.per_query_counts,
            "breakdown": stats.breakdown,
            "bottleneck": stats.bottleneck,
            "profile": stats.profile,
            "counts": (
                stats.pages_read,
                stats.bytes_from_flash,
                stats.bytes_decompressed,
                stats.bytes_to_host,
                stats.lines_seen,
                stats.lines_kept,
            ),
        }

    def test_results_and_stats_invariant(self, corpus):
        variants = {
            (workers, kernel): self.run_variant(corpus, workers, kernel)
            for workers in (1, 4)
            for kernel in ("reference", "vectorized")
        }
        base = variants[(1, "reference")]
        assert base["matches"], "scan matched nothing; invariance check is vacuous"
        assert len(base["per_query"]) == len(self.QUERIES)
        for key, variant in variants.items():
            assert variant == base, f"variant {key} diverged from (1, reference)"

    def test_software_fallback_invariance(self, corpus):
        """A program that exceeds hardware provisioning (more
        intersection sets than flag pairs) runs in software — there the
        vectorized kernel routes through the softmatch batch matcher,
        and the same workers × kernel invariance must hold."""
        from collections import Counter

        from repro.core.tokenizer import split_tokens

        frequency = Counter(
            t for line in corpus for t in set(split_tokens(line))
        )
        tokens = [
            t.decode()
            for t, n in frequency.most_common()
            if n < len(corpus) and t.isalnum()
        ]
        queries = tuple(parse_query(f'"{t}"') for t in tokens[:10])
        variants = {
            (workers, kernel): self.run_variant(
                corpus, workers, kernel, queries=queries, offloaded=False
            )
            for workers in (1, 4)
            for kernel in ("reference", "vectorized")
        }
        base = variants[(1, "reference")]
        assert base["matches"], "scan matched nothing; invariance check is vacuous"
        assert len(base["per_query"]) == len(queries)
        for key, variant in variants.items():
            assert variant == base, f"variant {key} diverged from (1, reference)"

    def test_kernel_env_var_is_honoured(self, corpus, monkeypatch):
        monkeypatch.setenv("REPRO_SCAN_KERNEL", "reference")
        via_env = self.run_variant(corpus, workers=1, kernel=None)
        monkeypatch.delenv("REPRO_SCAN_KERNEL")
        explicit = self.run_variant(corpus, workers=1, kernel="vectorized")
        assert via_env == explicit
