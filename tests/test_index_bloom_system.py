"""End-to-end tests: MithriLog running on the Bloom index strategy."""

import pytest

from repro.baselines.grep import grep_lines
from repro.core.query import parse_query
from repro.datasets.synthetic import generator_for
from repro.index.bloom import BloomSystemIndex
from repro.system.mithrilog import MithriLogSystem


@pytest.fixture(scope="module")
def corpus():
    return generator_for("BGL2").generate(2000)


@pytest.fixture(scope="module")
def systems(corpus):
    bloom_system = MithriLogSystem(index=BloomSystemIndex())
    bloom_system.ingest(corpus)
    inverted_system = MithriLogSystem()
    inverted_system.ingest(corpus)
    return bloom_system, inverted_system


QUERIES = ("KERNEL AND INFO", "FATAL AND NOT APP", "NOT RAS", "ciod:")


class TestBloomBackedSystem:
    @pytest.mark.parametrize("expr", QUERIES)
    def test_results_match_oracle(self, systems, corpus, expr):
        bloom_system, _ = systems
        query = parse_query(expr)
        outcome = bloom_system.query(query)
        expected = grep_lines(query, corpus)
        assert sorted(outcome.matched_lines) == sorted(expected)

    @pytest.mark.parametrize("expr", QUERIES)
    def test_both_strategies_agree(self, systems, expr):
        bloom_system, inverted_system = systems
        query = parse_query(expr)
        a = bloom_system.query(query)
        b = inverted_system.query(query)
        assert sorted(a.matched_lines) == sorted(b.matched_lines)

    def test_bloom_lookup_time_is_host_side(self, systems):
        bloom_system, inverted_system = systems
        query = parse_query("ciod: AND Error")
        bloom = bloom_system.query(query)
        inverted = inverted_system.query(query)
        # bloom pays no storage latency on lookups; the inverted index
        # pays 100us per posting fetch
        assert bloom.stats.index_time_s < inverted.stats.index_time_s

    def test_bloom_memory_fixed_per_page(self, systems):
        bloom_system, _ = systems
        assert (
            bloom_system.index.memory_footprint_bytes()
            == bloom_system.index.total_data_pages * 256
        )

    def test_time_bounded_queries_work(self, systems, corpus):
        bloom_system, _ = systems
        epochs = [float(ln.split()[1]) for ln in corpus]
        bloom_system.index.flush(timestamp=epochs[-1])
        query = parse_query("KERNEL")
        outcome = bloom_system.query(query, time_range=(epochs[0], epochs[-1]))
        expected = grep_lines(query, corpus)
        assert sorted(outcome.matched_lines) == sorted(expected)
