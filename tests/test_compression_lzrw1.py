"""Unit and property tests for the LZRW1 codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.lzrw1 import LZRW1Compressor
from repro.errors import CompressedFormatError


@pytest.fixture
def codec():
    return LZRW1Compressor()


LOG_LINE = b"2026-07-05 12:00:01 node-17 kernel: RAS KERNEL INFO instruction cache parity error corrected\n"


class TestRoundTrip:
    def test_empty(self, codec):
        assert codec.decompress(codec.compress(b"")) == b""

    def test_single_byte(self, codec):
        assert codec.decompress(codec.compress(b"x")) == b"x"

    def test_log_text(self, codec):
        data = LOG_LINE * 50
        assert codec.decompress(codec.compress(data)) == data

    def test_all_identical_bytes(self, codec):
        data = b"a" * 10_000
        assert codec.decompress(codec.compress(data)) == data

    def test_binary_with_nulls(self, codec):
        data = bytes(range(256)) * 20 + b"\0" * 100
        assert codec.decompress(codec.compress(data)) == data

    @given(st.binary(max_size=4096))
    @settings(max_examples=150)
    def test_roundtrip_arbitrary_bytes(self, data):
        codec = LZRW1Compressor()
        assert codec.decompress(codec.compress(data)) == data

    @given(
        st.lists(
            st.sampled_from(
                [b"RAS KERNEL INFO", b"ciod: error", b"pbs_mom: spawned", b"1.2.3.4"]
            ),
            max_size=100,
        )
    )
    @settings(max_examples=50)
    def test_roundtrip_log_like(self, tokens):
        codec = LZRW1Compressor()
        data = b"\n".join(b" ".join([t, t]) for t in tokens)
        assert codec.decompress(codec.compress(data)) == data


class TestCompressionBehaviour:
    def test_repetitive_logs_shrink(self, codec):
        data = LOG_LINE * 200
        assert len(codec.compress(data)) < len(data) / 2

    def test_incompressible_data_stored_raw(self, codec):
        import random

        rng = random.Random(7)
        data = bytes(rng.randrange(256) for _ in range(2048))
        compressed = codec.compress(data)
        # raw fallback: one flag byte of overhead only
        assert len(compressed) == len(data) + 1
        assert codec.decompress(compressed) == data

    def test_copies_limited_to_window(self, codec):
        # a repeat farther than 4095 bytes cannot be matched
        unique = bytes(range(256)) * 17  # 4352 bytes > window
        data = b"HEADER-PATTERN" + unique + b"HEADER-PATTERN"
        assert codec.decompress(codec.compress(data)) == data


class TestMalformedStreams:
    def test_empty_stream_rejected(self, codec):
        with pytest.raises(CompressedFormatError):
            codec.decompress(b"")

    def test_unknown_flag_rejected(self, codec):
        with pytest.raises(CompressedFormatError):
            codec.decompress(b"\x07abc")

    def test_copy_before_any_output_rejected(self, codec):
        # control word says item 0 is a copy referencing earlier output
        body = (1).to_bytes(2, "little") + bytes([0x00, 0x01])
        with pytest.raises(CompressedFormatError):
            codec.decompress(b"\x00" + body)

    def test_truncated_copy_item_rejected(self, codec):
        body = (1).to_bytes(2, "little") + bytes([0x00])
        with pytest.raises(CompressedFormatError):
            codec.decompress(b"\x00" + body)
