"""Tests for the query algebra and parser."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.query import (
    IntersectionSet,
    MAX_INTERSECTIONS,
    Query,
    Term,
    parse_query,
)
from repro.errors import QueryError, QueryParseError


class TestTerm:
    def test_str_token_encoded(self):
        assert Term("RAS").token == b"RAS"

    def test_bytes_token_kept(self):
        assert Term(b"RAS").token == b"RAS"

    def test_empty_token_rejected(self):
        with pytest.raises(QueryError):
            Term("")

    def test_token_with_space_rejected(self):
        with pytest.raises(QueryError):
            Term("two words")

    def test_negated_flips(self):
        term = Term("A")
        assert term.negated().negative
        assert not term.negated().negated().negative

    def test_negative_column_rejected(self):
        with pytest.raises(QueryError):
            Term("A", column=-1)

    def test_str_rendering(self):
        assert str(Term("A", negative=True)) == 'NOT "A"'
        assert str(Term("A", column=2)) == '"A"@2'


class TestIntersectionSet:
    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            IntersectionSet(terms=())

    def test_matches_all_positive(self):
        iset = IntersectionSet.of("RAS", "KERNEL")
        assert iset.matches_tokens([b"RAS", b"KERNEL", b"INFO"])
        assert not iset.matches_tokens([b"RAS", b"INFO"])

    def test_negative_term_blocks(self):
        iset = IntersectionSet.of(Term("RAS"), Term("FATAL", negative=True))
        assert iset.matches_tokens([b"RAS", b"INFO"])
        assert not iset.matches_tokens([b"RAS", b"FATAL"])

    def test_all_negative_set(self):
        iset = IntersectionSet.of(Term("FATAL", negative=True))
        assert iset.matches_tokens([b"anything"])
        assert not iset.matches_tokens([b"FATAL"])

    def test_column_constraint(self):
        iset = IntersectionSet.of(Term("sshd", column=2))
        assert iset.matches_tokens([b"Jun", b"14", b"sshd"])
        assert not iset.matches_tokens([b"sshd", b"14", b"combo"])

    def test_column_beyond_line_is_absent(self):
        iset = IntersectionSet.of(Term("sshd", column=9))
        assert not iset.matches_tokens([b"sshd"])

    def test_negative_column_term(self):
        iset = IntersectionSet.of(Term("ERROR", column=0, negative=True))
        assert iset.matches_tokens([b"INFO", b"ERROR"])  # wrong column: ok
        assert not iset.matches_tokens([b"ERROR", b"INFO"])

    def test_contradiction_detection(self):
        iset = IntersectionSet.of(Term("A"), Term("A", negative=True))
        assert iset.is_contradictory
        assert not IntersectionSet.of("A", "B").is_contradictory

    def test_contradiction_requires_same_column(self):
        iset = IntersectionSet.of(Term("A", column=0), Term("A", negative=True))
        assert not iset.is_contradictory


class TestQuery:
    def test_eq1_example(self):
        # (not A and B and C) or (not D and not E and F and G)
        query = Query.of(
            IntersectionSet.of(Term("A", negative=True), Term("B"), Term("C")),
            IntersectionSet.of(
                Term("D", negative=True), Term("E", negative=True), Term("F"), Term("G")
            ),
        )
        assert query.matches_tokens([b"B", b"C"])
        assert not query.matches_tokens([b"A", b"B", b"C"])
        assert query.matches_tokens([b"F", b"G"])
        assert not query.matches_tokens([b"F", b"G", b"E"])

    def test_empty_query_matches_nothing(self):
        assert not Query.of().matches_tokens([b"anything"])

    def test_union_concatenates(self):
        q = Query.single("A") | Query.single("B")
        assert len(q.intersections) == 2
        assert q.matches_tokens([b"A"])
        assert q.matches_tokens([b"B"])

    def test_simplified_drops_contradictions(self):
        q = Query.of(
            IntersectionSet.of(Term("A"), Term("A", negative=True)),
            IntersectionSet.of("B"),
        ).simplified()
        assert len(q.intersections) == 1

    def test_simplified_dedupes_intersections(self):
        q = Query.of(
            IntersectionSet.of("A", "B"), IntersectionSet.of("A", "B")
        ).simplified()
        assert len(q.intersections) == 1

    def test_all_tokens(self):
        q = Query.single(Term("A"), Term("B", negative=True))
        assert q.all_tokens == {b"A", b"B"}
        assert q.positive_tokens == {b"A"}

    def test_matches_line_uses_tokenizer(self):
        q = Query.single("RAS", "KERNEL")
        assert q.matches_line(b"R23-M0 RAS KERNEL INFO done\n")
        assert not q.matches_line(b"R23-M0 RASKERNEL INFO done\n")

    def test_too_many_intersections_rejected(self):
        sets = tuple(
            IntersectionSet.of(f"tok{i}") for i in range(MAX_INTERSECTIONS + 1)
        )
        with pytest.raises(QueryError):
            Query.of(*sets)


class TestParser:
    def test_single_token(self):
        q = parse_query("failed")
        assert q.matches_tokens([b"failed"])
        assert not q.matches_tokens([b"ok"])

    def test_quoted_token(self):
        q = parse_query('"pbs_mom:"')
        assert q.matches_tokens([b"pbs_mom:"])

    def test_paper_example(self):
        q = parse_query('"failed" AND NOT "pbs_mom:"')
        assert q.matches_tokens([b"failed"])
        assert not q.matches_tokens([b"failed", b"pbs_mom:"])

    def test_or_of_ands(self):
        q = parse_query("(A AND B) OR (C AND NOT D)")
        assert len(q.intersections) == 2
        assert q.matches_tokens([b"A", b"B"])
        assert q.matches_tokens([b"C"])
        assert not q.matches_tokens([b"C", b"D"])

    def test_not_over_parens_demorgan(self):
        q = parse_query("NOT (A OR B)")
        # becomes one intersection: NOT A AND NOT B
        assert len(q.intersections) == 1
        assert q.matches_tokens([b"C"])
        assert not q.matches_tokens([b"A"])
        assert not q.matches_tokens([b"B"])

    def test_not_over_and_distributes(self):
        q = parse_query("NOT (A AND B)")
        assert q.matches_tokens([b"A"])  # lacks B
        assert q.matches_tokens([b"B"])
        assert not q.matches_tokens([b"A", b"B"])

    def test_distribution_and_over_or(self):
        q = parse_query("A AND (B OR C)")
        assert len(q.intersections) == 2
        assert q.matches_tokens([b"A", b"B"])
        assert q.matches_tokens([b"A", b"C"])
        assert not q.matches_tokens([b"A"])

    def test_double_negation(self):
        q = parse_query("NOT NOT A")
        assert q.matches_tokens([b"A"])
        assert not q.matches_tokens([b"B"])

    def test_keywords_case_insensitive(self):
        q = parse_query("a and not b or c")
        assert q.matches_tokens([b"a"])
        assert q.matches_tokens([b"c"])
        assert not q.matches_tokens([b"a", b"b"])

    def test_contradictory_branch_dropped(self):
        q = parse_query("(A AND NOT A) OR B")
        assert len(q.intersections) == 1

    def test_empty_query_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("   ")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("(A AND B")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("A B")

    def test_dnf_blowup_guarded(self):
        clauses = " AND ".join(f"(a{i} OR b{i})" for i in range(12))
        with pytest.raises(QueryParseError):
            parse_query(clauses)

    def test_roundtrip_str_parse(self):
        q = parse_query('("failed" AND NOT "pbs_mom:") OR ciod')
        again = parse_query(str(q))
        assert again == q


@st.composite
def _random_query(draw):
    tokens = [b"A", b"B", b"C", b"D", b"E"]
    n_sets = draw(st.integers(1, 4))
    sets = []
    for _ in range(n_sets):
        n_terms = draw(st.integers(1, 4))
        terms = tuple(
            Term(draw(st.sampled_from(tokens)), negative=draw(st.booleans()))
            for _ in range(n_terms)
        )
        sets.append(IntersectionSet(terms=terms))
    return Query.of(*sets)


class TestParserRoundTripProperty:
    @given(
        _random_query(),
        st.lists(st.sampled_from([b"A", b"B", b"C", b"D", b"E", b"Z"]), max_size=6),
    )
    @settings(max_examples=150)
    def test_render_parse_preserves_semantics(self, query, tokens):
        """str(query) -> parse_query is semantics-preserving."""
        simplified = query.simplified()
        if not simplified.intersections:
            return  # fully contradictory queries render to ''
        reparsed = parse_query(str(simplified))
        assert reparsed.matches_tokens(tokens) == simplified.matches_tokens(tokens)


class TestQueryProperties:
    @given(_random_query(), st.lists(st.sampled_from([b"A", b"B", b"C", b"D", b"E", b"X"]), max_size=6))
    @settings(max_examples=200)
    def test_union_is_or_of_members(self, query, tokens):
        for iset in query.intersections:
            if iset.matches_tokens(tokens):
                assert query.matches_tokens(tokens)
        if query.matches_tokens(tokens):
            assert any(i.matches_tokens(tokens) for i in query.intersections)

    @given(_random_query(), _random_query(), st.lists(st.sampled_from([b"A", b"B", b"C"]), max_size=5))
    @settings(max_examples=100)
    def test_union_operator_semantics(self, q1, q2, tokens):
        joined = q1 | q2
        assert joined.matches_tokens(tokens) == (
            q1.matches_tokens(tokens) or q2.matches_tokens(tokens)
        )

    @given(_random_query(), st.lists(st.sampled_from([b"A", b"B", b"C", b"D", b"E"]), max_size=6))
    @settings(max_examples=100)
    def test_simplification_preserves_semantics(self, query, tokens):
        assert query.matches_tokens(tokens) == query.simplified().matches_tokens(tokens)
