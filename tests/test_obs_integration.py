"""End-to-end observability: spans, metric families, fault accounting.

These tests exercise the whole instrumented stack inside an isolated
registry (``use_registry``), so counters reflect exactly what the test
did — the same isolation discipline the benchmarks use.
"""

import pytest

from repro.core.query import parse_query
from repro.errors import StorageError
from repro.faults.injectors import (
    ShardFaultInjector,
    WalFaultInjector,
    inject_page_faults,
)
from repro.faults.reporting import FAULT_COMPONENTS
from repro.faults.schedules import AtOperationsSchedule, BernoulliSchedule
from repro.obs.expose import bootstrap_families, render_prometheus
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.tracing import SpanTracer, validate_chrome_trace
from repro.system.cluster import MithriLogCluster
from repro.system.mithrilog import MithriLogSystem
from repro.system.wal import WriteAheadLog

#: The five query phases the tracer must emit (plus the "query" root).
QUERY_PHASES = {"index_lookup", "flash_read", "decompress", "filter",
                "host_transfer"}


@pytest.fixture()
def corpus():
    from repro.datasets.synthetic import generator_for

    return generator_for("BGL2", seed=3).generate(1200)


class TestQueryTrace:
    def test_single_query_emits_all_phases(self, corpus, tmp_path):
        with use_registry(MetricsRegistry()):
            system = MithriLogSystem(seed=1)
            system.tracer = SpanTracer(clock=system.clock)
            report = system.ingest(corpus)
            outcome = system.query(parse_query("KERNEL AND INFO"))

        query_spans = [s for s in system.tracer.spans
                       if s.category == "query"]
        assert QUERY_PHASES <= {s.name for s in query_spans}
        assert len({s.name for s in query_spans}) >= 5

        by_name = {s.name: s for s in query_spans}
        # the query sits on the simulated timeline after the ingest
        assert by_name["query"].start_s == pytest.approx(report.elapsed_s)
        # index traversal is serial: scan stages start where it ends
        for stage in ("flash_read", "decompress", "filter", "host_transfer"):
            assert by_name[stage].start_s == pytest.approx(
                by_name["index_lookup"].end_s
            )
        # durations come from the stats, which the outcome carries too
        assert by_name["flash_read"].duration_s == pytest.approx(
            outcome.stats.flash_time_s
        )
        assert by_name["query"].duration_s == pytest.approx(
            outcome.stats.elapsed_s
        )

        # and the export is a valid, non-empty Chrome trace
        path = system.tracer.write_chrome_trace(tmp_path / "trace.json")
        assert validate_chrome_trace(path) >= 5

    def test_breakdown_keys_match_span_names(self, corpus):
        with use_registry(MetricsRegistry()):
            system = MithriLogSystem(seed=1)
            system.tracer = SpanTracer(clock=system.clock)
            system.ingest(corpus)
            outcome = system.query(parse_query("KERNEL"))
        breakdown = outcome.stats.breakdown
        assert set(breakdown) == {"index", "flash", "decompress", "filter",
                                  "host"}
        assert outcome.stats.elapsed_s == pytest.approx(
            breakdown["index"]
            + max(v for k, v in breakdown.items() if k != "index")
        )
        assert outcome.stats.bottleneck in ("flash", "decompress", "filter",
                                            "host")

    def test_scan_time_unchanged_by_stage_split(self, corpus):
        # the per-stage split must preserve the old max(flash, accel, host)
        with use_registry(MetricsRegistry()):
            system = MithriLogSystem(seed=1)
            system.ingest(corpus)
            outcome = system.query(parse_query("KERNEL"))
        stats = outcome.stats
        accel_time = stats.bytes_decompressed / system.accelerator_rate
        storage = system.params.storage
        expected = max(
            storage.latency_s + stats.bytes_from_flash / storage.internal_bandwidth,
            accel_time,
            stats.bytes_to_host / storage.external_bandwidth,
        )
        assert stats.scan_time_s == pytest.approx(expected)


class TestMetricFamilies:
    def test_e2e_populates_families(self, corpus):
        registry = MetricsRegistry()
        with use_registry(registry):
            bootstrap_families()
            system = MithriLogSystem(seed=1)
            system.ingest(corpus)
            system.query(parse_query("KERNEL AND INFO"))
            text = render_prometheus()
        for family in ("mithrilog_storage_", "mithrilog_pipeline_",
                       "mithrilog_index_", "mithrilog_wal_",
                       "mithrilog_faults_"):
            assert family in text, family
        assert registry.counter("mithrilog_query_total",
                                labelnames=("path",)).value(path="index") == 1
        assert registry.counter("mithrilog_ingest_lines_total").value() == len(
            corpus
        )
        assert registry.counter(
            "mithrilog_storage_pages_written_total"
        ).value() > 0

    def test_ingest_breakdown_keys(self, corpus):
        with use_registry(MetricsRegistry()):
            report = MithriLogSystem(seed=1).ingest(corpus)
        assert set(report.breakdown) == {"storage", "compress", "host"}
        assert report.bottleneck in report.breakdown
        assert report.elapsed_s == pytest.approx(max(report.breakdown.values()))


class TestFaultAccounting:
    def test_fault_storm_log_matches_metrics(self, corpus):
        registry = MetricsRegistry()
        with use_registry(registry):
            system = MithriLogSystem(seed=2)
            system.ingest(corpus)
            log = inject_page_faults(
                system,
                read_errors=BernoulliSchedule(0.05, seed=11),
                bit_flips=BernoulliSchedule(0.05, seed=12),
                seed=5,
            )
            for expr in ("KERNEL", "INFO", "RAS AND KERNEL"):
                try:
                    system.query(parse_query(expr))
                except StorageError:
                    pass  # retry budget exhausted: faults still accounted

        counts = log.by_kind()
        assert sum(counts.values()) > 0, "storm injected nothing"
        counter = registry.counter(
            "mithrilog_faults_injected_total", labelnames=("kind", "component")
        )
        for kind, count in counts.items():
            assert counter.value(
                kind=kind, component=FAULT_COMPONENTS[kind]
            ) == count, kind
        # nothing else slipped in: totals agree exactly
        assert sum(v for _labels, v in counter.samples()) == sum(
            counts.values()
        )

    def test_wal_recovery_metrics(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            injector = WalFaultInjector(
                torn_writes=AtOperationsSchedule([1]), seed=3
            )
            wal = WriteAheadLog(tmp_path / "wal.bin", fault_injector=injector)
            wal.append([b"alpha", b"beta"])
            wal.append([b"gamma"])  # torn by the injector
            dropped = wal.repair()

        assert dropped > 0
        assert injector.log.count("torn_write") == 1
        assert registry.counter(
            "mithrilog_wal_recoveries_total", labelnames=("outcome",)
        ).value(outcome="torn") == 1
        assert registry.counter(
            "mithrilog_wal_records_dropped_total"
        ).value() == 1
        assert registry.counter(
            "mithrilog_wal_bytes_truncated_total"
        ).value() == dropped
        assert registry.counter("mithrilog_wal_appends_total").value() == 2

    def test_cluster_degraded_metrics(self, corpus):
        registry = MetricsRegistry()
        with use_registry(registry):
            injector = ShardFaultInjector(
                shard_down=AtOperationsSchedule([0])
            )
            cluster = MithriLogCluster(num_shards=2, fault_injector=injector)
            cluster.ingest(corpus)
            outcome = cluster.query(parse_query("KERNEL"))

        assert outcome.degraded
        assert registry.counter(
            "mithrilog_cluster_degraded_queries_total"
        ).value() == 1
        assert registry.counter(
            "mithrilog_cluster_shard_errors_total", labelnames=("error",)
        ).value(error="ShardUnavailableError") == 1
        # the healthy shard's latency was still observed
        hist = registry.histogram("mithrilog_cluster_shard_query_seconds")
        ((_labels, _counts, _total, count),) = hist.series()
        assert count == 1
