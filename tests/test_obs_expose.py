"""Tests for Prometheus text exposition and JSON snapshots."""

import json

import pytest

from repro.obs.expose import (
    bootstrap_families,
    render_prometheus,
    snapshot,
    write_snapshot,
)
from repro.obs.metrics import MetricsRegistry, use_registry


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestPrometheusText:
    def test_counter_with_help_and_type(self, registry):
        registry.counter("demo_total", "a demo counter").inc(3)
        text = render_prometheus(registry)
        assert "# HELP demo_total a demo counter" in text
        assert "# TYPE demo_total counter" in text
        assert "demo_total 3" in text

    def test_labels_rendered(self, registry):
        c = registry.counter("reads_total", labelnames=("mode",))
        c.inc(2, mode="filter")
        assert 'reads_total{mode="filter"} 2' in render_prometheus(registry)

    def test_label_values_escaped(self, registry):
        # exposition format: backslash, double-quote and newline must be
        # escaped inside label values or the line becomes unparseable
        c = registry.counter("req_total", labelnames=("tenant",))
        c.inc(1, tenant='acme "prod"\nteam\\eu')
        text = render_prometheus(registry)
        assert (
            'req_total{tenant="acme \\"prod\\"\\nteam\\\\eu"} 1' in text
        )
        # no raw newline may survive inside a sample line
        for line in text.splitlines():
            if line.startswith("req_total{"):
                assert line.count('"') % 2 == 0

    def test_untouched_metric_renders_zero(self, registry):
        registry.counter("quiet_total", "never incremented")
        assert "quiet_total 0" in render_prometheus(registry)

    def test_histogram_series(self, registry):
        h = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = render_prometheus(registry)
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text
        assert "lat_seconds_sum 0.55" in text

    def test_disabled_registry(self):
        with use_registry(None):
            assert render_prometheus() == "# metrics disabled\n"

    def test_uses_active_registry_by_default(self, registry):
        registry.counter("active_total").inc()
        with use_registry(registry):
            assert "active_total 1" in render_prometheus()


class TestSnapshot:
    def test_structure(self, registry):
        registry.counter("c_total", "help").inc(2)
        registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        snap = snapshot(registry)
        assert snap["metrics"]["c_total"]["type"] == "counter"
        assert snap["metrics"]["c_total"]["samples"] == [
            {"labels": {}, "value": 2.0}
        ]
        entry = snap["metrics"]["h_seconds"]
        assert entry["buckets"] == [1.0, "inf"]
        assert entry["series"][0]["count"] == 1
        # must be JSON-serialisable as-is (inf replaced)
        json.dumps(snap)

    def test_disabled(self):
        with use_registry(None):
            assert snapshot() == {"metrics": {}, "disabled": True}

    def test_write_snapshot(self, registry, tmp_path):
        registry.counter("c_total").inc()
        path = write_snapshot(tmp_path / "deep" / "m.json", registry)
        loaded = json.loads(path.read_text())
        assert loaded["metrics"]["c_total"]["samples"][0]["value"] == 1.0


class TestBootstrapFamilies:
    def test_all_canonical_families_present(self, registry):
        bootstrap_families(registry)
        text = render_prometheus(registry)
        for family in (
            "mithrilog_storage_",
            "mithrilog_pipeline_",
            "mithrilog_index_",
            "mithrilog_wal_",
            "mithrilog_faults_",
            "mithrilog_query_",
            "mithrilog_scan_",
            "mithrilog_slo_",
        ):
            assert family in text, family

    def test_bootstrap_satisfies_the_artifact_validator(self, registry):
        # the CI validator's required families and bootstrap_families
        # must never drift apart
        from repro.obs.check import check_prometheus_text

        bootstrap_families(registry)
        assert check_prometheus_text(render_prometheus(registry)) == []

    def test_idempotent_and_compatible_with_components(self, registry):
        # bootstrapping must agree with the schemas components register,
        # in either order
        from repro.storage.flash import FlashArray

        with use_registry(registry):
            bootstrap_families(registry)
            FlashArray()
            bootstrap_families(registry)

    def test_noop_when_disabled(self):
        with use_registry(None):
            bootstrap_families()  # must not raise
