"""Tests for the cycle-approximate performance model (Figures 13/14)."""

import pytest

from repro.hw.perf import (
    EngineThroughputModel,
    PipelineCycleModel,
    measure_tokenized_stats,
)
from repro.params import PipelineParams

SHORT_TOKEN_LINES = [b"a b c d", b"e f g h"] * 50
LONG_TOKEN_LINES = [b"x" * 16 + b" " + b"y" * 16] * 100
TYPICAL_LINES = [
    b"- 1131566461 2005.11.09 tbird-admin1 Nov 9 12:01:01 local@tbird-admin1 crond"
] * 100


class TestTokenizedStats:
    def test_empty_corpus(self):
        stats = measure_tokenized_stats([])
        assert stats.useful_fraction == 1.0
        assert stats.amplification == 1.0

    def test_full_words_have_no_padding(self):
        stats = measure_tokenized_stats(LONG_TOKEN_LINES)
        assert stats.useful_fraction == 1.0

    def test_short_tokens_are_mostly_padding(self):
        stats = measure_tokenized_stats(SHORT_TOKEN_LINES)
        assert stats.useful_fraction == pytest.approx(1 / 16)

    def test_typical_logs_near_half_useful(self):
        # the paper's Figure 13: about half the tokenized datapath is useful
        stats = measure_tokenized_stats(TYPICAL_LINES)
        assert 0.3 < stats.useful_fraction < 0.8

    def test_amplification_inverse_of_density(self):
        stats = measure_tokenized_stats(SHORT_TOKEN_LINES)
        # 4 tokens of 1 byte -> 4 words of 16B from 8 raw bytes
        assert stats.amplification == pytest.approx(64 / 8)

    def test_counts(self):
        stats = measure_tokenized_stats([b"ab cd"])
        assert stats.lines == 1
        assert stats.raw_bytes == 6
        assert stats.token_words == 2
        assert stats.useful_bytes == 4


class TestPipelineCycleModel:
    def test_empty_input(self):
        count = PipelineCycleModel().count_cycles([])
        assert count.cycles == 0
        assert count.throughput_bytes_per_sec == 0.0

    def test_balanced_lines_near_wire_speed(self):
        # uniform 63-byte lines + newline = 32 ingest cycles per lane
        lines = [b"z" * 15 + b" " + b"w" * 47] * 800
        count = PipelineCycleModel().count_cycles(lines)
        params = PipelineParams()
        assert count.throughput_bytes_per_sec > 0.8 * params.wire_speed_bytes_per_sec

    def test_imbalanced_lines_lose_throughput(self):
        balanced = [b"m" * 64] * 160
        imbalanced = ([b"m" * 120] + [b"m" * 8] * 7) * 20  # same total bytes
        model = PipelineCycleModel()
        t_bal = model.count_cycles(balanced).throughput_bytes_per_sec
        t_imb = model.count_cycles(imbalanced).throughput_bytes_per_sec
        assert t_imb < t_bal

    def test_amplification_bound_by_hash_filters(self):
        # 1-byte tokens amplify 16x; two hash filters absorb only 2x
        count = PipelineCycleModel().count_cycles(SHORT_TOKEN_LINES)
        params = PipelineParams()
        assert count.throughput_bytes_per_sec < 0.5 * params.wire_speed_bytes_per_sec

    def test_raw_bytes_include_newlines(self):
        count = PipelineCycleModel().count_cycles([b"ab", b"cd"])
        assert count.raw_bytes == 6


class TestEngineThroughputModel:
    def test_storage_bound_dataset(self):
        # low compression ratio: storage supply caps the engine (paper: BGL2)
        model = EngineThroughputModel()
        result = model.evaluate("BGL2-like", TYPICAL_LINES, compression_ratio=2.0)
        assert result.bound_by == "storage"
        assert result.effective_bytes_per_sec == pytest.approx(4.8e9 * 2.0)

    def test_decompressor_or_filter_bound_with_high_ratio(self):
        model = EngineThroughputModel()
        result = model.evaluate("Liberty2-like", TYPICAL_LINES, compression_ratio=6.0)
        assert result.bound_by in ("decompressor", "filter")
        assert result.effective_bytes_per_sec <= 12.8e9

    def test_effective_throughput_in_paper_band(self):
        # realistic logs: 11-12.8 GB/s effective across 4 pipelines
        model = EngineThroughputModel()
        result = model.evaluate("typical", TYPICAL_LINES, compression_ratio=6.0)
        assert 9e9 < result.effective_bytes_per_sec <= 12.8e9

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            EngineThroughputModel().evaluate("x", TYPICAL_LINES, compression_ratio=0)
