"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def log_file(tmp_path):
    path = tmp_path / "test.log"
    code = main(
        ["generate", "--dataset", "BGL2", "--lines", "800", "--out", str(path)]
    )
    assert code == 0
    return path


@pytest.fixture()
def store(tmp_path, log_file):
    path = tmp_path / "store"
    code = main(["ingest", "--log", str(log_file), "--store", str(path)])
    assert code == 0
    return path


class TestGenerate:
    def test_generates_requested_lines(self, log_file):
        assert len(log_file.read_bytes().splitlines()) == 800

    def test_deterministic_with_seed(self, tmp_path):
        a, b = tmp_path / "a.log", tmp_path / "b.log"
        for out in (a, b):
            main(["--seed", "5", "generate", "--dataset", "Spirit2",
                  "--lines", "100", "--out", str(out)])
        assert a.read_bytes() == b.read_bytes()


class TestIngestAndQuery:
    def test_ingest_creates_store(self, store):
        assert (store / "pages.bin").exists()
        assert (store / "store.json").exists()

    def test_query_finds_lines(self, store, capsys):
        code = main(["query", "--store", str(store), "KERNEL AND INFO"])
        assert code == 0
        out = capsys.readouterr().out
        assert "matching lines" in out
        assert "GB/s effective" in out

    def test_query_no_index(self, store, capsys):
        code = main(["query", "--store", str(store), "--no-index", "FATAL"])
        assert code == 0
        assert "matching lines" in capsys.readouterr().out

    def test_query_stop_after_newest_first(self, store, capsys):
        code = main(
            ["query", "--store", str(store), "--stop-after", "3",
             "--newest-first", "RAS"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3 matching lines" in out

    def test_query_explain(self, store, capsys):
        code = main(["query", "--store", str(store), "--explain", "RAS AND FATAL"])
        assert code == 0
        out = capsys.readouterr().out
        assert "plan:" in out
        assert "estimated candidates:" in out

    def test_query_aggregate(self, store, capsys):
        code = main(["query", "--store", str(store), "--aggregate", "RAS"])
        assert code == 0
        out = capsys.readouterr().out
        assert "top hosts:" in out

    def test_query_limit(self, store, capsys):
        code = main(["query", "--store", str(store), "--limit", "2", "RAS"])
        assert code == 0
        out = capsys.readouterr().out
        assert "more (raise --limit" in out

    def test_query_sample_fraction(self, store, capsys):
        code = main(
            ["query", "--store", str(store), "--sample-fraction", "0.5",
             "--sample-seed", "7", "KERNEL"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sampled scan:" in out
        assert "estimated" in out and "CI" in out

    def test_query_sample_fraction_rejects_stop_after(self, store, capsys):
        code = main(
            ["query", "--store", str(store), "--sample-fraction", "0.5",
             "--stop-after", "3", "KERNEL"]
        )
        assert code == 2
        assert "cannot be combined" in capsys.readouterr().err

    def test_stats(self, store, capsys):
        code = main(["stats", "--store", str(store)])
        assert code == 0
        out = capsys.readouterr().out
        assert "lines: 800" in out
        assert "data pages:" in out

    def test_query_missing_store_fails_cleanly(self, tmp_path, capsys):
        code = main(["query", "--store", str(tmp_path / "none"), "x"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_query_fails_cleanly(self, store, capsys):
        code = main(["query", "--store", str(store), "(unbalanced"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestExplainCommand:
    def test_explain_tree_estimate(self, store, capsys):
        code = main(["explain", "--store", str(store), "KERNEL AND INFO"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("EXPLAIN ")
        assert "EXPLAIN ANALYZE" not in out
        # estimate mode shows the access choice but no executed stages
        for node in ("plan:", "index_lookup", "scan", "(est)"):
            assert node in out
        assert "flash_read" not in out

    def test_explain_analyze_tree(self, store, capsys):
        code = main(
            ["explain", "--store", str(store), "--analyze", "KERNEL AND INFO"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE" in out
        assert "bottleneck:" in out
        assert "cache:" in out

    def test_explain_json_validates(self, store, capsys):
        import json as jsonlib

        from repro.obs.explain import validate_explain_report

        code = main(
            ["explain", "--store", str(store), "--analyze",
             "--format", "json", "KERNEL"]
        )
        assert code == 0
        payload = jsonlib.loads(capsys.readouterr().out)
        assert validate_explain_report(payload) >= 7

    def test_explain_out_writes_artifact(self, store, tmp_path, capsys):
        import json as jsonlib

        out_path = tmp_path / "explain.json"
        code = main(
            ["explain", "--store", str(store), "--analyze",
             "--out", str(out_path), "KERNEL"]
        )
        assert code == 0
        payload = jsonlib.loads(out_path.read_text())
        assert payload["mode"] == "analyze"

    def test_query_analyze_appends_report(self, store, capsys):
        code = main(["query", "--store", str(store), "--analyze", "KERNEL"])
        assert code == 0
        out = capsys.readouterr().out
        assert "matching lines" in out
        assert "EXPLAIN ANALYZE" in out
        assert "bottleneck:" in out

    def test_stats_human_renders_accelerator_rates(self, store, capsys):
        code = main(["stats", "--store", str(store)])
        assert code == 0
        out = capsys.readouterr().out
        assert "accelerator rates:" in out
        assert "filter pipelines:" in out
        assert "GB/s" in out

    def test_trace_utilization_counters(self, store, tmp_path):
        import json as jsonlib

        out_path = tmp_path / "trace.json"
        code = main(
            ["trace", "--store", str(store), "--utilization",
             "--out", str(out_path), "KERNEL"]
        )
        assert code == 0
        trace = jsonlib.loads(out_path.read_text())
        counters = [e for e in trace["traceEvents"] if e.get("ph") == "C"]
        assert counters and all(
            e["name"].startswith("util:") for e in counters
        )


class TestWatchPerfCommand:
    def write(self, path, records):
        import json as jsonlib

        path.write_text(jsonlib.dumps(records))
        return str(path)

    def test_pass_exits_zero(self, tmp_path):
        path = self.write(
            tmp_path / "t.json",
            [{"bench": "b", "config": "c", "speedup": s} for s in (5.0, 5.1)],
        )
        assert main(["watch-perf", path]) == 0

    def test_regression_exits_one(self, tmp_path):
        path = self.write(
            tmp_path / "t.json",
            [{"bench": "b", "config": "c", "speedup": s} for s in (5.0, 3.0)],
        )
        assert main(["watch-perf", path]) == 1

    def test_bad_file_exits_two(self, tmp_path):
        assert main(["watch-perf", str(tmp_path / "nope.json")]) == 2

    def test_json_flag(self, tmp_path, capsys):
        import json as jsonlib

        path = self.write(
            tmp_path / "t.json",
            [{"bench": "b", "config": "c", "speedup": s} for s in (5.0, 5.0)],
        )
        assert main(["watch-perf", path, "--json"]) == 0
        verdict = jsonlib.loads(capsys.readouterr().out)
        assert verdict["regressions"] == []


class TestTagCommand:
    def test_tag_histogram(self, log_file, capsys):
        code = main(["tag", "--log", str(log_file), "--top", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "lines tagged" in out
        assert "accelerator" in out


class TestTimeBoundedQuery:
    def test_since_until_flags(self, store, capsys):
        # the synthetic epochs start around 1117838570
        code = main(
            [
                "query", "--store", str(store),
                "--since", "0", "--until", "9999999999",
                "KERNEL",
            ]
        )
        assert code == 0
        assert "matching lines" in capsys.readouterr().out


class TestTemplatesAndCompress:
    def test_templates(self, log_file, capsys):
        code = main(["templates", "--log", str(log_file), "--top", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "templates extracted" in out
        assert "query:" in out

    def test_compress(self, log_file, capsys):
        code = main(["compress", "--log", str(log_file)])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("LZAH", "LZRW1", "LZ4", "Snappy", "Gzip"):
            assert name in out

    def test_missing_log_fails_cleanly(self, tmp_path, capsys):
        code = main(["templates", "--log", str(tmp_path / "none.log")])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestServeSim:
    def test_healthy_session_exits_zero(self, log_file, capsys):
        code = main(
            ["serve-sim", "--log", str(log_file), "--offered-qps", "300",
             "--duration", "0.05", "--max-loss", "0.9", "--json"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        assert '"submitted"' in out  # --json payload on stdout

    def test_degraded_session_exits_one(self, log_file, capsys):
        code = main(
            ["serve-sim", "--log", str(log_file), "--offered-qps", "50000",
             "--duration", "0.05", "--max-loss", "0.01"]
        )
        assert code == 1
        assert "exceeds" in capsys.readouterr().err

    def test_invalid_args_exit_two(self, log_file):
        assert main(["serve-sim", "--log", str(log_file), "--tenants", "0"]) == 2
        assert main(["serve-sim", "--log", str(log_file), "--duration", "-1"]) == 2
        assert main(
            ["serve-sim", "--log", str(log_file), "--offered-qps", "-5"]
        ) == 2
        assert main(
            ["serve-sim", "--log", str(log_file), "--max-loss", "1.5"]
        ) == 2

    def test_missing_log_exits_one(self, tmp_path, capsys):
        code = main(["serve-sim", "--log", str(tmp_path / "none.log")])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestLoadgen:
    def test_sweep_writes_records(self, log_file, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = main(
            ["loadgen", "--log", str(log_file), "--multiples", "0.5,2",
             "--duration", "0.02", "--out", str(out)]
        )
        assert code == 0
        assert "measured capacity" in capsys.readouterr().out
        import json as _json

        records = _json.loads(out.read_text())
        assert [r["config"] for r in records] == ["load-x0.5", "load-x2"]
        assert all(r["bench"] == "service" for r in records)

    def test_blown_latency_budget_exits_one(self, log_file, capsys):
        code = main(
            ["loadgen", "--log", str(log_file), "--multiples", "2",
             "--duration", "0.02", "--p99-budget-ms", "0.0001"]
        )
        assert code == 1
        assert "exceeds budget" in capsys.readouterr().err

    def test_invalid_args_exit_two(self, log_file):
        assert main(["loadgen", "--log", str(log_file), "--multiples", "x"]) == 2
        assert main(["loadgen", "--log", str(log_file), "--multiples", ""]) == 2
        assert main(
            ["loadgen", "--log", str(log_file), "--multiples", "-1"]
        ) == 2
        assert main(["loadgen", "--log", str(log_file), "--tenants", "0"]) == 2


class TestWorkload:
    @pytest.fixture()
    def journal_path(self, log_file, tmp_path):
        path = tmp_path / "journal.json"
        code = main(
            ["loadgen", "--log", str(log_file), "--multiples", "0.5,2",
             "--duration", "0.02", "--journal-out", str(path)]
        )
        assert code == 0
        return path

    def test_loadgen_journal_has_one_window_per_level(self, journal_path):
        from repro.obs.journal import load_journal, validate_journal_payload

        journal = load_journal(journal_path)
        assert journal.windows() == ["load-x0.5", "load-x2"]
        assert journal.conserved()
        assert validate_journal_payload(journal.to_payload()) == []

    def test_serve_sim_journal_out(self, log_file, tmp_path, capsys):
        from repro.obs.journal import load_journal

        path = tmp_path / "serve.json"
        code = main(
            ["serve-sim", "--log", str(log_file), "--offered-qps", "300",
             "--duration", "0.05", "--max-loss", "0.9",
             "--journal-out", str(path)]
        )
        assert code == 0
        assert "query journal" in capsys.readouterr().out
        journal = load_journal(path)
        assert journal.windows() == ["serve-sim"]
        assert len(journal) > 0

    def test_mine_prints_slices(self, journal_path, capsys):
        code = main(
            ["workload", "mine", "--journal", str(journal_path), "--top", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hot templates:" in out
        assert "by tenant:" in out
        assert "by stage:" in out
        assert "by mode:" in out

    def test_mine_window_and_drift(self, journal_path, capsys):
        code = main(
            ["workload", "mine", "--journal", str(journal_path),
             "--window", "load-x2", "--drift-windows", "load-x0.5,load-x2"]
        )
        assert code == 0
        assert "drift load-x0.5 -> load-x2:" in capsys.readouterr().out

    def test_mine_json_out_validates(self, journal_path, tmp_path, capsys):
        import json as jsonlib

        out = tmp_path / "profile.json"
        code = main(
            ["workload", "mine", "--journal", str(journal_path),
             "--json", "--out", str(out)]
        )
        assert code == 0
        payload = jsonlib.loads(out.read_text())
        assert payload["kind"] == "mithrilog_workload_profile"
        # stdout carries log lines around the JSON block; slice it out
        printed = capsys.readouterr().out
        block = printed[printed.index("{") : printed.rindex("}") + 1]
        assert jsonlib.loads(block) == payload

    def test_mine_missing_window_exits_one(self, journal_path):
        assert main(
            ["workload", "mine", "--journal", str(journal_path),
             "--window", "nonesuch"]
        ) == 1

    def test_report_between_windows(self, journal_path, tmp_path, capsys):
        import json as jsonlib

        from repro.obs.report import validate_ab_report

        out = tmp_path / "ab.json"
        md = tmp_path / "ab.md"
        code = main(
            ["workload", "report", "--journal-a", str(journal_path),
             "--window-a", "load-x0.5", "--window-b", "load-x2",
             "--label-a", "calm", "--label-b", "storm",
             "--out", str(out), "--md-out", str(md)]
        )
        assert code == 0
        assert "`calm` vs `storm`" in capsys.readouterr().out
        payload = jsonlib.loads(out.read_text())
        assert validate_ab_report(payload) == []
        assert md.read_text().startswith("# A/B workload report")

    def test_report_single_journal_no_windows_exits_two(self, journal_path):
        assert main(
            ["workload", "report", "--journal-a", str(journal_path)]
        ) == 2

    def test_check_accepts_cli_artifacts(self, journal_path, tmp_path):
        from repro.obs.check import check_file

        out = tmp_path / "ab.json"
        code = main(
            ["workload", "report", "--journal-a", str(journal_path),
             "--window-a", "load-x0.5", "--window-b", "load-x2",
             "--out", str(out)]
        )
        assert code == 0
        assert check_file(journal_path) is None
        assert check_file(out) is None


class TestSLOCommands:
    @pytest.fixture()
    def config_path(self, tmp_path):
        import json as jsonlib

        path = tmp_path / "slo.json"
        path.write_text(jsonlib.dumps({
            "kind": "mithrilog_slo_config",
            "version": 1,
            "check_interval_s": 0.005,
            "slos": [{
                "name": "avail",
                "objective": "availability",
                "target": 0.9,
                "fast_window_s": 0.05,
                "slow_window_s": 0.25,
                "burn_threshold": 2.0,
                "resolve_after_s": 0.1,
            }],
        }))
        return path

    @pytest.fixture()
    def journal_path(self, log_file, tmp_path):
        path = tmp_path / "journal.json"
        code = main(
            ["serve-sim", "--log", str(log_file), "--offered-qps", "300",
             "--duration", "0.05", "--max-loss", "0.9",
             "--journal-out", str(path)]
        )
        assert code == 0
        return path

    def test_check_valid_config_exits_zero(self, config_path, capsys):
        assert main(["slo", "check", "--config", str(config_path)]) == 0
        assert "avail" in capsys.readouterr().out

    def test_check_invalid_config_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "mithrilog_slo_config", "version": 1, '
                       '"slos": [{"name": "x", "target": 5.0}]}')
        assert main(["slo", "check", "--config", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_check_replays_journal(self, config_path, journal_path, capsys):
        code = main(
            ["slo", "check", "--config", str(config_path),
             "--journal", str(journal_path), "--fail-on-alert"]
        )
        # healthy traffic: replay must not trip the alert
        assert code == 0

    def test_watch_writes_bundles_on_incident(
        self, config_path, log_file, tmp_path
    ):
        # build a journal whose tail is all shed traffic by overloading
        journal = tmp_path / "hot.json"
        code = main(
            ["serve-sim", "--log", str(log_file), "--offered-qps", "50000",
             "--duration", "0.05", "--max-loss", "1.0",
             "--journal-out", str(journal)]
        )
        assert code == 0
        bundles = tmp_path / "incidents"
        code = main(
            ["slo", "watch", "--journal", str(journal),
             "--config", str(config_path), "--bundle-out", str(bundles)]
        )
        assert code == 1  # alert fired during replay
        from repro.obs.check import check_file

        written = sorted(bundles.glob("incident-*.json"))
        assert written
        assert check_file(written[0]) is None

    def test_serve_sim_slo_flags(self, config_path, log_file, tmp_path, capsys):
        bundles = tmp_path / "incidents"
        code = main(
            ["serve-sim", "--log", str(log_file), "--offered-qps", "300",
             "--duration", "0.05", "--max-loss", "0.9",
             "--slo-config", str(config_path),
             "--bundle-out", str(bundles),
             "--journal-max-entries", "50"]
        )
        assert code == 0
        assert "SLO" in capsys.readouterr().out

    def test_loadgen_slo_flags(self, config_path, log_file, tmp_path, capsys):
        code = main(
            ["loadgen", "--log", str(log_file), "--multiples", "0.5",
             "--duration", "0.02", "--slo-config", str(config_path)]
        )
        assert code == 0
        assert "SLO" in capsys.readouterr().out

    def test_slo_config_artifact_checkable(self, config_path):
        from repro.obs.check import check_file

        assert check_file(config_path) is None
