"""SLO definitions, burn-rate arithmetic, and the alert state machine."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.slo import (
    SLO,
    AlertState,
    SLOError,
    SLOMonitor,
    default_slos,
    load_slo_config,
    looks_like_slo_config,
    parse_slo_config,
    replay_journal,
    validate_slo_config,
)


def availability_slo(**overrides):
    fields = dict(
        name="avail",
        objective="availability",
        target=0.9,
        fast_window_s=0.05,
        slow_window_s=0.25,
        burn_threshold=2.0,
        resolve_after_s=0.1,
    )
    fields.update(overrides)
    return SLO(**fields)


class TestSLODefinition:
    def test_defaults_valid(self):
        for slo in default_slos():
            assert 0.0 < slo.target < 1.0

    def test_rejects_bad_objective(self):
        with pytest.raises(SLOError):
            availability_slo(objective="vibes")

    def test_rejects_target_out_of_range(self):
        with pytest.raises(SLOError):
            availability_slo(target=1.0)
        with pytest.raises(SLOError):
            availability_slo(target=0.0)

    def test_latency_objective_needs_threshold(self):
        with pytest.raises(SLOError):
            availability_slo(objective="latency", latency_threshold_s=None)

    def test_rejects_inverted_windows(self):
        with pytest.raises(SLOError):
            availability_slo(fast_window_s=0.5, slow_window_s=0.1)

    def test_round_trip(self):
        slo = availability_slo(tenant="tenant0", count_degraded=True)
        assert SLO.from_dict(slo.to_dict()) == slo

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(SLOError):
            SLO.from_dict({"name": "x", "bogus": 1})

    def test_classify_availability(self):
        # classify: True = good, False = bad, None = out of scope
        slo = availability_slo()
        assert slo.classify("t0", "ok", 0.01, degraded=False) is True
        assert slo.classify("t0", "shed", 0.0, degraded=False) is False
        # degraded successes only count as bad when asked to
        assert slo.classify("t0", "ok", 0.01, degraded=True) is True
        strict = availability_slo(count_degraded=True)
        assert strict.classify("t0", "ok", 0.01, degraded=True) is False

    def test_classify_latency_scopes_to_ok(self):
        slo = availability_slo(
            objective="latency", latency_threshold_s=0.05
        )
        assert slo.classify("t0", "ok", 0.01, degraded=False) is True
        assert slo.classify("t0", "ok", 0.2, degraded=False) is False
        # non-OK outcomes are out of scope for a latency objective
        assert slo.classify("t0", "shed", 0.0, degraded=False) is None

    def test_classify_tenant_scope(self):
        slo = availability_slo(tenant="tenant0")
        assert slo.classify("tenant1", "shed", 0.0, degraded=False) is None
        assert slo.classify("tenant0", "shed", 0.0, degraded=False) is False


def drive(monitor, good, bad, start_s=0.0, step_s=0.005, tenant="t0"):
    """Feed a block of good then bad events, evaluating as we go."""
    t = start_s
    for _ in range(good):
        monitor.observe(tenant, "ok", 0.001, now_s=t)
        monitor.evaluate(t)
        t += step_s
    for _ in range(bad):
        monitor.observe(tenant, "shed", 0.0, now_s=t)
        monitor.evaluate(t)
        t += step_s
    return t


class TestStateMachine:
    def test_quiet_traffic_never_alerts(self):
        monitor = SLOMonitor([availability_slo()], interval_s=0.005)
        drive(monitor, good=80, bad=0)
        assert monitor.state_of("avail") is AlertState.OK
        assert monitor.alerts == []
        assert monitor.timeline() == []

    def test_sustained_errors_fire(self):
        monitor = SLOMonitor([availability_slo()], interval_s=0.005)
        drive(monitor, good=20, bad=40)
        fired = [a for a in monitor.alerts if a.fired_at_s is not None]
        assert fired
        alert = fired[0]
        assert alert.burn_fast_at_fire >= 2.0
        assert alert.burn_slow_at_fire >= 2.0
        assert alert.pending_at_s <= alert.fired_at_s

    def test_firing_resolves_after_quiet_period(self):
        monitor = SLOMonitor([availability_slo()], interval_s=0.005)
        end = drive(monitor, good=10, bad=40)
        assert monitor.state_of("avail") is AlertState.FIRING
        drive(monitor, good=120, bad=0, start_s=end)
        states = [t["to"] for t in monitor.timeline()]
        assert states == ["pending", "firing", "resolved"]
        assert monitor.state_of("avail") is AlertState.OK
        assert monitor.alerts[0].resolved_at_s is not None

    def test_pending_dwell_cancels_on_recovery(self):
        # a long dwell means a short error blip never fires
        slo = availability_slo(pending_for_s=0.5)
        monitor = SLOMonitor([slo], interval_s=0.005)
        end = drive(monitor, good=10, bad=8)
        drive(monitor, good=200, bad=0, start_s=end)
        states = [t["to"] for t in monitor.timeline()]
        assert "firing" not in states
        assert monitor.state_of("avail") is AlertState.OK

    def test_duplicate_slo_names_rejected(self):
        with pytest.raises(SLOError):
            SLOMonitor([availability_slo(), availability_slo()])

    def test_budget_reconciles_with_observations(self):
        monitor = SLOMonitor([availability_slo()], interval_s=0.005)
        drive(monitor, good=30, bad=10)
        budget = monitor.budget("avail")
        assert budget["total_events"] == 40
        assert budget["bad_events"] == 10
        assert budget["consumed_ratio"] == pytest.approx(
            10 / ((1 - 0.9) * 40)
        )

    def test_metrics_exported_when_registry_active(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            monitor = SLOMonitor([availability_slo()], interval_s=0.005)
            drive(monitor, good=5, bad=20)
        from repro.obs.expose import render_prometheus

        text = render_prometheus(registry)
        assert "mithrilog_slo_evaluations_total" in text
        assert 'mithrilog_slo_burn_rate{slo="avail",window="fast"}' in text

    def test_to_dict_serialisable(self):
        monitor = SLOMonitor([availability_slo()], interval_s=0.005)
        drive(monitor, good=10, bad=20)
        json.dumps(monitor.to_dict())


class TestConfig:
    def payload(self):
        return {
            "kind": "mithrilog_slo_config",
            "version": 1,
            "check_interval_s": 0.01,
            "slos": [availability_slo().to_dict()],
        }

    def test_parse(self):
        slos, interval = parse_slo_config(self.payload())
        assert interval == 0.01
        assert slos[0].name == "avail"

    def test_looks_like(self):
        assert looks_like_slo_config(self.payload())
        assert not looks_like_slo_config({"kind": "other"})
        assert not looks_like_slo_config([1])

    def test_validator_accepts_good(self):
        assert validate_slo_config(self.payload()) == []

    def test_validator_catches_problems(self):
        p = self.payload()
        p["slos"][0]["target"] = 2.0
        assert validate_slo_config(p)
        p = self.payload()
        p["slos"].append(availability_slo().to_dict())
        assert any("duplicate" in x for x in validate_slo_config(p))
        p = self.payload()
        p["version"] = 99
        assert validate_slo_config(p)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(self.payload()))
        slos, interval = load_slo_config(path)
        assert slos[0] == availability_slo()

    def test_example_config_is_valid(self):
        from pathlib import Path

        example = (
            Path(__file__).resolve().parent.parent
            / "examples"
            / "slo_config.json"
        )
        payload = json.loads(example.read_text())
        assert looks_like_slo_config(payload)
        assert validate_slo_config(payload) == []


class TestReplay:
    def test_replay_journal_rebuilds_timeline(self):
        from repro.obs.journal import QueryJournal

        journal = QueryJournal()
        t = 0.0
        for i in range(30):
            journal.note_submitted("t0")
            journal.observe_direct(
                "q",
                latency_s=0.001,
                matches=1,
                stage="flash",
                completed_at_s=t,
                tenant="t0",
            )
            t += 0.005
        monitor = SLOMonitor([availability_slo()], interval_s=0.005)
        replay_journal(monitor, journal)
        assert monitor.state_of("avail") is AlertState.OK
        assert monitor.evaluations > 0
