"""Tests for the sharded cluster deployment."""

import pytest

from repro.baselines.grep import grep_lines
from repro.core.query import parse_query
from repro.datasets.synthetic import generator_for
from repro.errors import IngestError, QueryError
from repro.system.cluster import MithriLogCluster


@pytest.fixture(scope="module")
def corpus():
    return generator_for("Thunderbird").generate(4000)


@pytest.fixture(scope="module")
def cluster(corpus):
    c = MithriLogCluster(num_shards=4)
    c.ingest(corpus)
    return c


class TestIngest:
    def test_lines_split_across_shards(self, cluster, corpus):
        assert cluster.total_lines == len(corpus)
        per_shard = [s.total_lines for s in cluster.shards]
        assert all(count > 0 for count in per_shard)
        assert max(per_shard) - min(per_shard) <= 1

    def test_report_aggregates(self, corpus):
        c = MithriLogCluster(num_shards=2)
        report = c.ingest(corpus[:1000])
        assert report.lines == 1000
        assert report.compression_ratio > 1.5
        assert report.elapsed_s == max(r.elapsed_s for r in report.shards)

    def test_small_batches_skip_empty_shards(self):
        c = MithriLogCluster(num_shards=8)
        report = c.ingest([b"only one", b"two lines"])
        assert report.lines == 2
        assert len(report.shards) == 2

    def test_timestamp_alignment_enforced(self):
        c = MithriLogCluster(num_shards=2)
        with pytest.raises(IngestError):
            c.ingest([b"a", b"b"], timestamps=[1.0])

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            MithriLogCluster(num_shards=0)


class TestQuery:
    def test_results_equal_oracle(self, cluster, corpus):
        for expr in ("Failed AND NOT sshd:", "crond[0-9]:" , "NOT kernel:"):
            try:
                query = parse_query(expr)
            except Exception:
                continue
            outcome = cluster.query(query)
            expected = grep_lines(query, corpus)
            assert sorted(outcome.matched_lines) == sorted(expected), expr

    def test_results_identical_across_shard_counts(self, corpus):
        query = parse_query("session AND opened")
        results = []
        for shards in (1, 2, 4):
            c = MithriLogCluster(num_shards=shards)
            c.ingest(corpus[:1500])
            results.append(sorted(c.query(query).matched_lines))
        assert results[0] == results[1] == results[2]

    def test_parallel_makespan_beats_serial(self, cluster):
        outcome = cluster.scan_all(parse_query("session"))
        assert outcome.elapsed_s < outcome.serial_elapsed_s
        assert len(outcome.per_shard) == 4

    def test_sharding_speeds_up_scans(self, corpus):
        query = parse_query("session AND opened")
        single = MithriLogCluster(num_shards=1)
        single.ingest(corpus[:2000])
        quad = MithriLogCluster(num_shards=4)
        quad.ingest(corpus[:2000])
        t1 = single.scan_all(query).elapsed_s
        t4 = quad.scan_all(query).elapsed_s
        assert t4 < t1

    def test_per_query_counts_sum(self, cluster, corpus):
        q1 = parse_query("session")
        q2 = parse_query("Failed")
        outcome = cluster.query(q1, q2)
        assert outcome.per_query_counts[0] == len(grep_lines(q1, corpus))
        assert outcome.per_query_counts[1] == len(grep_lines(q2, corpus))

    def test_empty_query_rejected(self, cluster):
        with pytest.raises(QueryError):
            cluster.query()

    def test_effective_throughput_scales(self, cluster):
        outcome = cluster.scan_all(parse_query("session"))
        gbps = outcome.effective_throughput(cluster.original_bytes)
        assert gbps > 0
