"""Table 6: average effective throughput of batched queries (GB/s).

The same measurements as Figure 15, aggregated the way the paper's table
is: mean GB/s per batch size per system per dataset, plus the average
improvement row. Checked shape: MithriLog rows are flat and >= ~9 GB/s
equivalents at this scale; improvement factors are large and grow with
batch size.
"""

import pytest

from conftest import DATASETS
from repro.system.report import render_table


def _build_rows(scan_comparisons):
    rows = []
    for batch in (1, 2, 8):
        rows.append(
            [f"MonetDB{batch}"]
            + [round(scan_comparisons[n].mean_gbps("MonetDB", batch), 2) for n in DATASETS]
        )
        rows.append(
            [f"MithriLog{batch}"]
            + [round(scan_comparisons[n].mean_gbps("MithriLog", batch), 2) for n in DATASETS]
        )
    rows.append(
        ["Avg.Improve"]
        + [f"{scan_comparisons[n].average_improvement():.1f}x" for n in DATASETS]
    )
    return rows


def test_table6_batched_throughput(benchmark, scan_comparisons, capsys):
    rows = benchmark.pedantic(
        _build_rows, args=(scan_comparisons,), iterations=1, rounds=1
    )
    with capsys.disabled():
        print()
        print(
            render_table(
                "Table 6: average effective throughput of batched queries (GB/s)",
                ["System"] + list(DATASETS),
                rows,
                col_width=13,
            )
        )
    for name in DATASETS:
        comparison = scan_comparisons[name]
        # MithriLog's effective throughput is flat across batch sizes
        m1 = comparison.mean_gbps("MithriLog", 1)
        m8 = comparison.mean_gbps("MithriLog", 8)
        assert m8 == pytest.approx(m1, rel=0.2), name
        # and large: near the accelerator band even at laptop corpus scale
        assert m1 > 3.0, name
        # improvement grows with batch size (MonetDB degrades, we don't)
        improvement_1 = m1 / comparison.mean_gbps("MonetDB", 1)
        improvement_8 = m8 / comparison.mean_gbps("MonetDB", 8)
        assert improvement_8 > improvement_1 > 1.5, name
        # headline: order-of-magnitude average improvement territory
        assert comparison.average_improvement() > 4.0, name
