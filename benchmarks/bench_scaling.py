"""Scaling: how the paper's magnitudes emerge with corpus size.

EXPERIMENTS.md argues that the gap between this reproduction's measured
improvement factors and the paper's (e.g. Table 7's 9.9x-352x) is a pure
scale effect: fixed per-query costs amortise away as corpora grow toward
the paper's tens of GB. This bench measures that trend directly — the
same workload over geometrically growing corpora — and asserts both
MithriLog's effective throughput and its advantage over the software
engines grow monotonically with size.
"""


from repro.core.query import Query, Term, parse_query
from repro.system.comparison import ComparisonHarness
from repro.datasets.synthetic import generator_for
from repro.system.report import render_table

SIZES = (1_000, 3_000, 9_000)


def _run_at_scale(lines_count: int) -> dict:
    lines = generator_for("Liberty2").generate(lines_count)
    harness = ComparisonHarness(lines)
    queries = [
        parse_query("session AND opened"),
        parse_query("kernel: AND NOT nfs:"),
        Query.single(Term(b"kernel:", negative=True)),  # forces full scans
    ]
    ours_gbps = []
    splunk_ratio = []
    scan_ratio = []
    for query in queries:
        ours = harness.mithrilog.query(query, use_index=True)
        ours_time = ours.stats.elapsed_s
        ours_gbps.append(
            ours.effective_throughput(harness.original_bytes) / 1e9
        )
        splunk = harness.splunk.execute(query)
        splunk_ratio.append(splunk.amortized_elapsed_s / ours_time)
        scan = harness.scan_db.execute(query)
        scan_ratio.append(scan.elapsed_s / harness.mithrilog.scan_all(query).stats.elapsed_s)
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    return {
        "bytes": harness.original_bytes,
        "gbps": mean(ours_gbps),
        "vs_splunk": mean(splunk_ratio),
        "vs_scan": mean(scan_ratio),
    }


def test_scaling_trend(benchmark, capsys):
    results = benchmark.pedantic(
        lambda: [_run_at_scale(n) for n in SIZES], iterations=1, rounds=1
    )
    rows = [
        [
            f"{size:,} lines",
            f"{r['bytes'] / 1e6:.2f} MB",
            round(r["gbps"], 2),
            f"{r['vs_splunk']:.1f}x",
            f"{r['vs_scan']:.1f}x",
        ]
        for size, r in zip(SIZES, results)
    ]
    with capsys.disabled():
        print()
        print(
            render_table(
                "Scaling: MithriLog advantage vs corpus size",
                ["Corpus", "Size", "MithriLog GB/s", "vs Splunk", "vs scan-DB"],
                rows,
            )
        )
        print(
            "  (the paper's corpora are 30-38 GB; both columns keep growing "
            "toward its 9.9x-352x / 5.8x-84.8x factors)"
        )
    gbps = [r["gbps"] for r in results]
    splunk = [r["vs_splunk"] for r in results]
    scan = [r["vs_scan"] for r in results]
    assert gbps[0] < gbps[1] < gbps[2]
    assert splunk[0] < splunk[1] < splunk[2]
    assert scan[0] < scan[1] < scan[2]
    # by ~1 MB the advantage over the software engines is already clear
    assert splunk[-1] > 1.5
    assert scan[-1] > 3.0
