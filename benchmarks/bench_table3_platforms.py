"""Table 3: computation and storage of the compared platforms.

Configuration-driven: prints the platform comparison and checks the
deliberate asymmetry the paper emphasises — the *software* comparison
machine has much faster storage than MithriLog, so any MithriLog win is
not a storage-budget artifact.
"""

import pytest

from repro.params import (
    COMPARISON_STORAGE_BANDWIDTH,
    INTERNAL_BANDWIDTH,
    PCIE_BANDWIDTH,
    PROTOTYPE,
)
from repro.system.report import render_table


def _build_rows():
    return [
        ["Computation", "2x Virtex-7", "i7-8700K"],
        ["Storage BW (ext)", f"{PCIE_BANDWIDTH / 1e9:.1f} GB/s (PCIe)", f"{COMPARISON_STORAGE_BANDWIDTH / 1e9:.1f} GB/s"],
        ["Storage BW (int)", f"{INTERNAL_BANDWIDTH / 1e9:.1f} GB/s", "-"],
    ]


def test_table3_platforms(benchmark, capsys):
    rows = benchmark.pedantic(_build_rows, iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            render_table(
                "Table 3: compared platforms",
                ["", "MithriLog", "Comparison"],
                rows,
                col_width=20,
            )
        )
    # the comparison platform out-provisions MithriLog's storage
    assert COMPARISON_STORAGE_BANDWIDTH > INTERNAL_BANDWIDTH > PCIE_BANDWIDTH
    # internal-to-external ratio ~1.5x, in line with Samsung's published 1.8x
    assert 1.2 < INTERNAL_BANDWIDTH / PCIE_BANDWIDTH < 1.8
    # aggregate accelerator wire-speed: 4 pipelines x 3.2 GB/s = 12.8 GB/s
    assert PROTOTYPE.aggregate_wire_speed == pytest.approx(12.8e9)
