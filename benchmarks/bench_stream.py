"""Streaming benchmark: standing-query alerting + sampled-scan goodput.

Standalone (``python benchmarks/bench_stream.py``), two parts on the
simulated clock:

**Part A — alert detection latency.** A synthetic log is streamed
through a :class:`~repro.system.streaming.StreamingIngestor` with a
standing query (``ERROR`` over a sliding window, count threshold)
registered on a :class:`~repro.stream.standing.StandingQueryRegistry`.
Mid-stream a contiguous burst of matching lines arrives. The burst's
*onset* is stamped at the flush that first seals burst lines (the
instant the data becomes visible to incremental evaluation), and the
registry's threshold alert must reach ``firing`` within a bounded
amount of **simulated** time of that onset. The identical stream
without the burst must stay silent.

**Part B — sampled scans under overload.** The same corpus is served
by the multi-tenant :class:`~repro.service.QueryService` at 2x and 4x
measured capacity, three ways: exact at 1x (the reference), overload
handled by shedding, and overload handled by degrading sheddable
requests into the approximate admission class (seeded page sampling +
Horvitz-Thompson estimates). Sampling must recover goodput versus
shedding while keeping the estimates honest against exact ground truth.

Gates (non-zero exit, what the CI ``stream-smoke`` job keys off):

1. zero alerts on the clean (burst-free) stream;
2. the burst stream fires, within ``--detect-ceiling`` simulated
   seconds of burst onset, and the status artifact validates;
3. two identical burst runs produce identical status payloads and
   alert timelines (determinism), and two identical sampled-overload
   runs produce identical outcome signatures;
4. every service run conserves outcomes
   (``ok+rejected+shed+timed_out+approximated == submitted``);
5. sampled goodput >= ``--goodput-ratio`` x shedding goodput at every
   overload multiple;
6. the mean relative error of the sampled estimates vs exact ground
   truth stays under ``--error-ceiling``, and the journal of the
   sampled run validates (mode/outcome consistency).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets.synthetic import generator_for
from repro.obs.expose import bootstrap_families
from repro.obs.journal import QueryJournal, validate_journal_payload
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.service import (
    QueryService,
    estimate_capacity,
    make_tenants,
    open_loop_requests,
)
from repro.stream import (
    StandingQuery,
    StandingQueryRegistry,
    Threshold,
    WindowSpec,
    validate_stream_status,
)
from repro.system.mithrilog import MithriLogSystem
from repro.system.streaming import StreamingIngestor
from repro.core.query import parse_query


def outcome_signature(report):
    return tuple(
        (r.request.tenant, r.outcome.value, round(r.latency_s, 12), r.matches)
        for r in report.responses
    )


# ---------------------------------------------------------------------------
# Part A: standing-query burst detection
# ---------------------------------------------------------------------------


def stream_lines(args, with_burst: bool) -> list[tuple[bytes, bool]]:
    """(line, is_burst) pairs: a steady INFO stream, optionally with a
    contiguous ERROR burst in the middle."""
    out = []
    for i in range(args.stream_lines):
        burst = with_burst and (
            args.burst_start <= i < args.burst_start + args.burst_width
        )
        if burst:
            line = f"svc worker-{i % 8} ERROR backend timeout req={i}"
        else:
            line = f"svc worker-{i % 8} INFO served req={i} bytes={i % 701}"
        out.append((line.encode(), burst))
    return out


def run_stream(args, with_burst: bool):
    """One fresh registry-isolated stream run; returns run facts."""
    registry = MetricsRegistry()
    with use_registry(registry):
        bootstrap_families(registry)
        system = MithriLogSystem(seed=args.seed)
        ingestor = StreamingIngestor(system, batch_lines=args.batch_lines)
        standing = StandingQueryRegistry(system, interval_s=args.interval)
        standing.register(
            StandingQuery(
                name="error-burst",
                query=parse_query("ERROR"),
                window=WindowSpec(
                    kind="sliding", width_s=args.window_ms / 1e3
                ),
                threshold=Threshold(
                    value=args.threshold, aggregate="count", op=">="
                ),
            )
        )
        onset = {"appended": False, "at_s": None}

        def stamp_onset(lines_flushed: int, now_s: float) -> None:
            del lines_flushed
            if onset["appended"] and onset["at_s"] is None:
                onset["at_s"] = now_s

        ingestor.flush_listeners.append(stamp_onset)
        standing.attach(ingestor)
    with ingestor:
        for line, is_burst in stream_lines(args, with_burst):
            if is_burst:
                onset["appended"] = True
            ingestor.append(line)
    fired = [a for a in standing.monitor.alerts if a.fired_at_s is not None]
    return standing, onset["at_s"], fired


def part_a(args, failures: list[str]) -> dict:
    clean, _, clean_fired = run_stream(args, with_burst=False)
    print(
        f"clean stream: {clean.evaluations} evaluations, "
        f"{len(clean_fired)} alert(s)"
    )
    if clean_fired:
        failures.append(
            f"false positive: {len(clean_fired)} alert(s) fired on the "
            "burst-free stream"
        )

    standing, onset_s, fired = run_stream(args, with_burst=True)
    detection_s = None
    if onset_s is None:
        failures.append("the burst never reached a flush (onset unset)")
    elif not fired:
        failures.append("no alert fired on the burst stream (detection miss)")
    else:
        first_fire_s = min(a.fired_at_s for a in fired)
        detection_s = first_fire_s - onset_s
        print(
            f"burst stream: onset {onset_s * 1e3:.3f} ms sim, alert fired "
            f"{first_fire_s * 1e3:.3f} ms sim -> detection latency "
            f"{detection_s * 1e3:.3f} ms sim"
        )
        if detection_s > args.detect_ceiling:
            failures.append(
                f"detection latency {detection_s * 1e3:.3f} ms sim exceeds "
                f"ceiling {args.detect_ceiling * 1e3:.3f} ms"
            )
    payload = standing.status_payload()
    problems = validate_stream_status(payload)
    if problems:
        failures.append(f"stream status failed validation: {problems}")

    # determinism: an identical burst run, bit-identical state
    standing2, onset2_s, _ = run_stream(args, with_burst=True)
    if standing2.status_payload() != payload:
        failures.append("identical burst runs produced different status")
    if standing2.monitor.timeline() != standing.monitor.timeline():
        failures.append("identical burst runs produced different timelines")
    if onset2_s != onset_s:
        failures.append("identical burst runs stamped different onsets")

    if args.status_out is not None:
        out = Path(args.status_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        print(f"wrote stream status to {out}")
    return {
        "bench": "stream",
        "config": "detection",
        "detection_latency_ms": (
            round(detection_s * 1e3, 4) if detection_s is not None else None
        ),
        "onset_ms": round(onset_s * 1e3, 4) if onset_s is not None else None,
        "evaluations": standing.evaluations,
        "clean_alerts": len(clean_fired),
        "burst_alerts": len(fired),
    }


# ---------------------------------------------------------------------------
# Part B: sampled scans vs shedding under overload
# ---------------------------------------------------------------------------


def broad_pool(lines, max_queries: int):
    """Broad single-token queries — the sampled-scan sweet spot.

    Approximate answers pay off for exploratory "roughly how often"
    filters whose matches spread across many pages; the service pool's
    multi-token template queries narrow to a couple of pages, where
    page sampling can neither save work nor estimate honestly. Tokens
    are picked by document frequency (5-80% of lines), most common
    first, ties broken lexically — fully seed/host independent.
    """
    import re

    word = re.compile(rb"^[A-Za-z][A-Za-z0-9_.:-]*$")
    df: dict[bytes, int] = {}
    for line in lines:
        for token in set(line.split()):
            df[token] = df.get(token, 0) + 1
    n = len(lines)
    tokens = [
        t for t, c in df.items() if 0.05 <= c / n <= 0.8 and word.match(t)
    ]
    tokens.sort(key=lambda t: (-df[t], t))
    return [parse_query(t.decode()) for t in tokens[:max_queries]]


def part_b(args, failures: list[str]) -> list[dict]:
    lines = list(
        generator_for(args.dataset, seed=args.seed).iter_lines(args.lines)
    )
    tenants = make_tenants(args.tenants, queue_limit=args.queue_limit)

    pool = broad_pool(lines, max_queries=args.pool)

    def build(approx: bool, journal=None):
        registry = MetricsRegistry()
        with use_registry(registry):
            bootstrap_families(registry)
            system = MithriLogSystem(seed=args.seed)
            system.ingest(lines)
            service = QueryService(
                system,
                tenants,
                max_backlog=args.max_backlog,
                journal=journal,
                approx_on_overload=approx,
            )
        return system, service

    system, service = build(approx=False)
    truth = {
        str(q): system.query(q).per_query_counts[0] for q in pool
    }
    capacity = estimate_capacity(lambda: service, pool, tenants, seed=args.seed)
    print(
        f"corpus: {args.dataset} x {len(lines):,} lines, {len(tenants)} "
        f"tenants, {len(pool)} pool queries; measured capacity "
        f"{capacity:,.0f} q/s"
    )

    def traffic(load: float, fraction):
        return open_loop_requests(
            pool,
            tenants,
            offered_qps=capacity * load,
            duration_s=args.duration,
            seed=args.seed,
            deadline_s=args.deadline_ms / 1e3,
            priorities=(0,),
            sample_fraction=fraction,
        )

    def serve(config: str, load: float, approx: bool, fraction):
        journal = QueryJournal()
        _, service = build(approx=approx, journal=journal)
        t0 = time.perf_counter()
        report = service.run(traffic(load, fraction))
        wall_s = time.perf_counter() - t0
        if not report.conserved():
            failures.append(f"{config}: outcome conservation violated")
        approximated = [
            r for r in report.responses if r.outcome.value == "approximated"
        ]
        errors = [
            r.estimate.relative_error(truth[str(r.request.query)])
            for r in approximated
            if r.estimate is not None
        ]
        covered = [
            r.estimate.covers(truth[str(r.request.query)])
            for r in approximated
            if r.estimate is not None
        ]
        record = {
            "bench": "stream",
            "config": config,
            "goodput_qps": round(report.goodput_qps, 2),
            "p99_ms": round(report.latency_percentile_s(99) * 1e3, 4),
            "loss_rate": round(report.shed_rate, 4),
            "approximated": len(approximated),
            "wall_s": round(wall_s, 3),
        }
        if errors:
            record["mean_rel_error"] = round(sum(errors) / len(errors), 4)
            record["ci_coverage"] = round(sum(covered) / len(covered), 4)
        print(
            f"{config}: goodput {report.goodput_qps:,.0f} q/s, loss "
            f"{100 * report.shed_rate:.1f}%, {len(approximated)} "
            "approximated"
            + (
                f", mean rel error {record['mean_rel_error']:.3f}, "
                f"CI coverage {100 * record['ci_coverage']:.0f}%"
                if errors
                else ""
            )
        )
        journal_problems = validate_journal_payload(journal.to_payload())
        if journal_problems:
            failures.append(
                f"{config}: journal failed validation: {journal_problems}"
            )
        return record, report, journal

    records = []
    exact_record, _, _ = serve("exact_x1", 1.0, approx=False, fraction=None)
    records.append(exact_record)

    sampled_reports = {}
    for load in args.loads:
        shed_record, _, _ = serve(
            f"shed_x{load:g}", load, approx=False, fraction=None
        )
        sampled_record, sampled_report, sampled_journal = serve(
            f"sampled_x{load:g}", load, approx=True, fraction=args.fraction
        )
        records.extend([shed_record, sampled_record])
        sampled_reports[load] = sampled_report
        ratio = (
            sampled_record["goodput_qps"] / shed_record["goodput_qps"]
            if shed_record["goodput_qps"] > 0
            else float("inf")
        )
        print(f"  goodput ratio sampled/shed at x{load:g}: {ratio:.2f}")
        if ratio < args.goodput_ratio:
            failures.append(
                f"sampled goodput only {ratio:.2f}x shedding at x{load:g} "
                f"overload (gate {args.goodput_ratio:g}x)"
            )
        if sampled_record["approximated"] == 0:
            failures.append(
                f"x{load:g} overload degraded nothing to sampled scans"
            )
        elif sampled_record["mean_rel_error"] > args.error_ceiling:
            failures.append(
                f"mean estimate error {sampled_record['mean_rel_error']:.3f} "
                f"at x{load:g} exceeds ceiling {args.error_ceiling:g}"
            )
        if args.journal_out is not None and load == args.loads[-1]:
            sampled_journal.write(args.journal_out)
            print(f"wrote sampled-run journal to {args.journal_out}")

    # determinism: repeat the heaviest sampled run
    load = args.loads[-1]
    journal = QueryJournal()
    _, service = build(approx=True, journal=journal)
    repeat = service.run(traffic(load, args.fraction))
    if outcome_signature(repeat) != outcome_signature(sampled_reports[load]):
        failures.append(
            "identical sampled-overload runs produced different outcomes"
        )
    return records


def run(args: argparse.Namespace) -> int:
    failures: list[str] = []
    records = [part_a(args, failures)]
    records.extend(part_b(args, failures))

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    trajectory = json.loads(out.read_text()) if out.exists() else []
    trajectory.extend(records)
    out.write_text(json.dumps(trajectory, indent=1) + "\n")
    print(f"wrote {len(records)} records to {out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    # part A: the stream under watch
    parser.add_argument("--stream-lines", type=int, default=4000,
                        help="lines in the synthetic stream")
    parser.add_argument("--burst-start", type=int, default=1600,
                        help="line index where the error burst begins")
    parser.add_argument("--burst-width", type=int, default=400,
                        help="lines in the error burst")
    parser.add_argument("--batch-lines", type=int, default=256,
                        help="ingest flush batch size")
    parser.add_argument("--window-ms", type=float, default=10.0,
                        help="standing-query sliding window (simulated ms)")
    parser.add_argument("--threshold", type=float, default=50.0,
                        help="window match count that breaches")
    parser.add_argument("--interval", type=float, default=0.0002,
                        help="monitor evaluation cadence (simulated s)")
    parser.add_argument("--detect-ceiling", type=float, default=0.02,
                        help="max burst-onset -> alert-firing latency "
                        "(simulated seconds)")
    # part B: the overloaded service
    parser.add_argument("--dataset", default="Liberty2")
    parser.add_argument("--lines", type=int, default=40000)
    parser.add_argument("--tenants", type=int, default=3)
    parser.add_argument("--pool", type=int, default=12)
    parser.add_argument("--queue-limit", type=int, default=512)
    parser.add_argument("--max-backlog", type=int, default=16)
    parser.add_argument("--duration", type=float, default=0.05,
                        help="simulated seconds of offered traffic")
    parser.add_argument("--deadline-ms", type=float, default=25.0)
    parser.add_argument("--loads", type=lambda s: [float(x) for x in
                        s.split(",")], default=[2.0, 4.0],
                        help="overload multiples of measured capacity")
    parser.add_argument("--fraction", type=float, default=0.1,
                        help="sampled fraction of candidate pages")
    parser.add_argument("--goodput-ratio", type=float, default=1.5,
                        help="min sampled/shedding goodput ratio")
    parser.add_argument("--error-ceiling", type=float, default=0.35,
                        help="max mean relative error of sampled estimates")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_stream.json")
    parser.add_argument("--status-out", default=None,
                        help="write the burst run's status snapshot here")
    parser.add_argument("--journal-out", default=None,
                        help="write the heaviest sampled run's journal here")
    args = parser.parse_args(argv)
    return run(args)


if __name__ == "__main__":
    raise SystemExit(main())
