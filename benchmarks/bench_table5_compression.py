"""Table 5: compression effectiveness of LZAH vs LZRW1, LZ4, Gzip.

Fully measured: all four codecs run for real over all four synthetic
corpora. Absolute ratios differ from the paper (different data); the
checked shape is the paper's story — LZAH trades ratio for hardware
efficiency but stays in a usable band, its ratio ordering across the
datasets matches Table 5 (BGL2 lowest, Thunderbird/Spirit2 highest), and
it beats no general-purpose algorithm on pure ratio.
"""

import pytest

from conftest import DATASETS
from repro.compression import (
    GzipCompressor,
    LZ4LikeCompressor,
    LZAHCompressor,
    LZRW1Compressor,
    compression_ratio,
)
from repro.system.report import render_table

#: Published Table 5 LZAH ratios, used as band anchors.
PAPER_LZAH = {"BGL2": 2.63, "Liberty2": 3.85, "Spirit2": 6.60, "Thunderbird": 7.35}


def _measure(texts):
    codecs = [LZAHCompressor(), LZRW1Compressor(), LZ4LikeCompressor(), GzipCompressor()]
    table = {}
    for name in DATASETS:
        table[name] = {
            codec.name: compression_ratio(codec, texts[name]) for codec in codecs
        }
    return table


@pytest.fixture(scope="module")
def ratios(texts):
    return _measure(texts)


def test_table5_compression_ratios(benchmark, texts, capsys, ratios):
    measured = benchmark.pedantic(_measure, args=(texts,), iterations=1, rounds=1)
    rows = [
        [algo] + [round(measured[name][algo], 2) for name in DATASETS]
        for algo in ("LZAH", "LZRW1", "LZ4", "Gzip")
    ]
    with capsys.disabled():
        print()
        print(
            render_table(
                "Table 5: compression ratios (measured on scaled corpora)",
                ["Algorithm"] + list(DATASETS),
                rows,
                col_width=13,
            )
        )
        print(f"  paper's LZAH row: {PAPER_LZAH}")
    lzah = {name: measured[name]["LZAH"] for name in DATASETS}
    # each dataset's LZAH ratio lands in the paper's band (+- 40%)
    for name in DATASETS:
        assert lzah[name] == pytest.approx(PAPER_LZAH[name], rel=0.4), name
    # cross-dataset ordering: BGL2 compresses worst, Spirit2/Tbird best
    assert lzah["BGL2"] == min(lzah.values())
    assert min(lzah["Spirit2"], lzah["Thunderbird"]) > lzah["Liberty2"]
    # gzip always wins on pure ratio; LZAH never beats LZ4-family here
    for name in DATASETS:
        assert measured[name]["Gzip"] >= measured[name]["LZ4"]
        assert measured[name]["Gzip"] > measured[name]["LZAH"]


def test_lzah_average_ratio(ratios, benchmark, capsys):
    average = benchmark.pedantic(
        lambda: sum(ratios[n]["LZAH"] for n in DATASETS) / len(DATASETS),
        iterations=1,
        rounds=1,
    )
    with capsys.disabled():
        print(f"\n  mean LZAH ratio: {average:.2f}x (paper: 5.96x)")
    assert 3.0 < average < 8.0


def test_lzah_compress_speed(benchmark, texts):
    codec = LZAHCompressor()
    data = texts["Spirit2"][:131072]
    compressed = benchmark(lambda: codec.compress(data))
    assert len(compressed) < len(data)


def test_lzrw1_compress_speed(benchmark, texts):
    codec = LZRW1Compressor()
    data = texts["Spirit2"][:65536]
    compressed = benchmark(lambda: codec.compress(data))
    assert len(compressed) < len(data)
