"""Ablation: linked list of trees vs naive index-node list (Section 6.1).

The paper's arithmetic: a 100 microsecond device sustains ~10,000
latency-bound node visits per second, so saturating 4 GB/s needs >100
data-page addresses per visit. A naive list gets there only with huge
index nodes, whose partially-filled write buffers blow up host memory;
the height-two tree gets 256 addresses per hop from 16-entry buffers.
This bench measures both sides: addresses-per-hop (performance) and
ingest buffer footprint (memory).
"""

import pytest

from repro.index.inverted import InvertedIndex
from repro.params import PAGE_BYTES, IndexParams, StorageParams
from repro.storage.flash import FlashArray
from repro.system.report import render_table

#: The paper's arithmetic inputs.
LATENCY_S = 100e-6
TARGET_BANDWIDTH = 4e9


def _addresses_per_hop_needed():
    visits_per_s = 1 / LATENCY_S
    pages_per_s = TARGET_BANDWIDTH / PAGE_BYTES
    return pages_per_s / visits_per_s


def test_ablate_paper_arithmetic(benchmark, capsys):
    needed = benchmark.pedantic(_addresses_per_hop_needed, iterations=1, rounds=1)
    tree = IndexParams()
    with capsys.disabled():
        print(
            f"\n  saturating {TARGET_BANDWIDTH / 1e9:.0f} GB/s at "
            f"{LATENCY_S * 1e6:.0f} us needs >{needed:.0f} page addresses "
            f"per hop; the tree design delivers "
            f"{tree.addrs_per_root_visit} from {tree.memory_buffer_addrs}-entry buffers"
        )
    assert needed == pytest.approx(97.65625)
    # the tree clears the bar with margin
    assert tree.addrs_per_root_visit > 2 * needed
    # a naive list would need >needed-entry nodes, i.e. >6x the buffer
    assert needed / tree.memory_buffer_addrs > 6


def _ingest_footprint(params, pages=3037, common_tokens=40):
    flash = FlashArray(StorageParams(capacity_pages=1 << 18))
    index = InvertedIndex(flash, params=params)
    # common tokens with long posting lists: the regime Section 6.1
    # worries about, where every row's write buffer stays partially full
    tokens = [f"tok{j}".encode() for j in range(common_tokens)]
    for addr in range(pages):
        index.index_page(addr, tokens)
    return index


def test_ablate_buffer_memory(benchmark, capsys):
    def run():
        tree = _ingest_footprint(IndexParams(memory_buffer_addrs=16))
        naive = _ingest_footprint(IndexParams(memory_buffer_addrs=128))
        return tree, naive

    tree, naive = benchmark.pedantic(run, iterations=1, rounds=1)
    tree_mem = tree.table.memory_footprint_bytes()
    naive_mem = naive.table.memory_footprint_bytes()
    with capsys.disabled():
        print(
            render_table(
                "\nAblation: ingest buffer footprint",
                ["Design", "Buffer entries", "Table memory (B)"],
                [
                    ["tree (paper)", 16, tree_mem],
                    ["naive list", 128, naive_mem],
                ],
                col_width=18,
            )
        )
    # same postings, several times the resident buffer memory
    assert naive_mem > 2 * tree_mem


def test_walk_performance_per_hop(benchmark, corpora):
    """One hop of the tree list really does deliver ~256 addresses."""
    from repro.index.storetree import NIL, TreeListStore

    flash = FlashArray(StorageParams(capacity_pages=1 << 16))
    store = TreeListStore(flash, PAGE_BYTES)
    head = NIL
    addr = 0
    for _ in range(4):
        leaf_ids = []
        for _ in range(16):
            leaf_ids.append(store.write_leaf(list(range(addr, addr + 16))))
            addr += 16
        head = store.write_root(leaf_ids, next_root=head)
    store.flush()
    walk = benchmark(lambda: store.walk(head))
    assert len(walk.addresses) == 4 * 256
    assert walk.root_visits == 4
