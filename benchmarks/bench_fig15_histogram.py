"""Figure 15: effective-throughput histograms, MonetDB-like vs MithriLog.

Fully measured over the FT-tree workloads (singles, OR-2 and OR-8
batches), with both systems forced to scan the whole table — the paper's
isolation of raw text-filtering performance. Rendered as the paper
presents it: per-dataset histograms on a non-linear (log) axis. Checked
shape: MithriLog's distribution is a tight spike at high GB/s regardless
of batch size; the scan database's distribution sits an order of
magnitude left and slides further left as batches grow.
"""


from conftest import DATASETS
from repro.system.report import log_bins, render_histogram


def test_fig15_throughput_histograms(benchmark, scan_comparisons, capsys):
    comparisons = benchmark.pedantic(
        lambda: scan_comparisons, iterations=1, rounds=1
    )
    bins = log_bins(0.01, 100.0, 8)
    with capsys.disabled():
        print()
        for name in DATASETS:
            samples = comparisons[name].samples
            ours = [s.gbps for s in samples if s.system == "MithriLog"]
            theirs = [s.gbps for s in samples if s.system == "MonetDB"]
            print(
                render_histogram(
                    f"Figure 15 [{name}] MithriLog effective GB/s", ours, bins
                )
            )
            print(
                render_histogram(
                    f"Figure 15 [{name}] MonetDB effective GB/s", theirs, bins
                )
            )
            print()
    for name in DATASETS:
        comparison = comparisons[name]
        ours = [s.gbps for s in comparison.samples if s.system == "MithriLog"]
        theirs = [s.gbps for s in comparison.samples if s.system == "MonetDB"]
        # MithriLog: constant high throughput, tight distribution
        assert min(ours) > 0.5 * max(ours), name
        # every MithriLog sample beats every MonetDB sample
        assert min(ours) > max(theirs), name


def test_fig15_mithrilog_constant_vs_batch(scan_comparisons, benchmark):
    def spread():
        worst = 0.0
        for comparison in scan_comparisons.values():
            t1 = comparison.mean_gbps("MithriLog", 1)
            t8 = comparison.mean_gbps("MithriLog", 8)
            worst = max(worst, abs(t8 - t1) / t1)
        return worst

    worst_spread = benchmark.pedantic(spread, iterations=1, rounds=1)
    # the paper: "constant performance regardless of query complexity"
    assert worst_spread < 0.2


def test_fig15_scan_db_slides_left(scan_comparisons, benchmark):
    def degradation():
        return [
            comparison.mean_gbps("MonetDB", 1) / comparison.mean_gbps("MonetDB", 8)
            for comparison in scan_comparisons.values()
        ]

    ratios = benchmark.pedantic(degradation, iterations=1, rounds=1)
    # 8-query unions are several times slower than singles (paper: ~4-10x)
    assert all(r > 2.0 for r in ratios)
