"""Ablation: accelerator clock scaling (the Section 8 outlook).

The prototype runs at 200 MHz on last-generation FPGAs; HAWK projects
32 GB/s for a 1 GHz ASIC. Sweeping the clock through the Figure 14 model
shows the balance the paper is built on: past ~375 MHz the *storage
supply* (internal bandwidth x compression ratio), not the accelerator,
binds the system — the quantitative version of the conclusion's claim
that near-storage designs matter more as storage outpaces computation.
"""


from repro.compression import LZAHCompressor, compression_ratio
from repro.datasets.synthetic import generator_for
from repro.hw.perf import EngineThroughputModel
from repro.params import PipelineParams
from repro.system.report import render_table

CLOCKS_MHZ = (100, 200, 400, 800)


def _sweep():
    lines = generator_for("BGL2").generate(2500)
    text = b"".join(ln + b"\n" for ln in lines)
    ratio = compression_ratio(LZAHCompressor(), text)
    rows = {}
    for mhz in CLOCKS_MHZ:
        clock = mhz * 1_000_000
        model = EngineThroughputModel(
            params=PipelineParams(clock_hz=clock),
            decompressor_bytes_per_sec=16 * clock,
        )
        result = model.evaluate("BGL2", lines, ratio)
        rows[mhz] = result
    return ratio, rows


def test_ablate_clock_scaling(benchmark, capsys):
    ratio, rows = benchmark.pedantic(_sweep, iterations=1, rounds=1)
    table = [
        [
            f"{mhz} MHz",
            round(rows[mhz].effective_bytes_per_sec / 1e9, 2),
            round(rows[mhz].pipeline_capability / 1e9, 2),
            round(rows[mhz].storage_supply / 1e9, 2),
            rows[mhz].bound_by,
        ]
        for mhz in CLOCKS_MHZ
    ]
    with capsys.disabled():
        print()
        print(
            render_table(
                f"Ablation: accelerator clock (BGL2, LZAH {ratio:.2f}x)",
                ["Clock", "Effective GB/s", "Pipelines", "Storage", "Bound"],
                table,
            )
        )
    # at the prototype's 200 MHz the accelerator side binds
    assert rows[200].bound_by in ("filter", "decompressor")
    # doubling the clock flips the system to storage-bound: buying a
    # faster accelerator stops paying without faster storage/compression
    assert rows[400].bound_by == "storage"
    assert rows[800].bound_by == "storage"
    assert rows[800].effective_bytes_per_sec == rows[400].effective_bytes_per_sec
    # effective throughput is monotone non-decreasing in clock
    values = [rows[mhz].effective_bytes_per_sec for mhz in CLOCKS_MHZ]
    assert values == sorted(values)
