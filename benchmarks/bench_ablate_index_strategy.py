"""Ablation: inverted index vs per-page Bloom filters.

Section 6's framing — the accelerator works with "any indexing strategy
that can generate a stream of page addresses" — invites the comparison
with the other mainstream design: one Bloom filter per page. The trade
this bench quantifies:

- the Bloom index's memory is a fixed fraction of the data (bits/page)
  while the inverted index's footprint tracks tokens and buffers;
- Bloom candidate sets carry false positives from hash saturation, the
  inverted index's from row sharing;
- the inverted index answers from postings (latency-bound storage hops);
  the Bloom index tests every page's filter per term (host memory work
  that grows linearly with the store).
"""


from repro.core.query import parse_query
from repro.core.tokenizer import split_tokens
from repro.datasets.synthetic import generator_for
from repro.index.bloom import BloomParams, PageBloomIndex
from repro.index.inverted import InvertedIndex
from repro.params import IndexParams, StorageParams
from repro.storage.flash import FlashArray
from repro.system.report import render_table

QUERIES = (
    "panic: AND BUG",
    "session AND opened",
    "Failed AND password",
    "ACPI: AND Processor",
)


def _build_both(lines, page_lines=12, hash_rows=1 << 12, bloom_bits=2048):
    pages = {}
    for addr in range(len(lines) // page_lines):
        chunk = lines[addr * page_lines : (addr + 1) * page_lines]
        pages[addr] = [t for ln in chunk for t in split_tokens(ln)]
    inverted = InvertedIndex(
        FlashArray(StorageParams(capacity_pages=1 << 18)),
        params=IndexParams(hash_rows=hash_rows),
    )
    bloom = PageBloomIndex(BloomParams(bits=bloom_bits, hashes=4))
    for addr in sorted(pages):
        inverted.index_page(addr, pages[addr])
        bloom.index_page(addr, pages[addr])
    return inverted, bloom, pages


def test_ablate_index_strategy(benchmark, capsys):
    lines = generator_for("Spirit2").generate(6000)

    def run():
        inverted, bloom, pages = _build_both(lines)
        rows = []
        for expr in QUERIES:
            query = parse_query(expr)
            inv_pages = len(inverted.candidate_pages(query).pages)
            bloom_pages = len(bloom.candidate_pages(query))
            truly = sum(
                1
                for addr in pages
                if any(
                    query.matches_line(ln)
                    for ln in lines[addr * 12 : (addr + 1) * 12]
                )
            )
            rows.append([expr, truly, inv_pages, bloom_pages])
        memory = (
            inverted.memory_footprint_bytes(),
            bloom.memory_footprint_bytes(),
        )
        return rows, memory, bloom.mean_false_positive_rate()

    rows, memory, fpr = benchmark.pedantic(run, iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            render_table(
                "Ablation: candidate pages by index strategy",
                ["Query", "True", "Inverted", "Bloom"],
                rows,
                col_width=26,
            )
        )
        print(
            f"  memory: inverted {memory[0] / 1024:.0f} KiB, bloom "
            f"{memory[1] / 1024:.0f} KiB; bloom mean FPR {fpr:.3f}"
        )
    for _expr, truly, inv_pages, bloom_pages in rows:
        # both are supersets of the truth
        assert inv_pages >= truly
        assert bloom_pages >= truly
    # the bloom index keeps its promised space budget (256 B per 4 KB page)
    pages_indexed = 6000 // 12
    assert memory[1] == pages_indexed * 256
    assert fpr < 0.5


def test_ablate_index_strategy_tight_budgets(benchmark, capsys):
    """Under memory pressure both designs degrade into over-approximation
    — by hash-row sharing on one side, filter saturation on the other —
    and neither ever under-approximates."""
    lines = generator_for("Spirit2").generate(6000)

    def run():
        inverted, bloom, pages = _build_both(
            lines, hash_rows=256, bloom_bits=256
        )
        rows = []
        for expr in QUERIES:
            query = parse_query(expr)
            truly = sum(
                1
                for addr in pages
                if any(
                    query.matches_line(ln)
                    for ln in lines[addr * 12 : (addr + 1) * 12]
                )
            )
            rows.append(
                [
                    expr,
                    truly,
                    len(inverted.candidate_pages(query).pages),
                    len(bloom.candidate_pages(query)),
                ]
            )
        return rows, bloom.mean_false_positive_rate()

    rows, fpr = benchmark.pedantic(run, iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            render_table(
                "Ablation: tight budgets (256 index rows / 32 B blooms)",
                ["Query", "True", "Inverted", "Bloom"],
                rows,
                col_width=26,
            )
        )
        print(f"  bloom mean FPR at this sizing: {fpr:.2f}")
    for _expr, truly, inv_pages, bloom_pages in rows:
        assert inv_pages >= truly
        assert bloom_pages >= truly
    # pressure shows: at least one query over-approximates on each side
    assert any(inv > truly for _e, truly, inv, _b in rows)
    assert any(bl > truly for _e, truly, _i, bl in rows)
    # bursty pages carry ~30 unique tokens, so even 32-byte filters keep
    # FPR low-single-digit percent; it is nonzero, unlike the roomy config
    assert fpr > 0.005


def test_bloom_lookup_rate(benchmark):
    lines = generator_for("Spirit2").generate(2400)
    _inverted, bloom, _pages = _build_both(lines)
    token = b"kernel:"
    pages = benchmark(lambda: bloom.lookup_token(token))
    assert isinstance(pages, list)
