"""Section 7.4.3: token filtering vs general-purpose regex matching.

The paper's comparison against HARE is back-of-the-envelope; here it is
backed by a functional artifact: the from-scratch DFA regex engine
answers the same queries as the token filter (verified), and the
published operating points quantify the chip-resource gap — a MithriLog
pipeline needs ~19 KLUT per GB/s where HARE+LZRW needs ~145.
"""


from repro.baselines.regexdfa import HareModel, RegexMatcher, RegexPredicate, escape_token
from repro.core.query import parse_query
from repro.system.report import render_table


def test_functional_equivalence_on_token_queries(benchmark, corpora, capsys):
    """Both engines answer the paper's query class identically."""
    lines = corpora["Liberty2"][:1500]
    query = parse_query("session AND opened AND NOT sshd")
    predicate = RegexPredicate.of(
        [escape_token(b"session"), escape_token(b"opened")],
        [escape_token(b"sshd")],
    )

    def run():
        token_hits = [query.matches_line(line) for line in lines]
        regex_hits = [predicate.matches(line) for line in lines]
        return token_hits, regex_hits

    token_hits, regex_hits = benchmark.pedantic(run, iterations=1, rounds=1)
    agree = sum(1 for a, b in zip(token_hits, regex_hits) if a == b)
    with capsys.disabled():
        print(
            f"\n  token filter vs regex DFA on {len(lines)} lines: "
            f"{agree}/{len(lines)} identical verdicts"
        )
    assert agree == len(lines)


def test_regex_generality_beyond_tokens(benchmark, corpora):
    """Regexes answer substring/pattern queries the token filter cannot."""
    lines = corpora["Liberty2"][:1000]
    matcher = RegexMatcher(r"rhost=\d+\.\d+\.\d+\.\d+")
    hits = benchmark(lambda: sum(1 for line in lines if matcher.search(line)))
    token_query = parse_query("rhost=")
    token_hits = sum(1 for line in lines if token_query.matches_line(line))
    # the pattern finds the lines; the bare token 'rhost=' never appears
    # as a standalone token (it is glued to the address)
    assert hits > 0
    assert token_hits == 0


def test_resource_comparison_table(benchmark, capsys):
    from repro.hw.resources import PIPELINE

    def build():
        hare = HareModel()
        mithrilog_kluts_per_gbps = PIPELINE.luts / 1e3 / 3.2
        return [
            ["HARE (FPGA)", 0.4, 55.0, round(hare.kluts_per_gbps, 1)],
            ["MithriLog pipeline", 3.2, round(PIPELINE.luts / 1e3, 1),
             round(mithrilog_kluts_per_gbps, 1)],
        ]

    rows = benchmark.pedantic(build, iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            render_table(
                "Section 7.4.3: filtering approaches (published operating points)",
                ["Engine", "GB/s", "KLUT", "KLUT/GB/s"],
                rows,
                col_width=20,
            )
        )
    assert rows[0][3] / rows[1][3] > 5


def test_dfa_matching_speed(benchmark, corpora):
    """Micro-benchmark: DFA byte-at-a-time matching rate in Python."""
    matcher = RegexMatcher("(FATAL|panic|error)")
    blob = b"\n".join(corpora["BGL2"][:300])
    benchmark(lambda: matcher.search(blob))
