"""Table 4: compression accelerator resource efficiency (GB/s/KLUT).

Model-driven rows (published IP figures + the LZAH decoder model), plus
real micro-benchmarks of this repository's functional LZAH codec so the
bench run also measures something executable.
"""

import pytest

from repro.compression.decoder_model import DecoderCycleModel
from repro.compression.lzah import LZAHCompressor
from repro.hw.resources import compression_efficiency_table, hare_comparison
from repro.system.report import render_table


def _build_rows():
    return [
        [ip.name, ip.gbytes_per_sec, ip.kluts, round(ip.gbps_per_klut, 3), ip.source]
        for ip in compression_efficiency_table()
    ]


def test_table4_efficiency(benchmark, capsys):
    rows = benchmark.pedantic(_build_rows, iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            render_table(
                "Table 4: compression accelerator efficiency",
                ["Algorithm", "GB/s", "KLUT", "GB/s/KLUT", "Source"],
                rows,
                col_width=12,
            )
        )
    efficiencies = {row[0]: row[3] for row in rows}
    assert efficiencies["LZAH"] == pytest.approx(0.8, abs=0.01)
    assert all(
        efficiencies["LZAH"] > value
        for name, value in efficiencies.items()
        if name != "LZAH"
    )


def test_hare_comparison(benchmark, capsys):
    hare, mithrilog = benchmark.pedantic(hare_comparison, iterations=1, rounds=1)
    with capsys.disabled():
        print(
            f"\n  Section 7.4.3: {hare.name} needs ~{hare.kluts_per_gbps:.0f} "
            f"KLUT/GB/s; {mithrilog.name} needs ~{mithrilog.kluts_per_gbps:.0f}"
        )
    assert hare.kluts_per_gbps / mithrilog.kluts_per_gbps > 7


def test_decoder_deterministic_rate(benchmark, texts, capsys):
    """The decoder model's invariant: one word per cycle, 3.2 GB/s."""
    model = DecoderCycleModel()
    codec = LZAHCompressor()
    compressed = codec.compress(texts["Liberty2"][:65536])
    count = benchmark(lambda: model.count(compressed))
    with capsys.disabled():
        print(
            f"\n  modelled decoder rate on Liberty2 pages: "
            f"{count.throughput_bytes_per_sec / 1e9:.2f} GB/s decompressed"
        )
    assert count.throughput_bytes_per_sec <= model.deterministic_rate_bytes_per_sec()


def test_functional_codec_throughput(benchmark, texts):
    """Python-level LZAH decompression rate (reference only; the paper's
    3.2 GB/s is the hardware figure the cycle model reproduces)."""
    codec = LZAHCompressor()
    compressed = codec.compress(texts["Thunderbird"][:131072])
    out = benchmark(lambda: codec.decompress(compressed))
    assert len(out) == min(131072, len(texts["Thunderbird"]))


def test_snappy_functional_backing(benchmark, texts):
    """Table 4's Snappy row has a real codec behind it here too."""
    from repro.compression import SnappyLikeCompressor, compression_ratio

    codec = SnappyLikeCompressor()
    data = texts["Liberty2"][:131072]
    ratio = benchmark.pedantic(
        lambda: compression_ratio(codec, data), iterations=1, rounds=1
    )
    assert ratio > 2.0
    assert codec.decompress(codec.compress(data)) == data
