"""Paper-scale extrapolation: what the cost models predict at 30 GB.

The measured benches run on MB-scale corpora where fixed latencies
compress every ratio. This bench closes the loop: it measures each
query's *selectivity* on the scaled corpus (a scale-free quantity), then
evaluates both systems' calibrated cost models at the paper's corpus
sizes (Table 1). The predictions land on the paper's numbers —
MithriLog's flat ~11.5 GB/s effective throughput, MonetDB's sub-GB/s
decay, Splunk's hundreds of seconds on scan-heavy queries vs MithriLog's
seconds — which is the quantitative form of EXPERIMENTS.md's scale
argument.
"""

import pytest

from conftest import DATASETS
from repro.baselines.scandb import ScanDbCostModel
from repro.baselines.splunklike import SplunkCostModel
from repro.datasets.schema import DATASET_SPECS
from repro.params import INTERNAL_BANDWIDTH, PCIE_BANDWIDTH, STORAGE_LATENCY_S
from repro.system.report import render_table

#: Paper's own reference points.
PAPER_MITHRILOG_GBPS = {"BGL2": 11.2, "Liberty2": 11.55, "Spirit2": 11.8, "Thunderbird": 11.64}


def _mithrilog_seconds(
    scan_bytes: float, ratio: float, accel_rate: float, kept_fraction: float
) -> float:
    """The system's pipeline arithmetic at arbitrary scale."""
    compressed = scan_bytes / ratio
    return max(
        STORAGE_LATENCY_S + compressed / INTERNAL_BANDWIDTH,
        scan_bytes / accel_rate,
        scan_bytes * kept_fraction / PCIE_BANDWIDTH,
    )


def _extrapolate(harnesses, workloads):
    scan_db_model = ScanDbCostModel()
    splunk_model = SplunkCostModel()
    rows = []
    per_dataset = {}
    for name in DATASETS:
        harness = harnesses[name]
        spec = DATASET_SPECS[name]
        paper_bytes = spec.paper_bytes
        scale = paper_bytes / harness.original_bytes
        ratio = harness.ingest_report.compression_ratio
        accel = harness.mithrilog.accelerator_rate
        lines_at_scale = int(len(harness.lines) * scale)

        mithrilog_gbps = []
        improvements = []
        splunk_ratios = []
        for batch, queries in workloads[name].all_batches.items():
            for query in queries:
                # scale-free measurements on the small corpus
                small = harness.mithrilog.query(query, use_index=True)
                page_fraction = (
                    small.stats.candidate_pages / max(1, small.stats.total_pages)
                )
                # selectivity within the candidate pages (the indexed path's
                # PCIe term) vs across the whole corpus (the full-scan term)
                kept_fraction = small.stats.bytes_to_host / max(
                    1, small.stats.bytes_decompressed
                )
                kept_global = small.stats.bytes_to_host / harness.original_bytes
                terms = sum(len(s.terms) for s in query.intersections)

                # both systems' cost models at paper scale
                scan_bytes = paper_bytes * page_fraction
                ours_s = (
                    _mithrilog_seconds(scan_bytes, ratio, accel, kept_fraction)
                    + small.stats.index_root_visits * scale * STORAGE_LATENCY_S
                )
                monet_s = scan_db_model.scan_seconds(
                    total_bytes=paper_bytes,
                    lines=lines_at_scale,
                    query_terms=terms,
                )
                splunk_candidates = int(lines_at_scale * page_fraction)
                splunk_s = (
                    splunk_model.query_seconds(
                        tokens_looked_up=max(1, terms),
                        candidate_bytes=int(scan_bytes),
                        candidate_lines=splunk_candidates,
                    )
                    / splunk_model.threads
                )
                full_scan_ours = _mithrilog_seconds(paper_bytes, ratio, accel, kept_global)
                if batch == 1:
                    # the paper's GB/s band is measured on (selective)
                    # template queries; un-selective OR-8 unions would
                    # bottleneck on returning their matches over PCIe
                    mithrilog_gbps.append(paper_bytes / full_scan_ours / 1e9)
                improvements.append(monet_s / full_scan_ours)
                splunk_ratios.append(splunk_s / ours_s)

        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        per_dataset[name] = {
            "gbps": mean(mithrilog_gbps),
            "monet_improve": mean(improvements),
            "splunk_improve": mean(splunk_ratios),
        }
        rows.append(
            [
                name,
                round(per_dataset[name]["gbps"], 2),
                PAPER_MITHRILOG_GBPS[name],
                f"{per_dataset[name]['monet_improve']:.0f}x",
                f"{per_dataset[name]['splunk_improve']:.0f}x",
            ]
        )
    return rows, per_dataset


def test_paper_scale_predictions(benchmark, harnesses, workloads, capsys):
    rows, per_dataset = benchmark.pedantic(
        _extrapolate, args=(harnesses, workloads), iterations=1, rounds=1
    )
    with capsys.disabled():
        print()
        print(
            render_table(
                "Paper-scale extrapolation (Table 1 sizes, calibrated models)",
                ["Dataset", "Ours GB/s", "Paper GB/s", "vs MonetDB", "vs Splunk"],
                rows,
                col_width=13,
            )
        )
        print(
            "  paper: MithriLog 11.2-11.8 GB/s flat; MonetDB improvements "
            "5.8x-84.8x; Splunk improvements 9.9x-352x"
        )
    for name in DATASETS:
        predicted = per_dataset[name]
        # MithriLog's flat effective throughput band
        assert predicted["gbps"] == pytest.approx(
            PAPER_MITHRILOG_GBPS[name], rel=0.15
        ), name
        # order-of-magnitude (or better) improvement over the scan DB
        assert predicted["monet_improve"] > 5, name
        # and over the Splunk-like engine at scale
        assert predicted["splunk_improve"] > 9, name
