"""Host wall-clock benchmark for the scan hot path.

Standalone (``python benchmarks/bench_hotpath.py``): measures the three
executions of the same 16-query workload the scan executor provides —

- ``serial``   : one :meth:`scan_all` per query, page cache disabled.
  This is the pre-executor behaviour and the speedup baseline.
- ``batched``  : one :meth:`scan_all(*queries)` pass, cache disabled,
  on the default (vectorized) scan kernel. Every page is decompressed
  and tokenized once for all queries.
- ``batched-ref`` : the same batched pass pinned to the byte-at-a-time
  reference kernel — the yardstick the ``--min-vector-speedup`` gate
  measures the vectorized kernel against in the same run.
- ``parallel`` : the batched pass fanned out over ``--workers``
  processes through :class:`repro.exec.ScanExecutor`.
- ``cached``   : the batched pass re-run against a warm page cache.

Before timing anything it verifies the modes agree: per-query match
counts from the serial runs must equal the batched pass's counts, and
the reference-kernel, parallel, and cached passes must return byte
-identical data and identical simulated stats. Any divergence exits
non-zero, which is what the CI ``perf-smoke`` job keys off.

Results append to ``BENCH_hotpath.json`` (``--out``), one record per
mode per run: ``{"bench", "config", "wall_s", "speedup"}`` — the
trajectory file ``docs/PERFORMANCE.md`` explains how to read.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.query import Query, parse_query
from repro.core.tokenizer import split_tokens
from repro.datasets.synthetic import generator_for
from repro.system.mithrilog import MithriLogSystem

#: Simulated stats fields that must be identical at every worker count.
STAT_FIELDS = (
    "pages_read",
    "bytes_from_flash",
    "bytes_decompressed",
    "bytes_to_host",
    "lines_seen",
    "lines_kept",
    "scan_time_s",
    "read_retries",
)


def build_queries(lines: list[bytes], count: int) -> list[Query]:
    """``count`` template-style queries over the corpus's frequent tokens.

    Deterministic in the corpus: the most common tokens (skipping ones
    that appear on every line, which would match everything) become
    single-token and two-token AND queries, the way template queries
    probe for one message shape.
    """
    frequency = Counter(t for line in lines for t in set(split_tokens(line)))
    universal = len(lines)
    tokens = [
        t.decode()
        for t, n in frequency.most_common()
        if n < universal and t.isalnum()
    ]
    if len(tokens) < count + 1:
        raise SystemExit(f"corpus too uniform: only {len(tokens)} usable tokens")
    queries = []
    for i in range(count):
        if i % 3 == 2:
            queries.append(parse_query(f'"{tokens[i]}" AND "{tokens[i + 1]}"'))
        else:
            queries.append(parse_query(f'"{tokens[i]}"'))
    return queries


def fresh_system(
    lines: list[bytes],
    seed: int,
    cache_pages: int,
    kernel: str | None = None,
) -> MithriLogSystem:
    system = MithriLogSystem(
        seed=seed, cache_pages=cache_pages, scan_kernel=kernel
    )
    system.ingest(lines)
    return system


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run(args: argparse.Namespace) -> int:
    lines = list(generator_for(args.dataset, seed=args.seed).iter_lines(args.lines))
    queries = build_queries(lines, args.queries)
    print(
        f"corpus: {args.dataset} x {len(lines):,} lines, "
        f"{len(queries)} queries, {args.workers} workers"
    )

    # -- serial baseline: one scan per query, no cache -------------------
    serial = fresh_system(lines, args.seed, cache_pages=0)
    serial_outcomes, serial_s = timed(
        lambda: [serial.scan_all(q) for q in queries]
    )

    # -- batched: all queries in one pass, no cache ----------------------
    batched_system = fresh_system(lines, args.seed, cache_pages=0)
    batched, batched_s = timed(lambda: batched_system.scan_all(*queries))

    # -- batched-ref: same pass pinned to the reference kernel -----------
    ref_system = fresh_system(
        lines, args.seed, cache_pages=0, kernel="reference"
    )
    batched_ref, batched_ref_s = timed(lambda: ref_system.scan_all(*queries))

    # -- parallel: the batched pass over a worker pool -------------------
    parallel_system = fresh_system(lines, args.seed, cache_pages=0)
    parallel_system.scan_all(*queries, workers=args.workers)  # warm the pool
    parallel, parallel_s = timed(
        lambda: parallel_system.scan_all(*queries, workers=args.workers)
    )
    parallel_system.close()

    # -- cached: batched re-scan against a warm page cache ---------------
    cached_system = fresh_system(lines, args.seed, cache_pages=args.lines)
    cached_system.scan_all(*queries)  # populates the cache
    cached, cached_s = timed(lambda: cached_system.scan_all(*queries))

    # -- equivalence gates (CI fails on any divergence) -------------------
    failures = []
    serial_counts = [len(o.matched_lines) for o in serial_outcomes]
    if batched.per_query_counts != serial_counts:
        failures.append(
            f"batched per-query counts {batched.per_query_counts} != "
            f"serial counts {serial_counts}"
        )
    for name, outcome in (
        ("batched-ref", batched_ref),
        ("parallel", parallel),
        ("cached", cached),
    ):
        if outcome.matched_lines != batched.matched_lines:
            failures.append(f"{name} scan data diverges from batched scan")
        if outcome.per_query_counts != batched.per_query_counts:
            failures.append(f"{name} per-query counts diverge from batched")
        for stat in STAT_FIELDS:
            a, b = getattr(outcome.stats, stat), getattr(batched.stats, stat)
            if a != b:
                failures.append(f"{name} stats.{stat}: {a} != {b}")
    if failures:
        for failure in failures:
            print(f"DIVERGENCE: {failure}", file=sys.stderr)
        return 1

    records = [
        {"bench": "hotpath", "config": f"serial-{args.queries}q",
         "wall_s": round(serial_s, 4), "speedup": 1.0},
        {"bench": "hotpath", "config": f"batched-{args.queries}q",
         "wall_s": round(batched_s, 4),
         "speedup": round(serial_s / batched_s, 2)},
        {"bench": "hotpath", "config": f"batched-{args.queries}q-ref",
         "wall_s": round(batched_ref_s, 4),
         "speedup": round(serial_s / batched_ref_s, 2)},
        {"bench": "hotpath",
         "config": f"parallel-{args.queries}q-w{args.workers}",
         "wall_s": round(parallel_s, 4),
         "speedup": round(serial_s / parallel_s, 2)},
        {"bench": "hotpath", "config": f"cached-{args.queries}q",
         "wall_s": round(cached_s, 4),
         "speedup": round(serial_s / cached_s, 2)},
    ]
    for record in records:
        print(f"  {record['config']:<24} {record['wall_s']:>8.3f}s "
              f"{record['speedup']:>6.2f}x")

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    trajectory = json.loads(out.read_text()) if out.exists() else []
    trajectory.extend(records)
    out.write_text(json.dumps(trajectory, indent=1) + "\n")
    print(f"wrote {len(records)} records to {out}")

    if args.explain_out:
        # EXPLAIN ANALYZE against the warm-cache system: the report's
        # canonical plan/attribution content is cache- and worker-
        # invariant, and CI re-validates the artifact with repro.obs.check
        report = cached_system.explain(queries[0], analyze=True)
        report.write(args.explain_out)
        print(f"wrote explain report to {args.explain_out}")
    if args.profile_out:
        from repro.obs.expose import bootstrap_families, write_snapshot

        bootstrap_families()
        write_snapshot(args.profile_out)
        print(f"wrote metrics snapshot to {args.profile_out}")

    batched_speedup = serial_s / batched_s
    if args.min_speedup and batched_speedup < args.min_speedup:
        print(
            f"FAIL: batched speedup {batched_speedup:.2f}x below the "
            f"{args.min_speedup:.1f}x floor",
            file=sys.stderr,
        )
        return 1
    vector_speedup = batched_ref_s / batched_s
    if args.min_vector_speedup and vector_speedup < args.min_vector_speedup:
        print(
            f"FAIL: vectorized kernel only {vector_speedup:.2f}x the "
            f"reference kernel on the batched pass, below the "
            f"{args.min_vector_speedup:.1f}x floor",
            file=sys.stderr,
        )
        return 1
    print(
        f"vectorized kernel is {vector_speedup:.2f}x the reference "
        f"kernel on the batched pass"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="Liberty2")
    parser.add_argument("--lines", type=int, default=20000)
    parser.add_argument("--queries", type=int, default=16)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_hotpath.json")
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="fail when the batched scan is not this much faster than "
        "per-query serial scans (0 disables the gate)",
    )
    parser.add_argument(
        "--min-vector-speedup", type=float, default=1.2,
        help="fail when the vectorized kernel is not this much faster "
        "than the reference kernel on the batched pass, measured in the "
        "same run (0 disables the gate; the default leaves headroom for "
        "host noise — typical wins are 1.4-1.7x on this workload)",
    )
    parser.add_argument(
        "--explain-out",
        help="write an EXPLAIN ANALYZE report of the first query here",
    )
    parser.add_argument(
        "--profile-out",
        help="write a JSON metrics snapshot (profile counters included) here",
    )
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
