"""Flash-management behaviour under the log workload.

The near-storage pitch implicitly assumes log analytics is flash-
friendly: bulk sequential appends, no data overwrites. The FTL substrate
quantifies that — the data path writes at unit write amplification, and
only index-page rewrites (snapshot flushes) generate garbage-collection
traffic. A hostile random-overwrite workload on the same FTL shows what
the log workload avoids.
"""


from repro.params import StorageParams
from repro.storage.device import MithriLogDevice
from repro.storage.ftl import FlashTranslationLayer, FTLFlashArray
from repro.storage.page import Page
from repro.system.mithrilog import MithriLogSystem
from repro.system.report import render_table


def _log_workload_stats(corpora):
    params = StorageParams(capacity_pages=1 << 14)
    device = MithriLogDevice(params, flash=FTLFlashArray(params))
    system = MithriLogSystem(device=device)
    lines = corpora["Liberty2"][:4000]
    epochs = [float(ln.split()[1]) for ln in lines]
    step = len(lines) // 4
    for i in range(4):  # periodic snapshot flushes rewrite index pages
        chunk = slice(i * step, (i + 1) * step if i < 3 else len(lines))
        system.ingest(lines[chunk], timestamps=epochs[chunk])
        system.index.flush(timestamp=epochs[chunk][-1])
    return device.flash.ftl.stats()


def _hostile_workload_stats():
    ftl = FlashTranslationLayer(num_blocks=64, pages_per_block=16, gc_threshold=2)
    import random

    rng = random.Random(3)
    capacity = ftl.capacity_pages
    occupied = capacity * 9 // 10  # high utilisation: GC has little slack
    for logical in range(occupied):
        ftl.write(logical, Page(b"fill"))
    for _ in range(capacity * 4):  # then uniform random overwrites
        ftl.write(rng.randrange(occupied), Page(b"hot"))
    return ftl.stats()


def test_ftl_log_vs_hostile_workload(benchmark, corpora, capsys):
    def run():
        return _log_workload_stats(corpora), _hostile_workload_stats()

    log_stats, hostile_stats = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = [
        [
            "log analytics",
            log_stats.host_writes,
            round(log_stats.write_amplification, 3),
            log_stats.erases,
        ],
        [
            "random overwrite",
            hostile_stats.host_writes,
            round(hostile_stats.write_amplification, 3),
            hostile_stats.erases,
        ],
    ]
    with capsys.disabled():
        print()
        print(
            render_table(
                "FTL behaviour: write amplification by workload",
                ["Workload", "Host writes", "Write amp.", "Erases"],
                rows,
                col_width=18,
            )
        )
    # the log workload is near-ideal for flash
    assert log_stats.write_amplification < 1.1
    # the hostile workload pays real GC traffic
    assert hostile_stats.write_amplification > 1.2
    assert hostile_stats.erases > 10


def test_ftl_write_rate(benchmark):
    """Micro-benchmark: FTL mapping overhead per page write."""
    ftl = FlashTranslationLayer(num_blocks=128, pages_per_block=32)
    payload = Page(b"x" * 512)
    counter = iter(range(10_000_000))

    def write_one():
        ftl.write(next(counter) % ftl.capacity_pages, payload)

    benchmark(write_one)
