"""Ablation: one vs two hash functions in the inverted index (Section 6.2).

The index never stores tokens, so a query token that shares a row with a
very common token inherits that token's whole posting list. Two hash
functions with insert-into-the-lighter-row balancing spread heavy
hitters across rows, which statistically shrinks the candidate sets of
the tokens colliding with them — the paper's stated reason for the
second hash function.
"""


from repro.index.inverted import InvertedIndex
from repro.params import IndexParams, StorageParams
from repro.storage.flash import FlashArray
from repro.core.tokenizer import split_tokens


def _build(lines, num_hash_functions):
    flash = FlashArray(StorageParams(capacity_pages=1 << 18))
    # small row count so collisions with heavy hitters actually happen
    params = IndexParams(hash_rows=256, num_hash_functions=num_hash_functions)
    index = InvertedIndex(flash, params=params)
    page_tokens: list[list[bytes]] = []
    for addr, line in enumerate(lines):
        tokens = split_tokens(line)
        index.index_page(addr, tokens)
        page_tokens.append(tokens)
    return index, page_tokens


def _candidate_counts(index, tokens):
    return sorted(len(index.lookup_token(token)[0]) for token in tokens)


def test_ablate_index_hash_functions(benchmark, corpora, capsys):
    lines = corpora["Liberty2"][:2500]

    def run():
        one, _pt = _build(lines, 1)
        two, _pt = _build(lines, 2)
        # probe with the corpus's rare tokens: the ones that suffer when
        # a heavy hitter owns their row
        from collections import Counter

        freq = Counter(t for line in lines for t in set(split_tokens(line)))
        rare = [t for t, c in freq.most_common() if c <= 3][:300]
        return _candidate_counts(one, rare), _candidate_counts(two, rare)

    one, two = benchmark.pedantic(run, iterations=1, rounds=1)

    def pctl(counts, q):
        return counts[min(len(counts) - 1, int(q * len(counts)))]

    with capsys.disabled():
        print(
            f"\n  candidate pages for rare tokens (one vs two hashes): "
            f"median {pctl(one, 0.5)} vs {pctl(two, 0.5)}, "
            f"p99 {pctl(one, 0.99)} vs {pctl(two, 0.99)}, "
            f"max {one[-1]} vs {two[-1]}"
        )
    # the second hash function trades the mean for the tail: a rare token
    # unlucky enough to share a row with a near-universal token no longer
    # inherits that token's whole posting list (Section 6.2's scenario)
    assert two[-1] < one[-1]
    assert pctl(two, 0.99) < pctl(one, 0.99)
    # the trade is real: the typical (median) rare token touches more
    # pages with two rows unioned — worth stating, not hiding
    assert pctl(two, 0.5) >= pctl(one, 0.5)


def test_two_hash_correctness_cost_is_bounded(benchmark, corpora):
    """Two rows per token must still produce supersets, never misses."""
    lines = corpora["BGL2"][:800]
    index, page_tokens = _build(lines, 2)

    def check():
        probe = split_tokens(lines[17])[:5]
        for token in probe:
            pages, _ = index.lookup_token(token)
            expected = {
                addr for addr, toks in enumerate(page_tokens) if token in toks
            }
            assert expected.issubset(set(pages))
        return True

    assert benchmark.pedantic(check, iterations=1, rounds=1)
