"""Table 1: dataset statistics (lines, size, extracted templates).

Regenerates the table for the scaled synthetic corpora next to the
paper's published values. Absolute counts differ (scaled corpora); the
benchmark checks the invariants that matter: BGL2 is by far the
smallest, line lengths sit in the ~100-150 B band, and FT-tree extracts
a substantial template library from each dataset.
"""


from conftest import DATASETS
from repro.datasets.schema import DATASET_SPECS
from repro.system.report import render_table


def _table_rows(corpora, fttrees):
    rows = []
    for name in DATASETS:
        lines = corpora[name]
        nbytes = sum(len(ln) + 1 for ln in lines)
        spec = DATASET_SPECS[name]
        rows.append(
            [
                name,
                len(lines),
                f"{nbytes / 1e6:.2f} MB",
                len(fttrees[name].templates),
                f"{spec.paper_lines_millions}M",
                f"{spec.paper_size_gb} GB",
                spec.paper_templates,
            ]
        )
    return rows


def test_table1_dataset_stats(benchmark, corpora, fttrees, capsys):
    rows = benchmark.pedantic(
        _table_rows, args=(corpora, fttrees), iterations=1, rounds=1
    )
    with capsys.disabled():
        print()
        print(
            render_table(
                "Table 1: datasets (measured | paper)",
                ["Dataset", "Lines", "Size", "Templ.", "P.Lines", "P.Size", "P.Templ."],
                rows,
                col_width=12,
            )
        )
    by_name = {r[0]: r for r in rows}
    # BGL2 is the runt of the family, as in the paper
    assert by_name["BGL2"][1] < min(by_name[d][1] for d in DATASETS if d != "BGL2")
    # every corpus yields a meaningful template library
    for name in DATASETS:
        assert by_name[name][3] >= 10


def test_template_extraction_speed(benchmark, corpora):
    """Micro-benchmark: FT-tree construction rate on BGL2-like lines."""
    from repro.templates.fttree import FTTree, FTTreeParams

    lines = corpora["BGL2"][:1000]
    params = FTTreeParams(max_depth=6, prune_threshold=12)
    tree = benchmark(lambda: FTTree.from_lines(lines, params))
    assert tree.templates
