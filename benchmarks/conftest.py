"""Shared fixtures for the benchmark harness.

Every table and figure of the paper has one bench module; expensive
artifacts (corpora, ingested systems, comparison runs) are built once per
session here and shared. Corpus sizes are scaled so relative dataset
sizes echo Table 1 while a full bench run stays in the minutes range.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.datasets.synthetic import generator_for
from repro.system.comparison import ComparisonHarness
from repro.templates.fttree import FTTree, FTTreeParams
from repro.templates.querygen import build_workload

#: Scaled line counts (relative sizes follow Table 1: BGL2 much smaller).
CORPUS_LINES = {
    "BGL2": 4700,
    "Liberty2": 8000,
    "Spirit2": 8000,
    "Thunderbird": 7000,
}

DATASETS = tuple(sorted(CORPUS_LINES))


def pytest_addoption(parser):
    group = parser.getgroup("observability")
    group.addoption(
        "--metrics-out",
        default=None,
        metavar="DIR",
        help="write metrics.prom + metrics.json (and bench trace artifacts) "
        "to DIR at session end",
    )
    group.addoption(
        "--no-metrics",
        action="store_true",
        default=False,
        help="disable the metrics registry (measures instrumentation cost)",
    )


def pytest_configure(config):
    if config.getoption("--no-metrics"):
        from repro.obs.metrics import disable

        disable()


def pytest_sessionfinish(session, exitstatus):
    out = session.config.getoption("--metrics-out")
    if out is None:
        return
    from repro.obs.expose import (
        bootstrap_families,
        render_prometheus,
        write_snapshot,
    )

    # register the canonical zero-valued families first, so artifacts
    # always carry every family a dashboard scrapes, even when the bench
    # session exercised only part of the stack
    bootstrap_families()
    directory = Path(out)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "metrics.prom").write_text(render_prometheus())
    write_snapshot(directory / "metrics.json")


@pytest.fixture(scope="session")
def metrics_out_dir(request):
    """Artifact directory from ``--metrics-out``, or None when unset."""
    out = request.config.getoption("--metrics-out")
    if out is None:
        return None
    directory = Path(out)
    directory.mkdir(parents=True, exist_ok=True)
    return directory


@pytest.fixture(scope="session")
def corpora() -> dict[str, list[bytes]]:
    return {
        name: generator_for(name).generate(count)
        for name, count in CORPUS_LINES.items()
    }


@pytest.fixture(scope="session")
def texts(corpora) -> dict[str, bytes]:
    return {
        name: b"".join(line + b"\n" for line in lines)
        for name, lines in corpora.items()
    }


@pytest.fixture(scope="session")
def fttrees(corpora) -> dict[str, FTTree]:
    # depth 10 keeps message keywords in the path; threshold 32 prunes
    # genuine variable fields (hundreds of variants) without collapsing
    # template structure (tens of siblings)
    params = FTTreeParams(max_depth=10, prune_threshold=32, max_doc_frequency=0.9)
    return {name: FTTree.from_lines(lines, params) for name, lines in corpora.items()}


@pytest.fixture(scope="session")
def workloads(fttrees):
    """Small-but-faithful Section 7.1 workloads: all three batch sizes."""
    return {
        name: build_workload(tree, num_pairs=5, num_eights=3, max_singles=16)
        for name, tree in fttrees.items()
    }


@pytest.fixture(scope="session")
def harnesses(corpora) -> dict[str, ComparisonHarness]:
    return {name: ComparisonHarness(lines) for name, lines in corpora.items()}


@pytest.fixture(scope="session")
def scan_comparisons(harnesses, workloads):
    """Figure 15 / Table 6 source data, computed once."""
    return {
        name: harness.run_scan_comparison(workloads[name])
        for name, harness in harnesses.items()
    }


@pytest.fixture(scope="session")
def negative_queries(fttrees):
    """Section 7.5's negative-term-heavy queries: NOT <common token>.

    No inverted index can narrow these; they force (near-)full scans,
    which is where MithriLog's advantage over single-threaded software
    is largest (Figure 16's left-edge cluster).
    """
    from repro.core.query import Query, Term

    out = {}
    for name, tree in fttrees.items():
        common = [
            token
            for token, _count in tree.frequencies.most_common(40)
            if token not in tree.stopwords
        ][:2]
        out[name] = [Query.single(Term(token, negative=True)) for token in common]
    return out


@pytest.fixture(scope="session")
def end_to_end_comparisons(harnesses, workloads, negative_queries):
    """Figure 16 / Table 7 source data, computed once."""
    return {
        name: harness.run_end_to_end(
            workloads[name], extra_queries=negative_queries[name]
        )
        for name, harness in harnesses.items()
    }
