"""SLO detection benchmark: fault onset -> firing alert, measured.

Standalone (``python benchmarks/bench_slo_detection.py``): builds a
corpus and a seeded open-loop workload below measured capacity, then
serves it three ways on the simulated clock:

1. **clean** — healthy backend, live :class:`repro.obs.slo.SLOMonitor`
   attached: the monitor must stay silent (zero alerts — the false-
   positive gate);
2. **faulted** — a :class:`~repro.faults.injectors.ServiceFaultInjector`
   slows a contiguous window of accelerator passes mid-run
   (``slow_pass`` schedule); queued requests time out and shed, the
   availability SLO's burn rate spikes, and the alert must fire within
   a bounded **sim-time detection latency** of the fault's onset. A
   :class:`~repro.obs.recorder.FlightRecorder` snapshots an incident
   bundle at fire time, which must pass
   :func:`repro.obs.recorder.validate_incident_bundle`;
3. **faulted, unmonitored** — the identical faulted run without the
   monitor: simulated outcomes must be byte-identical (the monitor
   observes, never steers), and the monitored run's wall-clock overhead
   is recorded.

Gates (non-zero exit, what the CI ``slo-smoke`` job keys off):

1. zero alerts on the clean run;
2. the faulted run fires a burn-rate alert, with detection latency
   (fault onset -> firing, simulated seconds) within ``--detect-ceiling``;
3. the incident bundle validates and covers the fault window;
4. two identical faulted runs produce identical alert timelines and
   outcome signatures (determinism);
5. the monitor does not perturb simulated outcomes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets.synthetic import generator_for
from repro.faults.injectors import ServiceFaultInjector
from repro.faults.reporting import FaultLog
from repro.faults.schedules import AtOperationsSchedule
from repro.obs.expose import bootstrap_families
from repro.obs.journal import QueryJournal, validate_journal_payload
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.recorder import FlightRecorder, validate_incident_bundle
from repro.obs.series import MetricSampler
from repro.obs.slo import SLO, SLOMonitor
from repro.service import (
    QueryService,
    estimate_capacity,
    make_tenants,
    open_loop_requests,
    query_pool,
)
from repro.system.mithrilog import MithriLogSystem


class OnsetStampingInjector(ServiceFaultInjector):
    """Fault injector that records the simulated time of its first
    slow pass — the onset the detection-latency gate measures from.

    (Fault-log events carry operation indices, not sim timestamps, so
    the bench stamps the clock at the injection point itself.)
    """

    def __init__(self, clock, **kwargs):
        super().__init__(**kwargs)
        self._clock = clock
        self.first_slow_at_s = None

    def on_pass(self, batch_size: int) -> float:
        multiplier = super().on_pass(batch_size)
        if multiplier > 1.0 and self.first_slow_at_s is None:
            self.first_slow_at_s = self._clock.now
        return multiplier


def outcome_signature(report):
    return tuple(
        (r.request.tenant, r.outcome.value, round(r.latency_s, 12), r.matches)
        for r in report.responses
    )


def bench_slos(args) -> list[SLO]:
    """The objectives under test: aggregate availability + latency."""
    return [
        SLO(
            name="availability-all",
            objective="availability",
            tenant="*",
            target=args.target,
            fast_window_s=args.fast_window,
            slow_window_s=args.slow_window,
            burn_threshold=args.burn_threshold,
            resolve_after_s=args.slow_window,
        ),
        SLO(
            name="latency-p-all",
            objective="latency",
            tenant="*",
            target=args.target,
            latency_threshold_s=args.latency_slo_ms / 1e3,
            fast_window_s=args.fast_window,
            slow_window_s=args.slow_window,
            burn_threshold=args.burn_threshold,
            resolve_after_s=args.slow_window,
        ),
    ]


def run(args: argparse.Namespace) -> int:
    lines = list(
        generator_for(args.dataset, seed=args.seed).iter_lines(args.lines)
    )
    tenants = make_tenants(args.tenants, queue_limit=args.queue_limit)

    def build(monitored: bool, faulted: bool):
        """One fresh, registry-isolated serving stack."""
        registry = MetricsRegistry()
        with use_registry(registry):
            bootstrap_families(registry)
            system = MithriLogSystem(seed=args.seed)
            system.ingest(lines)
            pool = query_pool(lines, max_queries=args.pool, seed=args.seed)
            journal = QueryJournal(max_entries=args.journal_max_entries)
            injector = None
            if faulted:
                injector = OnsetStampingInjector(
                    system.clock,
                    slow_passes=AtOperationsSchedule(
                        range(args.fault_start, args.fault_start + args.fault_width)
                    ),
                    slowdown=args.slowdown,
                    log=FaultLog(),
                )
            monitor = sampler = recorder = None
            if monitored:
                sampler = MetricSampler(registry, interval_s=args.interval)
                monitor = SLOMonitor(
                    bench_slos(args), interval_s=args.interval, sampler=sampler
                )
                recorder = FlightRecorder(
                    monitor,
                    sampler=sampler,
                    journal=journal,
                    fault_logs=[injector.log] if injector else (),
                    system=system,
                    lookback_s=args.slow_window,
                )
            service = QueryService(
                system,
                tenants,
                max_backlog=args.max_backlog,
                journal=journal,
                monitor=monitor,
                fault_injector=injector,
            )
            return system, pool, service, journal, monitor, recorder, injector

    # capacity anchor (healthy stack, no monitor)
    system, pool, service, *_ = build(monitored=False, faulted=False)
    capacity = estimate_capacity(
        lambda: service, pool, tenants, seed=args.seed
    )
    offered = capacity * args.load
    print(
        f"corpus: {args.dataset} x {len(lines):,} lines, "
        f"{len(tenants)} tenants, {len(pool)} pool queries"
    )
    print(
        f"measured capacity: {capacity:,.0f} q/s; offering "
        f"{offered:,.0f} q/s (x{args.load:g}) for "
        f"{args.duration * 1e3:.0f} ms simulated"
    )
    traffic = open_loop_requests(
        pool,
        tenants,
        offered_qps=offered,
        duration_s=args.duration,
        seed=args.seed,
        deadline_s=args.deadline_ms / 1e3,
    )

    failures: list[str] = []

    # -- clean run: the false-positive gate --------------------------------
    _, _, service, journal, monitor, _, _ = build(monitored=True, faulted=False)
    t0 = time.perf_counter()
    clean = service.run(traffic)
    clean_wall_s = time.perf_counter() - t0
    clean_fired = [a for a in monitor.alerts if a.fired_at_s is not None]
    print(
        f"clean: goodput {clean.goodput_qps:,.0f} q/s, loss "
        f"{100 * clean.shed_rate:.1f}%, {monitor.evaluations} evaluations, "
        f"{len(clean_fired)} alert(s)"
    )
    if clean_fired:
        failures.append(
            f"false positive: {len(clean_fired)} alert(s) fired on the "
            f"clean run ({[a.slo for a in clean_fired]})"
        )
    if not clean.conserved() or not journal.conserved():
        failures.append("clean run violated outcome conservation")

    # -- faulted run: detection latency + incident bundle ------------------
    _, _, service, journal, monitor, recorder, injector = build(
        monitored=True, faulted=True
    )
    t0 = time.perf_counter()
    faulted = service.run(traffic)
    faulted_wall_s = time.perf_counter() - t0
    onset_s = injector.first_slow_at_s
    fired = [a for a in monitor.alerts if a.fired_at_s is not None]
    print(
        f"faulted: goodput {faulted.goodput_qps:,.0f} q/s, loss "
        f"{100 * faulted.shed_rate:.1f}%, "
        f"{len(injector.log.events)} fault(s) injected, "
        f"{len(fired)} alert(s) fired"
    )
    detection_s = None
    if onset_s is None:
        failures.append(
            "the slow-pass schedule never fired — widen --fault-width "
            "or lower --fault-start"
        )
    elif not fired:
        failures.append(
            "no alert fired on the faulted run (detection miss)"
        )
    else:
        first_fire_s = min(a.fired_at_s for a in fired)
        detection_s = first_fire_s - onset_s
        print(
            f"  fault onset {onset_s * 1e3:.2f} ms sim, first alert "
            f"fired {first_fire_s * 1e3:.2f} ms sim -> detection latency "
            f"{detection_s * 1e3:.2f} ms sim"
        )
        if detection_s > args.detect_ceiling:
            failures.append(
                f"detection latency {detection_s * 1e3:.2f} ms sim exceeds "
                f"ceiling {args.detect_ceiling * 1e3:.2f} ms"
            )
    journal_problems = validate_journal_payload(journal.to_payload())
    if journal_problems:
        failures.append(f"faulted journal failed validation: {journal_problems}")

    bundle = None
    if recorder.bundles:
        bundle = recorder.bundles[0]
        problems = validate_incident_bundle(bundle)
        if problems:
            failures.append(f"incident bundle failed validation: {problems}")
        window = bundle["window"]
        if onset_s is not None and not (
            window["start_s"] <= onset_s <= window["end_s"]
        ):
            print(
                "  note: fault onset outside the bundle's evidence window "
                f"([{window['start_s'] * 1e3:.2f}, "
                f"{window['end_s'] * 1e3:.2f}] ms)"
            )
        print(
            f"  incident bundle: {len(bundle['journal'].get('records', []))} "
            f"journal records, {len(bundle['faults']['events'])} fault "
            f"events, slow template "
            f"{bundle.get('slow_template', {}).get('template', '(none)')}"
        )
    elif fired:
        failures.append("alert fired but the flight recorder captured nothing")

    # -- determinism: identical faulted runs, identical timelines ----------
    _, _, service2, _, monitor2, _, _ = build(monitored=True, faulted=True)
    faulted2 = service2.run(traffic)
    if outcome_signature(faulted) != outcome_signature(faulted2):
        failures.append("identical faulted runs produced different outcomes")
    if monitor.timeline() != monitor2.timeline():
        failures.append(
            "identical faulted runs produced different alert timelines"
        )

    # -- non-intrusiveness: the monitor observes, never steers -------------
    _, _, service3, _, _, _, _ = build(monitored=False, faulted=True)
    t0 = time.perf_counter()
    unmonitored = service3.run(traffic)
    unmonitored_wall_s = time.perf_counter() - t0
    if outcome_signature(faulted) != outcome_signature(unmonitored):
        failures.append(
            "monitored and unmonitored faulted runs diverged — the "
            "monitor perturbed simulated outcomes"
        )
    overhead = (
        faulted_wall_s / unmonitored_wall_s if unmonitored_wall_s > 0 else 0.0
    )
    print(
        f"monitor wall overhead: x{overhead:.2f} "
        f"({faulted_wall_s * 1e3:.0f} ms vs {unmonitored_wall_s * 1e3:.0f} ms "
        "host wall-clock)"
    )
    if overhead > args.overhead_ceiling:
        failures.append(
            f"monitor wall overhead x{overhead:.2f} exceeds ceiling "
            f"x{args.overhead_ceiling:g}"
        )

    # -- artifacts ---------------------------------------------------------
    if args.bundle_out is not None and bundle is not None:
        from repro.obs.recorder import write_bundle

        for path in write_bundle(bundle, args.bundle_out):
            print(f"wrote incident artifact {path}")
    if args.journal_out is not None:
        journal.write(args.journal_out)
        print(f"wrote faulted query journal to {args.journal_out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1

    records = [
        {
            "bench": "slo",
            "config": "clean",
            "goodput_qps": round(clean.goodput_qps, 2),
            "p99_ms": round(clean.latency_percentile_s(99) * 1e3, 4),
            "loss_rate": round(clean.shed_rate, 4),
            "alerts": len(clean_fired),
            "wall_s": round(clean_wall_s, 3),
        },
        {
            "bench": "slo",
            "config": "faulted",
            "goodput_qps": round(faulted.goodput_qps, 2),
            "p99_ms": round(faulted.latency_percentile_s(99) * 1e3, 4),
            "loss_rate": round(faulted.shed_rate, 4),
            "alerts": len(fired),
            "wall_s": round(faulted_wall_s, 3),
        },
        {
            "bench": "slo",
            "config": "detection",
            "detection_latency_ms": round(detection_s * 1e3, 4),
            "onset_ms": round(onset_s * 1e3, 4),
            "evaluations": monitor.evaluations,
            "bundles": len(recorder.bundles),
            "wall_overhead": round(overhead, 3),
        },
    ]
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    trajectory = json.loads(out.read_text()) if out.exists() else []
    trajectory.extend(records)
    out.write_text(json.dumps(trajectory, indent=1) + "\n")
    print(f"wrote {len(records)} records to {out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="Liberty2")
    parser.add_argument("--lines", type=int, default=4000)
    parser.add_argument("--tenants", type=int, default=3)
    parser.add_argument("--pool", type=int, default=12)
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument("--max-backlog", type=int, default=16)
    parser.add_argument("--load", type=float, default=0.6,
                        help="offered load as a multiple of measured "
                        "capacity (below 1.0: the clean run must be quiet)")
    parser.add_argument("--duration", type=float, default=0.5,
                        help="simulated seconds of offered traffic")
    parser.add_argument("--deadline-ms", type=float, default=60.0,
                        help="per-request deadline (simulated ms); slow "
                        "passes push queued requests past it")
    parser.add_argument("--fault-start", type=int, default=40,
                        help="pass index where the slow-pass window opens")
    parser.add_argument("--fault-width", type=int, default=60,
                        help="passes the slow-pass window covers")
    parser.add_argument("--slowdown", type=float, default=8.0,
                        help="slow-pass time multiplier")
    parser.add_argument("--target", type=float, default=0.9,
                        help="SLO good-fraction target")
    parser.add_argument("--latency-slo-ms", type=float, default=50.0,
                        help="latency SLO threshold (simulated ms)")
    parser.add_argument("--fast-window", type=float, default=0.05,
                        help="fast burn window (simulated seconds)")
    parser.add_argument("--slow-window", type=float, default=0.15,
                        help="slow burn window (simulated seconds)")
    parser.add_argument("--burn-threshold", type=float, default=3.0)
    parser.add_argument("--interval", type=float, default=0.005,
                        help="monitor evaluation cadence (simulated seconds)")
    parser.add_argument("--detect-ceiling", type=float, default=0.2,
                        help="max fault-onset -> alert-firing latency "
                        "(simulated seconds)")
    parser.add_argument("--overhead-ceiling", type=float, default=5.0,
                        help="max monitored/unmonitored wall-clock ratio "
                        "(generous: host wall time is noisy in CI)")
    parser.add_argument("--journal-max-entries", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_slo.json")
    parser.add_argument("--bundle-out", default=None,
                        help="directory for the faulted run's incident "
                        "bundle artifacts")
    parser.add_argument("--journal-out", default=None,
                        help="write the faulted run's journal here")
    args = parser.parse_args(argv)
    return run(args)


if __name__ == "__main__":
    raise SystemExit(main())
