"""Ablation: LZAH's newline realignment (Section 5).

Word-aligned window stepping destroys the line-aligned redundancy real
logs have — the paper "reclaims" it by restarting the window after each
newline. Turning that single rule off collapses the compression ratio,
which is the whole justification for the special newline datapath.
"""


from conftest import DATASETS
from repro.compression.lzah import LZAHCompressor
from repro.compression.base import compression_ratio
from repro.params import LZAHParams
from repro.system.report import render_table


def _measure(texts):
    on = LZAHCompressor()
    off = LZAHCompressor(LZAHParams(newline_realign=False))
    return {
        name: (
            compression_ratio(on, texts[name]),
            compression_ratio(off, texts[name]),
        )
        for name in DATASETS
    }


def test_ablate_newline_realignment(benchmark, texts, capsys):
    results = benchmark.pedantic(_measure, args=(texts,), iterations=1, rounds=1)
    rows = [
        [name, round(on, 2), round(off, 2), f"{on / off:.2f}x"]
        for name, (on, off) in results.items()
    ]
    with capsys.disabled():
        print()
        print(
            render_table(
                "Ablation: LZAH newline realignment",
                ["Dataset", "Realign on", "Realign off", "Gain"],
                rows,
            )
        )
    for name, (on, off) in results.items():
        # realignment recovers a large share of the compression the
        # word-aligned stepping gave up
        assert on > 1.3 * off, name


def test_ablated_mode_still_roundtrips(benchmark, texts):
    codec = LZAHCompressor(LZAHParams(newline_realign=False))
    data = texts["BGL2"][:65536]
    restored = benchmark(lambda: codec.decompress(codec.compress(data)))
    assert restored == data


def test_ablate_chunk_size(benchmark, texts, capsys):
    """Secondary knob: larger header chunks amortise the per-chunk header
    word and padding, saturating at the prototype's 128 pairs."""

    def sweep():
        out = {}
        for pairs in (16, 64, 128):
            codec = LZAHCompressor(LZAHParams(pairs_per_chunk=pairs))
            out[pairs] = compression_ratio(codec, texts["Spirit2"])
        return out

    ratios = benchmark.pedantic(sweep, iterations=1, rounds=1)
    with capsys.disabled():
        print(f"\n  pairs/chunk -> ratio: {[f'{k}: {v:.2f}' for k, v in ratios.items()]}")
    # ratio improves with chunk size but the gains saturate by 128
    assert ratios[16] < ratios[64] < ratios[128]
    assert ratios[128] < 1.1 * ratios[64]
