"""Table 7: average performance improvement over the Splunk-like engine.

Computed the way the paper computes it: total execution time for the
full query set per dataset, software over MithriLog — after the paper's
generous divide-by-12 hyper-thread amortization is already applied to
the software side.

Scale note: the paper's 9.9x-352x factors come from multi-GB corpora
where scan work dominates; at the laptop-scale corpora used here, fixed
per-query costs (index seeks, pipeline fill) compress the gap on *both*
sides. The checked shape is therefore: MithriLog wins in total on every
dataset, and the advantage is largest exactly where the paper says it is
— on the scan-heavy, negative-term-heavy queries.
"""


from conftest import DATASETS
from repro.system.report import render_table


def _build_rows(end_to_end_comparisons):
    return [
        [name, f"{end_to_end_comparisons[name].total_improvement():.1f}x"]
        for name in DATASETS
    ]


def test_table7_improvement_over_splunk(benchmark, end_to_end_comparisons, capsys):
    rows = benchmark.pedantic(
        _build_rows, args=(end_to_end_comparisons,), iterations=1, rounds=1
    )
    with capsys.disabled():
        print()
        print(
            render_table(
                "Table 7: average improvement over the Splunk-like engine "
                "(paper: 9.9x / 352x / 201x / 86x)",
                ["Dataset", "Improvement"],
                rows,
                col_width=16,
            )
        )
    for name in DATASETS:
        comparison = end_to_end_comparisons[name]
        assert comparison.total_improvement() > 1.3, name
        # the scan-heavy (negative-term) queries show the big wins
        scan_heavy = [s for s in comparison.samples if s.full_scan]
        assert scan_heavy, name
        mean_speedup = sum(s.speedup for s in scan_heavy) / len(scan_heavy)
        assert mean_speedup > 4.0, name


def test_splunk_query_speed(benchmark, harnesses):
    """Micro-benchmark: the software engine's per-query execution."""
    from repro.core.query import parse_query

    harness = harnesses["BGL2"]
    query = parse_query("KERNEL AND INFO")
    result = benchmark(lambda: harness.splunk.execute(query))
    assert result.candidate_lines >= 0
