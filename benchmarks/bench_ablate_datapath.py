"""Ablation: datapath width (Section 4.1's design-space exploration).

The paper chose a 16-byte datapath after finding 8 bytes "too slow,
requiring too many pipelines" and 32 bytes of "limited benefit due to
too many padding bits". The cycle model reproduces both findings: going
8 -> 16 nearly doubles per-pipeline throughput, while 16 -> 32 adds only
a few percent for double the filter resources, because padding dominates
the wider tokenized stream.
"""


from repro.hw.perf import PipelineCycleModel, measure_tokenized_stats
from repro.hw.resources import DECOMPRESSOR, HASH_FILTER, TOKENIZER
from repro.params import PipelineParams
from repro.system.report import render_table

#: width -> tokenizer lanes that sustain it at 2 B/cycle each
WIDTHS = {8: 4, 16: 8, 32: 16}


def _estimated_kluts(width: int, tokenizers: int) -> float:
    """Pipeline area estimate: width-proportional decompressor and
    filters plus per-lane tokenizers (from the Table 2 figures)."""
    scale = width / 16
    return (
        DECOMPRESSOR.luts * scale
        + tokenizers * TOKENIZER.luts
        + 2 * HASH_FILTER.luts * scale
    ) / 1e3


def _sweep(lines):
    rows = {}
    for width, tokenizers in WIDTHS.items():
        params = PipelineParams(datapath_bytes=width, tokenizers=tokenizers)
        count = PipelineCycleModel(params).count_cycles(lines)
        stats = measure_tokenized_stats(lines, datapath_bytes=width)
        rows[width] = {
            "gbps": count.throughput_bytes_per_sec / 1e9,
            "kluts": _estimated_kluts(width, tokenizers),
            "useful": stats.useful_fraction,
        }
    return rows


def test_ablate_datapath_width(benchmark, corpora, capsys):
    lines = corpora["Liberty2"][:3000]
    rows = benchmark.pedantic(_sweep, args=(lines,), iterations=1, rounds=1)
    table = [
        [
            f"{width} B",
            round(rows[width]["gbps"], 2),
            round(rows[width]["kluts"], 1),
            round(rows[width]["gbps"] / rows[width]["kluts"], 4),
            f"{100 * rows[width]['useful']:.0f}%",
        ]
        for width in WIDTHS
    ]
    with capsys.disabled():
        print()
        print(
            render_table(
                "Ablation: datapath width (per pipeline)",
                ["Width", "GB/s", "KLUT", "GB/s/KLUT", "Useful bits"],
                table,
            )
        )
    # 8 -> 16 B: near-linear scaling (the narrow bus is the bottleneck)
    assert rows[16]["gbps"] > 1.7 * rows[8]["gbps"]
    # 16 -> 32 B: padding eats the gain (the paper's 'limited benefits')
    assert rows[32]["gbps"] < 1.15 * rows[16]["gbps"]
    # so the wide datapath is strictly worse per chip resource
    eff = {w: rows[w]["gbps"] / rows[w]["kluts"] for w in WIDTHS}
    assert eff[16] > 1.5 * eff[32]
    # and padding grows with width
    assert rows[8]["useful"] > rows[16]["useful"] > rows[32]["useful"]


def test_hash_filter_replication(benchmark, corpora, capsys):
    """Section 7.4.1: one hash filter cannot absorb the ~2x amplification."""

    def sweep():
        lines = corpora["Liberty2"][:2000]
        out = {}
        for filters in (1, 2, 4):
            params = PipelineParams(hash_filters=filters)
            count = PipelineCycleModel(params).count_cycles(lines)
            out[filters] = count.throughput_bytes_per_sec / 1e9
        return out

    rates = benchmark.pedantic(sweep, iterations=1, rounds=1)
    with capsys.disabled():
        print(
            f"\n  hash filters per pipeline: 1 -> {rates[1]:.2f} GB/s, "
            f"2 -> {rates[2]:.2f}, 4 -> {rates[4]:.2f}"
        )
    # two filters recover most of the amplification loss; four add little
    assert rates[2] > 1.4 * rates[1]
    assert rates[4] < 1.25 * rates[2]
