"""Observability smoke benchmark: one traced ingest + query, end to end.

This is the CI job's workload: it ingests a small corpus and runs one
query with a span tracer attached, then asserts the telemetry contract —
at least five distinct query-phase spans on the simulated clock, and a
metrics registry carrying the storage/pipeline/index families. With
``--metrics-out DIR`` the session also writes ``trace.json`` (Chrome
trace-event format) next to the ``metrics.prom``/``metrics.json``
artifacts the conftest hook emits.
"""

import pytest

from repro.core.query import parse_query
from repro.obs.metrics import get_registry
from repro.obs.timeline import utilization_summary
from repro.obs.tracing import SpanTracer, validate_chrome_trace
from repro.system.mithrilog import MithriLogSystem

#: The query phases the tracer must lay out on the simulated timeline.
QUERY_PHASES = {
    "index_lookup",
    "flash_read",
    "decompress",
    "filter",
    "host_transfer",
}


@pytest.fixture(scope="module")
def traced_run(corpora):
    system = MithriLogSystem(seed=7)
    system.tracer = SpanTracer(clock=system.clock)
    report = system.ingest(corpora["BGL2"][:2000])
    outcome = system.query(parse_query("KERNEL AND INFO"))
    return system, report, outcome


def test_obs_smoke_spans(benchmark, traced_run, metrics_out_dir):
    system, report, outcome = traced_run
    trace = benchmark.pedantic(
        system.tracer.to_chrome_trace, iterations=1, rounds=1
    )
    assert QUERY_PHASES <= system.tracer.names()
    assert len(QUERY_PHASES | {"query"}) >= 5
    assert validate_chrome_trace(trace) >= 5
    # spans sit on the simulated timeline: the query starts where the
    # ingest left the clock, not at zero
    query_spans = [s for s in system.tracer.spans if s.name == "query"]
    assert query_spans and query_spans[0].start_s == pytest.approx(
        report.elapsed_s
    )
    if metrics_out_dir is not None:
        path = system.tracer.write_chrome_trace(
            metrics_out_dir / "trace.json", utilization=True
        )
        assert validate_chrome_trace(path) >= 5


def test_obs_smoke_utilization(traced_run):
    system, report, outcome = traced_run
    trace = system.tracer.to_chrome_trace(utilization=True)
    counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
    assert counters, "utilization export must carry counter tracks"
    assert all(e["name"].startswith("util:") for e in counters)
    summary = utilization_summary(system.tracer.spans)
    assert summary and all(0.0 <= v <= 1.0 for v in summary.values())


def test_obs_smoke_metrics(traced_run):
    system, report, outcome = traced_run
    registry = get_registry()
    if registry is None:
        pytest.skip("metrics disabled (--no-metrics)")
    names = {m.name for m in registry.collect()}
    for family in ("mithrilog_storage_", "mithrilog_pipeline_", "mithrilog_index_"):
        assert any(n.startswith(family) for n in names), family
    counter = registry.counter("mithrilog_ingest_lines_total", "")
    assert counter.value() >= report.lines
