"""Template-ID tagging cost (Section 8's "ongoing effort").

Tagging reuses the filter datapath unchanged — each pass handles up to
eight templates (the flag-pair budget), so tagging a whole library of T
templates costs ceil(T/8) wire-speed scans. This bench measures the
functional tagger's agreement with FT-tree classification and models the
pass arithmetic for each dataset's extracted library.
"""

import math


from conftest import DATASETS
from repro.core.tagger import TemplateTagger
from repro.params import FLAG_PAIRS
from repro.system.report import render_table


def test_tagging_pass_arithmetic(benchmark, fttrees, corpora, capsys):
    def build():
        rows = []
        for name in DATASETS:
            tree = fttrees[name]
            tagger = TemplateTagger.from_tree(tree)
            raw_bytes = sum(len(ln) + 1 for ln in corpora[name])
            # each pass is one wire-speed scan of the decompressed data
            scan_s = raw_bytes / 11.5e9
            rows.append(
                [
                    name,
                    len(tree.templates),
                    tagger.num_passes,
                    round(tagger.num_passes * scan_s * 1e3, 3),
                ]
            )
        return rows

    rows = benchmark.pedantic(build, iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            render_table(
                "Template tagging: passes over the data per library",
                ["Dataset", "Templates", "Passes", "Modelled ms"],
                rows,
                col_width=13,
            )
        )
    for name, templates, passes, _ms in rows:
        # ceil(T/8) passes, plus the occasional split when a dense batch
        # fails cuckoo placement and the host re-batches it
        floor = math.ceil(templates / FLAG_PAIRS)
        assert floor <= passes <= floor + max(4, floor // 3), name


def test_tagging_agreement_with_classification(benchmark, fttrees, corpora):
    tree = fttrees["BGL2"]
    tagger = TemplateTagger.from_tree(tree)
    sample = corpora["BGL2"][:300]

    def agreement():
        agree = 0
        for line in sample:
            expected = tree.classify_line(line)
            got = tagger.tag_line(line)
            if got == (expected.template_id if expected else None):
                agree += 1
        return agree / len(sample)

    rate = benchmark.pedantic(agreement, iterations=1, rounds=1)
    assert rate > 0.85


def test_tagging_rate(benchmark, fttrees, corpora):
    """Micro-benchmark: functional tag_line rate on the full library."""
    tagger = TemplateTagger.from_tree(fttrees["BGL2"])
    lines = corpora["BGL2"][:50]
    tagged = benchmark(lambda: [tagger.tag_line(ln) for ln in lines])
    assert len(tagged) == 50
