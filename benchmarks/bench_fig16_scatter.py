"""Figure 16: per-query elapsed time, MithriLog vs the Splunk-like engine.

Fully measured with both systems' inverted indexes active, over the same
workloads. Checked shape: MithriLog wins the large majority of queries;
negative-term-heavy (full-scan) queries are the slow cluster for the
software engine, amplifying the gap — the paper's left-edge cluster.
"""


from conftest import DATASETS
from repro.system.report import render_scatter_summary


def test_fig16_scatter(benchmark, end_to_end_comparisons, capsys):
    comparisons = benchmark.pedantic(
        lambda: end_to_end_comparisons, iterations=1, rounds=1
    )
    with capsys.disabled():
        print()
        for name in DATASETS:
            pairs = [
                (s.mithrilog_s, s.splunk_s) for s in comparisons[name].samples
            ]
            print(render_scatter_summary(f"Figure 16 [{name}]", pairs))
            print()
    for name in DATASETS:
        samples = comparisons[name].samples
        wins = sum(1 for s in samples if s.mithrilog_s < s.splunk_s)
        assert wins / len(samples) > 0.7, name


def test_fig16_full_scan_queries_hurt_splunk_more(end_to_end_comparisons, benchmark):
    def gap_ratio():
        ratios = []
        for comparison in end_to_end_comparisons.values():
            scans = [s.speedup for s in comparison.samples if s.full_scan]
            selective = [s.speedup for s in comparison.samples if not s.full_scan]
            if scans and selective:
                mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
                ratios.append(mean(scans) / mean(selective))
        return ratios

    ratios = benchmark.pedantic(gap_ratio, iterations=1, rounds=1)
    # where full-scan queries exist, they widen MithriLog's advantage
    if ratios:
        assert sum(ratios) / len(ratios) > 1.0
