"""Workload-observability benchmark: the mined-hints loop, measured.

Standalone (``python benchmarks/bench_workload.py``): builds a corpus
and a deliberately bimodal query pool — short one-token templates
(cheap index lookups) plus one Section 7.1 "eight" union template whose
~50 token lookups make every pass it rides expensive — then runs the
same seeded overload traffic twice on the simulated clock:

1. **baseline** — no hints; the slow template shares passes and sheds
   like everyone else, and its cost leaks into every co-rider's latency;
2. **hinted** — the baseline run's journal is mined
   (:func:`repro.analytics.workload.mine`), a
   :class:`~repro.service.hints.TemplateHintProvider` is built *from
   that profile* (min-service-time identification), and the identical
   traffic is re-served with the hints feeding admission demotion and
   pass quarantine.

The two journals are diffed by :func:`repro.obs.report.build_ab_report`
and the per-slice deltas land in ``BENCH_workload.json`` (watch-perf
format). This is a closed loop over *measured* data: nothing tells the
scheduler which template is slow except the journal itself.

Gates (non-zero exit, what the CI ``workload-smoke`` job keys off):

1. both runs are deterministic and conserve outcomes (journal
   cross-check included);
2. mining identifies the planted slow template from the baseline
   journal alone;
3. the feedback loop *wins*: at least one slice that was overloaded in
   the baseline (non-zero loss) improves its goodput or p99 under
   hints, and aggregate goodput does not regress;
4. the journal and A/B report artifacts pass their schema validators.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analytics.workload import mine
from repro.core.query import Query
from repro.datasets.synthetic import generator_for
from repro.obs.journal import (
    QueryJournal,
    template_fingerprint,
    validate_journal_payload,
)
from repro.obs.report import build_ab_report, validate_ab_report
from repro.service import (
    QueryService,
    TemplateHintProvider,
    estimate_capacity,
    make_tenants,
    open_loop_requests,
)
from repro.system.mithrilog import MithriLogSystem
from repro.templates.fttree import FTTree, FTTreeParams
from repro.templates.querygen import build_workload


def outcome_signature(report):
    return tuple(
        (r.request.tenant, r.outcome.value, round(r.latency_s, 12), r.matches)
        for r in report.responses
    )


def build_pool(lines, fast_queries: int, seed: int):
    """Bimodal pool: short cheap templates plus one expensive union.

    Fast queries are single mid-frequency tokens (one index lookup
    each); the slow one is an FT-tree "eight" — the OR of eight full
    templates, ~50 token lookups per pass. Index time dominates the
    simulated scan at bench scale, so the cost ratio is real, and a
    shared pass is paced by its most expensive rider.
    """
    counts = Counter()
    for line in lines:
        for token in line.split():
            if 4 <= len(token) <= 12:
                counts[token] += 1
    mid = [
        t.decode() for t, c in counts.most_common() if 20 <= c <= len(lines) // 10
    ][:fast_queries]
    fast = [Query.single(token) for token in mid]
    tree = FTTree.from_lines(
        list(lines),
        FTTreeParams(max_depth=10, prune_threshold=32, max_doc_frequency=0.9),
    )
    workload = build_workload(tree, num_pairs=0, num_eights=2, seed=seed)
    slow = workload.eights[0]
    return fast + [slow], template_fingerprint(str(slow))


def run(args: argparse.Namespace) -> int:
    lines = list(generator_for(args.dataset, seed=args.seed).iter_lines(args.lines))
    tenants = make_tenants(args.tenants, queue_limit=args.queue_limit)
    pool, slow_fp = build_pool(lines, fast_queries=args.fast_queries, seed=args.seed)
    print(
        f"corpus: {args.dataset} x {len(lines):,} lines, {len(tenants)} tenants, "
        f"{len(pool)} pool queries (slow template {slow_fp})"
    )

    def service(hints=None, journal=None) -> QueryService:
        system = MithriLogSystem(seed=args.seed)
        system.ingest(lines)
        return QueryService(
            system,
            tenants,
            max_backlog=args.max_backlog,
            journal=journal,
            hints=hints,
        )

    capacity = estimate_capacity(
        lambda: service(), pool, tenants, seed=args.seed
    )
    print(f"measured capacity: {capacity:,.0f} q/s (simulated)")
    traffic = open_loop_requests(
        pool,
        tenants,
        offered_qps=capacity * args.overload,
        duration_s=args.duration,
        seed=args.seed,
    )
    print(
        f"offering {capacity * args.overload:,.0f} q/s "
        f"(x{args.overload:g} capacity) for {args.duration * 1e3:.0f} ms "
        f"simulated: {len(traffic)} requests"
    )

    failures = []

    # -- baseline: no hints, journal on -----------------------------------
    journal = QueryJournal()
    journal.begin_window("baseline")
    baseline = service(journal=journal).run(traffic)
    rerun = service().run(traffic)
    if outcome_signature(baseline) != outcome_signature(rerun):
        failures.append("identical baseline runs produced different outcomes")
    if not baseline.conserved():
        failures.append("baseline: outcome conservation violated")

    # -- close the loop: mine the journal, build hints from it -------------
    profile_base = mine(journal, window="baseline")
    hints = TemplateHintProvider.from_profile(
        profile_base,
        latency_factor=args.latency_factor,
        min_count=args.min_count,
    )
    print(f"mined hints: {hints.describe()}")
    if slow_fp not in hints.slow_templates:
        failures.append(
            f"mining missed the planted slow template {slow_fp} "
            f"(flagged: {sorted(hints.slow_templates)})"
        )

    # -- hinted: identical traffic, hints active ---------------------------
    journal.begin_window("hinted")
    hinted = service(hints=hints, journal=journal).run(traffic)
    if not hinted.conserved():
        failures.append("hinted: outcome conservation violated")
    if not journal.conserved():
        failures.append("journal tallies violate outcome conservation")
    journal_problems = validate_journal_payload(journal.to_payload())
    if journal_problems:
        failures.append(f"journal failed validation: {journal_problems}")

    profile_hint = mine(journal, window="hinted")
    report = build_ab_report(
        profile_base,
        profile_hint,
        label_a="baseline",
        label_b="hinted",
        threshold=args.threshold,
    )
    report_problems = validate_ab_report(report.to_payload())
    if report_problems:
        failures.append(f"A/B report failed validation: {report_problems}")

    agg = report.aggregate
    print(
        f"  baseline goodput {agg.goodput_a_qps:,.0f} q/s "
        f"p99 {agg.p99_a_ms:.2f} ms | hinted goodput "
        f"{agg.goodput_b_qps:,.0f} q/s p99 {agg.p99_b_ms:.2f} ms"
    )

    # -- gate: the loop must win on an overloaded slice --------------------
    # an "overloaded slice" lost work in the baseline (shed/rejected/
    # timed out); the loop earns its keep by improving such a slice's
    # goodput or p99 — an aggregate-only win would not prove targeting
    overloaded_wins = [
        s
        for s in report.improved_slices
        if s.loss_rate_a > 0 and s.count_a >= args.min_count
    ]
    for s in overloaded_wins:
        print(
            f"  overloaded slice improved: {s.dimension}:{s.value} "
            f"goodput {s.goodput_a_qps:,.0f} -> {s.goodput_b_qps:,.0f} q/s, "
            f"p99 {s.p99_a_ms:.2f} -> {s.p99_b_ms:.2f} ms "
            f"(baseline loss {100 * s.loss_rate_a:.1f}%)"
        )
    if not overloaded_wins:
        failures.append(
            "no overloaded slice improved under mined hints — "
            "the feedback loop had no measurable effect"
        )
    if agg.goodput_b_qps < agg.goodput_a_qps * (1 - args.threshold):
        failures.append(
            f"aggregate goodput regressed under hints: "
            f"{agg.goodput_a_qps:,.0f} -> {agg.goodput_b_qps:,.0f} q/s"
        )
    hidden = report.hidden_regressions
    if hidden:
        print(
            f"  note: {len(hidden)} hidden per-slice regressions "
            f"({', '.join(s.dimension + ':' + s.value for s in hidden[:4])})"
        )

    # -- artifacts ---------------------------------------------------------
    if args.journal_out is not None:
        journal.write(args.journal_out)
        print(f"wrote query journal to {args.journal_out}")
    if args.report_out is not None:
        report.write_json(args.report_out)
        print(f"wrote A/B report JSON to {args.report_out}")
    if args.md_out is not None:
        report.write_markdown(args.md_out)
        print(f"wrote A/B report markdown to {args.md_out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1

    best = max(
        overloaded_wins,
        key=lambda s: (s.goodput_b_qps - s.goodput_a_qps, -s.p99_delta_ms),
    )
    records = [
        {
            "bench": "workload",
            "config": "baseline",
            "goodput_qps": round(agg.goodput_a_qps, 2),
            "p50_ms": round(agg.p50_a_ms, 4),
            "p99_ms": round(agg.p99_a_ms, 4),
            "loss_rate": round(agg.loss_rate_a, 4),
            "submitted": len(traffic),
        },
        {
            "bench": "workload",
            "config": "mined-hints",
            "goodput_qps": round(agg.goodput_b_qps, 2),
            "p50_ms": round(agg.p50_b_ms, 4),
            "p99_ms": round(agg.p99_b_ms, 4),
            "loss_rate": round(agg.loss_rate_b, 4),
            "submitted": len(traffic),
        },
        {
            "bench": "workload",
            "config": "hint-loop-delta",
            "goodput_gain": round(
                agg.goodput_b_qps / agg.goodput_a_qps, 4
            )
            if agg.goodput_a_qps
            else 0.0,
            "p99_delta_ms": round(agg.p99_delta_ms, 4),
            "overloaded_slices_improved": len(overloaded_wins),
            "hidden_regressions": len(hidden),
            "best_slice": f"{best.dimension}:{best.value}",
            "best_slice_goodput_gain": round(
                best.goodput_b_qps / best.goodput_a_qps, 4
            )
            if best.goodput_a_qps
            else 0.0,
            "slow_templates_flagged": len(hints.slow_templates),
        },
    ]
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    trajectory = json.loads(out.read_text()) if out.exists() else []
    trajectory.extend(records)
    out.write_text(json.dumps(trajectory, indent=1) + "\n")
    print(f"wrote {len(records)} records to {out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="Liberty2")
    parser.add_argument("--lines", type=int, default=6000)
    parser.add_argument("--tenants", type=int, default=3)
    parser.add_argument("--fast-queries", type=int, default=8,
                        help="cheap single-token templates in the pool")
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument("--max-backlog", type=int, default=6,
                        help="small backlog so overload actually sheds")
    parser.add_argument("--overload", type=float, default=2.0,
                        help="offered load as a multiple of measured capacity")
    parser.add_argument("--duration", type=float, default=0.06,
                        help="simulated seconds of offered traffic")
    parser.add_argument("--latency-factor", type=float, default=2.0,
                        help="min-service-time multiple that flags a "
                        "template as slow when mining hints")
    parser.add_argument("--min-count", type=int, default=4,
                        help="completions a template/slice needs before "
                        "mining or gating trusts it")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="relative change the A/B report counts as "
                        "material")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_workload.json")
    parser.add_argument("--journal-out", default=None,
                        help="write the two-window query journal here")
    parser.add_argument("--report-out", default=None,
                        help="write the A/B report JSON here")
    parser.add_argument("--md-out", default=None,
                        help="write the A/B report markdown here")
    args = parser.parse_args(argv)
    return run(args)


if __name__ == "__main__":
    raise SystemExit(main())
