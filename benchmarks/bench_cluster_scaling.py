"""Cluster scaling: scatter-gather across accelerated devices.

The paper positions MithriLog for cloud/edge fleets; a deployment's
aggregate bandwidth should scale with device count. This bench shards
one corpus across 1/2/4/8 devices and measures scan makespan and
aggregate effective throughput — near-linear until per-shard fixed
latency dominates.
"""


from repro.core.query import parse_query
from repro.datasets.synthetic import generator_for
from repro.system.cluster import MithriLogCluster
from repro.system.report import render_table

SHARD_COUNTS = (1, 2, 4, 8)


def _run(lines):
    query = parse_query("session AND opened")
    rows = {}
    for shards in SHARD_COUNTS:
        cluster = MithriLogCluster(num_shards=shards)
        cluster.ingest(lines)
        outcome = cluster.scan_all(query)
        rows[shards] = {
            "makespan": outcome.elapsed_s,
            "gbps": outcome.effective_throughput(cluster.original_bytes) / 1e9,
            "matches": len(outcome.matched_lines),
        }
    return rows


def test_cluster_scaling(benchmark, capsys):
    lines = generator_for("Liberty2").generate(12_000)
    rows = benchmark.pedantic(_run, args=(lines,), iterations=1, rounds=1)
    table = [
        [
            f"{shards} shard(s)",
            round(rows[shards]["makespan"] * 1e6, 1),
            round(rows[shards]["gbps"], 2),
        ]
        for shards in SHARD_COUNTS
    ]
    with capsys.disabled():
        print()
        print(
            render_table(
                "Cluster scaling: full-scan makespan vs shard count",
                ["Deployment", "Makespan (us)", "Aggregate GB/s"],
                table,
                col_width=16,
            )
        )
    # identical answers at every scale
    counts = {rows[s]["matches"] for s in SHARD_COUNTS}
    assert len(counts) == 1
    # makespan shrinks monotonically with shard count...
    times = [rows[s]["makespan"] for s in SHARD_COUNTS]
    assert times[0] > times[1] > times[2] >= times[3]
    # ...but sub-linearly: every shard pays the fixed 100 us access
    # latency, which floors the makespan at laptop corpus scale
    assert times[0] / times[3] > 1.4
    assert times[3] > 100e-6
    # aggregate throughput scales past a single device's 12.8 GB/s ceiling
    gbps = [rows[s]["gbps"] for s in SHARD_COUNTS]
    assert gbps == sorted(gbps)
    assert rows[8]["gbps"] > 12.8
