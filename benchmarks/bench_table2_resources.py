"""Table 2: chip resource utilization of MithriLog on a VC707.

Model-driven: regenerates the published per-module LUT/BRAM rows with
derived percentages, and checks them against the paper's printed values.
"""

import pytest

from repro.hw.resources import (
    PIPELINE,
    PROTOTYPE_TOTAL,
    mithrilog_resource_table,
    pipeline_component_sum,
)


def _build_table():
    return [report.row() for report in mithrilog_resource_table()]


def test_table2_resource_utilization(benchmark, capsys):
    rows = benchmark.pedantic(_build_table, iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print("Table 2: chip resource utilization on VC707 (LUTs / RAMB36 / RAMB18)")
        for row in rows:
            print("  " + row)
    reports = mithrilog_resource_table()
    # the paper's printed percentages
    assert reports[0].lut_fraction == pytest.approx(0.014, abs=0.001)  # decompr
    assert reports[2].lut_fraction == pytest.approx(0.10, abs=0.005)  # filter
    assert reports[3].lut_fraction == pytest.approx(0.20, abs=0.005)  # pipeline
    assert reports[4].lut_fraction == pytest.approx(0.74, abs=0.005)  # total
    assert reports[4].ramb36_fraction == pytest.approx(0.41, abs=0.01)


def test_component_accounting(benchmark, capsys):
    comp = benchmark.pedantic(pipeline_component_sum, iterations=1, rounds=1)
    with capsys.disabled():
        print(
            f"\n  pipeline components sum to {comp.luts:,} LUTs vs published "
            f"{PIPELINE.luts:,} (cross-module synthesis optimisation)"
        )
    assert 0.75 * comp.luts <= PIPELINE.luts <= 1.25 * comp.luts
    assert PROTOTYPE_TOTAL.luts >= 3 * PIPELINE.luts
