"""Figure 13: percentage of useful bits in the tokenized datapath.

Fully measured: tokenize each corpus with the hardware tokenizer rules
and report the non-padding share of the 16-byte-aligned token stream.
The paper's observation — "generally, about half of the 16 byte
tokenized datapath is useful data" — drove the two-hash-filter design;
the bench checks the same band holds here.
"""


from conftest import DATASETS
from repro.hw.perf import measure_tokenized_stats
from repro.system.report import render_table


def _measure(corpora):
    return {name: measure_tokenized_stats(corpora[name]) for name in DATASETS}


def test_fig13_useful_bits(benchmark, corpora, capsys):
    stats = benchmark.pedantic(_measure, args=(corpora,), iterations=1, rounds=1)
    rows = [
        [
            name,
            f"{100 * stats[name].useful_fraction:.1f}%",
            round(stats[name].amplification, 2),
        ]
        for name in DATASETS
    ]
    with capsys.disabled():
        print()
        print(
            render_table(
                "Figure 13: useful bits in the tokenized datapath",
                ["Dataset", "Useful", "Amplification"],
                rows,
                col_width=14,
            )
        )
    for name in DATASETS:
        fraction = stats[name].useful_fraction
        # the paper's 'about half' band
        assert 0.35 < fraction < 0.65, name
        # amplification ~2x justifies two hash filters per pipeline
        assert 1.5 < stats[name].amplification < 3.0, name


def test_tokenizer_throughput(benchmark, corpora):
    """Micro-benchmark: functional tokenizer word emission rate."""
    from repro.core.tokenizer import Tokenizer

    tokenizer = Tokenizer()
    lines = corpora["BGL2"][:300]
    words = benchmark(lambda: sum(len(tokenizer.tokenize_line(ln)) for ln in lines))
    assert words > 0
