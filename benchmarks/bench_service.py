"""Service-quality benchmark for the multi-tenant query service.

Standalone (``python benchmarks/bench_service.py``): builds a synthetic
corpus, a Zipf-skewed tenant mix and a template query pool, then
measures two things on the **simulated** clock (records are therefore
machine-independent, unlike the wall-clock benches):

- **batched vs serial goodput** — the same saturating open-loop traffic
  served by a service that packs up to 8 queries per accelerator pass
  versus one forced to a single query per pass. This is the service-
  layer restatement of Section 4's concurrent-query claim, and the
  ``speedup`` record ``repro watch-perf`` watches.
- **an offered-load sweep** — 0.5x to 4x measured capacity; each level
  records goodput, p50/p95/p99 latency and the loss (shed + rejected +
  timed-out) rate into ``BENCH_service.json``.

Gates (non-zero exit, what the CI ``service-smoke`` job keys off):

1. runs are deterministic — two identical runs produce identical
   per-request outcomes;
2. outcome conservation holds for every report;
3. batched goodput is at least ``--min-speedup`` (default 2x) serial;
4. under overload, shedding engages and p99 stays within
   ``--p99-factor`` of its at-capacity value — bounded *because* excess
   work is refused, the admission-control claim the service exists for.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datasets.synthetic import generator_for
from repro.service import (
    QueryService,
    make_tenants,
    open_loop_requests,
    query_pool,
    run_sweep,
)
from repro.system.mithrilog import MithriLogSystem


def outcome_signature(report):
    return tuple(
        (r.request.tenant, r.outcome.value, round(r.latency_s, 12), r.matches)
        for r in report.responses
    )


def run(args: argparse.Namespace) -> int:
    lines = list(generator_for(args.dataset, seed=args.seed).iter_lines(args.lines))
    tenants = make_tenants(args.tenants, queue_limit=args.queue_limit)
    pool = query_pool(lines, max_queries=args.pool, seed=args.seed)
    print(
        f"corpus: {args.dataset} x {len(lines):,} lines, "
        f"{len(tenants)} tenants, {len(pool)} pool queries"
    )

    def service(max_batch: int) -> QueryService:
        system = MithriLogSystem(seed=args.seed)
        system.ingest(lines)
        # full-scan passes: the concurrent-query amortisation the bench
        # quantifies lives on the scan path (one decompress+tokenize
        # stream feeds every rider); the index path answers selective
        # queries from postings and has little shared work to amortise
        return QueryService(
            system,
            tenants,
            max_batch=max_batch,
            max_backlog=args.max_backlog,
            use_index=False,
        )

    # -- capacity anchor (batched service, saturating burst) --------------
    from repro.service import estimate_capacity

    capacity = estimate_capacity(
        lambda: service(args.max_batch), pool, tenants, seed=args.seed
    )
    print(f"measured capacity: {capacity:,.0f} q/s (simulated)")

    # -- batched vs serial on identical saturating traffic ----------------
    traffic = open_loop_requests(
        pool,
        tenants,
        offered_qps=capacity * 1.5,
        duration_s=args.duration,
        seed=args.seed,
    )
    batched = service(args.max_batch).run(traffic)
    serial = service(1).run(traffic)
    rerun = service(args.max_batch).run(traffic)

    failures = []
    if outcome_signature(batched) != outcome_signature(rerun):
        failures.append("identical runs produced different outcomes")
    for name, report in (("batched", batched), ("serial", serial)):
        if not report.conserved():
            failures.append(f"{name}: outcome conservation violated")
    if serial.goodput_qps <= 0:
        failures.append("serial service served nothing")

    speedup = (
        batched.goodput_qps / serial.goodput_qps if serial.goodput_qps else 0.0
    )
    print(
        f"  batched goodput {batched.goodput_qps:,.0f} q/s "
        f"({batched.passes} passes) vs serial {serial.goodput_qps:,.0f} q/s "
        f"({serial.passes} passes): {speedup:.2f}x"
    )
    if speedup < args.min_speedup:
        failures.append(
            f"batched goodput only {speedup:.2f}x serial "
            f"(floor {args.min_speedup:.1f}x)"
        )

    # -- offered-load sweep ------------------------------------------------
    journal = None
    if args.journal_out is not None or args.bundle_out is not None:
        from repro.obs.journal import QueryJournal

        journal = QueryJournal()
    monitor = recorder = None
    if args.slo_config is not None or args.bundle_out is not None:
        from repro.obs.recorder import FlightRecorder
        from repro.obs.series import MetricSampler
        from repro.obs.slo import SLOMonitor, default_slos, load_slo_config

        if args.slo_config is not None:
            slos, interval = load_slo_config(args.slo_config)
        else:
            slos, interval = default_slos(), 0.005
        sampler = MetricSampler(interval_s=interval)
        monitor = SLOMonitor(slos, interval_s=interval, sampler=sampler)
        recorder = FlightRecorder(
            monitor,
            sampler=sampler,
            journal=journal,
            out_dir=args.bundle_out,
        )
    points = run_sweep(
        lambda: service(args.max_batch),
        pool,
        tenants,
        capacity_qps=capacity,
        load_multiples=tuple(args.multiples),
        duration_s=args.duration,
        deadline_s=args.deadline_ms / 1e3 if args.deadline_ms else None,
        seed=args.seed,
        journal=journal,
        monitor=monitor,
    )
    print("  load   offered     goodput   p50 ms   p99 ms   loss")
    for point in points:
        print(
            f"  x{point.load_multiple:<5g}{point.offered_qps:>8,.0f}"
            f"{point.goodput_qps:>12,.0f}{point.p50_ms:>9.2f}"
            f"{point.p99_ms:>9.2f}{100 * point.shed_rate:>6.1f}%"
        )

    at_capacity = min(points, key=lambda p: abs(p.load_multiple - 1.0))
    overload = max(points, key=lambda p: p.load_multiple)
    if overload.load_multiple > 1.0:
        if overload.shed_rate <= 0:
            failures.append(
                f"x{overload.load_multiple:g} overload shed nothing — "
                "admission control never engaged"
            )
        bound = args.p99_factor * at_capacity.p99_ms
        if overload.p99_ms > bound:
            failures.append(
                f"x{overload.load_multiple:g} p99 {overload.p99_ms:.2f} ms "
                f"exceeds {args.p99_factor:g}x the at-capacity p99 "
                f"({bound:.2f} ms) — latency is not bounded under overload"
            )

    if monitor is not None:
        fired = [a for a in monitor.alerts if a.fired_at_s is not None]
        print(
            f"  SLO monitor: {monitor.evaluations} evaluations, "
            f"{len(fired)} alert(s) fired across the sweep"
        )
        for alert in fired:
            print(
                f"    {alert.slo}: fired at {alert.fired_at_s * 1e3:.2f} ms "
                f"sim (burn {alert.burn_fast_at_fire:.2f}x fast / "
                f"{alert.burn_slow_at_fire:.2f}x slow)"
            )
        for path in getattr(recorder, "written", []):
            print(f"wrote incident artifact {path}")

    if journal is not None:
        if not journal.conserved():
            failures.append("sweep journal violates outcome conservation")
        elif args.journal_out is not None:
            journal.write(args.journal_out)
            print(
                f"wrote query journal ({len(journal.records)} records, "
                f"{len(journal.windows())} windows) to {args.journal_out}"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1

    records = [p.record() for p in points]
    records.append(
        {
            "bench": "service",
            "config": f"batched-vs-serial-{args.max_batch}q",
            "speedup": round(speedup, 2),
            "batched_goodput_qps": round(batched.goodput_qps, 2),
            "serial_goodput_qps": round(serial.goodput_qps, 2),
        }
    )
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    trajectory = json.loads(out.read_text()) if out.exists() else []
    trajectory.extend(records)
    out.write_text(json.dumps(trajectory, indent=1) + "\n")
    print(f"wrote {len(records)} records to {out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="Liberty2")
    parser.add_argument("--lines", type=int, default=4000)
    parser.add_argument("--tenants", type=int, default=3)
    parser.add_argument("--pool", type=int, default=16)
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument("--max-backlog", type=int, default=32)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--duration", type=float, default=0.02,
                        help="simulated seconds of traffic per level "
                        "(full-scan passes are sub-millisecond simulated, "
                        "so capacity is tens of kq/s — keep this short)")
    parser.add_argument("--deadline-ms", type=float, default=None)
    parser.add_argument("--multiples", type=float, nargs="+",
                        default=[0.5, 1.0, 2.0, 4.0])
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="batched/serial goodput floor (gate)")
    parser.add_argument("--p99-factor", type=float, default=6.0,
                        help="overload p99 bound, as a multiple of the "
                        "at-capacity p99 (gate)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument("--journal-out", default=None,
                        help="write the sweep's query journal (JSON, one "
                        "window per load level) to this file")
    parser.add_argument("--slo-config", default=None,
                        help="evaluate SLOs from this mithrilog_slo_config "
                        "JSON live across the sweep (default objectives "
                        "when --bundle-out is given without a config)")
    parser.add_argument("--bundle-out", default=None,
                        help="directory for incident bundles captured when "
                        "a sweep-time SLO alert fires")
    args = parser.parse_args(argv)
    return run(args)


if __name__ == "__main__":
    raise SystemExit(main())
