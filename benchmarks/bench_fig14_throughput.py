"""Figure 14: total effective throughput of the four filter pipelines.

Combines three measured/modelled bounds per dataset — cycle-counted
pipeline capability, the 12.8 GB/s decompressor ceiling, and the storage
supply (4.8 GB/s internal bandwidth x the dataset's real LZAH ratio) —
exactly the arithmetic behind the paper's figure. Checked shape: every
dataset lands between ~11 and 12.8 GB/s, and the lowest-ratio dataset
(BGL2 in the paper) is the storage-bound one.
"""


from conftest import DATASETS
from repro.compression import LZAHCompressor, compression_ratio
from repro.hw.perf import EngineThroughputModel
from repro.system.report import render_table


def _evaluate(corpora, texts):
    model = EngineThroughputModel()
    codec = LZAHCompressor()
    results = {}
    for name in DATASETS:
        ratio = compression_ratio(codec, texts[name])
        results[name] = model.evaluate(name, corpora[name], ratio)
    return results


def test_fig14_filter_engine_throughput(benchmark, corpora, texts, capsys):
    results = benchmark.pedantic(
        _evaluate, args=(corpora, texts), iterations=1, rounds=1
    )
    rows = [
        [
            name,
            round(results[name].effective_bytes_per_sec / 1e9, 2),
            round(results[name].pipeline_capability / 1e9, 2),
            round(results[name].decompressor_ceiling / 1e9, 2),
            round(results[name].storage_supply / 1e9, 2),
            results[name].bound_by,
        ]
        for name in DATASETS
    ]
    with capsys.disabled():
        print()
        print(
            render_table(
                "Figure 14: filter engine effective throughput (GB/s)",
                ["Dataset", "Effective", "Pipelines", "Decompr.", "Storage", "Bound"],
                rows,
                col_width=12,
            )
        )
    for name in DATASETS:
        effective = results[name].effective_bytes_per_sec
        # the paper's 11-12.8 GB/s band (we allow a slightly wider floor)
        assert 9e9 < effective <= 12.8e9, name
    # paper: only BGL2's compression is too weak to keep the four
    # decompressors (12.8 GB/s) fully supplied from 4.8 GB/s of flash
    worst = min(DATASETS, key=lambda n: results[n].storage_supply)
    assert worst == "BGL2"
    assert results[worst].storage_supply < results[worst].decompressor_ceiling
    for name in DATASETS:
        if name != worst:
            assert results[name].storage_supply > results[name].decompressor_ceiling, name


def test_cycle_model_speed(benchmark, corpora):
    """Micro-benchmark: cycle-accounting rate of the pipeline model."""
    from repro.hw.perf import PipelineCycleModel

    model = PipelineCycleModel()
    lines = corpora["Liberty2"][:500]
    count = benchmark(lambda: model.count_cycles(lines))
    assert count.cycles > 0
