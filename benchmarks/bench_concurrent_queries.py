"""Concurrent query execution (Section 4's union-join claim).

The paper: the query format "can be used to either encode one complex
query, or to evaluate multiple queries in parallel by joining them with
unions", executing "concurrently at no performance loss". This bench
makes the claim operational: the scheduler packs a queue of template
queries into flag-pair-sized accelerator passes, and the makespan of a
batch of 8 collapses to ~1/8th of serial execution while per-query
results stay identical.
"""


from repro.core.query import Query
from repro.system.scheduler import QueryScheduler
from repro.system.report import render_table


def test_concurrent_batching_makespan(benchmark, harnesses, workloads, capsys):
    harness = harnesses["Spirit2"]
    queries = list(workloads["Spirit2"].singles[:8])

    def run():
        scheduler = QueryScheduler(harness.mithrilog)
        batched = scheduler.run(queries, use_index=False)
        serial = scheduler.serial_makespan(queries, use_index=False)
        return batched, serial

    batched, serial = benchmark.pedantic(run, iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            render_table(
                "Concurrent execution: 8 template queries",
                ["Strategy", "Passes", "Makespan (ms)"],
                [
                    ["serial", len(queries), round(serial * 1e3, 3)],
                    ["batched", batched.passes, round(batched.makespan_s * 1e3, 3)],
                ],
                col_width=16,
            )
        )
    assert batched.passes == 1
    # one pass over the data instead of eight: ~8x less scan work
    assert batched.makespan_s < serial / 4


def test_verdicts_identical_batched_vs_serial(benchmark, harnesses, workloads):
    harness = harnesses["Spirit2"]
    queries = list(workloads["Spirit2"].singles[:8])
    scheduler = QueryScheduler(harness.mithrilog)

    def run():
        return scheduler.run(queries, use_index=False).per_query_counts

    batched_counts = benchmark.pedantic(run, iterations=1, rounds=1)
    for query, count in zip(queries, batched_counts):
        serial = harness.mithrilog.query(query, use_index=False)
        assert count == serial.per_query_counts[0]


def test_large_queue_pass_count(benchmark, harnesses):
    """A 32-query queue of singles needs exactly ceil(32/8) passes."""
    harness = harnesses["BGL2"]
    queries = [Query.single(f"synthetic-token-{i}") for i in range(32)]

    def run():
        return QueryScheduler(harness.mithrilog).pack(queries)

    groups = benchmark.pedantic(run, iterations=1, rounds=1)
    assert len(groups) == 4
    assert sorted(i for g in groups for i in g) == list(range(32))
