"""Table 8: estimated power consumption breakdown of the two platforms.

Model-driven from the paper's measured/published component draws, then
combined with this run's *measured* Table 6 speedups to derive the
power-efficiency headline: similar wall power, order-of-magnitude higher
throughput, hence order-of-magnitude better performance per watt.
"""


from conftest import DATASETS
from repro.hw.power import efficiency_comparison, mithrilog_power, software_power
from repro.system.report import render_table


def _build_rows():
    ours, theirs = mithrilog_power(), software_power()
    return [
        [label, our_value, their_value]
        for (label, our_value), (_, their_value) in zip(ours.rows(), theirs.rows())
    ]


def test_table8_power_breakdown(benchmark, capsys):
    rows = benchmark.pedantic(_build_rows, iterations=1, rounds=1)
    with capsys.disabled():
        print()
        print(
            render_table(
                "Table 8: estimated power breakdown (Watt)",
                ["Component", "MithriLog", "Software"],
                rows,
                col_width=22,
            )
        )
    assert rows[-1][1] == 150
    assert rows[-1][2] == 170


def test_power_efficiency_headline(benchmark, scan_comparisons, capsys):
    def compute():
        speedups = [
            scan_comparisons[name].average_improvement() for name in DATASETS
        ]
        mean_speedup = sum(speedups) / len(speedups)
        return efficiency_comparison(mean_speedup)

    comparison = benchmark.pedantic(compute, iterations=1, rounds=1)
    with capsys.disabled():
        print(
            f"\n  measured mean speedup {comparison.speedup:.1f}x at "
            f"{comparison.power_ratio:.2f}x the power -> "
            f"{comparison.efficiency_gain:.1f}x performance/Watt"
        )
    assert comparison.power_ratio < 1.0
    assert comparison.efficiency_gain > comparison.speedup
    assert comparison.efficiency_gain > 5.0
