"""System comparison: MithriLog vs the software baselines (Section 7).

A miniature of the paper's whole evaluation: one corpus, one FT-tree
workload, all three systems — MithriLog (near-storage accelerated), a
MonetDB-like full-scan column engine, and a Splunk-like indexed search
engine — with the paper's effective-throughput and elapsed-time metrics.

Run with::

    python examples/system_comparison.py
"""

from repro import ComparisonHarness, build_workload
from repro.datasets import generator_for
from repro.templates import FTTree, FTTreeParams


def main() -> None:
    print("generating a Thunderbird-like corpus (8,000 lines)...")
    lines = generator_for("Thunderbird").generate(8_000)

    print("building all three systems over the same corpus...")
    harness = ComparisonHarness(lines)
    print(
        f"  MithriLog ingested at {harness.ingest_report.compression_ratio:.2f}x "
        f"compression into {harness.ingest_report.pages_written} pages"
    )

    tree = FTTree.from_lines(
        lines, FTTreeParams(max_depth=10, prune_threshold=32, max_doc_frequency=0.9)
    )
    workload = build_workload(tree, num_pairs=4, num_eights=2, max_singles=10)
    print(
        f"  workload: {len(workload.singles)} singles, "
        f"{len(workload.pairs)} OR-2 combos, {len(workload.eights)} OR-8 combos"
    )

    print("\ncross-checking all systems against the oracle...")
    harness.verify_agreement(list(workload.singles)[:3])
    print("  all systems agree on the result sets")

    print("\nfull-scan shootout (Figure 15 / Table 6 style):")
    scan = harness.run_scan_comparison(workload)
    for batch in (1, 2, 8):
        ours = scan.mean_gbps("MithriLog", batch)
        theirs = scan.mean_gbps("MonetDB", batch)
        print(
            f"  batch of {batch}: MithriLog {ours:5.2f} GB/s vs "
            f"scan-DB {theirs:5.2f} GB/s  ({ours / theirs:4.1f}x)"
        )
    print(f"  average improvement: {scan.average_improvement():.1f}x")

    print("\nindexed end-to-end (Figure 16 / Table 7 style):")
    e2e = harness.run_end_to_end(workload)
    wins = sum(1 for s in e2e.samples if s.mithrilog_s < s.splunk_s)
    print(
        f"  MithriLog faster on {wins}/{len(e2e.samples)} queries; "
        f"total-time improvement {e2e.total_improvement():.1f}x "
        f"(after the paper's /12 thread amortization for the software side)"
    )


if __name__ == "__main__":
    main()
