"""Iterative log exploration: discovery with negative terms and time bounds.

Walks through the workflow the paper's introduction motivates — an
operator drilling into a failure: start broad, exclude the noise with
NOT-terms (the queries that defeat inverted indexes, Section 7.5), then
bound by time using the snapshot index (Section 6.3).

Run with::

    python examples/log_exploration.py
"""

from repro import MithriLogSystem, parse_query
from repro.datasets import generator_for


def show(step: str, system: MithriLogSystem, outcome) -> None:
    stats = outcome.stats
    narrowing = (
        "full scan"
        if stats.index_full_scan
        else f"{stats.candidate_pages}/{stats.total_pages} pages"
    )
    print(
        f"  {step}: {len(outcome.matched_lines):,} lines  "
        f"[{narrowing}, {stats.elapsed_s * 1e3:.2f} ms simulated]"
    )


def main() -> None:
    print("generating a Spirit2-like corpus (15,000 lines) with timestamps...")
    lines = generator_for("Spirit2").generate(15_000)
    epochs = [float(line.split()[1]) for line in lines]

    system = MithriLogSystem()
    # ingest in four eras, snapshotting between them so time bounds can
    # actually prune pages (Section 6.3)
    quarter = len(lines) // 4
    for i in range(4):
        chunk = slice(i * quarter, (i + 1) * quarter if i < 3 else len(lines))
        system.ingest(lines[chunk], timestamps=epochs[chunk])
        system.index.flush(timestamp=epochs[chunk][-1])

    print("\nstep 1 - broad: everything the kernel logged")
    q1 = parse_query("kernel:")
    show("kernel:", system, system.query(q1))

    print("\nstep 2 - exclude the routine noise (negative terms)")
    q2 = parse_query("kernel: AND NOT ACPI: AND NOT Losing")
    show("kernel: minus noise", system, system.query(q2))

    print("\nstep 3 - a pure negative query (no index help, like the paper's")
    print("          'NOT pbs_mom:' case - watch the full scan)")
    q3 = parse_query("NOT kernel:")
    show("NOT kernel:", system, system.query(q3))

    print("\nstep 4 - bound the search to the last quarter of the log")
    cut = epochs[len(epochs) * 3 // 4]
    outcome = system.query(q2, time_range=(cut, None))
    show("same query, time-bounded", system, outcome)

    print("\nstep 5 - two investigations at once (concurrent queries)")
    qa = parse_query("error AND NOT corrected")
    qb = parse_query("Temperature")
    both = system.query(qa, qb)
    print(
        f"  errors: {both.per_query_counts[0]:,} lines; "
        f"thermal: {both.per_query_counts[1]:,} lines "
        f"- one device pass, {both.stats.elapsed_s * 1e3:.2f} ms"
    )


if __name__ == "__main__":
    main()
