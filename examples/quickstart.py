"""Quickstart: ingest logs into MithriLog and run a query.

Run with::

    python examples/quickstart.py

Builds a synthetic Liberty2-like corpus (a stand-in for the HPC4 logs the
paper evaluates on), ingests it — LZAH compression, page-aligned storage,
inverted indexing — and runs the paper's own example query,
``"failed" AND NOT "pbs_mom:"``, through the near-storage filter engine.
"""

from repro import MithriLogSystem, parse_query
from repro.datasets import generator_for


def main() -> None:
    print("generating a Liberty2-like corpus (20,000 lines)...")
    lines = generator_for("Liberty2").generate(20_000)

    system = MithriLogSystem()
    report = system.ingest(lines)
    print(
        f"ingested {report.lines:,} lines ({report.original_bytes / 1e6:.1f} MB) "
        f"into {report.pages_written} flash pages "
        f"({report.compression_ratio:.2f}x LZAH compression, "
        f"{report.index_memory_bytes / 1024:.0f} KiB index memory)"
    )

    query = parse_query('"Failed" AND NOT "pbs_mom:"')
    print(f"\nquery: {query}")
    outcome = system.query(query)

    stats = outcome.stats
    print(f"matched {len(outcome.matched_lines):,} lines")
    print(
        f"index narrowed {stats.total_pages} pages to "
        f"{stats.candidate_pages} ({100 * stats.index_reduction:.0f}% skipped)"
    )
    print(
        f"device read {stats.bytes_from_flash / 1e3:.0f} KB compressed, "
        f"decompressed {stats.bytes_decompressed / 1e3:.0f} KB, "
        f"returned {stats.bytes_to_host / 1e3:.0f} KB over PCIe"
    )
    print(
        f"simulated elapsed time: {stats.elapsed_s * 1e3:.2f} ms "
        f"(effective {outcome.effective_throughput(system.original_bytes) / 1e9:.1f} GB/s)"
    )

    print("\nfirst three matches:")
    for line in outcome.matched_lines[:3]:
        print("  " + line.decode(errors="replace"))


if __name__ == "__main__":
    main()
