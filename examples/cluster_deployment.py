"""Sharded deployment: four MithriLog devices behind one interface.

The paper targets "large-scale system management... in both cloud and
edge environments" — deployments where logs outgrow one device. This
example shards a corpus across four accelerated devices, runs
scatter-gather queries, and shows the parallel makespan win plus the
flash-realistic plumbing (FTL) underneath.

Run with::

    python examples/cluster_deployment.py
"""

from repro import parse_query
from repro.datasets import generator_for
from repro.system.cluster import MithriLogCluster


def main() -> None:
    print("generating a Thunderbird-like corpus (24,000 lines)...")
    lines = generator_for("Thunderbird").generate(24_000)

    cluster = MithriLogCluster(num_shards=4)
    report = cluster.ingest(lines)
    print(
        f"ingested {report.lines:,} lines across {cluster.num_shards} shards "
        f"({report.compression_ratio:.2f}x compression, "
        f"parallel ingest {report.elapsed_s * 1e3:.2f} ms simulated)"
    )
    for i, shard in enumerate(cluster.shards):
        print(f"  shard {i}: {shard.total_lines:,} lines, "
              f"{shard.index.total_data_pages} data pages")

    query = parse_query('"Failed" AND NOT "root"')
    print(f"\nscatter-gather query: {query}")
    outcome = cluster.query(query)
    print(f"  {len(outcome.matched_lines):,} matching lines")
    print(
        f"  parallel makespan {outcome.elapsed_s * 1e3:.2f} ms vs "
        f"{outcome.serial_elapsed_s * 1e3:.2f} ms if one device held everything"
    )
    print(
        f"  cluster effective throughput: "
        f"{outcome.effective_throughput(cluster.original_bytes) / 1e9:.1f} GB/s"
    )

    print("\nfull scans scale with shard count:")
    scan = cluster.scan_all(parse_query("ib_sm.x"))
    print(
        f"  4-shard scan: {scan.elapsed_s * 1e3:.2f} ms "
        f"({scan.serial_elapsed_s / scan.elapsed_s:.1f}x over serial)"
    )


if __name__ == "__main__":
    main()
