"""Compression study: why MithriLog carries its own algorithm (Section 5).

Measures all four codecs on all four corpora (the Table 5 experiment),
shows LZAH's hardware story via the decoder cycle model, and demonstrates
the newline-realignment trick that makes word-aligned compression work on
logs at all.

Run with::

    python examples/compression_study.py
"""

from repro.compression import (
    GzipCompressor,
    LZ4LikeCompressor,
    LZAHCompressor,
    LZRW1Compressor,
    SnappyLikeCompressor,
    compression_ratio,
)
from repro.compression.decoder_model import DecoderCycleModel
from repro.datasets import generator_for
from repro.params import LZAHParams
from repro.system.report import render_table


def main() -> None:
    names = ("BGL2", "Liberty2", "Spirit2", "Thunderbird")
    print("generating the four corpora (5,000 lines each)...")
    texts = {
        name: generator_for(name).generate_text(5_000) for name in names
    }

    codecs = [
        LZAHCompressor(),
        LZRW1Compressor(),
        LZ4LikeCompressor(),
        SnappyLikeCompressor(),
        GzipCompressor(),
    ]
    rows = [
        [codec.name] + [round(compression_ratio(codec, texts[n]), 2) for n in names]
        for codec in codecs
    ]
    print()
    print(render_table("Compression ratios (Table 5 experiment)", ["Algorithm", *names], rows))

    print("\nwhy LZAH: the hardware decoder emits one 16-byte word per cycle.")
    model = DecoderCycleModel()
    for name in names:
        count = model.count(LZAHCompressor().compress(texts[name]))
        print(
            f"  {name:<12} {count.cycles:>8,} cycles -> "
            f"{count.throughput_bytes_per_sec / 1e9:.2f} GB/s decompressed "
            f"(deterministic ceiling {model.deterministic_rate_bytes_per_sec() / 1e9:.1f})"
        )

    print("\nthe newline trick (Section 5): realign the window after '\\n'")
    plain = LZAHCompressor(LZAHParams(newline_realign=False))
    realigned = LZAHCompressor()
    for name in ("BGL2", "Thunderbird"):
        off = compression_ratio(plain, texts[name])
        on = compression_ratio(realigned, texts[name])
        print(f"  {name:<12} realign off: {off:.2f}x   on: {on:.2f}x")


if __name__ == "__main__":
    main()
