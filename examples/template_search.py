"""Template search: the paper's core workload (Sections 4.3 and 7.1).

Extracts a template library from a BGL2-like corpus with FT-tree, shows
how templates compile into the hardware's union-of-intersections query
format (including the higher-frequency-sibling negations of Section 4.3),
then runs several template queries *concurrently* on the filter engine —
the paper's point being that batching costs nothing.

Run with::

    python examples/template_search.py
"""

from repro import MithriLogSystem
from repro.datasets import generator_for
from repro.templates import FTTree, FTTreeParams


def main() -> None:
    print("generating a BGL2-like corpus (10,000 lines)...")
    lines = generator_for("BGL2").generate(10_000)

    print("extracting templates with FT-tree...")
    tree = FTTree.from_lines(
        lines,
        FTTreeParams(max_depth=10, prune_threshold=32, max_doc_frequency=0.9),
    )
    print(f"extracted {len(tree.templates)} templates; the five best-supported:")
    for template in tree.templates[:5]:
        print(f"  {template}")

    print("\ncompiled queries (note the sibling negations):")
    queries = [tree.template_query(t) for t in tree.templates[:4]]
    for template, query in zip(tree.templates[:4], queries):
        print(f"  T{template.template_id}: {query}")

    system = MithriLogSystem()
    system.ingest(lines)

    print("\nrunning all four template queries concurrently (one offload):")
    outcome = system.query(*queries)
    for template, count in zip(tree.templates[:4], outcome.per_query_counts):
        print(f"  T{template.template_id}: {count:,} matching lines")
    print(
        f"offloaded={outcome.stats.offloaded}; one pass over "
        f"{outcome.stats.candidate_pages} candidate pages took "
        f"{outcome.stats.elapsed_s * 1e3:.2f} ms (simulated)"
    )

    print("\nclassifying three fresh lines back to their templates:")
    for line in lines[:3]:
        template = tree.classify_line(line)
        label = f"T{template.template_id}" if template else "(unparsed)"
        print(f"  {label}: {line[:72].decode(errors='replace')}...")


if __name__ == "__main__":
    main()
