"""Real-time monitoring: the operational layer end to end.

A monitoring agent's life, minute by minute: log lines stream in with
WAL durability, snapshots fire on a time cadence, standing queries run
mid-stream (covering the un-persisted tail), and each era's matches are
summarised like a log UI's dashboard pane. At the end, a simulated crash
and recovery shows nothing acknowledged was lost.

Run with::

    python examples/realtime_monitoring.py
"""

import tempfile
from pathlib import Path

from repro import parse_query
from repro.analytics import aggregate_matches
from repro.datasets import generator_for
from repro.system.streaming import StreamingIngestor
from repro.system.wal import JournaledMithriLog


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="mithrilog-monitor-"))
    print(f"store: {workdir}")

    print("starting the collector (WAL-durable, snapshot every ~2 min)...")
    journaled = JournaledMithriLog(workdir)
    ingestor = StreamingIngestor(
        journaled.system, batch_lines=300, snapshot_every_s=120.0
    )
    alert_query = parse_query('"Failed" AND "password"')

    lines = generator_for("Liberty2").generate(12_000)
    epochs = [float(line.split()[1]) for line in lines]

    era = len(lines) // 3
    for round_number in range(3):
        chunk = slice(round_number * era, (round_number + 1) * era)
        journaled.wal.append(lines[chunk], epochs[chunk])
        ingestor.extend(lines[chunk], epochs[chunk])
        outcome = ingestor.query(alert_query)  # includes the pending tail
        print(
            f"\nera {round_number + 1}: {journaled.system.total_lines:,} lines "
            f"persisted, {ingestor.pending_lines} pending"
        )
        report = aggregate_matches(outcome.matched_lines, top_k=3)
        for text_line in report.render().splitlines():
            print("  " + text_line)

    ingestor.flush()
    print("\nsimulating a crash (no checkpoint was ever taken)...")
    recovered = JournaledMithriLog.recover(workdir)
    outcome = recovered.query(alert_query)
    print(
        f"recovered store answers identically: "
        f"{len(outcome.matched_lines):,} alert lines over "
        f"{recovered.system.total_lines:,} lines"
    )
    recovered.checkpoint()
    print(f"checkpointed; WAL now {recovered.wal.size_bytes} bytes")


if __name__ == "__main__":
    main()
