"""Anomaly detection on MithriLog output (Section 8's higher-order layer).

The full pipeline the paper sketches as future work, end to end:

1. ingest a Spirit2-like corpus with a *injected fault storm* into
   MithriLog,
2. extract the template library with FT-tree and tag every line with its
   template id using the wire-speed tagger,
3. build per-minute template count vectors,
4. fit a PCA subspace detector on the quiet prefix and flag the storm,
5. cluster the windows to show the storm forms its own tiny cluster.

Run with::

    python examples/anomaly_detection.py
"""

import numpy as np

from repro import MithriLogSystem
from repro.analytics import KMeans, PCAAnomalyDetector, count_windows
from repro.core.tagger import TemplateTagger
from repro.datasets import generator_for
from repro.templates import FTTree, FTTreeParams


def build_corpus() -> tuple[list[bytes], list[float], float]:
    """Normal traffic with a 2-minute EXT3 error storm injected."""
    lines = generator_for("Spirit2").generate(9_000)
    epochs = [float(line.split()[1]) for line in lines]
    storm_start = epochs[len(epochs) * 2 // 3]
    storm_lines = []
    storm_epochs = []
    for i in range(700):
        ts = storm_start + (120 * i / 700)
        storm_epochs.append(ts)
        storm_lines.append(
            (
                f"EXT3 {int(ts)} 2005.06.10 sn144 Jun 10 04:11:{i % 60:02d} "
                f"sn144/sn144 kernel: EXT3-fs error (device sd(8,{i % 16})): "
                f"ext3_find_entry: reading directory #{5000 + i} offset {i}"
            ).encode()
        )
    # splice the storm in at its time position
    cut = len(epochs) * 2 // 3
    lines = lines[:cut] + storm_lines + lines[cut:]
    epochs = epochs[:cut] + storm_epochs + epochs[cut:]
    order = np.argsort(epochs, kind="stable")
    return [lines[i] for i in order], [epochs[i] for i in order], storm_start


def main() -> None:
    print("building a corpus with an injected EXT3 error storm...")
    lines, epochs, storm_start = build_corpus()

    system = MithriLogSystem()
    system.ingest(lines, timestamps=epochs)
    print(f"ingested {len(lines):,} lines")

    print("extracting templates and tagging every line (wire-speed model)...")
    tree = FTTree.from_lines(
        lines, FTTreeParams(max_depth=10, prune_threshold=32, max_doc_frequency=0.9)
    )
    tagger = TemplateTagger.from_tree(tree)
    tags = [tagger.tag_line(line) for line in lines]
    tagged = sum(1 for t in tags if t is not None)
    print(
        f"  {len(tree.templates)} templates, {tagger.num_passes} accelerator "
        f"passes, {100 * tagged / len(tags):.0f}% of lines tagged"
    )

    window_s = 20.0
    matrix = count_windows(tags, epochs, window_s, len(tree.templates))
    storm_window = matrix.window_of(storm_start)
    print(f"  {matrix.num_windows} {window_s:.0f}-second windows "
          f"(storm begins in window {storm_window})")

    # train on the quiet windows before the storm, score everything
    detector = PCAAnomalyDetector().fit(matrix.counts[:storm_window])
    report = detector.detect(matrix.counts)
    flagged = report.anomalous_windows()
    print(f"\nPCA subspace detector ({detector.num_components} components):")
    print(f"  flagged windows: {flagged}")
    top = int(np.argmax(report.scores))
    print(
        f"  strongest anomaly: window {top} "
        f"(t={matrix.window_starts[top]:.0f}), score {report.scores[top]:.0f} "
        f"vs threshold {report.threshold:.1f}"
    )
    assert any(w >= storm_window for w in flagged), "the storm must be flagged"
    precision = sum(1 for w in flagged if w >= storm_window) / len(flagged)
    print(f"  {100 * precision:.0f}% of flags fall inside the storm era")

    # a complementary view: cluster windows by traffic mix ([36]-style
    # problem grouping); storm-era windows should separate from quiet ones
    print("\nclustering the windows by traffic mix (k=2):")
    result = KMeans(k=2, seed=0).fit(np.log1p(matrix.counts.astype(float)))
    normal_cluster = int(np.bincount(result.labels[:storm_window]).argmax())
    unusual = [
        int(w)
        for w in range(matrix.num_windows)
        if result.labels[w] != normal_cluster
    ]
    print(f"  cluster sizes: {result.cluster_sizes().tolist()}")
    print(f"  windows grouped apart from normal traffic: {unusual}")

    # a third lens: transition (workflow) surprise over the tag stream
    from repro.analytics import TransitionModel

    model = TransitionModel(num_templates=len(tree.templates))
    train_cut = next(i for i, t in enumerate(epochs) if t >= storm_start)
    model.fit(tags[:train_cut])
    normal_surprise = model.surprise(tags[: train_cut // 2])
    storm_surprise = model.surprise(tags[train_cut : train_cut + 500])
    print("\ntransition-model surprise (bits per transition):")
    print(f"  normal era {normal_surprise:.2f}, storm era {storm_surprise:.2f}")
    print("\nstorm detected and isolated.")


if __name__ == "__main__":
    main()
