"""Setup shim.

The execution environment has no network and no `wheel` package, so PEP 660
editable installs (which require bdist_wheel) fail. This shim lets
``pip install -e .`` fall back to the legacy setuptools develop path.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
