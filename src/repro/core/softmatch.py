"""Batch software-fallback matcher — vectorized ``Query`` semantics.

A query program that exceeds the engine's hardware provisioning (too
many intersection sets for the flag pairs, tokens that will not place in
the cuckoo table) runs in *software*: no compiled table exists, and the
reference scan path evaluates :meth:`repro.core.query.Query
.matches_tokens` per line — a Python-level loop over every token of
every line for every query. That is exactly the representation problem
the vectorized scan path exists to fix, and batched multi-query scans
are where it hurts most (they are also the scans most likely to exceed
provisioning).

:class:`SoftwareBatchMatcher` evaluates the same semantics over one
page's offset arrays (:class:`repro.core.vectokenizer.PageTokens`).
Query algebra reduces to boolean operations over per-line *facts*, one
per distinct ``(token, column)`` term:

- anywhere-fact ``(t, None)`` — line contains token ``t``;
- column-fact ``(t, c)`` — the line's token at position ``c`` is ``t``.

On the numpy backend each fact becomes a boolean line-vector built from
a handful of array comparisons (length mask, then one byte-compare per
token byte), and every query's verdict vector is an OR of ANDs over
those fact vectors — no per-line Python at all. The fallback backend
keeps a per-fact line-set via the same ``(length, first_byte)``
signature prefilter the offloaded kernel uses, then replays the boolean
structure only for lines that hit at least one fact.

The matcher is deliberately counter-free: the reference software path
touches no :class:`~repro.core.hashfilter.HashFilter` counters, so
neither does this one, and the differential suite pins its verdicts
byte-for-byte against ``matches_tokens``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.backend import numpy_or_none
from repro.core.query import Query

__all__ = ["SoftwareBatchMatcher"]


class SoftwareBatchMatcher:
    """Evaluates a tuple of queries per line over ``PageTokens`` arrays."""

    def __init__(self, queries: Sequence[Query]) -> None:
        self.queries = tuple(queries)
        fact_index: Dict[Tuple[bytes, Optional[int]], int] = {}
        structure = []
        for query in self.queries:
            isets = []
            for iset in query.intersections:
                terms = []
                for term in iset.terms:
                    key = (term.token, term.column)
                    index = fact_index.setdefault(key, len(fact_index))
                    terms.append((index, term.negative))
                isets.append(tuple(terms))
            structure.append(tuple(isets))
        #: Per query: tuple of intersection sets, each a tuple of
        #: ``(fact_index, negative)`` pairs.
        self.structure = tuple(structure)
        self.num_facts = len(fact_index)
        #: Verdict of a line where every fact is false (no term token
        #: present) — an intersection set matches it iff fully negated.
        self.default_verdict = tuple(
            any(all(negative for _, negative in terms) for terms in isets)
            for isets in self.structure
        )
        #: token -> [(fact_index, column)] for every distinct term token.
        self.token_facts: Dict[bytes, List[Tuple[int, Optional[int]]]] = {}
        for (token, column), index in fact_index.items():
            self.token_facts.setdefault(token, []).append((index, column))
        #: ``(length, first_byte)`` prefilter for the fallback backend.
        #: An empty term token never matches (page tokens are non-empty).
        self.signatures = frozenset(
            (len(token), token[0]) for token in self.token_facts if token
        )

    # -- evaluation --------------------------------------------------------

    def evaluate(self, page) -> list[tuple[bool, ...]]:
        """One verdict tuple per line, identical to ``matches_tokens``."""
        num_lines = page.num_lines
        if num_lines == 0:
            return []
        if self.num_facts == 0 or page.num_tokens == 0:
            return [self.default_verdict] * num_lines
        if page.backend == "numpy":
            return self._evaluate_numpy(page)
        return self._evaluate_fallback(page)

    def _evaluate_numpy(self, page) -> list[tuple[bool, ...]]:
        np = numpy_or_none()
        arr = np.frombuffer(page.buffer, dtype=np.uint8)
        token_starts = page.token_starts
        lengths = page.token_ends - token_starts
        token_lines = page.token_lines
        token_positions = page.token_positions
        num_lines = page.num_lines
        fact_true = np.zeros((self.num_facts, num_lines), dtype=bool)
        for token, fact_list in self.token_facts.items():
            length = len(token)
            if length == 0:
                continue
            sel = np.flatnonzero(lengths == length)
            if sel.size == 0:
                continue
            starts = token_starts[sel]
            ok = arr[starts] == token[0]
            for k in range(1, length):
                ok &= arr[starts + k] == token[k]
            matched = sel[ok]
            if matched.size == 0:
                continue
            for index, column in fact_list:
                if column is None:
                    fact_true[index, token_lines[matched]] = True
                else:
                    at_column = matched[token_positions[matched] == column]
                    if at_column.size:
                        fact_true[index, token_lines[at_column]] = True
        columns = []
        for isets in self.structure:
            query_vector = np.zeros(num_lines, dtype=bool)
            for terms in isets:
                iset_vector = np.ones(num_lines, dtype=bool)
                for index, negative in terms:
                    if negative:
                        iset_vector &= ~fact_true[index]
                    else:
                        iset_vector &= fact_true[index]
                query_vector |= iset_vector
            columns.append(query_vector)
        matrix = np.stack(columns, axis=1)
        return list(map(tuple, matrix.tolist()))

    def _evaluate_fallback(self, page) -> list[tuple[bool, ...]]:
        buffer = page.buffer
        token_starts = page.token_starts
        token_ends = page.token_ends
        token_lines = page.token_lines
        token_positions = page.token_positions
        signatures = self.signatures
        token_facts = self.token_facts
        fact_lines: list[set] = [set() for _ in range(self.num_facts)]
        hit_lines: set = set()
        for j in range(page.num_tokens):
            start = token_starts[j]
            if (token_ends[j] - start, buffer[start]) not in signatures:
                continue
            facts = token_facts.get(bytes(buffer[start : token_ends[j]]))
            if not facts:
                continue
            line = int(token_lines[j])
            position = int(token_positions[j])
            for index, column in facts:
                if column is None or column == position:
                    fact_lines[index].add(line)
                    hit_lines.add(line)
        verdicts = [self.default_verdict] * page.num_lines
        for line in hit_lines:
            verdicts[line] = tuple(
                any(
                    all(
                        (line in fact_lines[index]) != negative
                        for index, negative in terms
                    )
                    for terms in isets
                )
                for isets in self.structure
            )
        return verdicts
