"""Query algebra: unions of intersection sets of (optionally negated) terms.

This is the exact query class the hardware supports (Equation 1):

    (not A and B and C) or (not D and not E and F and G)

A :class:`Query` is a union of :class:`IntersectionSet`; each intersection
set is a conjunction of :class:`Term`, where a term is a token that must
(or, when ``negative``, must not) appear in the log line. A term may also
carry a ``column`` constraint — the prefix-tree extension of Section 4.3,
where a token must appear at a specific position in the line.

The module also provides :func:`parse_query`, a parser for a textual
boolean form (``"failed" AND NOT "pbs_mom:"``, with ``OR`` and
parentheses). Arbitrary boolean expressions are normalised into the
union-of-intersections form by De Morgan rewriting and distribution, which
is how host software would prepare a query for offload.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import cached_property
from typing import Sequence, Union

from repro.errors import QueryError, QueryParseError

#: Cap on DNF blowup during parsing; hardware supports 8 intersection sets,
#: software fallback somewhat more, but unbounded distribution is a bug.
MAX_INTERSECTIONS = 256

TokenLike = Union[str, bytes]


def _as_token(token: TokenLike) -> bytes:
    if isinstance(token, str):
        token = token.encode("utf-8")
    if not isinstance(token, bytes):
        raise QueryError(f"token must be str or bytes, got {type(token).__name__}")
    if not token:
        raise QueryError("empty token is not a valid query term")
    if b" " in token or b"\t" in token or b"\n" in token:
        raise QueryError(
            f"token {token!r} contains a delimiter; tokens are single words"
        )
    return token


@dataclass(frozen=True)
class Term:
    """One query term: a token, an optional negation, an optional column."""

    token: bytes
    negative: bool = False
    column: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "token", _as_token(self.token))
        if self.column is not None and self.column < 0:
            raise QueryError("column constraint must be non-negative")

    def negated(self) -> "Term":
        return Term(token=self.token, negative=not self.negative, column=self.column)

    def __str__(self) -> str:
        text = self.token.decode("utf-8", "replace")
        prefix = "NOT " if self.negative else ""
        suffix = f"@{self.column}" if self.column is not None else ""
        return f'{prefix}"{text}"{suffix}'


@dataclass(frozen=True)
class IntersectionSet:
    """A conjunction of terms; all must hold for a line to match."""

    terms: tuple[Term, ...]

    def __post_init__(self) -> None:
        if not self.terms:
            raise QueryError("an intersection set needs at least one term")
        object.__setattr__(self, "terms", tuple(self.terms))

    @classmethod
    def of(cls, *terms: Union[Term, TokenLike]) -> "IntersectionSet":
        """Convenience constructor: bare tokens become positive terms."""
        built = tuple(
            t if isinstance(t, Term) else Term(token=t) for t in terms
        )
        return cls(terms=built)

    @cached_property
    def positives(self) -> tuple[Term, ...]:
        return tuple(t for t in self.terms if not t.negative)

    @cached_property
    def negatives(self) -> tuple[Term, ...]:
        return tuple(t for t in self.terms if t.negative)

    @cached_property
    def is_contradictory(self) -> bool:
        """True when some token appears both positive and negative (with the
        same column constraint), making the set unsatisfiable."""
        seen = {(t.token, t.column) for t in self.positives}
        return any((t.token, t.column) in seen for t in self.negatives)

    def matches_tokens(self, tokens: Sequence[bytes]) -> bool:
        """Reference (software) semantics against a tokenized line."""
        for term in self.terms:
            if term.column is not None:
                present = (
                    term.column < len(tokens) and tokens[term.column] == term.token
                )
            else:
                present = term.token in tokens
            if present == term.negative:
                return False
        return True

    def __str__(self) -> str:
        return "(" + " AND ".join(str(t) for t in self.terms) + ")"


@dataclass(frozen=True)
class Query:
    """A union of intersection sets; any matching set matches the line.

    A query with zero intersection sets matches nothing (it arises when
    every branch of a parsed expression is contradictory).
    """

    intersections: tuple[IntersectionSet, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "intersections", tuple(self.intersections))
        if len(self.intersections) > MAX_INTERSECTIONS:
            raise QueryError(
                f"query has {len(self.intersections)} intersection sets; "
                f"the limit is {MAX_INTERSECTIONS}"
            )

    @classmethod
    def of(cls, *intersections: IntersectionSet) -> "Query":
        return cls(intersections=tuple(intersections))

    @classmethod
    def single(cls, *terms: Union[Term, TokenLike]) -> "Query":
        """One-intersection query from tokens/terms."""
        return cls(intersections=(IntersectionSet.of(*terms),))

    def simplified(self) -> "Query":
        """Drop contradictory intersection sets and duplicate terms."""
        kept = []
        seen: set[tuple[Term, ...]] = set()
        for iset in self.intersections:
            if iset.is_contradictory:
                continue
            unique = tuple(dict.fromkeys(iset.terms))
            if unique in seen:
                continue
            seen.add(unique)
            kept.append(IntersectionSet(terms=unique))
        return Query(intersections=tuple(kept))

    @cached_property
    def all_tokens(self) -> frozenset[bytes]:
        return frozenset(
            t.token for iset in self.intersections for t in iset.terms
        )

    @cached_property
    def positive_tokens(self) -> frozenset[bytes]:
        return frozenset(
            t.token
            for iset in self.intersections
            for t in iset.positives
        )

    def matches_tokens(self, tokens: Sequence[bytes]) -> bool:
        return any(iset.matches_tokens(tokens) for iset in self.intersections)

    def matches_line(self, line: bytes) -> bool:
        """Reference semantics against a raw log line."""
        from repro.core.tokenizer import split_tokens

        return self.matches_tokens(split_tokens(line))

    def union(self, other: "Query") -> "Query":
        """Join two queries for concurrent execution (Section 4's OR-join)."""
        return Query(intersections=self.intersections + other.intersections)

    def __or__(self, other: "Query") -> "Query":
        return self.union(other)

    def __str__(self) -> str:
        return " OR ".join(str(i) for i in self.intersections)


# ---------------------------------------------------------------------------
# Parser: boolean expression text -> Query (DNF)
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<lparen>\()
      | (?P<rparen>\))
      | (?P<quoted>"[^"]*"|'[^']*')
      | (?P<word>[^\s()]+)
    )""",
    re.VERBOSE,
)

_KEYWORDS = {"AND", "OR", "NOT"}


class _Lexer:
    def __init__(self, text: str) -> None:
        self.tokens = self._lex(text)
        self.pos = 0

    @staticmethod
    def _lex(text: str) -> list[tuple[str, str]]:
        out: list[tuple[str, str]] = []
        idx = 0
        while idx < len(text):
            match = _TOKEN_RE.match(text, idx)
            if match is None:
                break
            idx = match.end()
            if match.lastgroup == "lparen":
                out.append(("(", "("))
            elif match.lastgroup == "rparen":
                out.append((")", ")"))
            elif match.lastgroup == "quoted":
                out.append(("token", match.group("quoted")[1:-1]))
            else:
                word = match.group("word")
                if word.upper() in _KEYWORDS:
                    out.append((word.upper(), word))
                else:
                    out.append(("token", word))
        if text[idx:].strip():
            raise QueryParseError(f"cannot lex query near {text[idx:]!r}")
        return out

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise QueryParseError("unexpected end of query")
        self.pos += 1
        return token


# AST nodes: ("term", Term) | ("and", [nodes]) | ("or", [nodes]) | ("not", node)
_Node = tuple


def _parse_or(lexer: _Lexer) -> _Node:
    left = _parse_and(lexer)
    branches = [left]
    while lexer.peek() is not None and lexer.peek()[0] == "OR":
        lexer.next()
        branches.append(_parse_and(lexer))
    return ("or", branches) if len(branches) > 1 else left


def _parse_and(lexer: _Lexer) -> _Node:
    left = _parse_not(lexer)
    branches = [left]
    while lexer.peek() is not None and lexer.peek()[0] == "AND":
        lexer.next()
        branches.append(_parse_not(lexer))
    return ("and", branches) if len(branches) > 1 else left


def _parse_not(lexer: _Lexer) -> _Node:
    token = lexer.peek()
    if token is not None and token[0] == "NOT":
        lexer.next()
        return ("not", _parse_not(lexer))
    return _parse_atom(lexer)


def _parse_atom(lexer: _Lexer) -> _Node:
    kind, value = lexer.next()
    if kind == "(":
        node = _parse_or(lexer)
        closing = lexer.next()
        if closing[0] != ")":
            raise QueryParseError("expected ')'")
        return node
    if kind == "token":
        return ("term", Term(token=value))
    raise QueryParseError(f"unexpected {value!r} in query")


def _push_negations(node: _Node, negate: bool = False) -> _Node:
    kind = node[0]
    if kind == "term":
        return ("term", node[1].negated() if negate else node[1])
    if kind == "not":
        return _push_negations(node[1], not negate)
    children = [_push_negations(child, negate) for child in node[1]]
    if kind == "and":
        return ("or" if negate else "and", children)
    if kind == "or":
        return ("and" if negate else "or", children)
    raise QueryParseError(f"unknown node kind {kind!r}")


def _to_dnf(node: _Node) -> list[list[Term]]:
    kind = node[0]
    if kind == "term":
        return [[node[1]]]
    if kind == "or":
        out: list[list[Term]] = []
        for child in node[1]:
            out.extend(_to_dnf(child))
            if len(out) > MAX_INTERSECTIONS:
                raise QueryParseError("query explodes past the DNF size limit")
        return out
    if kind == "and":
        product: list[list[Term]] = [[]]
        for child in node[1]:
            branches = _to_dnf(child)
            product = [p + b for p in product for b in branches]
            if len(product) > MAX_INTERSECTIONS:
                raise QueryParseError("query explodes past the DNF size limit")
        return product
    raise QueryParseError(f"unknown node kind {kind!r}")


def parse_query(text: str) -> Query:
    """Parse a textual boolean query into union-of-intersections form.

    >>> q = parse_query('("failed" AND NOT "pbs_mom:") OR ciod')
    >>> len(q.intersections)
    2
    """
    lexer = _Lexer(text)
    if lexer.peek() is None:
        raise QueryParseError("empty query")
    node = _parse_or(lexer)
    if lexer.peek() is not None:
        raise QueryParseError(f"trailing input at {lexer.peek()[1]!r}")
    node = _push_negations(node)
    conjunctions = _to_dnf(node)
    intersections = tuple(
        IntersectionSet(terms=tuple(terms)) for terms in conjunctions
    )
    return Query(intersections=intersections).simplified()
