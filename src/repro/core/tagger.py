"""Wire-speed template-ID tagging (Section 8's ongoing work).

The paper's conclusion names "exploring wire-speed methods for tagging
each log line with template IDs" as the natural next step beyond
keep/drop filtering. The hardware already computes everything needed: the
per-intersection-set satisfaction bits of Figure 6. This module adds the
thin layer on top:

- each template's compiled query occupies one intersection set (flag
  pair), so one pass tags up to ``FLAG_PAIRS`` templates;
- a template library larger than the flag-pair budget runs in several
  passes, exactly as host software would reprogram the accelerator
  between scans;
- when several templates are satisfied (an FT-tree template can be a
  path prefix of another), the *most specific* one — most positive
  terms, ties to the lower id — wins, matching tree classification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.hashfilter import HashFilter, compile_queries
from repro.core.query import Query
from repro.core.tokenizer import split_tokens
from repro.errors import QueryError
from repro.params import CuckooParams


@dataclass(frozen=True)
class TaggedLine:
    """One line's tagging outcome."""

    line: bytes
    template_id: Optional[int]


@dataclass(frozen=True)
class _Pass:
    """One accelerator programming: up to FLAG_PAIRS templates."""

    filter: HashFilter
    template_ids: tuple[int, ...]
    specificity: tuple[int, ...]  # positive-term counts per query


class TemplateTagger:
    """Tags lines with template ids using the hash-filter hardware model."""

    def __init__(
        self,
        templates: Sequence[tuple[int, Query]],
        cuckoo_params: Optional[CuckooParams] = None,
        seed: int = 0,
    ) -> None:
        if not templates:
            raise QueryError("tagger needs at least one template query")
        for _tid, query in templates:
            if len(query.intersections) != 1:
                raise QueryError(
                    "template queries must be single intersection sets; "
                    f"got {len(query.intersections)}"
                )
        self.params = cuckoo_params if cuckoo_params is not None else CuckooParams()
        self._passes = self._compile_passes(list(templates), seed)

    @classmethod
    def from_tree(cls, tree, **kwargs) -> "TemplateTagger":
        """Build a tagger for every template of an FT-tree."""
        templates = [
            (t.template_id, tree.template_query(t)) for t in tree.templates
        ]
        return cls(templates, **kwargs)

    @property
    def num_passes(self) -> int:
        """Accelerator reprogrammings needed per scan of the data."""
        return len(self._passes)

    @property
    def num_templates(self) -> int:
        return sum(len(p.template_ids) for p in self._passes)

    def _compile_passes(
        self, templates: list[tuple[int, Query]], seed: int
    ) -> list[_Pass]:
        passes: list[_Pass] = []
        budget = self.params.flag_pairs
        for base in range(0, len(templates), budget):
            batch = templates[base : base + budget]
            passes.extend(self._compile_batch(batch, seed))
        return passes

    def _compile_batch(
        self, batch: list[tuple[int, Query]], seed: int
    ) -> list[_Pass]:
        """Compile one batch, riding out cuckoo placement failures.

        A dense batch (eight templates, a hundred-odd tokens) can fail
        placement even under the load-factor bound; host software retries
        with fresh hash seeds, and as a last resort splits the batch
        across extra passes — correctness is never at risk, only pass
        count.
        """
        from repro.errors import CapacityError, PlacementError

        for attempt in range(4):
            try:
                program = compile_queries(
                    [query for _tid, query in batch],
                    params=self.params,
                    seed=seed + attempt,
                )
            except (PlacementError, CapacityError):
                continue
            return [
                _Pass(
                    filter=HashFilter(program),
                    template_ids=tuple(tid for tid, _q in batch),
                    specificity=tuple(
                        len(query.intersections[0].positives)
                        for _tid, query in batch
                    ),
                )
            ]
        if len(batch) == 1:
            raise PlacementError(
                f"template {batch[0][0]} cannot be placed even alone"
            )
        half = len(batch) // 2
        return self._compile_batch(batch[:half], seed) + self._compile_batch(
            batch[half:], seed
        )

    def tag_line(self, line: bytes) -> Optional[int]:
        """The template id of one line, or ``None`` if nothing matches."""
        tokens = split_tokens(line)
        best: Optional[tuple[int, int]] = None  # (-specificity, template_id)
        for p in self._passes:
            verdicts = p.filter.evaluate_tokens(tokens)
            for hit, tid, spec in zip(verdicts, p.template_ids, p.specificity):
                if hit:
                    key = (-spec, tid)
                    if best is None or key < best:
                        best = key
        return None if best is None else best[1]

    def tag_lines(self, lines: Sequence[bytes]) -> list[TaggedLine]:
        """Tag a batch of lines (one simulated multi-pass scan)."""
        return [TaggedLine(line=line, template_id=self.tag_line(line)) for line in lines]

    def histogram(self, lines: Sequence[bytes]) -> dict[Optional[int], int]:
        """Template-id counts over a batch — the input higher-order
        analytics (Section 8) consume."""
        counts: dict[Optional[int], int] = {}
        for tagged in self.tag_lines(lines):
            counts[tagged.template_id] = counts.get(tagged.template_id, 0) + 1
        return counts
