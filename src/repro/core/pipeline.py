"""One token-filter pipeline (Section 4, Figure 3).

A pipeline is: an optional LZAH decompressor feeding a 16-byte datapath,
a round-robin scatter across eight tokenizer lanes, and a gather into two
hash filters (tokenizer lanes 0..3 feed filter 0, lanes 4..7 feed filter
1 in the prototype), preserving line order end to end.

The functional model processes real bytes and produces exactly the
verdicts the hardware would; the cycle accounting for the same dataflow
lives in :class:`repro.hw.perf.PipelineCycleModel` and can be queried via
:meth:`FilterPipeline.count_cycles`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.compression.lzah import LZAHCompressor
from repro.core.hashfilter import CompiledQuery, HashFilter
from repro.core.tokenizer import Tokenizer
from repro.params import PipelineParams


@dataclass
class PipelineResult:
    """Verdicts for the lines a pipeline processed, in input order."""

    verdicts: list[tuple[bool, ...]]
    lines: int
    tokens: int

    def kept_any(self) -> list[bool]:
        """Per line: did any concurrent query keep it?"""
        return [any(v) for v in self.verdicts]


class FilterPipeline:
    """Functional model of one filter pipeline."""

    def __init__(
        self,
        program: CompiledQuery,
        params: Optional[PipelineParams] = None,
        decompressor: Optional[LZAHCompressor] = None,
    ) -> None:
        self.params = params if params is not None else PipelineParams()
        self.program = program
        self.decompressor = decompressor
        self.lanes = [
            Tokenizer(self.params.datapath_bytes) for _ in range(self.params.tokenizers)
        ]
        self.filters = [
            HashFilter(program) for _ in range(self.params.hash_filters)
        ]
        self._lanes_per_filter = self.params.tokenizers // self.params.hash_filters

    def _filter_for_lane(self, lane: int) -> HashFilter:
        return self.filters[lane // self._lanes_per_filter]

    def process_lines(self, lines: Sequence[bytes]) -> PipelineResult:
        """Scatter lines round-robin across lanes, gather verdicts in order."""
        verdicts: list[tuple[bool, ...]] = []
        tokens = 0
        for index, line in enumerate(lines):
            lane = index % self.params.tokenizers
            words = self.lanes[lane].tokenize_line(line)
            hash_filter = self._filter_for_lane(lane)
            before = hash_filter.tokens_processed
            verdicts.append(hash_filter.evaluate_words(words))
            tokens += hash_filter.tokens_processed - before
        return PipelineResult(verdicts=verdicts, lines=len(lines), tokens=tokens)

    def process_compressed_page(self, page_payload: bytes) -> PipelineResult:
        """Decompress one stored page and filter its lines (Figure 3's
        decompressor hookup). Requires a decompressor to be attached."""
        if self.decompressor is None:
            raise ValueError("pipeline has no decompressor attached")
        text = self.decompressor.decompress(page_payload)
        return self.process_lines(text.splitlines())

    def count_cycles(self, lines: Sequence[bytes]):
        """Cycle count of this dataflow on ``lines`` (see repro.hw.perf)."""
        from repro.hw.perf import PipelineCycleModel

        return PipelineCycleModel(self.params).count_cycles(lines)
