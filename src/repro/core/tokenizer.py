"""Hardware tokenizer model (Section 4.1, Figure 4).

Each tokenizer ingests one log line, two bytes per cycle, and emits a
stream of datapath-aligned token words. A token longer than the datapath
width spans several words; each emitted word carries two flags:

- ``last_of_token`` — this word completes the current token,
- ``last_of_line`` — this word completes the line (set on the final word
  of the final token).

Words shorter than the datapath are zero-padded, which is the data
amplification Figure 13 measures. Tokens are maximal runs of
non-delimiter bytes; the delimiter set is space and tab (punctuation
stays attached to its token, matching the paper's examples such as
``pbs_mom:``).

The module-level :func:`split_tokens` is the single source of truth for
token boundaries; the query oracle, the performance model, the inverted
index and this hardware model all share it, so they cannot disagree about
what a token is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.params import DATAPATH_BYTES

#: Token delimiters: space and horizontal tab.
DELIMITERS = b" \t"

_DELIM_SET = frozenset(DELIMITERS)

#: Precomputed 256-entry delimiter table: maps tab onto space so one
#: C-level ``bytes.translate`` collapses the delimiter set to a single
#: split byte. Extending ``DELIMITERS`` only requires extending this map.
_DELIM_TRANSLATE = bytes.maketrans(b"\t", b" ")


def split_tokens(line: bytes) -> List[bytes]:
    """Split a log line into tokens on the delimiter set.

    Runs of delimiters produce no empty tokens. The trailing newline, if
    present, is not part of any token.

    This is the hot-path kernel: the entire scan pipeline (query oracle,
    inverted index, performance model, hardware model) funnels every line
    through it, so it stays on C-level bytes primitives — ``rstrip`` /
    ``translate`` with the precomputed delimiter table / ``split`` — and
    skips the translate copy when the line carries no tab at all.
    :func:`split_tokens_reference` is the byte-at-a-time specification it
    is tested against.
    """
    if not line:
        return []
    body = line.rstrip(b"\n")
    if b"\t" in body:
        body = body.translate(_DELIM_TRANSLATE)
    return [token for token in body.split(b" ") if token]


def split_tokens_reference(line: bytes) -> List[bytes]:
    """Byte-at-a-time reference for :func:`split_tokens`.

    This walks the line the way the hardware tokenizer's state machine
    does — one byte per step, cutting a token at every delimiter run —
    and exists purely as the equivalence oracle for the kernel above.
    """
    if not line:
        return []
    body = line.rstrip(b"\n")
    tokens: List[bytes] = []
    start: int | None = None
    for i, byte in enumerate(body):
        if byte in DELIMITERS:
            if start is not None:
                tokens.append(body[start:i])
                start = None
        elif start is None:
            start = i
    if start is not None:
        tokens.append(body[start:])
    return tokens


def tokenize_page(payload: bytes) -> tuple[List[bytes], List[List[bytes]]]:
    """Split one decompressed page into lines and per-line token lists.

    Batch kernel for the scan executor: the delimiter translate runs once
    over the whole page instead of once per line, and the returned lines
    are the *original* bytes (tabs preserved) so filtered output stays
    byte-identical with the per-line path. Line boundaries follow
    ``bytes.splitlines`` exactly, mirroring the device's FILTER mode.
    """
    raw_lines = payload.splitlines()
    if b"\t" in payload:
        translated = payload.translate(_DELIM_TRANSLATE).splitlines()
    else:
        translated = raw_lines
    # splitlines-produced lines carry no line terminator, so no rstrip
    token_lists = [
        [token for token in body.split(b" ") if token] for body in translated
    ]
    return raw_lines, token_lists


@dataclass(frozen=True)
class TokenWord:
    """One datapath word of tokenized output (Figure 4)."""

    data: bytes
    last_of_token: bool
    last_of_line: bool
    token_index: int
    useful_bytes: int

    def __post_init__(self) -> None:
        if self.useful_bytes > len(self.data):
            raise ValueError("useful_bytes exceeds word size")


class Tokenizer:
    """Functional model of one hardware tokenizer lane."""

    def __init__(self, datapath_bytes: int = DATAPATH_BYTES) -> None:
        if datapath_bytes <= 0:
            raise ValueError("datapath_bytes must be positive")
        self.datapath_bytes = datapath_bytes

    def tokenize_line(self, line: bytes) -> List[TokenWord]:
        """Emit the aligned token-word stream for one line.

        A line with no tokens (empty, or all delimiters) still emits one
        all-zero word flagged ``last_of_line`` so the downstream hash
        filter sees every line and keeps scatter/gather ordering intact.
        """
        return list(self.iter_words(line))

    def iter_words(self, line: bytes) -> Iterator[TokenWord]:
        w = self.datapath_bytes
        tokens = split_tokens(line)
        if not tokens:
            yield TokenWord(
                data=b"\0" * w,
                last_of_token=True,
                last_of_line=True,
                token_index=0,
                useful_bytes=0,
            )
            return
        for t_index, token in enumerate(tokens):
            last_token = t_index == len(tokens) - 1
            for off in range(0, len(token), w):
                piece = token[off : off + w]
                is_last_word = off + w >= len(token)
                yield TokenWord(
                    data=piece + b"\0" * (w - len(piece)),
                    last_of_token=is_last_word,
                    last_of_line=last_token and is_last_word,
                    token_index=t_index,
                    useful_bytes=len(piece),
                )

    def ingest_cycles(self, line: bytes, bytes_per_cycle: int = 2) -> int:
        """Cycles to ingest the line (including its newline) at the lane rate."""
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        total = len(line) + 1  # the newline terminator is ingested too
        return -(-total // bytes_per_cycle)


def reassemble_tokens(words: Iterator[TokenWord]) -> Iterator[tuple[bytes, bool]]:
    """Reverse of :meth:`Tokenizer.iter_words` for one line's word stream.

    Yields ``(token, last_of_line)`` pairs; multi-word tokens are joined
    from their pieces. This mirrors what the hash filter's front end does
    with the overflow comparisons.
    """
    pieces: list[bytes] = []
    for word in words:
        pieces.append(word.data[: word.useful_bytes])
        if word.last_of_token:
            yield b"".join(pieces), word.last_of_line
            pieces.clear()
    if pieces:
        raise ValueError("token-word stream ended mid-token")
