"""The multi-pipeline token filter engine.

:class:`TokenFilterEngine` is the host-facing object: give it one or more
queries (they run concurrently, joined by union per Section 4), then feed
it lines. It compiles the queries into a cuckoo program and runs them on
``num_pipelines`` functional pipelines; when compilation cannot fit the
hardware provisioning — too many intersection sets, overflow exhaustion
or cuckoo placement failure — it falls back to software evaluation, as
the paper prescribes (Section 4.2.1), unless the caller forbids it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.hashfilter import CompiledQuery, compile_queries
from repro.core.pipeline import FilterPipeline
from repro.core.query import Query
from repro.core.tokenizer import split_tokens
from repro.errors import CapacityError, PlacementError, QueryError
from repro.obs.metrics import get_registry
from repro.params import CuckooParams, PipelineParams


@dataclass
class EngineResult:
    """Filtering outcome for a batch of lines."""

    verdicts: list[tuple[bool, ...]]
    offloaded: bool
    num_queries: int

    @property
    def lines(self) -> int:
        return len(self.verdicts)

    def kept_any(self) -> list[bool]:
        return [any(v) for v in self.verdicts]

    def kept_indices(self, query: Optional[int] = None) -> list[int]:
        """Indices of kept lines, overall or for one concurrent query."""
        if query is None:
            return [i for i, v in enumerate(self.verdicts) if any(v)]
        return [i for i, v in enumerate(self.verdicts) if v[query]]

    def kept_count(self, query: Optional[int] = None) -> int:
        return len(self.kept_indices(query))


class TokenFilterEngine:
    """Host-facing filter engine: compile queries, then filter lines."""

    def __init__(
        self,
        num_pipelines: int = 4,
        cuckoo_params: Optional[CuckooParams] = None,
        pipeline_params: Optional[PipelineParams] = None,
        allow_software_fallback: bool = True,
        seed: int = 0,
    ) -> None:
        if num_pipelines <= 0:
            raise ValueError("need at least one pipeline")
        self.num_pipelines = num_pipelines
        self.cuckoo_params = cuckoo_params if cuckoo_params is not None else CuckooParams()
        self.pipeline_params = (
            pipeline_params if pipeline_params is not None else PipelineParams()
        )
        self.allow_software_fallback = allow_software_fallback
        self.seed = seed
        self._queries: tuple[Query, ...] = ()
        self._program: Optional[CompiledQuery] = None
        self._pipelines: list[FilterPipeline] = []
        registry = get_registry()
        if registry is not None:
            self._m_compiles = registry.counter(
                "mithrilog_pipeline_compiles_total",
                "Query compilations by execution mode",
                labelnames=("mode",),
            )
            self._m_lines_filtered = registry.counter(
                "mithrilog_pipeline_lines_filtered_total",
                "Lines evaluated by the filter engine",
            )
            self._m_lines_kept = registry.counter(
                "mithrilog_pipeline_lines_kept_total",
                "Lines that survived filtering",
            )
        else:
            self._m_compiles = None
            self._m_lines_filtered = None
            self._m_lines_kept = None

    # -- compilation -------------------------------------------------------

    def compile(self, *queries: Query) -> bool:
        """Program the engine with queries; returns True when offloaded.

        Falls back to software evaluation when hardware provisioning is
        exceeded (returns False) unless ``allow_software_fallback`` is off,
        in which case the placement/capacity error propagates.
        """
        if not queries:
            raise QueryError("compile needs at least one query")
        self._queries = tuple(queries)
        try:
            self._program = compile_queries(
                self._queries, params=self.cuckoo_params, seed=self.seed
            )
        except (PlacementError, CapacityError):
            if not self.allow_software_fallback:
                raise
            self._program = None
            self._pipelines = []
            if self._m_compiles is not None:
                self._m_compiles.inc(mode="software")
            return False
        self._pipelines = [
            FilterPipeline(self._program, self.pipeline_params)
            for _ in range(self.num_pipelines)
        ]
        if self._m_compiles is not None:
            self._m_compiles.inc(mode="hardware")
        return True

    @property
    def offloaded(self) -> bool:
        """True when the current queries run on the hardware model."""
        return self._program is not None

    @property
    def program(self) -> Optional[CompiledQuery]:
        return self._program

    @property
    def queries(self) -> tuple[Query, ...]:
        return self._queries

    def program_summary(self) -> dict:
        """Shape of the compiled program, for EXPLAIN reports.

        Deterministic in ``(queries, params, seed)``: the same inputs
        compile to the same mode and term counts, so the summary is safe
        inside golden-file plan comparisons.
        """
        self._require_compiled()
        isets = [iset for q in self._queries for iset in q.intersections]
        return {
            "queries": len(self._queries),
            "intersection_sets": len(isets),
            "positive_terms": sum(len(i.positives) for i in isets),
            "negative_terms": sum(len(i.negatives) for i in isets),
            "mode": "hardware" if self._program is not None else "software",
            "pipelines": self.num_pipelines,
        }

    def _require_compiled(self) -> None:
        if not self._queries:
            raise QueryError("no query compiled; call compile() first")

    # -- filtering ---------------------------------------------------------

    def filter_lines(self, lines: Sequence[bytes]) -> EngineResult:
        """Filter a batch of lines against the compiled queries.

        Lines are split into contiguous blocks across pipelines — the way
        pages from storage are distributed — and verdicts are gathered
        back in input order.
        """
        self._require_compiled()
        if self._program is None:
            verdicts = [
                tuple(q.matches_line(line) for q in self._queries)
                for line in lines
            ]
            result = EngineResult(
                verdicts=verdicts, offloaded=False, num_queries=len(self._queries)
            )
        else:
            block = -(-len(lines) // self.num_pipelines) if lines else 0
            verdicts = []
            for p_index, pipeline in enumerate(self._pipelines):
                chunk = lines[p_index * block : (p_index + 1) * block]
                if not chunk:
                    break
                verdicts.extend(pipeline.process_lines(chunk).verdicts)
            result = EngineResult(
                verdicts=verdicts, offloaded=True, num_queries=len(self._queries)
            )
        if self._m_lines_filtered is not None and result.lines:
            self._m_lines_filtered.inc(result.lines)
            kept = sum(1 for v in result.verdicts if any(v))
            if kept:
                self._m_lines_kept.inc(kept)
        return result

    def account_filtered(self, lines: int, kept: Optional[int] = None) -> None:
        """Bump the filtering metrics for lines evaluated elsewhere.

        The scan kernels return per-query verdicts directly, so the
        system no longer re-runs :meth:`filter_lines` over matched lines
        just to count them — this keeps the
        ``mithrilog_pipeline_lines_*`` metrics identical to what that
        recount used to record (matched lines are by definition kept).
        """
        if kept is None:
            kept = lines
        if self._m_lines_filtered is not None and lines:
            self._m_lines_filtered.inc(lines)
            if kept:
                self._m_lines_kept.inc(kept)

    def keep_line(self, line: bytes) -> bool:
        """Single-line predicate (any query keeps it).

        This is the form the storage device's filter hookup consumes
        (:meth:`repro.storage.device.MithriLogDevice.configure`). It
        evaluates through the compiled hash-filter program directly —
        the word-stream pipeline path is proven equivalent by the
        oracle-equivalence tests, and this path avoids materialising
        token words for every line.
        """
        self._require_compiled()
        if self._program is None:
            return any(q.matches_line(line) for q in self._queries)
        hash_filter = self._pipelines[0].filters[0]
        return any(hash_filter.evaluate_tokens(split_tokens(line)))

    def verdicts_for_token_lists(
        self, token_lists: Sequence[Sequence[bytes]]
    ) -> list[tuple[bool, ...]]:
        """Batch per-query verdicts for pre-tokenized lines.

        The scan executor's fast path: one verdict tuple per line, with
        the hardware path running the :meth:`HashFilter
        <repro.core.hashfilter.HashFilter.evaluate_token_lists>` batch
        kernel and the software fallback evaluating the query oracles per
        token list. Does not touch the filtering metrics — the system
        accounts matched lines once, the same way the per-line
        :meth:`keep_line` path does.
        """
        self._require_compiled()
        if self._program is None:
            return [
                tuple(q.matches_tokens(tokens) for q in self._queries)
                for tokens in token_lists
            ]
        hash_filter = self._pipelines[0].filters[0]
        return hash_filter.evaluate_token_lists(token_lists)
