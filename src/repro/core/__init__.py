"""The token filtering engine — MithriLog's primary contribution (Section 4).

Dataflow (Figure 3): decompressed log text is scattered line-by-line,
round-robin, across an array of tokenizers; tokens are gathered in the
same order by cuckoo-hash filters that evaluate them against a compiled
query; each line yields a keep/drop bit.

Public surface:

- :mod:`repro.core.query` — the union-of-intersections query algebra
  (Equation 1) with a boolean-expression parser and DNF conversion.
- :mod:`repro.core.tokenizer` — the hardware tokenizer model (Figure 4).
- :mod:`repro.core.cuckoo` — the query-encoding cuckoo hash (Figure 5).
- :mod:`repro.core.hashfilter` — bitmap-based evaluation (Figure 6).
- :mod:`repro.core.pipeline` — one filter pipeline (Figure 3).
- :mod:`repro.core.engine` — the multi-pipeline engine with query
  compilation, concurrent-query support and software fallback.
- :mod:`repro.core.backend` — scan backend/kernel selection (numpy vs
  pure-Python fallback; vectorized vs reference kernel).
- :mod:`repro.core.vectokenizer` — the offset-array tokenizer feeding
  the vectorized scan kernel.
"""

from repro.core.backend import (
    BackendUnavailableError,
    available_backends,
    resolve_backend,
    resolve_kernel,
)
from repro.core.engine import EngineResult, TokenFilterEngine
from repro.core.query import IntersectionSet, Query, Term, parse_query
from repro.core.tokenizer import Tokenizer, TokenWord, split_tokens
from repro.core.vectokenizer import PageTokens, tokenize_page_offsets

__all__ = [
    "BackendUnavailableError",
    "EngineResult",
    "IntersectionSet",
    "PageTokens",
    "Query",
    "Term",
    "TokenFilterEngine",
    "TokenWord",
    "Tokenizer",
    "available_backends",
    "parse_query",
    "resolve_backend",
    "resolve_kernel",
    "split_tokens",
    "tokenize_page_offsets",
]
