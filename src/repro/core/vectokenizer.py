"""Offset-array page tokenizer — the vectorized scan path's front end.

:func:`repro.core.tokenizer.tokenize_page` materialises one ``bytes``
object per token — millions of small allocations per scan. This module
produces the same information as flat **offset/length arrays** over the
decompressed page buffer instead: line spans, token spans, the line each
token belongs to, and its position within that line. Nothing is copied
out of the buffer until a token is actually needed as ``bytes`` (a hash
-filter candidate) or a line is actually kept.

Two backends produce identical arrays (``repro.core.backend``):

- **numpy** — boolean delimiter masks over an ``np.frombuffer`` view of
  the page (zero-copy even from a decode-arena ``memoryview``), token
  boundaries from mask edges, line membership from a ``searchsorted``
  against newline positions.
- **fallback** — C-level ``bytes.find``/``split`` bookkeeping that emits
  plain Python lists. Used when numpy is absent; also the cross-check
  the differential suite compares the numpy arrays against.

Line semantics follow ``bytes.splitlines`` exactly. The vector fast
paths assume ``\\n``-terminated text (what the ingest path stores); a
page containing ``\\r`` takes a scalar walk that reproduces the full
``\\r``/``\\n``/``\\r\\n`` terminator set, so equivalence holds on
arbitrary bytes, not just well-formed logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.backend import numpy_or_none, resolve_backend
from repro.core.tokenizer import _DELIM_TRANSLATE, split_tokens

__all__ = ["PageTokens", "tokenize_page_offsets"]

_NL = 0x0A
_CR = 0x0D
_SPACE = 0x20
_TAB = 0x09


@dataclass
class PageTokens:
    """One page's lines and tokens as flat offset arrays.

    All offsets index ``buffer``. ``line_starts[i]:line_ends[i]`` is the
    *raw* line (tabs preserved, no terminator) — slicing it yields
    exactly ``buffer.splitlines()[i]``. ``token_starts[j]:token_ends[j]``
    is one token; ``token_lines[j]`` is its line index and
    ``token_positions[j]`` its position within that line (the value the
    hash filter checks column constraints against).

    Arrays are numpy ``int64``/``uint8``-derived on the numpy backend
    and plain lists on the fallback — consumers index them uniformly.
    """

    buffer: "bytes | memoryview"
    line_starts: Sequence[int]
    line_ends: Sequence[int]
    token_starts: Sequence[int]
    token_ends: Sequence[int]
    token_lines: Sequence[int]
    token_positions: Sequence[int]
    backend: str = "fallback"

    @property
    def num_lines(self) -> int:
        return len(self.line_starts)

    @property
    def num_tokens(self) -> int:
        return len(self.token_starts)

    def line_bytes(self, i: int) -> bytes:
        """Raw bytes of line ``i`` (terminator stripped, tabs intact)."""
        return bytes(self.buffer[int(self.line_starts[i]) : int(self.line_ends[i])])

    def token_bytes(self, j: int) -> bytes:
        return bytes(
            self.buffer[int(self.token_starts[j]) : int(self.token_ends[j])]
        )

    def to_token_lists(self) -> tuple[List[bytes], List[List[bytes]]]:
        """Re-materialise ``(raw_lines, token_lists)``.

        The exact structure :func:`repro.core.tokenizer.tokenize_page`
        returns — the bridge the differential suite equates the two
        representations over. Not a hot path.
        """
        raw_lines = [self.line_bytes(i) for i in range(self.num_lines)]
        token_lists: List[List[bytes]] = [[] for _ in range(self.num_lines)]
        for j in range(self.num_tokens):
            token_lists[int(self.token_lines[j])].append(self.token_bytes(j))
        return raw_lines, token_lists


def tokenize_page_offsets(
    payload: "bytes | bytearray | memoryview",
    backend: Optional[str] = None,
) -> PageTokens:
    """Tokenize one decompressed page into offset arrays.

    ``payload`` may be a ``memoryview`` into a reusable decode arena —
    the numpy backend reads it zero-copy; the fallback materialises one
    ``bytes`` per page (which it needs for C-level ``find``/``split``
    anyway). The result must be fully consumed before the arena is
    reused for the next page.
    """
    backend = resolve_backend(backend)
    if backend == "numpy":
        tokens = _tokenize_numpy(payload)
        if tokens is not None:
            return tokens
        # a page carrying \r takes the exact-terminator scalar walk; its
        # arrays are plain lists, so it is labelled (and consumed as)
        # fallback regardless of the requested backend
    data = payload if isinstance(payload, bytes) else bytes(payload)
    if b"\r" in data:
        return _tokenize_generic(data, "fallback")
    return _tokenize_fallback(data, "fallback")


# -- numpy backend ---------------------------------------------------------


def _tokenize_numpy(payload) -> Optional[PageTokens]:
    """Mask-based tokenization; ``None`` when the page needs the \\r walk."""
    np = numpy_or_none()
    arr = np.frombuffer(payload, dtype=np.uint8)
    n = arr.size
    empty = np.empty(0, dtype=np.int64)
    if n == 0:
        return PageTokens(
            buffer=payload,
            line_starts=empty, line_ends=empty,
            token_starts=empty, token_ends=empty,
            token_lines=empty, token_positions=empty,
            backend="numpy",
        )
    if bool((arr == _CR).any()):
        return None

    is_nl = arr == _NL
    nl_pos = np.flatnonzero(is_nl)
    line_starts = np.concatenate((np.zeros(1, dtype=np.int64), nl_pos + 1))
    line_ends = np.concatenate((nl_pos, np.array([n], dtype=np.int64)))
    if line_starts[-1] == n:  # splitlines yields no trailing empty line
        line_starts = line_starts[:-1]
        line_ends = line_ends[:-1]

    tok = ~(is_nl | (arr == _SPACE) | (arr == _TAB))
    if not bool(tok.any()):
        return PageTokens(
            buffer=payload,
            line_starts=line_starts, line_ends=line_ends,
            token_starts=empty, token_ends=empty,
            token_lines=empty, token_positions=empty,
            backend="numpy",
        )
    prev = np.empty_like(tok)
    prev[0] = False
    prev[1:] = tok[:-1]
    nxt = np.empty_like(tok)
    nxt[-1] = False
    nxt[:-1] = tok[1:]
    token_starts = np.flatnonzero(tok & ~prev)
    token_ends = np.flatnonzero(tok & ~nxt) + 1
    # tokens contain no newline byte, so a token's line index is simply
    # how many newlines precede it
    token_lines = np.searchsorted(nl_pos, token_starts, side="left")
    line_change = np.empty(token_lines.shape, dtype=bool)
    line_change[0] = True
    line_change[1:] = token_lines[1:] != token_lines[:-1]
    first_of_line = np.flatnonzero(line_change)
    group = np.cumsum(line_change) - 1
    token_positions = np.arange(token_lines.size, dtype=np.int64) - first_of_line[group]
    return PageTokens(
        buffer=payload,
        line_starts=line_starts, line_ends=line_ends,
        token_starts=token_starts.astype(np.int64, copy=False),
        token_ends=token_ends.astype(np.int64, copy=False),
        token_lines=token_lines.astype(np.int64, copy=False),
        token_positions=token_positions,
        backend="numpy",
    )


# -- fallback backend ------------------------------------------------------


def _append_line_tokens(
    data: bytes,
    start: int,
    end: int,
    line_index: int,
    token_starts: list,
    token_ends: list,
    token_lines: list,
    token_positions: list,
) -> None:
    """Offsets of the tokens in ``data[start:end]`` (one line's body)."""
    body = data[start:end]
    if b"\t" in body:
        body = body.translate(_DELIM_TRANSLATE)
    offset = 0
    position = 0
    for piece in body.split(b" "):
        if piece:
            token_starts.append(start + offset)
            token_ends.append(start + offset + len(piece))
            token_lines.append(line_index)
            token_positions.append(position)
            position += 1
        offset += len(piece) + 1


def _tokenize_fallback(data: bytes, backend: str) -> PageTokens:
    """Offset bookkeeping over ``find``/``split`` (no ``\\r`` in data)."""
    line_starts: list[int] = []
    line_ends: list[int] = []
    token_starts: list[int] = []
    token_ends: list[int] = []
    token_lines: list[int] = []
    token_positions: list[int] = []
    find = data.find
    n = len(data)
    pos = 0
    line_index = 0
    while pos < n:
        nl = find(b"\n", pos)
        end = n if nl == -1 else nl
        line_starts.append(pos)
        line_ends.append(end)
        _append_line_tokens(
            data, pos, end, line_index,
            token_starts, token_ends, token_lines, token_positions,
        )
        line_index += 1
        pos = end + 1
    return PageTokens(
        buffer=data,
        line_starts=line_starts, line_ends=line_ends,
        token_starts=token_starts, token_ends=token_ends,
        token_lines=token_lines, token_positions=token_positions,
        backend=backend,
    )


def _tokenize_generic(data: bytes, backend: str) -> PageTokens:
    """Exact ``bytes.splitlines`` walk for pages containing ``\\r``.

    Rare in real logs; exists so equivalence with the reference path
    holds on *arbitrary* byte strings (the hypothesis suite feeds some).
    """
    line_starts: list[int] = []
    line_ends: list[int] = []
    token_starts: list[int] = []
    token_ends: list[int] = []
    token_lines: list[int] = []
    token_positions: list[int] = []
    n = len(data)
    pos = 0
    line_index = 0
    while pos < n:
        a = data.find(b"\n", pos)
        b = data.find(b"\r", pos)
        if a == -1:
            cut = b
        elif b == -1:
            cut = a
        else:
            cut = a if a < b else b
        end = n if cut == -1 else cut
        line_starts.append(pos)
        line_ends.append(end)
        _append_line_tokens(
            data, pos, end, line_index,
            token_starts, token_ends, token_lines, token_positions,
        )
        line_index += 1
        if cut == -1:
            pos = n
        elif data[cut] == _CR and cut + 1 < n and data[cut + 1] == _NL:
            pos = cut + 2
        else:
            pos = cut + 1
    return PageTokens(
        buffer=data,
        line_starts=line_starts, line_ends=line_ends,
        token_starts=token_starts, token_ends=token_ends,
        token_lines=token_lines, token_positions=token_positions,
        backend=backend,
    )


def _self_check(payload: bytes) -> bool:
    """Debug helper: offsets agree with the reference tokenizer."""
    page = tokenize_page_offsets(payload)
    raw_lines, token_lists = page.to_token_lists()
    return raw_lines == payload.splitlines() and token_lists == [
        split_tokens(line) for line in raw_lines
    ]
