"""Query-encoding cuckoo hash table (Section 4.2, Figure 5).

Queries are handed to the accelerator as a cuckoo hash table: each row
stores a token (16 bytes in-slot, remainder in an overflow table), plus an
array of (valid, negative) flag pairs — one pair per intersection set the
query uses. Cuckoo hashing gives two candidate rows per token, so lookups
are two Block-RAM reads, and placement statistically succeeds up to a 0.5
load factor; beyond that the query cannot be offloaded and software must
take over (:class:`repro.errors.PlacementError`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CapacityError, PlacementError
from repro.params import CuckooParams


@dataclass
class FlagPair:
    """One (valid, negative) pair: this token's role in one intersection set."""

    valid: bool = False
    negative: bool = False


@dataclass
class CuckooEntry:
    """One hash-table row: a token plus its per-intersection-set flags."""

    token: bytes
    flags: list[FlagPair]
    column: Optional[int] = None

    def overflow_rows_needed(self, slot_bytes: int) -> int:
        """Overflow-table rows this token consumes beyond its slot."""
        if len(self.token) <= slot_bytes:
            return 0
        excess = len(self.token) - slot_bytes
        return -(-excess // slot_bytes)


class CuckooHashTable:
    """A two-hash-function cuckoo table storing query terms."""

    def __init__(self, params: Optional[CuckooParams] = None, seed: int = 0) -> None:
        self.params = params if params is not None else CuckooParams()
        self.seed = seed
        self._rows: list[Optional[CuckooEntry]] = [None] * self.params.rows
        self._overflow_used = 0

    # -- hashing -----------------------------------------------------------

    def _hash(self, token: bytes, which: int) -> int:
        digest = hashlib.blake2b(
            token,
            digest_size=8,
            salt=which.to_bytes(8, "little"),
            key=self.seed.to_bytes(8, "little"),
        ).digest()
        return int.from_bytes(digest, "little") & (self.params.rows - 1)

    def candidate_rows(self, token: bytes) -> tuple[int, int]:
        """The two rows where ``token`` may live."""
        return self._hash(token, 0), self._hash(token, 1)

    # -- state -------------------------------------------------------------

    @property
    def occupied(self) -> int:
        return sum(1 for row in self._rows if row is not None)

    @property
    def load_factor(self) -> float:
        return self.occupied / self.params.rows

    @property
    def overflow_used(self) -> int:
        return self._overflow_used

    def entry_at(self, row: int) -> Optional[CuckooEntry]:
        return self._rows[row]

    def entries(self) -> list[tuple[int, CuckooEntry]]:
        return [(i, e) for i, e in enumerate(self._rows) if e is not None]

    # -- lookup ------------------------------------------------------------

    def lookup(self, token: bytes) -> Optional[tuple[int, CuckooEntry]]:
        """Find a token; at most one of the two candidate rows can match."""
        for row in self.candidate_rows(token):
            entry = self._rows[row]
            if entry is not None and entry.token == token:
                return row, entry
        return None

    # -- insertion ---------------------------------------------------------

    def add_term(
        self,
        token: bytes,
        iset_index: int,
        negative: bool,
        column: Optional[int] = None,
    ) -> int:
        """Record that ``token`` participates in intersection set ``iset_index``.

        Returns the row the token occupies. Raises
        :class:`repro.errors.CapacityError` when the flag-pair, load-factor
        or overflow provisioning is exceeded, and
        :class:`repro.errors.PlacementError` when cuckoo displacement
        cannot place the token.
        """
        if not 0 <= iset_index < self.params.flag_pairs:
            raise CapacityError(
                f"intersection set {iset_index} exceeds the "
                f"{self.params.flag_pairs} provisioned flag pairs"
            )
        found = self.lookup(token)
        if found is not None:
            row, entry = found
            if entry.column != column:
                raise PlacementError(
                    f"token {token!r} used with conflicting column constraints "
                    f"({entry.column} vs {column}); one entry has one column field"
                )
            pair = entry.flags[iset_index]
            if pair.valid and pair.negative != negative:
                raise PlacementError(
                    f"token {token!r} is both positive and negative in "
                    f"intersection set {iset_index}"
                )
            pair.valid = True
            pair.negative = negative
            return row
        entry = CuckooEntry(
            token=token,
            flags=[FlagPair() for _ in range(self.params.flag_pairs)],
            column=column,
        )
        entry.flags[iset_index] = FlagPair(valid=True, negative=negative)
        self._reserve_overflow(entry)
        if (self.occupied + 1) / self.params.rows > self.params.max_load_factor:
            raise PlacementError(
                f"inserting {token!r} would push load factor past "
                f"{self.params.max_load_factor}; query too large to offload"
            )
        return self._place(entry)

    def _reserve_overflow(self, entry: CuckooEntry) -> None:
        needed = entry.overflow_rows_needed(self.params.slot_bytes)
        if self._overflow_used + needed > self.params.overflow_rows:
            raise CapacityError(
                f"token {entry.token!r} needs {needed} overflow rows; only "
                f"{self.params.overflow_rows - self._overflow_used} remain"
            )
        self._overflow_used += needed

    def _place(self, entry: CuckooEntry) -> int:
        """Cuckoo displacement: insert, evicting residents to their alternates."""
        original = entry.token
        target = self._hash(entry.token, 0)
        for _ in range(self.params.max_kicks):
            resident = self._rows[target]
            self._rows[target] = entry
            if resident is None:
                # every entry always sits at one of its two candidate rows,
                # so the original token is findable after any kick chain
                found = self.lookup(original)
                assert found is not None
                return found[0]
            # move the evicted entry to its alternate row
            h0, h1 = self.candidate_rows(resident.token)
            target = h1 if target == h0 else h0
            entry = resident
        raise PlacementError(
            f"cuckoo displacement exceeded {self.params.max_kicks} kicks; "
            "query cannot be offloaded"
        )
