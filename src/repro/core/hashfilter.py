"""Hash filter: bitmap-based query evaluation (Section 4.2.3, Figure 6).

A query — or several queries joined by union — is compiled into a
:class:`CompiledQuery`: a cuckoo table whose flag pairs encode each
intersection set, one *query bitmap* per intersection set (bits of the
rows holding that set's positive terms), and a map from intersection set
to owning query so concurrent queries get separate verdicts.

Per line, the filter keeps one live bitmap and one violation flag per
intersection set. Each token is looked up; on a match, valid+negative
flags mark the set violated, valid+positive flags set the matched row's
bit. At end of line a set is satisfied iff it is not violated and its
bitmap equals the query bitmap exactly; a line is kept for a query iff
any of that query's sets is satisfied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.core.cuckoo import CuckooHashTable
from repro.core.query import Query
from repro.core.tokenizer import TokenWord, reassemble_tokens
from repro.errors import CapacityError
from repro.params import CuckooParams

#: Sentinel distinguishing "not yet cached" from a cached table miss
#: (``None``) in the batch kernel's effect-cache probe.
_UNCACHED = object()


@dataclass(frozen=True)
class CompiledQuery:
    """A union of queries encoded for the hardware filter."""

    table: CuckooHashTable
    query_bitmaps: tuple[int, ...]
    iset_to_query: tuple[int, ...]
    num_queries: int

    def __post_init__(self) -> None:
        # the table is immutable once compiled, so lookups are cacheable;
        # log corpora repeat tokens heavily, making this cache very hot
        object.__setattr__(self, "_lookup_cache", {})
        object.__setattr__(self, "_effect_cache", {})

    def cached_lookup(self, token: bytes):
        cache = self._lookup_cache
        try:
            return cache[token]
        except KeyError:
            result = self.table.lookup(token)
            if len(cache) < 1 << 16:
                cache[token] = result
            return result

    def token_effect(
        self, token: bytes
    ) -> Optional[tuple[int, tuple[tuple[int, int], ...], Optional[int]]]:
        """The filter-state update one token triggers, fully precomputed.

        ``None`` for tokens outside the table (the overwhelmingly common
        case). Otherwise ``(violate_mask, bit_updates, column)``: a
        bitmask over intersection sets this token violates, the
        ``(iset_index, row_bit)`` pairs it satisfies, and the positional
        constraint (``None`` when unconstrained). This flattens the
        per-token flag-pair loop of :meth:`LineEvaluator.feed` into data
        the batch kernel consumes with one dict probe per token.
        """
        cache = self._effect_cache
        try:
            return cache[token]
        except KeyError:
            hit = self.cached_lookup(token)
            if hit is None:
                effect = None
            else:
                row, entry = hit
                violate_mask = 0
                bit_updates = []
                for iset_index, pair in enumerate(entry.flags):
                    if not pair.valid:
                        continue
                    if pair.negative:
                        violate_mask |= 1 << iset_index
                    else:
                        bit_updates.append((iset_index, 1 << row))
                effect = (violate_mask, tuple(bit_updates), entry.column)
            if len(cache) < 1 << 16:
                cache[token] = effect
            return effect

    def signatures(self) -> frozenset:
        """``(length, first_byte)`` signatures of every table token.

        The vectorized kernel's pre-filter: a page token whose signature
        is not in this set provably misses the table, so only signature
        hits are materialised as ``bytes`` and probed. Cached — the table
        is immutable once compiled.
        """
        cached = getattr(self, "_signatures", None)
        if cached is None:
            cached = frozenset(
                (len(entry.token), entry.token[0])
                for _row, entry in self.table.entries()
                if entry.token
            )
            object.__setattr__(self, "_signatures", cached)
        return cached

    def default_verdict(self) -> tuple[bool, ...]:
        """Per-query verdict of a line whose tokens all miss the table.

        Such a line has zero violations and all-zero bitmaps, so query
        ``q`` keeps it iff ``q`` owns an intersection set whose query
        bitmap is zero (e.g. a pure-negative set). Cached; the vectorized
        kernel assigns it to every line with no signature hits.
        """
        cached = getattr(self, "_default_verdict", None)
        if cached is None:
            verdicts = [False] * self.num_queries
            for k, bitmap in enumerate(self.query_bitmaps):
                if bitmap == 0:
                    verdicts[self.iset_to_query[k]] = True
            cached = tuple(verdicts)
            object.__setattr__(self, "_default_verdict", cached)
        return cached

    @property
    def num_isets(self) -> int:
        return len(self.query_bitmaps)

    def describe(self) -> str:
        return (
            f"CompiledQuery({self.num_queries} queries, {self.num_isets} "
            f"intersection sets, {self.table.occupied} tokens, load factor "
            f"{self.table.load_factor:.2f})"
        )


def compile_queries(
    queries: Sequence[Query],
    params: Optional[CuckooParams] = None,
    seed: int = 0,
) -> CompiledQuery:
    """Encode one or more queries into a single cuckoo table.

    Multiple queries execute concurrently by joining their intersection
    sets with unions (Section 4); the per-set ownership map keeps their
    verdicts separate. Raises :class:`repro.errors.CapacityError` when the
    combined intersection sets exceed the provisioned flag pairs, and
    :class:`repro.errors.PlacementError` when cuckoo placement fails.
    """
    params = params if params is not None else CuckooParams()
    total_isets = sum(len(q.intersections) for q in queries)
    if total_isets == 0:
        raise CapacityError("no intersection sets to compile")
    if total_isets > params.flag_pairs:
        raise CapacityError(
            f"{total_isets} intersection sets exceed the {params.flag_pairs} "
            "provisioned flag pairs"
        )
    table = CuckooHashTable(params=params, seed=seed)
    iset_to_query: list[int] = []
    k = 0
    for q_index, query in enumerate(queries):
        for iset in query.intersections:
            for term in iset.terms:
                table.add_term(
                    term.token, k, negative=term.negative, column=term.column
                )
            iset_to_query.append(q_index)
            k += 1
    bitmaps = [0] * total_isets
    for row, entry in table.entries():
        for iset_index, pair in enumerate(entry.flags):
            if pair.valid and not pair.negative:
                bitmaps[iset_index] |= 1 << row
    return CompiledQuery(
        table=table,
        query_bitmaps=tuple(bitmaps),
        iset_to_query=tuple(iset_to_query),
        num_queries=len(queries),
    )


class LineEvaluator:
    """Per-line filter state: N live bitmaps plus N violation flags."""

    __slots__ = ("program", "bitmaps", "violated")

    def __init__(self, program: CompiledQuery) -> None:
        self.program = program
        self.bitmaps = [0] * program.num_isets
        self.violated = [False] * program.num_isets

    def feed(self, token: bytes, position: int) -> None:
        """Process one token at line position ``position``."""
        hit = self.program.cached_lookup(token)
        if hit is None:
            return
        row, entry = hit
        if entry.column is not None and position != entry.column:
            return
        for iset_index, pair in enumerate(entry.flags):
            if not pair.valid:
                continue
            if pair.negative:
                self.violated[iset_index] = True
            else:
                self.bitmaps[iset_index] |= 1 << row

    def iset_verdicts(self) -> list[bool]:
        """Satisfaction of each intersection set at end of line."""
        return [
            not self.violated[k] and self.bitmaps[k] == self.program.query_bitmaps[k]
            for k in range(self.program.num_isets)
        ]

    def query_verdicts(self) -> tuple[bool, ...]:
        """Keep/drop per concurrent query: OR over its intersection sets."""
        verdicts = [False] * self.program.num_queries
        for k, satisfied in enumerate(self.iset_verdicts()):
            if satisfied:
                verdicts[self.program.iset_to_query[k]] = True
        return tuple(verdicts)


class HashFilter:
    """Evaluates token-word streams against a compiled query.

    This is the gather side of a pipeline: it consumes the aligned
    :class:`repro.core.tokenizer.TokenWord` stream (reassembling multi-word
    tokens through the overflow path) and emits one verdict tuple per line.
    """

    def __init__(self, program: CompiledQuery) -> None:
        self.program = program
        self.lines_processed = 0
        self.tokens_processed = 0

    def evaluate_words(self, words: Iterable[TokenWord]) -> tuple[bool, ...]:
        """Evaluate one line's word stream; returns per-query verdicts."""
        evaluator = LineEvaluator(self.program)
        position = 0
        for token, _last in reassemble_tokens(iter(words)):
            if token:  # the all-zero word of a token-less line carries nothing
                evaluator.feed(token, position)
                self.tokens_processed += 1
            position += 1
        self.lines_processed += 1
        return evaluator.query_verdicts()

    def evaluate_tokens(self, tokens: Sequence[bytes]) -> tuple[bool, ...]:
        """Evaluate a pre-split token list (software-path convenience)."""
        evaluator = LineEvaluator(self.program)
        for position, token in enumerate(tokens):
            evaluator.feed(token, position)
        self.lines_processed += 1
        self.tokens_processed += len(tokens)
        return evaluator.query_verdicts()

    def evaluate_token_lists(
        self, token_lists: Sequence[Sequence[bytes]]
    ) -> list[tuple[bool, ...]]:
        """Batch kernel: one verdict tuple per pre-split line.

        Semantically identical to calling :meth:`evaluate_tokens` per
        line (the equivalence suite pins this down), but without per-line
        evaluator objects or per-token method dispatch: filter state is
        two integers-and-a-list per line, token effects come precomputed
        from :meth:`CompiledQuery.token_effect`, and all loop-invariant
        lookups are bound to locals once per batch.
        """
        program = self.program
        effect_cache = program._effect_cache
        token_effect = program.token_effect
        query_bitmaps = program.query_bitmaps
        iset_to_query = program.iset_to_query
        num_isets = program.num_isets
        num_queries = program.num_queries
        zero_bitmaps = [0] * num_isets
        verdicts: list[tuple[bool, ...]] = []
        tokens_seen = 0
        for tokens in token_lists:
            tokens_seen += len(tokens)
            violated = 0
            bitmaps = zero_bitmaps[:]
            for position, token in enumerate(tokens):
                effect = effect_cache.get(token, _UNCACHED)
                if effect is _UNCACHED:
                    effect = token_effect(token)
                if effect is None:
                    continue
                violate_mask, bit_updates, column = effect
                if column is not None and position != column:
                    continue
                violated |= violate_mask
                for iset_index, bit in bit_updates:
                    bitmaps[iset_index] |= bit
            line_verdict = [False] * num_queries
            for k in range(num_isets):
                if not (violated >> k) & 1 and bitmaps[k] == query_bitmaps[k]:
                    line_verdict[iset_to_query[k]] = True
            verdicts.append(tuple(line_verdict))
        self.lines_processed += len(verdicts)
        self.tokens_processed += tokens_seen
        return verdicts

    def evaluate_token_arrays(self, page) -> list[tuple[bool, ...]]:
        """Vectorized batch kernel over one page's offset arrays.

        Consumes a :class:`repro.core.vectokenizer.PageTokens` and returns
        the same verdict list :meth:`evaluate_token_lists` would for the
        materialised token lists (the differential suite pins this down).

        Two facts make it fast: almost every token misses the cuckoo
        table, and a line with zero table hits always gets the program's
        precomputed default verdict. So the kernel only materialises
        tokens whose ``(length, first_byte)`` signature matches a table
        token — a couple of array comparisons on the numpy backend, a
        set probe per token on the fallback — and runs the full filter
        state machine just for lines that had a signature hit.
        """
        program = self.program
        num_tokens = page.num_tokens
        num_lines = page.num_lines
        self.lines_processed += num_lines
        self.tokens_processed += num_tokens
        default = program.default_verdict()
        verdicts = [default] * num_lines
        if num_tokens == 0:
            return verdicts
        signatures = program.signatures()
        buffer = page.buffer
        token_starts = page.token_starts
        token_ends = page.token_ends
        token_lines = page.token_lines
        token_positions = page.token_positions

        if page.backend == "numpy" and signatures:
            from repro.core.backend import numpy_or_none

            np = numpy_or_none()
            lengths = token_ends - token_starts
            firsts = np.frombuffer(buffer, dtype=np.uint8)[token_starts]
            mask = np.zeros(num_tokens, dtype=bool)
            for length, first in signatures:
                mask |= (lengths == length) & (firsts == first)
            candidates = np.flatnonzero(mask).tolist()
        elif signatures:
            candidates = [
                j
                for j in range(num_tokens)
                if (token_ends[j] - token_starts[j], buffer[token_starts[j]])
                in signatures
            ]
        else:
            candidates = []

        # group surviving (position, effect) hits per line; most lines
        # have none and keep the default verdict untouched
        effect_cache = program._effect_cache
        token_effect = program.token_effect
        hits_by_line: dict[int, list] = {}
        for j in candidates:
            token = bytes(buffer[int(token_starts[j]) : int(token_ends[j])])
            effect = effect_cache.get(token, _UNCACHED)
            if effect is _UNCACHED:
                effect = token_effect(token)
            if effect is None:
                continue
            hits_by_line.setdefault(int(token_lines[j]), []).append(
                (int(token_positions[j]), effect)
            )

        if not hits_by_line:
            return verdicts
        query_bitmaps = program.query_bitmaps
        iset_to_query = program.iset_to_query
        num_isets = program.num_isets
        num_queries = program.num_queries
        zero_bitmaps = [0] * num_isets
        for line, hits in hits_by_line.items():
            violated = 0
            bitmaps = zero_bitmaps[:]
            for position, effect in hits:
                violate_mask, bit_updates, column = effect
                if column is not None and position != column:
                    continue
                violated |= violate_mask
                for iset_index, bit in bit_updates:
                    bitmaps[iset_index] |= bit
            line_verdict = [False] * num_queries
            for k in range(num_isets):
                if not (violated >> k) & 1 and bitmaps[k] == query_bitmaps[k]:
                    line_verdict[iset_to_query[k]] = True
            verdicts[line] = tuple(line_verdict)
        return verdicts
