"""Scan-path backend and kernel selection.

The vectorized scan path (``repro.core.vectokenizer`` + the hash
filter's array kernel) has two interchangeable array backends:

- ``numpy`` — boolean-mask tokenization and signature pre-filtering over
  ``np.frombuffer`` views of the decompressed arena (zero copies until a
  line is actually kept),
- ``fallback`` — pure-Python/memoryview offset bookkeeping with the
  exact same outputs, for hosts without numpy.

Selection is explicit and testable: :func:`resolve_backend` honours the
``REPRO_SCAN_BACKEND`` environment variable (``auto`` | ``numpy`` |
``fallback``), and the differential suite force-selects each backend to
prove they are byte-for-byte equivalent. The same pattern applies one
level up: :func:`resolve_kernel` picks between the ``vectorized`` scan
kernel and the retained ``reference`` kernel (PR 3's per-line path, kept
as the oracle) via ``REPRO_SCAN_KERNEL``.

Nothing here imports numpy at module load; the probe is lazy and cached
so a missing numpy costs one failed import per process, ever.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = [
    "BACKEND_ENV",
    "KERNEL_ENV",
    "BackendUnavailableError",
    "available_backends",
    "numpy_or_none",
    "resolve_backend",
    "resolve_kernel",
]

#: Environment variable forcing an array backend (auto/numpy/fallback).
BACKEND_ENV = "REPRO_SCAN_BACKEND"

#: Environment variable forcing a scan kernel (auto/vectorized/reference).
KERNEL_ENV = "REPRO_SCAN_KERNEL"

#: Array backends, in auto-selection preference order.
BACKENDS = ("numpy", "fallback")

#: Scan kernels; ``auto`` resolves to ``vectorized``.
KERNELS = ("vectorized", "reference")

#: Lazy numpy probe result; ``False`` means "probed, absent".
_NUMPY: object = None


class BackendUnavailableError(RuntimeError):
    """A backend was requested explicitly but cannot be imported."""


def numpy_or_none():
    """The numpy module, or ``None`` when it is not installed (cached)."""
    global _NUMPY
    if _NUMPY is None:
        try:
            import numpy
        except ImportError:
            _NUMPY = False
        else:
            _NUMPY = numpy
    return _NUMPY or None


def available_backends() -> tuple[str, ...]:
    """Backends importable in this process, preference order."""
    return tuple(
        b for b in BACKENDS if b != "numpy" or numpy_or_none() is not None
    )


def resolve_backend(name: Optional[str] = None) -> str:
    """Resolve a backend name (or the environment) to a usable backend.

    ``None``/``"auto"`` prefers numpy and silently falls back;
    an explicit ``"numpy"`` raises :class:`BackendUnavailableError` when
    numpy is missing — tests use that to prove the fallback leg really
    ran without it.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV, "auto")
    name = name.strip().lower() or "auto"
    if name == "auto":
        return "numpy" if numpy_or_none() is not None else "fallback"
    if name == "numpy":
        if numpy_or_none() is None:
            raise BackendUnavailableError(
                "REPRO_SCAN_BACKEND=numpy but numpy is not importable"
            )
        return "numpy"
    if name == "fallback":
        return "fallback"
    raise ValueError(
        f"unknown scan backend {name!r}; expected auto, numpy or fallback"
    )


def resolve_kernel(name: Optional[str] = None) -> str:
    """Resolve a scan-kernel name (or the environment) to a kernel.

    ``None``/``"auto"`` means the vectorized path; ``"reference"`` pins
    the retained PR 3 kernel — the oracle the differential suite and the
    hot-path benchmark compare against.
    """
    if name is None:
        name = os.environ.get(KERNEL_ENV, "auto")
    name = name.strip().lower() or "auto"
    if name == "auto":
        return "vectorized"
    if name in KERNELS:
        return name
    raise ValueError(
        f"unknown scan kernel {name!r}; expected auto, vectorized or reference"
    )
