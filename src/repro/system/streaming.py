"""Streaming ingestion.

Logs arrive continuously ("typical use pattern of logs involves firstly
storing everything to the storage and then running queries", Section 1) —
so the store must accept lines as they arrive, not only in batches.
:class:`StreamingIngestor` wraps a :class:`repro.system.MithriLogSystem`
with an arrival buffer: lines accumulate until a batch is worth
compressing into pages, snapshots fire on a time cadence, and queries can
optionally cover the not-yet-persisted tail so results are always
complete.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.core.query import Query
from repro.errors import IngestError
from repro.obs.metrics import get_registry
from repro.system.mithrilog import MithriLogSystem, QueryOutcome

#: A flush listener: ``(lines_flushed, now_s)`` after each persist.
FlushListener = Callable[[int, float], None]


class StreamingIngestor:
    """Accepts log lines incrementally and persists them in batches.

    ``flush_listeners`` is the hook the standing-query registry
    (:meth:`repro.stream.standing.StandingQueryRegistry.attach`) rides:
    every listener is called as ``listener(lines_flushed, now_s)``
    right after a non-empty flush persists its batch, which is what
    makes stream evaluation incremental — new pages only, no polling.
    """

    def __init__(
        self,
        system: MithriLogSystem,
        batch_lines: int = 512,
        snapshot_every_s: Optional[float] = None,
        max_pending_lines: Optional[int] = None,
        overflow: str = "raise",
    ) -> None:
        if batch_lines <= 0:
            raise IngestError("batch_lines must be positive")
        if snapshot_every_s is not None and snapshot_every_s <= 0:
            raise IngestError("snapshot_every_s must be positive")
        if max_pending_lines is not None and max_pending_lines <= 0:
            raise IngestError("max_pending_lines must be positive")
        if overflow not in ("raise", "shed"):
            raise IngestError(
                f"overflow must be 'raise' or 'shed', got {overflow!r}"
            )
        self.system = system
        self.batch_lines = batch_lines
        self.snapshot_every_s = snapshot_every_s
        self.max_pending_lines = max_pending_lines
        self.overflow = overflow
        self._pending: list[bytes] = []
        self._pending_stamps: list[Optional[float]] = []
        self._last_snapshot_at: Optional[float] = None
        self.lines_ingested = 0
        self.lines_shed = 0
        self.flush_listeners: list[FlushListener] = []
        registry = get_registry()
        if registry is not None:
            self._m_pending = registry.gauge(
                "mithrilog_ingest_pending_lines",
                "Lines buffered in the arrival tail, not yet persisted",
            )
            self._m_overflow_shed = registry.counter(
                "mithrilog_ingest_overflow_shed_total",
                "Arriving lines dropped by the bounded-buffer shed policy",
            )
        else:
            self._m_pending = None
            self._m_overflow_shed = None

    # -- arrival ---------------------------------------------------------

    @property
    def pending_lines(self) -> int:
        return len(self._pending)

    def append(self, line: bytes, timestamp: Optional[float] = None) -> None:
        """Accept one line; persists automatically when the batch fills.

        With ``max_pending_lines`` set, a full arrival buffer applies the
        ``overflow`` policy *before* accepting the line: ``"raise"``
        surfaces the backpressure to the producer as an
        :class:`~repro.errors.IngestError` (flush, then retry);
        ``"shed"`` drops the newest line and counts it in
        :attr:`lines_shed` — the bounded-buffer behaviour a lossy
        collector (syslog over UDP) exhibits. A cap below ``batch_lines``
        is the configuration where it binds, since the batch auto-flush
        otherwise empties the buffer first.
        """
        if b"\n" in line:
            raise IngestError("append one line at a time, without newlines")
        if (
            self.max_pending_lines is not None
            and len(self._pending) >= self.max_pending_lines
        ):
            if self.overflow == "shed":
                self.lines_shed += 1
                if self._m_overflow_shed is not None:
                    self._m_overflow_shed.inc()
                return
            raise IngestError(
                f"pending buffer full ({len(self._pending)} lines >= "
                f"max_pending_lines={self.max_pending_lines}): flush() "
                "before appending, raise the cap, or use overflow='shed'"
            )
        self._pending.append(line)
        self._pending_stamps.append(timestamp)
        if self._m_pending is not None:
            self._m_pending.set(len(self._pending))
        if len(self._pending) >= self.batch_lines:
            self.flush()

    def extend(
        self,
        lines: Sequence[bytes],
        timestamps: Optional[Sequence[float]] = None,
    ) -> None:
        if timestamps is not None and len(timestamps) != len(lines):
            raise IngestError("timestamps must align with lines")
        for i, line in enumerate(lines):
            self.append(line, timestamps[i] if timestamps is not None else None)

    def flush(self) -> int:
        """Persist the pending tail; returns the number of lines stored."""
        if not self._pending:
            return 0
        lines = self._pending
        stamps = self._pending_stamps
        self._pending = []
        self._pending_stamps = []
        have_stamps = all(s is not None for s in stamps)
        self.system.ingest(lines, timestamps=stamps if have_stamps else None)
        self.lines_ingested += len(lines)
        if self._m_pending is not None:
            self._m_pending.set(0)
        if have_stamps and self.snapshot_every_s is not None:
            latest = stamps[-1]
            if (
                self._last_snapshot_at is None
                or latest - self._last_snapshot_at >= self.snapshot_every_s
            ):
                self.system.index.flush(timestamp=latest)
                self._last_snapshot_at = latest
        for listener in self.flush_listeners:
            listener(len(lines), self.system.clock.now)
        return len(lines)

    # -- querying mid-stream ----------------------------------------------

    def query(self, *queries: Query, include_pending: bool = True) -> QueryOutcome:
        """Query the store; optionally cover the un-persisted tail too.

        Pending lines are filtered through the same engine (they are in
        host memory, so no storage accounting applies to them) and
        appended to the persisted results, keeping answers complete at
        any instant of the stream.
        """
        outcome = self.system.query(*queries)
        if include_pending and self._pending:
            result = self.system.engine.filter_lines(self._pending)
            extra = [
                line
                for line, verdict in zip(self._pending, result.verdicts)
                if any(verdict)
            ]
            outcome.matched_lines.extend(extra)
            for q in range(len(queries)):
                outcome.per_query_counts[q] += sum(
                    1 for verdict in result.verdicts if verdict[q]
                )
            outcome.stats.lines_seen += len(self._pending)
            outcome.stats.lines_kept += len(extra)
        return outcome

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "StreamingIngestor":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if exc_type is None:
            self.flush()
