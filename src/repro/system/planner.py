"""Cost-based query planning: index path vs full scan.

Section 3: host software decides per query how to configure the
decompressor/filter pipeline and which pages to request. That decision
has a real crossover — for negative-heavy or low-selectivity queries the
index walk buys nothing (Section 7.5's observation), and the latency-
bound index traversal can even cost more than it saves on small ranges.

The planner estimates candidate volume *without* touching storage, from
the in-memory hash table's per-row counters (the same counters two-choice
insertion maintains), then compares the modelled cost of the index path
(lookup latency + candidate scan) against a straight full scan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.query import Query
from repro.system.mithrilog import MithriLogSystem, QueryOutcome


@dataclass(frozen=True)
class QueryPlan:
    """The planner's decision and its inputs."""

    use_index: bool
    estimated_candidate_pages: int
    total_pages: int
    estimated_index_s: float
    estimated_index_path_s: float
    estimated_scan_s: float
    reason: str

    @property
    def estimated_selectivity(self) -> float:
        if self.total_pages == 0:
            return 1.0
        return self.estimated_candidate_pages / self.total_pages


class QueryPlanner:
    """Chooses the cheaper execution path for a query."""

    def __init__(self, system: MithriLogSystem) -> None:
        self.system = system

    # -- estimation ------------------------------------------------------

    def _estimate_token_pages(self, token: bytes) -> int:
        """Upper bound on a token's candidate pages from row counters.

        A token's postings live in its (two) rows; each row's counter
        tracks every page address ever pushed there, so the sum bounds
        the union the query path would read. No storage access needed.
        """
        table = self.system.index.table
        total = 0
        for row_id in table.candidate_rows(token):
            row = table.peek_row(row_id)
            if row is not None:
                total += row.total_pages
        return min(total, self.system.index.total_data_pages)

    def estimate_candidates(self, query: Query) -> int:
        """Estimated candidate pages across the query's intersection sets."""
        total_pages = self.system.index.total_data_pages
        estimate = 0
        for iset in query.intersections:
            positives = iset.positives
            if not positives:
                return total_pages  # a negative-only set forces a full scan
            estimate += min(
                self._estimate_token_pages(term.token) for term in positives
            )
        return min(estimate, total_pages)

    # -- costing ---------------------------------------------------------

    def _scan_seconds(self, pages: int) -> float:
        storage = self.system.params.storage
        compressed = pages * storage.page_bytes
        ratio = max(
            1.0,
            self.system.original_bytes
            / max(1, self.system.index.total_data_pages * storage.page_bytes),
        )
        decompressed = compressed * ratio
        return max(
            storage.latency_s + compressed / storage.internal_bandwidth,
            decompressed / self.system.accelerator_rate,
        )

    def _index_seconds(self, query: Query) -> float:
        """Latency-bound traversal estimate: one access per positive-token
        lookup plus one per expected root hop."""
        latency = self.system.params.storage.latency_s
        addrs_per_hop = self.system.params.index.addrs_per_root_visit
        accesses = 0
        for iset in query.intersections:
            for term in iset.positives:
                accesses += 1  # posting fetch
                accesses += self._estimate_token_pages(term.token) // addrs_per_hop
        return accesses * latency

    def plan(self, query: Query) -> QueryPlan:
        total = self.system.index.total_data_pages
        candidates = self.estimate_candidates(query)
        index_s = self._index_seconds(query)
        index_path = index_s + self._scan_seconds(candidates)
        scan_path = self._scan_seconds(total)
        if candidates >= total:
            return QueryPlan(
                use_index=False,
                estimated_candidate_pages=candidates,
                total_pages=total,
                estimated_index_s=index_s,
                estimated_index_path_s=index_path,
                estimated_scan_s=scan_path,
                reason="index cannot narrow the query (negative-only or "
                "universal tokens)",
            )
        if index_path >= scan_path:
            return QueryPlan(
                use_index=False,
                estimated_candidate_pages=candidates,
                total_pages=total,
                estimated_index_s=index_s,
                estimated_index_path_s=index_path,
                estimated_scan_s=scan_path,
                reason="index traversal costs more than it saves at this "
                "selectivity",
            )
        return QueryPlan(
            use_index=True,
            estimated_candidate_pages=candidates,
            total_pages=total,
            estimated_index_s=index_s,
            estimated_index_path_s=index_path,
            estimated_scan_s=scan_path,
            reason=f"index narrows to ~{candidates}/{total} pages",
        )

    # -- execution ----------------------------------------------------------

    def execute(self, *queries: Query) -> tuple[QueryPlan, QueryOutcome]:
        """Plan over the union of queries, then run the chosen path."""
        union = queries[0]
        for query in queries[1:]:
            union = union | query
        plan = self.plan(union)
        outcome = self.system.query(*queries, use_index=plan.use_index)
        return plan, outcome
