"""The complete MithriLog system (Figure 2).

Ingest path: log lines are packed into chunks whose **compressed** form
fills one flash page (so the storage's internal bandwidth delivers
compressed data and the effective read bandwidth is multiplied by the
compression ratio — Section 5's whole purpose), appended to the device,
and indexed page-by-page in the inverted index.

Query path: the index proposes candidate pages (a superset); the device
is configured with the decompressor and the compiled token filter; pages
stream through the near-storage accelerator and only surviving lines
cross PCIe. Timing is the paper's pipeline arithmetic: the elapsed scan
time is set by the slowest of {flash supply, accelerator consumption,
host link}, plus the latency-bound index traversal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.compression.lzah import LZAHCompressor
from repro.core.backend import resolve_backend, resolve_kernel
from repro.core.engine import TokenFilterEngine
from repro.core.query import Query
from repro.errors import IngestError, QueryError
from repro.exec.cache import DEFAULT_CACHE_PAGES, PageCache
from repro.exec.executor import ScanExecutor, ScanProgramSpec
from repro.hw.perf import PipelineCycleModel, measure_tokenized_stats
from repro.index.inverted import InvertedIndex
from repro.obs.explain import ExplainReport, build_explain
from repro.obs.journal import template_fingerprint
from repro.obs.metrics import get_registry
from repro.obs.profile import (
    ProfileBuilder,
    TraceContext,
    merge_into_registry,
    profile_to_dict,
)
from repro.obs.tracing import SpanTracer
from repro.params import PROTOTYPE, SystemParams
from repro.sim.clock import SimClock
from repro.storage.device import DeviceReadResult, MithriLogDevice, ReadMode
from repro.storage.page import Page
from repro.stream.sampling import SampleEstimate, estimate_matches, sample_pages
from repro.core.tokenizer import split_tokens

#: Lines sampled for the ingest-time pipeline capability measurement.
_PERF_SAMPLE_LINES = 2000


@dataclass(frozen=True)
class IngestCostModel:
    """Per-unit costs of the ingest pipeline.

    Storage writes stream compressed pages at the internal bandwidth;
    compression runs on the accelerator at the LZAH wire speed; the
    host-side index pays a small hash+append per posting (Section 6's
    design goal is precisely that this side never becomes the
    bottleneck).
    """

    posting_insert_s: float = 10e-9  # hash + buffer append per token
    line_overhead_s: float = 20e-9  # tokenization bookkeeping per line

    def host_seconds(self, lines: int, postings: int) -> float:
        return lines * self.line_overhead_s + postings * self.posting_insert_s


@dataclass(frozen=True)
class IngestReport:
    """What one ingest call stored, and the modelled time it took."""

    lines: int
    original_bytes: int
    compressed_bytes: int
    pages_written: int
    index_memory_bytes: int
    postings_inserted: int = 0
    storage_time_s: float = 0.0
    compress_time_s: float = 0.0
    host_time_s: float = 0.0

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return 1.0
        return self.original_bytes / self.compressed_bytes

    @property
    def elapsed_s(self) -> float:
        """Pipelined ingest: the slowest stage paces the whole."""
        return max(self.storage_time_s, self.compress_time_s, self.host_time_s)

    @property
    def ingest_bytes_per_sec(self) -> float:
        if self.elapsed_s == 0:
            return 0.0
        return self.original_bytes / self.elapsed_s

    @property
    def breakdown(self) -> dict[str, float]:
        """Per-phase times keyed by the actual phase names.

        The keys mirror the ``*_time_s`` fields — ``storage`` (flash
        writes), ``compress`` (accelerator compression), ``host``
        (tokenization + index inserts). Host time used to be mislabelled
        ``"index"`` here, which made renderers disagree with the fields.
        """
        return {
            "storage": self.storage_time_s,
            "compress": self.compress_time_s,
            "host": self.host_time_s,
        }

    @property
    def bottleneck(self) -> str:
        stages = self.breakdown
        return max(stages, key=stages.get)


@dataclass
class QueryStats:
    """Performance accounting for one query."""

    candidate_pages: int = 0
    pages_read: int = 0  # < candidate_pages when a limit cancelled early
    total_pages: int = 0
    bytes_from_flash: int = 0
    bytes_decompressed: int = 0
    bytes_to_host: int = 0
    lines_seen: int = 0
    lines_kept: int = 0
    index_root_visits: int = 0
    index_tokens_looked_up: int = 0
    index_full_scan: bool = False
    index_time_s: float = 0.0
    scan_time_s: float = 0.0
    offloaded: bool = True
    read_retries: int = 0  #: transient page faults absorbed by device retries
    # per-stage times inside the scan (the pipelined stages overlap;
    # ``scan_time_s`` is their max, not their sum)
    flash_time_s: float = 0.0
    decompress_time_s: float = 0.0
    filter_time_s: float = 0.0
    host_time_s: float = 0.0
    cache_hits: int = 0  #: decompressed-page cache hits during this query
    cache_misses: int = 0
    partitions: int = 1  #: scan partitions executed (1 on the serial path)
    #: approximate scans only: the configured Bernoulli page-sampling
    #: rate and how many candidate pages survived the draw
    sample_fraction: Optional[float] = None
    pages_sampled: int = 0
    #: deterministic per-stage ``{"calls", "units"}`` counts, synthesized
    #: from the page/byte accounting — identical at any worker count.
    profile: dict[str, dict[str, int]] = field(default_factory=dict)
    #: measured host wall-clock per stage (``calls``/``units``/``wall_s``),
    #: aggregated across pool workers — a real observation, varies run
    #: to run and cold vs warm cache.
    host_profile: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def elapsed_s(self) -> float:
        return self.index_time_s + self.scan_time_s

    @property
    def breakdown(self) -> dict[str, float]:
        """Per-phase times keyed by the actual phase names.

        ``index`` is serial (latency-bound traversal before the scan);
        ``flash``/``decompress``/``filter``/``host`` overlap in the
        streaming pipeline, so ``elapsed_s == index + max(the rest)``.
        These keys match the span names the tracer emits.
        """
        return {
            "index": self.index_time_s,
            "flash": self.flash_time_s,
            "decompress": self.decompress_time_s,
            "filter": self.filter_time_s,
            "host": self.host_time_s,
        }

    @property
    def bottleneck(self) -> str:
        """The scan stage that paces the streaming pipeline."""
        stages = {
            k: v for k, v in self.breakdown.items() if k != "index"
        }
        return max(stages, key=stages.get)

    @property
    def index_reduction(self) -> float:
        """Fraction of pages the index let the query skip."""
        if self.total_pages == 0:
            return 0.0
        return 1.0 - self.candidate_pages / self.total_pages


@dataclass
class QueryOutcome:
    """Result of one end-to-end query."""

    matched_lines: list[bytes]
    per_query_counts: list[int]
    stats: QueryStats
    #: EXPLAIN ANALYZE report, attached when the query ran with
    #: ``analyze=True``.
    explain: Optional[ExplainReport] = None
    #: sampled scans only: one estimate per query scaling its sampled
    #: match count back to the full candidate set.
    estimates: Optional[list[SampleEstimate]] = None

    def effective_throughput(self, original_bytes: int) -> float:
        """The paper's metric: original dataset size / elapsed time."""
        if self.stats.elapsed_s == 0:
            return 0.0
        return original_bytes / self.stats.elapsed_s


class MithriLogSystem:
    """Host software + near-storage accelerated device, end to end."""

    def __init__(
        self,
        params: Optional[SystemParams] = None,
        seed: int = 0,
        device: Optional[MithriLogDevice] = None,
        index=None,
        tracer: Optional[SpanTracer] = None,
        cache_pages: int = DEFAULT_CACHE_PAGES,
        scan_kernel: Optional[str] = None,
        scan_backend: Optional[str] = None,
        journal=None,
        monitor=None,
    ) -> None:
        self.params = params if params is not None else PROTOTYPE
        #: Scan kernel/backend overrides (None defers to the
        #: REPRO_SCAN_KERNEL / REPRO_SCAN_BACKEND environment variables,
        #: then auto-selection). Resolved per scan, in this process, so
        #: pool workers inherit the parent's choice via the program spec.
        self.scan_kernel = scan_kernel
        self.scan_backend = scan_backend
        self.device = (
            device if device is not None else MithriLogDevice(self.params.storage)
        )
        self.codec = LZAHCompressor(self.params.lzah)
        #: Decompressed-page LRU (``cache_pages <= 0`` disables it). Keyed
        #: by (device, page, codec); every flash write — ingest appends,
        #: FTL moves, index compaction — invalidates through the listener.
        self.page_cache = PageCache(cache_pages)
        self._codec_key = (self.codec.name, self.params.lzah)
        self.device.flash.write_listeners.append(
            lambda address: self.page_cache.invalidate(
                self.device.device_key, address
            )
        )
        #: Scan executors by worker count, created lazily and reused so a
        #: worker pool survives across queries.
        self._scan_executors: dict[int, ScanExecutor] = {}
        # any index strategy with the InvertedIndex surface works
        # (Section 6: "can be coupled with any indexing strategy")
        self.index = (
            index
            if index is not None
            else InvertedIndex(
                self.device.flash,
                self.params.index,
                self.params.storage.page_bytes,
                seed=seed,
            )
        )
        self.engine = TokenFilterEngine(
            num_pipelines=self.params.num_pipelines,
            cuckoo_params=self.params.cuckoo,
            pipeline_params=self.params.pipeline,
            seed=seed,
        )
        self.original_bytes = 0
        self.total_lines = 0
        self._accelerator_rate: Optional[float] = None
        self._pipeline_rate: Optional[float] = None
        self._decompressor_rate: Optional[float] = None
        #: Simulated system timeline: every ingest/query advances it, so
        #: spans from successive operations line up on one trace.
        self.clock = SimClock()
        #: Optional span tracer; assign one at any time to start tracing.
        self.tracer = tracer
        #: Optional :class:`repro.obs.journal.QueryJournal`; when set,
        #: every direct ``query()`` call appends one record per query
        #: (tenant ``_direct`` — service-layer traffic is journalled by
        #: the service itself, which owns admission context).
        self.journal = journal
        #: Optional :class:`repro.obs.slo.SLOMonitor`; when set, every
        #: direct ``query()`` call is observed as a settled ``_direct``
        #: event at its simulated completion time, so SLOs cover traffic
        #: that bypasses the service layer too.
        self.monitor = monitor
        #: Monotonic query counter, minting trace ids (``q1``, ``q2``, ...).
        self._query_seq = 0
        registry = get_registry()
        if registry is not None:
            self._m_queries = registry.counter(
                "mithrilog_query_total",
                "End-to-end queries",
                labelnames=("path",),
            )
            self._m_query_seconds = registry.histogram(
                "mithrilog_query_seconds", "Simulated end-to-end query latency"
            )
            self._m_ingest_lines = registry.counter(
                "mithrilog_ingest_lines_total", "Log lines ingested"
            )
            self._m_ingest_bytes = registry.counter(
                "mithrilog_ingest_bytes_total", "Original bytes ingested"
            )
            self._m_ingest_compressed = registry.counter(
                "mithrilog_ingest_compressed_bytes_total",
                "Compressed bytes stored",
            )
            self._m_scan_workers = registry.gauge(
                "mithrilog_scan_workers",
                "Worker count used by the most recent scan",
            )
            self._m_batch_queries = registry.gauge(
                "mithrilog_scan_batch_queries",
                "Concurrent queries in the most recent scan batch",
            )
            self._m_explain = registry.counter(
                "mithrilog_explain_requests_total",
                "EXPLAIN reports built, by mode (estimate/analyze)",
                labelnames=("mode",),
            )
            self._m_util = registry.gauge(
                "mithrilog_util_busy_fraction",
                "Per-resource busy fraction of the latest query's scan window",
                labelnames=("resource",),
            )
            self._m_sampled_scans = registry.counter(
                "mithrilog_stream_sampled_scans_total",
                "Approximate scans served from a sampled page subset",
            )
            self._m_sampled_pages_skipped = registry.counter(
                "mithrilog_stream_sampled_pages_skipped_total",
                "Candidate pages the sampler let approximate scans skip",
            )
        else:
            self._m_queries = None
            self._m_query_seconds = None
            self._m_ingest_lines = None
            self._m_ingest_bytes = None
            self._m_ingest_compressed = None
            self._m_scan_workers = None
            self._m_batch_queries = None
            self._m_explain = None
            self._m_util = None
            self._m_sampled_scans = None
            self._m_sampled_pages_skipped = None

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def ingest(
        self, lines: Sequence[bytes], timestamps: Optional[Sequence[float]] = None
    ) -> IngestReport:
        """Compress, store and index a batch of log lines.

        ``timestamps``, when given (one per line), drive the snapshot
        index for later time-bounded queries.
        """
        if timestamps is not None and len(timestamps) != len(lines):
            raise IngestError("timestamps must align one-to-one with lines")
        compressed_total = 0
        pages = 0
        pos = 0
        postings = 0
        for payload, chunk in self._pack_pages(lines):
            addr = self.device.append_pages([Page(payload)])[0]
            tokens = {t for line in chunk for t in split_tokens(line)}
            stamp = timestamps[pos + len(chunk) - 1] if timestamps else None
            self.index.index_page(addr, tokens, timestamp=stamp)
            postings += len(tokens)
            compressed_total += len(payload)
            pages += 1
            pos += len(chunk)
        original = sum(len(ln) + 1 for ln in lines)
        self.original_bytes += original
        self.total_lines += len(lines)
        self._measure_accelerator_rate(lines)
        storage = self.params.storage
        cost = IngestCostModel()
        report = IngestReport(
            lines=len(lines),
            original_bytes=original,
            compressed_bytes=compressed_total,
            pages_written=pages,
            index_memory_bytes=self.index.memory_footprint_bytes(),
            postings_inserted=postings,
            storage_time_s=storage.latency_s
            + compressed_total / storage.internal_bandwidth,
            compress_time_s=original
            / (self.params.num_pipelines * self.params.pipeline.wire_speed_bytes_per_sec),
            host_time_s=cost.host_seconds(len(lines), postings),
        )
        if self._m_ingest_lines is not None:
            self._m_ingest_lines.inc(report.lines)
            self._m_ingest_bytes.inc(report.original_bytes)
            self._m_ingest_compressed.inc(report.compressed_bytes)
        if self.tracer is not None:
            t0 = self.clock.now
            self.tracer.record(
                "ingest", t0, report.elapsed_s, category="ingest", track="ingest",
                lines=report.lines, pages=report.pages_written,
            )
            self.tracer.record(
                "compress", t0, report.compress_time_s, category="ingest",
                track="compress", bytes=report.original_bytes,
            )
            self.tracer.record(
                "storage_write", t0, report.storage_time_s, category="ingest",
                track="flash", bytes=report.compressed_bytes,
            )
            self.tracer.record(
                "index_build", t0, report.host_time_s, category="ingest",
                track="host", postings=report.postings_inserted,
            )
        self.clock.advance(report.elapsed_s)
        return report

    def _pack_pages(
        self, lines: Sequence[bytes]
    ) -> Iterable[tuple[bytes, list[bytes]]]:
        """Pack lines so each chunk's *compressed* form fills one page.

        Greedy with feedback: aim for ``page_bytes x current-ratio`` of
        uncompressed text, compress, and split the chunk when it misses
        high. Every yielded payload fits one flash page.
        """
        page_bytes = self.params.storage.page_bytes
        ratio_estimate = 2.0
        i = 0
        n = len(lines)
        while i < n:
            target = max(1, int(page_bytes * ratio_estimate * 0.9))
            chunk: list[bytes] = []
            used = 0
            j = i
            while j < n and (used + len(lines[j]) + 1 <= target or not chunk):
                chunk.append(lines[j])
                used += len(lines[j]) + 1
                j += 1
            payload = self.codec.compress(
                b"".join(ln + b"\n" for ln in chunk)
            )
            while len(payload) > page_bytes:
                if len(chunk) == 1:
                    raise IngestError(
                        f"single line of {len(chunk[0])} bytes cannot fit a "
                        f"{page_bytes}-byte page even compressed"
                    )
                chunk = chunk[: len(chunk) // 2]
                payload = self.codec.compress(b"".join(ln + b"\n" for ln in chunk))
            used = sum(len(ln) + 1 for ln in chunk)
            ratio_estimate = 0.5 * ratio_estimate + 0.5 * (used / len(payload))
            yield payload, chunk
            i += len(chunk)

    def _measure_accelerator_rate(self, lines: Sequence[bytes]) -> None:
        """Measure the filter engine's capability on this corpus (cycles)."""
        sample = list(lines[:_PERF_SAMPLE_LINES])
        if not sample:
            return
        count = PipelineCycleModel(self.params.pipeline).count_cycles(sample)
        pipelines = count.throughput_bytes_per_sec * self.params.num_pipelines
        decomp = self.params.num_pipelines * (
            self.params.lzah.word_bytes * self.params.pipeline.clock_hz
        )
        self._pipeline_rate = pipelines
        self._decompressor_rate = decomp
        self._accelerator_rate = min(pipelines, decomp)
        if get_registry() is not None:
            # publishes the Figure 13 gauges (useful-bits ratio, padding
            # amplification) as a side effect; skipped when metrics are
            # off so ingest pays nothing extra
            measure_tokenized_stats(
                sample, datapath_bytes=self.params.pipeline.datapath_bytes
            )

    @property
    def accelerator_rate(self) -> float:
        """Effective decompressed-text consumption rate (bytes/s)."""
        if self._accelerator_rate is None:
            raise QueryError("nothing ingested yet; accelerator rate unknown")
        return self._accelerator_rate

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------

    def query(
        self,
        *queries: Query,
        use_index: bool = True,
        time_range: Optional[tuple[Optional[float], Optional[float]]] = None,
        limit: Optional[int] = None,
        newest_first: bool = False,
        workers: int = 1,
        analyze: bool = False,
        trace_context: Optional[TraceContext] = None,
        within_pages: Optional[Sequence[int]] = None,
        sample_fraction: Optional[float] = None,
        sample_seed: int = 0,
    ) -> QueryOutcome:
        """Run one or more concurrent queries end to end.

        ``limit`` cancels the device read once that many matching lines
        arrived (top-k exploration: far fewer pages touched on common
        queries); ``newest_first`` visits candidate pages in reverse
        chronological order — the natural direction for log exploration,
        and what Section 6.3's reverse-ordered index traversal hands the
        host for free. With both set, the result is "the last ``limit``
        matches", in storage order within the visited range.

        ``workers`` parallelises the host-side scan work (decompress,
        tokenize, filter) over that many processes via the
        :class:`repro.exec.ScanExecutor`. Results, simulated stats and
        fault behaviour are identical at any worker count — only host
        wall-clock changes; ``workers=1`` (the default) runs fully
        in-process. A ``limit`` forces the in-process path, because
        early cancellation is inherently sequential.

        ``analyze=True`` runs EXPLAIN ANALYZE alongside: the cost-based
        planner's estimates are captured before execution, and the
        returned outcome carries an :class:`~repro.obs.explain
        .ExplainReport` comparing them against what actually happened.

        ``trace_context`` threads an existing trace id through (a cluster
        scatter-gather passes per-shard children); left ``None``, the
        system mints a fresh ``q<n>`` id for the query's spans.

        ``within_pages`` restricts the scan to the intersection of the
        index candidates and the given page addresses — the incremental
        hook standing queries use to evaluate only newly sealed pages.

        ``sample_fraction`` runs an *approximate* scan: only the seeded
        deterministic fraction of candidate pages (keyed on
        ``(sample_seed, template fingerprint, page id)``, so results are
        worker-count- and backend-invariant) is read, and the outcome
        carries one :class:`repro.stream.sampling.SampleEstimate` per
        query scaling the sampled count back to the full candidate set
        with a confidence interval.
        """
        if not queries:
            raise QueryError("query() needs at least one query")
        if workers < 1:
            raise QueryError("workers must be at least 1")
        self._query_seq += 1
        context = (
            trace_context
            if trace_context is not None
            else TraceContext(trace_id=f"q{self._query_seq}")
        )
        plan = None
        if analyze:
            plan = self._plan_for(queries)
        offloaded = self.engine.compile(*queries)
        stats = QueryStats(offloaded=offloaded, total_pages=self.index.total_data_pages)

        if use_index:
            lookup = self.index.candidate_pages(
                self._union(queries), time_range=time_range
            )
            candidates = list(lookup.pages)
            stats.index_root_visits = lookup.stats.root_visits
            stats.index_tokens_looked_up = lookup.stats.tokens_looked_up
            stats.index_full_scan = lookup.stats.full_scan
            stats.index_time_s = self._index_time(lookup.stats)
        else:
            candidates = list(self.index.data_pages)
            stats.index_full_scan = True
        if within_pages is not None:
            wanted = set(within_pages)
            candidates = [page for page in candidates if page in wanted]
        stats.candidate_pages = len(candidates)
        sample_pool = 0
        if sample_fraction is not None:
            # deterministic subset, chosen in the parent before any
            # executor fan-out — see repro.stream.sampling
            fingerprint = template_fingerprint(str(self._union(queries)))
            sample_pool = len(candidates)
            candidates = sample_pages(
                candidates, sample_seed, fingerprint, sample_fraction
            )
            stats.sample_fraction = sample_fraction
            stats.pages_sampled = len(candidates)
            if self._m_sampled_scans is not None:
                self._m_sampled_scans.inc()
                self._m_sampled_pages_skipped.inc(
                    sample_pool - len(candidates)
                )
        if newest_first:
            candidates = list(reversed(candidates))

        if self._m_scan_workers is not None:
            self._m_scan_workers.set(workers)
            self._m_batch_queries.set(len(queries))

        hits_before = self.page_cache.hits
        misses_before = self.page_cache.misses
        partitions = ()
        per_query: Optional[list[int]] = None
        if limit is None:
            # all full scans — any worker count — run the partition
            # kernel (vectorized by default when offloaded); workers=1
            # executes it inline with no pool
            read, aggregate = self._scan_with_executor(
                candidates, queries, workers
            )
            if workers > 1:
                # partition spans only describe actual fan-out; the
                # inline path keeps the serial trace shape
                partitions = aggregate.partitions
            stats.partitions = max(1, len(aggregate.partitions))
            stats.host_profile = profile_to_dict(aggregate.profile_dict())
            per_query = list(aggregate.per_query_counts)
        else:
            host = ProfileBuilder()
            self.device.configure(
                decompress_page=self.codec.decompress,
                decompress_page_at=host.wrap(
                    "decompress", self._cached_decompress, units_of=len
                ),
                line_filter=host.wrap("filter", self.engine.keep_line),
            )
            read = self.device.read(
                candidates, mode=ReadMode.FILTER, stop_after_matches=limit
            )
            serial_profile = host.build()
            merge_into_registry(serial_profile)
            stats.host_profile = profile_to_dict(serial_profile)
        stats.cache_hits = self.page_cache.hits - hits_before
        stats.cache_misses = self.page_cache.misses - misses_before
        stats.pages_read = read.pages_read
        stats.bytes_from_flash = read.bytes_from_flash
        stats.bytes_decompressed = read.bytes_decompressed
        stats.bytes_to_host = read.bytes_to_host
        stats.lines_seen = read.lines_seen
        stats.lines_kept = read.lines_kept
        stats.read_retries = read.read_retries
        self._fill_scan_times(stats, read)
        self._fill_profile(stats)
        self._publish_utilization(stats)

        matched = read.data.splitlines()
        if per_query is None:
            per_query = self._per_query_counts(matched, len(queries))
        elif matched:
            # the kernel already produced per-query verdicts; account the
            # filter-engine metrics the recount used to bump
            self.engine.account_filtered(len(matched))
        if self._m_queries is not None:
            self._m_queries.inc(path="scan" if stats.index_full_scan else "index")
            self._m_query_seconds.observe(stats.elapsed_s)
        if self.tracer is not None:
            self._trace_query(
                stats, len(matched), per_query, context=context,
                partitions=partitions,
            )
        self.clock.advance(stats.elapsed_s)
        if sample_fraction is not None:
            mode = "sampled"
        elif within_pages is not None:
            mode = "standing"
        else:
            mode = "exact"
        estimates = None
        if sample_fraction is not None:
            estimates = [
                estimate_matches(
                    per_query[i],
                    pages_scanned=stats.pages_sampled,
                    pages_total=sample_pool,
                    fraction=sample_fraction,
                )
                for i in range(len(queries))
            ]
        if self.journal is not None:
            for i, query_obj in enumerate(queries):
                self.journal.observe_direct(
                    str(query_obj),
                    latency_s=stats.elapsed_s,
                    matches=per_query[i],
                    stage=stats.bottleneck,
                    completed_at_s=self.clock.now,
                    batch_size=len(queries),
                    mode=mode,
                    sample_fraction=sample_fraction,
                )
        if self.monitor is not None:
            for _ in queries:
                self.monitor.observe(
                    tenant="_direct",
                    outcome="ok",
                    latency_s=stats.elapsed_s,
                    now_s=self.clock.now,
                )
        report = None
        if analyze:
            report = build_explain(
                " OR ".join(str(q) for q in queries),
                plan,
                stats=stats,
                matches=len(matched),
                program=self.engine.program_summary(),
                cache={
                    "hits": stats.cache_hits, "misses": stats.cache_misses
                },
                host_profile=stats.host_profile,
            )
            if self._m_explain is not None:
                self._m_explain.inc(mode="analyze")
        return QueryOutcome(
            matched_lines=matched, per_query_counts=per_query, stats=stats,
            explain=report, estimates=estimates,
        )

    @staticmethod
    def _union(queries: Sequence[Query]) -> Query:
        union = queries[0]
        for extra in queries[1:]:
            union = union | extra
        return union

    def _plan_for(self, queries: Sequence[Query]):
        """The cost-based plan over the union of a query batch.

        Imported lazily: the planner module imports this one.
        """
        from repro.system.planner import QueryPlanner

        return QueryPlanner(self).plan(self._union(queries))

    def explain(
        self,
        *queries: Query,
        use_index: bool = True,
        time_range: Optional[tuple[Optional[float], Optional[float]]] = None,
        limit: Optional[int] = None,
        newest_first: bool = False,
        workers: int = 1,
        analyze: bool = False,
    ) -> ExplainReport:
        """EXPLAIN (or, with ``analyze=True``, EXPLAIN ANALYZE) a query.

        Plain EXPLAIN touches no storage: it compiles the queries (the
        program shape is part of the plan) and reports the cost-based
        planner's path choice and estimates. ``analyze=True`` executes
        the query exactly as :meth:`query` would — same index/limit/
        worker semantics — and the report's ``actual`` values, bottleneck
        attribution and per-stage utilization come from the run. The
        report's canonical form is deterministic: identical at any
        ``workers`` and with a cold or warm page cache.
        """
        if analyze:
            return self.query(
                *queries,
                use_index=use_index,
                time_range=time_range,
                limit=limit,
                newest_first=newest_first,
                workers=workers,
                analyze=True,
            ).explain
        if not queries:
            raise QueryError("explain() needs at least one query")
        plan = self._plan_for(queries)
        self.engine.compile(*queries)
        report = build_explain(
            " OR ".join(str(q) for q in queries),
            plan,
            program=self.engine.program_summary(),
        )
        if self._m_explain is not None:
            self._m_explain.inc(mode="estimate")
        return report

    def _cached_decompress(self, address: int, payload: bytes) -> bytes:
        """Address-aware decompressor serving from the page cache."""
        return self.page_cache.get_or_decode(
            self.device.device_key,
            address,
            self._codec_key,
            payload,
            self.codec.decompress,
        )

    def _scan_executor_for(self, workers: int) -> ScanExecutor:
        executor = self._scan_executors.get(workers)
        if executor is None:
            executor = ScanExecutor(workers)
            self._scan_executors[workers] = executor
        return executor

    def _scan_with_executor(
        self, candidates: list[int], queries: tuple[Query, ...], workers: int
    ):
        """The parallel scan: device-fetched pages, fanned-out filtering.

        Flash access (and with it fault injection, retries and read
        accounting) stays in the device, in candidate order — identical
        to the serial FILTER read. Pages that hit the decompressed-page
        cache skip the decode even in workers; the rest are decoded in
        the pool. The returned result carries the exact byte counts the
        serial path would, so :meth:`_fill_scan_times` produces the same
        simulated stats at any worker count. Returns ``(read, aggregate)``
        — the aggregate's per-partition profiles are the subprocess work
        made visible to the parent (registry merge happens in the
        executor; spans and ``host_profile`` happen here).
        """
        pages, retries = self.device.fetch_pages(
            candidates, count_mode=ReadMode.FILTER
        )
        device_key = self.device.device_key
        codec_key = self._codec_key
        cache = self.page_cache
        items: list[tuple[bool, bytes]] = []
        for address, page in zip(candidates, pages):
            payload = page.data
            cached = cache.get(device_key, address, codec_key, payload)
            if cached is not None:
                items.append((True, cached))
            else:
                items.append((False, payload))
        # Kernel and backend resolve here, in the parent, so every pool
        # worker runs the identical code path. Offloaded programs filter
        # through the compiled cuckoo table's array kernel; software
        # -fallback programs (provisioning exceeded) go through the batch
        # matcher in repro.core.softmatch — same vectorized front end.
        kernel = resolve_kernel(self.scan_kernel)
        spec = ScanProgramSpec(
            queries=tuple(queries),
            cuckoo_params=self.engine.cuckoo_params,
            seed=self.engine.seed,
            offloaded=self.engine.offloaded,
            lzah_params=self.params.lzah,
            kernel=kernel,
            backend=resolve_backend(self.scan_backend),
        )
        # the inline path hands decoded pages back so repeated scans hit
        # the cache exactly as the old serial path did; pool workers keep
        # their decodes local (shipping pages back would dwarf the scan)
        want_decoded = workers == 1 and cache.max_pages > 0
        aggregate = self._scan_executor_for(workers).scan(
            spec, items, want_decoded=want_decoded
        )
        if want_decoded and aggregate.decoded:
            for address, page, decoded in zip(
                candidates, pages, aggregate.decoded
            ):
                if decoded is not None:
                    cache.put(device_key, address, codec_key, page.data, decoded)
        self.device.account_host_bytes(len(aggregate.data))
        read = DeviceReadResult(
            data=aggregate.data,
            pages_read=len(pages),
            bytes_from_flash=sum(len(p) for p in pages),
            bytes_decompressed=aggregate.bytes_decompressed,
            bytes_to_host=len(aggregate.data),
            lines_seen=aggregate.lines_seen,
            lines_kept=aggregate.lines_kept,
            read_retries=retries,
        )
        return read, aggregate

    def _index_time(self, lookup_stats) -> float:
        """Traversal cost, delegated to the index strategy: storage hops
        for the in-storage inverted index, host bit-tests for blooms."""
        return self.index.lookup_seconds(
            lookup_stats, self.params.storage.latency_s
        )

    def _fill_scan_times(self, stats: QueryStats, read) -> None:
        """Streaming pipeline: bottleneck stage sets the pace (Figure 14).

        Candidate page reads are *independent*, so a flash array with
        queued requests streams them at full internal bandwidth after one
        pipeline-fill latency; only the index walk (pointer chasing) pays
        latency per hop, and that is charged in :meth:`_index_time`.

        The accelerator time splits into decompressor and filter stages;
        since ``accelerator_rate == min(pipeline, decompressor)``, the
        identity ``bytes/min(p,d) == max(bytes/p, bytes/d)`` keeps
        ``scan_time_s`` equal to the old three-way max. Stores loaded
        from disk only carry the combined rate; both stages then charge
        it, which again leaves the max unchanged.
        """
        storage = self.params.storage
        stats.flash_time_s = (
            storage.latency_s + read.bytes_from_flash / storage.internal_bandwidth
        )
        decomp_rate = self._decompressor_rate or self.accelerator_rate
        filter_rate = self._pipeline_rate or self.accelerator_rate
        stats.decompress_time_s = read.bytes_decompressed / decomp_rate
        stats.filter_time_s = read.bytes_decompressed / filter_rate
        stats.host_time_s = read.bytes_to_host / storage.external_bandwidth
        stats.scan_time_s = max(
            stats.flash_time_s,
            stats.decompress_time_s,
            stats.filter_time_s,
            stats.host_time_s,
        )

    def _fill_profile(self, stats: QueryStats) -> None:
        """Synthesize the deterministic per-stage scan counts.

        Derived from the page/byte accounting — which is identical on the
        serial and executor paths — not from measuring either path, so
        the counts match at any worker count. Decompress calls skip cache
        hits (the decode was skipped); the decompressed text still flows
        through tokenize and filter on every page.
        """
        decoded = stats.pages_read - stats.cache_hits
        stats.profile = {
            "decompress": {
                "calls": decoded, "units": stats.bytes_decompressed
            },
            "tokenize": {"calls": stats.pages_read, "units": stats.lines_seen},
            "filter": {"calls": stats.pages_read, "units": stats.lines_seen},
        }

    def _publish_utilization(self, stats: QueryStats) -> None:
        """Set the per-resource busy-fraction gauges for this query.

        The scan stages stream concurrently over one window
        (``scan_time_s``), so each stage's utilization is its time over
        the window — the bottleneck reads 1.0, everything else shows how
        much slack it had (the Figure 14 shape).
        """
        if self._m_util is None or stats.scan_time_s <= 0:
            return
        for stage, stage_time in stats.breakdown.items():
            if stage == "index":
                continue
            self._m_util.set(
                stage_time / stats.scan_time_s, resource=stage
            )

    def _trace_query(
        self,
        stats: QueryStats,
        matches: int,
        per_query: Optional[list[int]] = None,
        context: Optional[TraceContext] = None,
        partitions: Sequence = (),
    ) -> None:
        """Record the query's phase spans on the simulated timeline.

        The index traversal is serial; the four scan stages stream
        concurrently, so their spans share a start time and live on
        separate tracks — exactly how the device pipelines them. A
        single query keeps its one ``query`` root span; a batch gets one
        root span *per* query (``query[i]``, carrying that query's match
        count) over the shared stage spans, so per-query latency and
        selectivity stay attributable after batching.

        Every span carries the query's trace-context tags (trace id,
        shard/partition coordinates when set), so spans from one logical
        query stay correlated across cluster shards and executor
        partitions. Executor partitions additionally get their own
        ``scan_partition[i]`` spans on a ``workers`` track, sized by each
        partition's share of the decompress work.
        """
        tags = context.tags() if context is not None else {}
        t0 = self.clock.now
        if per_query is not None and len(per_query) > 1:
            for i, count in enumerate(per_query):
                self.tracer.record(
                    f"query[{i}]", t0, stats.elapsed_s, category="query",
                    track="query", pages=stats.pages_read, matches=count,
                    batch_index=i, batch_size=len(per_query), **tags,
                )
        else:
            self.tracer.record(
                "query", t0, stats.elapsed_s, category="query", track="query",
                pages=stats.pages_read, matches=matches, **tags,
            )
        self.tracer.record(
            "index_lookup", t0, stats.index_time_s, category="query",
            track="index", root_visits=stats.index_root_visits,
            full_scan=stats.index_full_scan, **tags,
        )
        t1 = t0 + stats.index_time_s
        self.tracer.record(
            "flash_read", t1, stats.flash_time_s, category="query",
            track="flash", pages=stats.pages_read,
            bytes=stats.bytes_from_flash, **tags,
        )
        self.tracer.record(
            "decompress", t1, stats.decompress_time_s, category="query",
            track="decompress", bytes=stats.bytes_decompressed, **tags,
        )
        self.tracer.record(
            "filter", t1, stats.filter_time_s, category="query",
            track="filter", lines_seen=stats.lines_seen,
            lines_kept=stats.lines_kept, **tags,
        )
        self.tracer.record(
            "host_transfer", t1, stats.host_time_s, category="query",
            track="host", bytes=stats.bytes_to_host, **tags,
        )
        if partitions:
            rate = self._decompressor_rate or self._accelerator_rate
            for record in partitions:
                child = (
                    context.child(partition=record.index)
                    if context is not None
                    else None
                )
                self.tracer.record(
                    f"scan_partition[{record.index}]", t1,
                    record.bytes_decompressed / rate if rate else 0.0,
                    category="query", track="workers",
                    pages=record.pages, lines_seen=record.lines_seen,
                    lines_kept=record.lines_kept,
                    **(child.tags() if child is not None else {}),
                )

    def _per_query_counts(
        self, matched: list[bytes], num_queries: int
    ) -> list[int]:
        if not matched:
            return [0] * num_queries
        verdicts = self.engine.filter_lines(matched).verdicts
        return [sum(1 for v in verdicts if v[q]) for q in range(num_queries)]

    # -- convenience -----------------------------------------------------

    def scan_all(
        self, *queries: Query, workers: int = 1, analyze: bool = False
    ) -> QueryOutcome:
        """Whole-store scan (the Section 7.4 token-filter experiments run
        with the index disabled).

        All queries share one decompress+tokenize pass per page — the
        paper's batched-query mode — and ``workers`` fans the scan out
        over a process pool (see :meth:`query`).
        """
        return self.query(
            *queries, use_index=False, workers=workers, analyze=analyze
        )

    def close(self) -> None:
        """Release scan worker pools (idempotent; safe mid-lifecycle —
        executors are recreated lazily on the next parallel query)."""
        for executor in self._scan_executors.values():
            executor.close()
        self._scan_executors.clear()
