"""Text renderers for the paper's tables and figures.

Every benchmark prints through these helpers so the output reads like
the paper: the same row labels, the same units, plus an ASCII histogram
for Figure 15 and a scatter summary for Figure 16.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    col_width: int = 14,
) -> str:
    """A fixed-width text table."""
    lines = [title, "-" * max(len(title), col_width * len(headers))]
    lines.append("".join(f"{h:<{col_width}}" for h in headers))
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(f"{cell:<{col_width}.2f}")
            else:
                rendered.append(f"{str(cell):<{col_width}}")
        lines.append("".join(rendered))
    return "\n".join(lines)


def render_histogram(
    title: str,
    values: Sequence[float],
    bin_edges: Sequence[float],
    width: int = 40,
    unit: str = "GB/s",
) -> str:
    """An ASCII histogram with explicit (possibly non-linear) bins.

    Figure 15 uses a non-linear x-axis; passing log-spaced edges here
    reproduces that presentation.
    """
    counts = [0] * (len(bin_edges) - 1)
    for value in values:
        for i in range(len(bin_edges) - 1):
            last = i == len(counts) - 1
            if bin_edges[i] <= value < bin_edges[i + 1] or (
                last and value >= bin_edges[i + 1]
            ):
                counts[i] += 1
                break
    peak = max(counts) if counts else 1
    lines = [title]
    for i, count in enumerate(counts):
        bar = "#" * (0 if peak == 0 else round(width * count / max(peak, 1)))
        label = f"[{bin_edges[i]:>7.2f},{bin_edges[i + 1]:>7.2f}) {unit}"
        lines.append(f"{label} |{bar} {count}")
    return "\n".join(lines)


def log_bins(low: float, high: float, count: int) -> list[float]:
    """Log-spaced bin edges (Figure 15's non-linear x-axis)."""
    if low <= 0 or high <= low or count <= 0:
        raise ValueError("need 0 < low < high and count > 0")
    step = (math.log10(high) - math.log10(low)) / count
    return [10 ** (math.log10(low) + i * step) for i in range(count + 1)]


def render_scatter_summary(
    title: str,
    pairs: Sequence[tuple[float, float]],
    x_label: str = "MithriLog (s)",
    y_label: str = "Splunk (s)",
) -> str:
    """Figure 16 as quartile summaries of both axes plus win counts."""

    def quartiles(values: list[float]) -> tuple[float, float, float]:
        ordered = sorted(values)
        n = len(ordered)
        return (
            ordered[n // 4],
            ordered[n // 2],
            ordered[(3 * n) // 4],
        )

    if not pairs:
        return f"{title}\n(no samples)"
    xs = [p[0] for p in pairs]
    ys = [p[1] for p in pairs]
    wins = sum(1 for x, y in pairs if x < y)
    xq, yq = quartiles(xs), quartiles(ys)
    return "\n".join(
        [
            title,
            f"samples: {len(pairs)}; MithriLog faster on {wins} "
            f"({100 * wins / len(pairs):.0f}%)",
            f"{x_label:>16}: q25={xq[0]:.4f} median={xq[1]:.4f} q75={xq[2]:.4f}",
            f"{y_label:>16}: q25={yq[0]:.4f} median={yq[1]:.4f} q75={yq[2]:.4f}",
        ]
    )
