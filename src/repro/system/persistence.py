"""Save and load a MithriLog store.

A store directory contains:

- ``pages.bin`` — every flash page: ``u32 addr | u32 len | u32 checksum |
  payload`` records (both data pages and spilled index/leaf pages),
- ``store.json`` — system metadata, the inverted index's in-memory state
  (row buffers, pool tails, snapshots) and the key parameters needed to
  reconstruct a compatible system.

Only the prototype-parameterisable state is persisted; a loaded system
answers queries identically to the one that was saved (the round-trip
tests assert exactly that).
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Union

from repro.errors import StorageError
from repro.params import (
    CuckooParams,
    IndexParams,
    LZAHParams,
    PipelineParams,
    StorageParams,
    SystemParams,
)
from repro.storage.page import Page
from repro.system.mithrilog import MithriLogSystem

_PAGE_HEADER = struct.Struct("<III")
_FORMAT_VERSION = 1


def _params_to_dict(params: SystemParams) -> dict:
    return {
        "pipeline": vars(params.pipeline).copy(),
        "cuckoo": vars(params.cuckoo).copy(),
        "lzah": vars(params.lzah).copy(),
        "storage": vars(params.storage).copy(),
        "index": vars(params.index).copy(),
        "num_pipelines": params.num_pipelines,
    }


def _params_from_dict(data: dict) -> SystemParams:
    return SystemParams(
        pipeline=PipelineParams(**data["pipeline"]),
        cuckoo=CuckooParams(**data["cuckoo"]),
        lzah=LZAHParams(**data["lzah"]),
        storage=StorageParams(**data["storage"]),
        index=IndexParams(**data["index"]),
        num_pipelines=int(data["num_pipelines"]),
    )


def save_store(system: MithriLogSystem, directory: Union[str, Path]) -> None:
    """Persist a system's store to ``directory`` (created if missing)."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    with open(path / "pages.bin", "wb") as handle:
        flash = system.device.flash
        for addr in sorted(a for a in range(flash.next_free_address) if a in flash):
            page = flash.read_page(addr)
            handle.write(_PAGE_HEADER.pack(addr, len(page.data), page.checksum))
            handle.write(page.data)

    metadata = {
        "version": _FORMAT_VERSION,
        "params": _params_to_dict(system.params),
        "original_bytes": system.original_bytes,
        "total_lines": system.total_lines,
        "accelerator_rate": system._accelerator_rate,
        "pipeline_rate": system._pipeline_rate,
        "decompressor_rate": system._decompressor_rate,
        "index": {
            "data_pages": list(system.index.data_pages),
            "table": system.index.table.to_state(),
            "leaves": system.index.store.leaves.to_state(),
            "roots": system.index.store.roots.to_state(),
            "snapshots": system.index.snapshots.to_state(),
        },
    }
    with open(path / "store.json", "w", encoding="utf-8") as handle:
        json.dump(metadata, handle)


def load_store(directory: Union[str, Path], seed: int = 0) -> MithriLogSystem:
    """Reconstruct a system from a directory written by :func:`save_store`."""
    path = Path(directory)
    try:
        with open(path / "store.json", "r", encoding="utf-8") as handle:
            metadata = json.load(handle)
    except FileNotFoundError as exc:
        raise StorageError(f"{path} is not a MithriLog store: {exc}") from exc
    if metadata.get("version") != _FORMAT_VERSION:
        raise StorageError(
            f"store format version {metadata.get('version')} not supported"
        )

    system = MithriLogSystem(_params_from_dict(metadata["params"]), seed=seed)
    flash = system.device.flash
    with open(path / "pages.bin", "rb") as handle:
        while True:
            header = handle.read(_PAGE_HEADER.size)
            if not header:
                break
            if len(header) != _PAGE_HEADER.size:
                raise StorageError("truncated pages.bin record header")
            addr, length, checksum = _PAGE_HEADER.unpack(header)
            payload = handle.read(length)
            if len(payload) != length:
                raise StorageError("truncated pages.bin payload")
            page = Page(data=payload, checksum=checksum)
            page.verify()
            flash.write_page(addr, page)

    index_state = metadata["index"]
    system.index._data_pages = [int(a) for a in index_state["data_pages"]]
    system.index.table.restore_state(index_state["table"])
    system.index.store.leaves.restore_state(index_state["leaves"])
    system.index.store.roots.restore_state(index_state["roots"])
    system.index.snapshots.restore_state(index_state["snapshots"])

    system.original_bytes = int(metadata["original_bytes"])
    system.total_lines = int(metadata["total_lines"])
    rate = metadata["accelerator_rate"]
    system._accelerator_rate = None if rate is None else float(rate)
    # per-stage rates were added after version 1 stores shipped; older
    # stores fall back to the combined accelerator rate at query time
    for attr in ("pipeline_rate", "decompressor_rate"):
        value = metadata.get(attr)
        setattr(system, f"_{attr}", None if value is None else float(value))
    return system
