"""Concurrent-query scheduling.

Section 4's flexibility claim: the query format "can be used to either
encode one complex query, or to evaluate multiple queries in parallel by
joining them with unions" — concurrent execution at no performance loss.
The operational consequence is a scheduler: given a queue of queries,
pack as many as fit the hardware provisioning (flag pairs, cuckoo load
factor) into each accelerator pass, so a batch of N simple queries costs
~N/8 scans instead of N.

Packing is greedy with a compile-probe: a query joins the current group
if the combined program still compiles (covers both the flag-pair budget
and cuckoo placement limits). Queries that cannot compile even alone run
in software fallback groups of one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.hashfilter import compile_queries
from repro.core.query import Query
from repro.errors import CapacityError, PlacementError
from repro.system.mithrilog import MithriLogSystem, QueryOutcome


@dataclass
class ScheduledRun:
    """Outcome of running a query queue through the scheduler.

    ``queue_times_s``/``service_times_s`` attribute each query's share of
    the makespan: queue time is the elapsed makespan before the query's
    group started (all queries are treated as arriving together at run
    start), service time is its group's pass duration. The sum is that
    query's end-to-end latency — what a service front end reports.
    """

    groups: list[tuple[int, ...]]  # indices of queries per accelerator pass
    outcomes: list[QueryOutcome]  # one per group
    per_query_counts: list[int]  # aligned with the input queue
    makespan_s: float
    queue_times_s: list[float] = field(default_factory=list)  # per query
    service_times_s: list[float] = field(default_factory=list)  # per query

    @property
    def passes(self) -> int:
        return len(self.groups)

    @property
    def per_query_latency_s(self) -> list[float]:
        """Queue plus service time, aligned with the input queue."""
        return [
            q + s for q, s in zip(self.queue_times_s, self.service_times_s)
        ]


class QueryScheduler:
    """Packs a query queue into hardware-sized concurrent groups."""

    def __init__(self, system: MithriLogSystem) -> None:
        self.system = system

    def _fits(self, queries: Sequence[Query]) -> bool:
        try:
            compile_queries(
                queries,
                params=self.system.params.cuckoo,
                seed=self.system.engine.seed,
            )
        except (CapacityError, PlacementError):
            return False
        return True

    def pack(self, queries: Sequence[Query]) -> list[tuple[int, ...]]:
        """Greedy first-fit grouping under the compile probe."""
        groups: list[list[int]] = []
        members: list[list[Query]] = []
        for index, query in enumerate(queries):
            placed = False
            for group, qs in zip(groups, members):
                if self._fits(qs + [query]):
                    group.append(index)
                    qs.append(query)
                    placed = True
                    break
            if not placed:
                groups.append([index])
                members.append([query])
        return [tuple(g) for g in groups]

    def run(self, queries: Sequence[Query], use_index: bool = True) -> ScheduledRun:
        """Execute the whole queue; makespan is the sum of pass times."""
        if not queries:
            raise ValueError("nothing to schedule")
        groups = self.pack(queries)
        outcomes: list[QueryOutcome] = []
        counts = [0] * len(queries)
        queue_times = [0.0] * len(queries)
        service_times = [0.0] * len(queries)
        makespan = 0.0
        for group in groups:
            outcome = self.system.query(
                *[queries[i] for i in group], use_index=use_index
            )
            outcomes.append(outcome)
            elapsed = outcome.stats.elapsed_s
            for position, query_index in enumerate(group):
                counts[query_index] = outcome.per_query_counts[position]
                queue_times[query_index] = makespan
                service_times[query_index] = elapsed
            makespan += elapsed
        return ScheduledRun(
            groups=groups,
            outcomes=outcomes,
            per_query_counts=counts,
            makespan_s=makespan,
            queue_times_s=queue_times,
            service_times_s=service_times,
        )

    def serial_makespan(self, queries: Sequence[Query], use_index: bool = True) -> float:
        """Reference cost of running each query as its own pass."""
        return sum(
            self.system.query(query, use_index=use_index).stats.elapsed_s
            for query in queries
        )
