"""End-to-end system integration.

- :mod:`repro.system.mithrilog` — the :class:`MithriLogSystem` facade:
  ingest (compress + store + index) and query (index -> near-storage
  decompress+filter -> host), with the paper's performance accounting.
- :mod:`repro.system.comparison` — drives identical workloads through
  MithriLog and the software baselines, producing the evaluation's rows.
- :mod:`repro.system.report` — text renderers for the tables/figures.
"""

from repro.system.cluster import ClusterQueryOutcome, MithriLogCluster, ShardError
from repro.system.comparison import ComparisonHarness
from repro.system.mithrilog import IngestReport, MithriLogSystem, QueryOutcome
from repro.system.persistence import load_store, save_store
from repro.system.planner import QueryPlan, QueryPlanner
from repro.system.scheduler import QueryScheduler, ScheduledRun
from repro.system.streaming import StreamingIngestor
from repro.system.wal import JournaledMithriLog, WriteAheadLog

__all__ = [
    "ClusterQueryOutcome",
    "ComparisonHarness",
    "IngestReport",
    "JournaledMithriLog",
    "MithriLogCluster",
    "ShardError",
    "MithriLogSystem",
    "QueryOutcome",
    "QueryPlan",
    "QueryPlanner",
    "QueryScheduler",
    "ScheduledRun",
    "StreamingIngestor",
    "WriteAheadLog",
    "load_store",
    "save_store",
]
