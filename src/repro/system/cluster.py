"""Sharded multi-device deployment.

The paper frames MithriLog for "large-scale system management... in both
cloud and edge environments" (Sections 1 and 8): deployments hold many
accelerated SSDs, and log platforms (Splunk indexers, Elasticsearch
shards) scale by scattering queries across them. This module is that
layer: a :class:`MithriLogCluster` shards ingest across N independent
MithriLog devices and answers queries scatter-gather, with the parallel
makespan being the slowest shard's time.

Sharding is by contiguous batch slices, so each shard stays append-only
and chronologically ordered — the property the per-shard indexes and
snapshots rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.query import Query
from repro.errors import IngestError, QueryError, StorageError
from repro.obs.metrics import get_registry
from repro.obs.profile import TraceContext
from repro.params import SystemParams
from repro.system.mithrilog import IngestReport, MithriLogSystem, QueryOutcome

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injectors import ShardFaultInjector


@dataclass(frozen=True)
class ClusterIngestReport:
    """Aggregate of the per-shard ingest reports."""

    shards: tuple[IngestReport, ...]

    @property
    def lines(self) -> int:
        return sum(r.lines for r in self.shards)

    @property
    def original_bytes(self) -> int:
        return sum(r.original_bytes for r in self.shards)

    @property
    def compression_ratio(self) -> float:
        compressed = sum(r.compressed_bytes for r in self.shards)
        if compressed == 0:
            return 1.0
        return self.original_bytes / compressed

    @property
    def elapsed_s(self) -> float:
        """Shards ingest in parallel: the slowest paces the batch."""
        return max((r.elapsed_s for r in self.shards), default=0.0)


@dataclass(frozen=True)
class ShardError:
    """One shard's failure during a scatter-gather query."""

    shard: int
    error: str  #: exception class name, e.g. ``BadBlockError``
    message: str

    def __str__(self) -> str:
        """Compact ``shard 2: BadBlockError(...)`` rendering."""
        return f"shard {self.shard}: {self.error}({self.message})"


@dataclass
class ClusterQueryOutcome:
    """Scatter-gather query result.

    When every shard answered, ``complete`` is True and the result is
    exhaustive. When shards failed (after the device exhausted its
    retries, or the shard was down), the outcome is explicitly
    ``degraded``: the matches from healthy shards are returned and every
    failing shard is listed in ``shard_errors`` — partial data is never
    passed off as complete.
    """

    per_shard: list[QueryOutcome]
    matched_lines: list[bytes]
    per_query_counts: list[int]
    shard_errors: list[ShardError] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when at least one shard failed to answer."""
        return bool(self.shard_errors)

    @property
    def complete(self) -> bool:
        """True when every queried shard answered."""
        return not self.shard_errors

    @property
    def failed_shards(self) -> list[int]:
        """Indices of the shards that failed to answer."""
        return [e.shard for e in self.shard_errors]

    @property
    def elapsed_s(self) -> float:
        """Parallel execution: the slowest shard's time."""
        return max((o.stats.elapsed_s for o in self.per_shard), default=0.0)

    @property
    def serial_elapsed_s(self) -> float:
        """What one device holding everything serially would pay."""
        return sum(o.stats.elapsed_s for o in self.per_shard)

    def effective_throughput(self, original_bytes: int) -> float:
        if self.elapsed_s == 0:
            return 0.0
        return original_bytes / self.elapsed_s

    @property
    def profile(self) -> dict[str, dict[str, int]]:
        """Cluster-wide per-stage scan counts, summed over shards.

        Each shard's :attr:`QueryStats.profile
        <repro.system.mithrilog.QueryStats.profile>` carries the
        deterministic calls/units synthesis; the merge is a plain sum,
        so the cluster view is as worker-count-invariant as the shards'.
        """
        merged: dict[str, dict[str, int]] = {}
        for outcome in self.per_shard:
            for stage, entry in outcome.stats.profile.items():
                into = merged.setdefault(stage, {"calls": 0, "units": 0})
                into["calls"] += entry.get("calls", 0)
                into["units"] += entry.get("units", 0)
        return merged


class MithriLogCluster:
    """N accelerated storage devices behind one ingest/query interface."""

    def __init__(
        self,
        num_shards: int = 4,
        params: Optional[SystemParams] = None,
        seed: int = 0,
        fault_injector: Optional["ShardFaultInjector"] = None,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("need at least one shard")
        self.shards = [
            MithriLogSystem(params, seed=seed + i) for i in range(num_shards)
        ]
        self.fault_injector = fault_injector
        #: Monotonic scatter-gather counter, minting cluster trace ids.
        self._query_seq = 0
        registry = get_registry()
        if registry is not None:
            self._m_shard_latency = registry.histogram(
                "mithrilog_cluster_shard_query_seconds",
                "Per-shard simulated query latency",
            )
            self._m_degraded = registry.counter(
                "mithrilog_cluster_degraded_queries_total",
                "Scatter-gather queries answered with at least one shard down",
            )
            self._m_shard_errors = registry.counter(
                "mithrilog_cluster_shard_errors_total",
                "Shard failures during scatter-gather, by error class",
                labelnames=("error",),
            )
        else:
            self._m_shard_latency = None
            self._m_degraded = None
            self._m_shard_errors = None

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def original_bytes(self) -> int:
        return sum(s.original_bytes for s in self.shards)

    @property
    def total_lines(self) -> int:
        return sum(s.total_lines for s in self.shards)

    # -- ingest ------------------------------------------------------------

    def ingest(
        self,
        lines: Sequence[bytes],
        timestamps: Optional[Sequence[float]] = None,
    ) -> ClusterIngestReport:
        """Shard a batch into contiguous slices, one per device."""
        if timestamps is not None and len(timestamps) != len(lines):
            raise IngestError("timestamps must align one-to-one with lines")
        reports = []
        n = len(lines)
        base = n // self.num_shards
        extra = n % self.num_shards
        start = 0
        for index, shard in enumerate(self.shards):
            size = base + (1 if index < extra else 0)
            if size == 0:
                continue
            chunk = lines[start : start + size]
            stamps = (
                timestamps[start : start + size] if timestamps is not None else None
            )
            reports.append(shard.ingest(chunk, timestamps=stamps))
            start += size
        return ClusterIngestReport(shards=tuple(reports))

    # -- query ---------------------------------------------------------------

    def query(
        self,
        *queries: Query,
        use_index: bool = True,
        workers: int = 1,
    ) -> ClusterQueryOutcome:
        """Scatter the queries, gather matches in shard order.

        Storage failures inside a shard (a page still failing after the
        device's retries, a shard that is down) do not fail the whole
        query: the shard is recorded in ``shard_errors`` and the outcome
        comes back explicitly degraded, with the healthy shards' matches
        intact. ``workers`` is handed to each shard's scan executor
        (see :meth:`repro.system.mithrilog.MithriLogSystem.query`).

        Every shard runs under one cluster trace context (``cq<n>``)
        with its shard index as a coordinate, so spans from one
        scatter-gather stay correlated across the shards' tracers.
        """
        if not queries:
            raise QueryError("query() needs at least one query")
        self._query_seq += 1
        context = TraceContext(trace_id=f"cq{self._query_seq}")
        per_shard = []
        matched: list[bytes] = []
        counts = [0] * len(queries)
        shard_errors: list[ShardError] = []
        for index, shard in enumerate(self.shards):
            if shard.total_lines == 0:
                continue
            try:
                if self.fault_injector is not None:
                    self.fault_injector.on_query(index)
                outcome = shard.query(
                    *queries, use_index=use_index, workers=workers,
                    trace_context=context.child(shard=index),
                )
            except StorageError as exc:
                shard_errors.append(
                    ShardError(
                        shard=index, error=type(exc).__name__, message=str(exc)
                    )
                )
                if self._m_shard_errors is not None:
                    self._m_shard_errors.inc(error=type(exc).__name__)
                continue
            per_shard.append(outcome)
            if self._m_shard_latency is not None:
                self._m_shard_latency.observe(outcome.stats.elapsed_s)
            matched.extend(outcome.matched_lines)
            for q in range(len(queries)):
                counts[q] += outcome.per_query_counts[q]
        if shard_errors and self._m_degraded is not None:
            self._m_degraded.inc()
        return ClusterQueryOutcome(
            per_shard=per_shard,
            matched_lines=matched,
            per_query_counts=counts,
            shard_errors=shard_errors,
        )

    def scan_all(
        self, *queries: Query, workers: int = 1
    ) -> ClusterQueryOutcome:
        return self.query(*queries, use_index=False, workers=workers)

    def close(self) -> None:
        """Release every shard's scan worker pools (idempotent)."""
        for shard in self.shards:
            shard.close()
