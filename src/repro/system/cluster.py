"""Sharded multi-device deployment.

The paper frames MithriLog for "large-scale system management... in both
cloud and edge environments" (Sections 1 and 8): deployments hold many
accelerated SSDs, and log platforms (Splunk indexers, Elasticsearch
shards) scale by scattering queries across them. This module is that
layer: a :class:`MithriLogCluster` shards ingest across N independent
MithriLog devices and answers queries scatter-gather, with the parallel
makespan being the slowest shard's time.

Sharding is by contiguous batch slices, so each shard stays append-only
and chronologically ordered — the property the per-shard indexes and
snapshots rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.query import Query
from repro.errors import IngestError, QueryError
from repro.params import SystemParams
from repro.system.mithrilog import IngestReport, MithriLogSystem, QueryOutcome


@dataclass(frozen=True)
class ClusterIngestReport:
    """Aggregate of the per-shard ingest reports."""

    shards: tuple[IngestReport, ...]

    @property
    def lines(self) -> int:
        return sum(r.lines for r in self.shards)

    @property
    def original_bytes(self) -> int:
        return sum(r.original_bytes for r in self.shards)

    @property
    def compression_ratio(self) -> float:
        compressed = sum(r.compressed_bytes for r in self.shards)
        if compressed == 0:
            return 1.0
        return self.original_bytes / compressed

    @property
    def elapsed_s(self) -> float:
        """Shards ingest in parallel: the slowest paces the batch."""
        return max((r.elapsed_s for r in self.shards), default=0.0)


@dataclass
class ClusterQueryOutcome:
    """Scatter-gather query result."""

    per_shard: list[QueryOutcome]
    matched_lines: list[bytes]
    per_query_counts: list[int]

    @property
    def elapsed_s(self) -> float:
        """Parallel execution: the slowest shard's time."""
        return max((o.stats.elapsed_s for o in self.per_shard), default=0.0)

    @property
    def serial_elapsed_s(self) -> float:
        """What one device holding everything serially would pay."""
        return sum(o.stats.elapsed_s for o in self.per_shard)

    def effective_throughput(self, original_bytes: int) -> float:
        if self.elapsed_s == 0:
            return 0.0
        return original_bytes / self.elapsed_s


class MithriLogCluster:
    """N accelerated storage devices behind one ingest/query interface."""

    def __init__(
        self,
        num_shards: int = 4,
        params: Optional[SystemParams] = None,
        seed: int = 0,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("need at least one shard")
        self.shards = [
            MithriLogSystem(params, seed=seed + i) for i in range(num_shards)
        ]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def original_bytes(self) -> int:
        return sum(s.original_bytes for s in self.shards)

    @property
    def total_lines(self) -> int:
        return sum(s.total_lines for s in self.shards)

    # -- ingest ------------------------------------------------------------

    def ingest(
        self,
        lines: Sequence[bytes],
        timestamps: Optional[Sequence[float]] = None,
    ) -> ClusterIngestReport:
        """Shard a batch into contiguous slices, one per device."""
        if timestamps is not None and len(timestamps) != len(lines):
            raise IngestError("timestamps must align one-to-one with lines")
        reports = []
        n = len(lines)
        base = n // self.num_shards
        extra = n % self.num_shards
        start = 0
        for index, shard in enumerate(self.shards):
            size = base + (1 if index < extra else 0)
            if size == 0:
                continue
            chunk = lines[start : start + size]
            stamps = (
                timestamps[start : start + size] if timestamps is not None else None
            )
            reports.append(shard.ingest(chunk, timestamps=stamps))
            start += size
        return ClusterIngestReport(shards=tuple(reports))

    # -- query ---------------------------------------------------------------

    def query(self, *queries: Query, use_index: bool = True) -> ClusterQueryOutcome:
        """Scatter the queries, gather matches in shard order."""
        if not queries:
            raise QueryError("query() needs at least one query")
        per_shard = []
        matched: list[bytes] = []
        counts = [0] * len(queries)
        for shard in self.shards:
            if shard.total_lines == 0:
                continue
            outcome = shard.query(*queries, use_index=use_index)
            per_shard.append(outcome)
            matched.extend(outcome.matched_lines)
            for q in range(len(queries)):
                counts[q] += outcome.per_query_counts[q]
        return ClusterQueryOutcome(
            per_shard=per_shard,
            matched_lines=matched,
            per_query_counts=counts,
        )

    def scan_all(self, *queries: Query) -> ClusterQueryOutcome:
        return self.query(*queries, use_index=False)
