"""Durability: write-ahead logging and crash recovery.

The simulated flash device lives in memory, so durability in this
reproduction is a host-side contract, the way log *collectors* provide
it: every ingested batch is appended to a write-ahead log on disk before
it is considered accepted; checkpoints persist the whole store
(:mod:`repro.system.persistence`) and truncate the WAL; recovery loads
the last checkpoint and replays the WAL's tail. Losing neither
acknowledged lines nor index consistency across a crash is the property
the tests drive.

WAL record format (binary, self-delimiting, one record per batch):

``u32 record_bytes | u8 has_timestamps | u32 n_lines | u32 crc32(body) |
gzip(payload)``

where the payload is newline-joined lines, optionally followed by the
``n_lines`` float64 timestamps. The body CRC makes *corruption* (bit
rot, torn sector) distinguishable from a merely *short* file, so
recovery can classify the tail correctly: a torn or corrupt final record
is dropped — its batch was never acknowledged — and
:meth:`WriteAheadLog.repair` physically truncates the file back to the
last valid record so later appends never land beyond unreadable bytes
(which would silently orphan every acknowledged batch after the tear).

Fault injection: an optional
:class:`repro.faults.WalFaultInjector` tears appends mid-record,
exactly as a crash between ``write`` and ``flush`` would.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Optional, Sequence, Union

from repro.errors import IngestError, TornRecordError, WalRecordError
from repro.obs.metrics import get_registry
from repro.system.mithrilog import IngestReport, MithriLogSystem
from repro.system.persistence import load_store, save_store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injectors import WalFaultInjector

_HEADER = struct.Struct("<IBII")

#: One replayed batch: the lines and their optional timestamps.
Batch = tuple[list[bytes], Optional[list[float]]]


def encode_record(
    lines: Sequence[bytes], timestamps: Optional[Sequence[float]] = None
) -> bytes:
    """Encode one batch as a self-delimiting WAL record."""
    if not lines:
        raise WalRecordError("a WAL record must carry at least one line")
    if timestamps is not None and len(timestamps) != len(lines):
        raise WalRecordError("timestamps must align with lines")
    payload = b"\n".join(lines)
    if timestamps is not None:
        payload += b"\x00" + struct.pack(f"<{len(timestamps)}d", *timestamps)
    body = zlib.compress(payload, 1)
    header = _HEADER.pack(
        len(body),
        1 if timestamps is not None else 0,
        len(lines),
        zlib.crc32(body),
    )
    return header + body


def decode_record(blob: bytes, pos: int = 0) -> tuple[list[bytes], Optional[list[float]], int]:
    """Decode the record starting at ``pos``; returns (lines, stamps, next_pos).

    Raises :class:`repro.errors.TornRecordError` when the blob ends before
    the record does (crash mid-append) and
    :class:`repro.errors.WalRecordError` when the record is complete but
    corrupt (checksum, structure). Torn vs corrupt matters to recovery
    only for reporting; both stop the replay.
    """
    if pos + _HEADER.size > len(blob):
        raise TornRecordError("WAL record header cut short")
    body_len, has_stamps, n_lines, crc = _HEADER.unpack(
        blob[pos : pos + _HEADER.size]
    )
    if has_stamps not in (0, 1):
        raise WalRecordError(f"WAL record flag byte {has_stamps} is invalid")
    if n_lines == 0:
        raise WalRecordError("WAL record declares zero lines")
    start = pos + _HEADER.size
    if start + body_len > len(blob):
        raise TornRecordError("WAL record body cut short")
    body = blob[start : start + body_len]
    if zlib.crc32(body) != crc:
        raise WalRecordError("WAL record checksum mismatch")
    try:
        payload = zlib.decompress(body)
    except zlib.error as exc:
        raise WalRecordError(f"WAL record body undecodable: {exc}") from exc
    if has_stamps:
        stamp_bytes = 8 * n_lines
        if len(payload) < stamp_bytes + 1:
            raise WalRecordError("WAL record too short for its timestamps")
        text, raw = payload[: -stamp_bytes - 1], payload[-stamp_bytes:]
        timestamps: Optional[list[float]] = list(
            struct.unpack(f"<{n_lines}d", raw)
        )
    else:
        text, timestamps = payload, None
    lines = text.split(b"\n")
    if len(lines) != n_lines:
        raise WalRecordError(
            f"WAL record declares {n_lines} lines but carries {len(lines)}"
        )
    return lines, timestamps, start + body_len


@dataclass
class WalScanReport:
    """Outcome of walking the journal front to back."""

    batches: list[Batch] = field(default_factory=list)
    valid_bytes: int = 0  #: offset of the last byte of the last valid record
    total_bytes: int = 0
    torn: bool = False  #: the tail was incomplete (crash mid-append)
    corrupt: bool = False  #: the tail was complete but failed validation
    reason: str = ""

    @property
    def clean(self) -> bool:
        """True when every byte of the file decoded into valid records."""
        return self.valid_bytes == self.total_bytes


class WriteAheadLog:
    """Append-only batch journal on the host filesystem."""

    def __init__(
        self,
        path: Union[str, Path],
        fault_injector: Optional["WalFaultInjector"] = None,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.touch(exist_ok=True)
        self.fault_injector = fault_injector
        registry = get_registry()
        if registry is not None:
            self._m_appends = registry.counter(
                "mithrilog_wal_appends_total", "WAL batches journalled"
            )
            self._m_bytes = registry.counter(
                "mithrilog_wal_bytes_appended_total", "WAL bytes journalled"
            )
            self._m_fsyncs = registry.counter(
                "mithrilog_wal_fsync_batches_total",
                "Flushed append batches (one fsync boundary each)",
            )
            self._m_recoveries = registry.counter(
                "mithrilog_wal_recoveries_total",
                "WAL recovery outcomes",
                labelnames=("outcome",),
            )
            self._m_dropped = registry.counter(
                "mithrilog_wal_records_dropped_total",
                "Torn/corrupt tail records discarded by repair",
            )
            self._m_truncated = registry.counter(
                "mithrilog_wal_bytes_truncated_total",
                "Bytes cut off the WAL by repair",
            )
        else:
            self._m_appends = None
            self._m_bytes = None
            self._m_fsyncs = None
            self._m_recoveries = None
            self._m_dropped = None
            self._m_truncated = None

    def append(
        self,
        lines: Sequence[bytes],
        timestamps: Optional[Sequence[float]] = None,
    ) -> None:
        """Journal one batch; returns only once the bytes are flushed."""
        if timestamps is not None and len(timestamps) != len(lines):
            raise IngestError("timestamps must align with lines")
        if not lines:
            return
        record = encode_record(lines, timestamps)
        if self.fault_injector is not None:
            record = self.fault_injector.on_append(record)
        with open(self.path, "ab") as handle:
            handle.write(record)
            handle.flush()
        if self._m_appends is not None:
            self._m_appends.inc()
            self._m_bytes.inc(len(record))
            self._m_fsyncs.inc()

    def scan(self) -> WalScanReport:
        """Walk the journal, collecting valid batches and tail diagnosis."""
        blob = self.path.read_bytes()
        report = WalScanReport(total_bytes=len(blob))
        pos = 0
        while pos < len(blob):
            try:
                lines, timestamps, pos = decode_record(blob, pos)
            except TornRecordError as exc:
                report.torn = True
                report.reason = str(exc)
                break
            except WalRecordError as exc:
                report.corrupt = True
                report.reason = str(exc)
                break
            report.batches.append((lines, timestamps))
            report.valid_bytes = pos
        return report

    def replay(self) -> Iterator[Batch]:
        """Yield ``(lines, timestamps)`` batches in append order.

        A torn or corrupt final record (crash mid-append, tail bit rot)
        is tolerated and dropped — its batch was never acknowledged.
        """
        blob = self.path.read_bytes()
        pos = 0
        while pos < len(blob):
            try:
                lines, timestamps, pos = decode_record(blob, pos)
            except WalRecordError:
                break  # torn or corrupt tail: truncate-and-continue
            yield lines, timestamps

    def repair(self) -> int:
        """Physically truncate the journal to its last valid record.

        Without this, a torn tail left in place would swallow every
        record appended *after* it — acknowledged batches that a later
        replay would silently never reach. Returns the bytes dropped.
        """
        report = self.scan()
        dropped = report.total_bytes - report.valid_bytes
        if dropped:
            blob = self.path.read_bytes()
            self.path.write_bytes(blob[: report.valid_bytes])
        if self._m_recoveries is not None:
            outcome = "torn" if report.torn else (
                "corrupt" if report.corrupt else "clean"
            )
            self._m_recoveries.inc(outcome=outcome)
            if dropped:
                self._m_dropped.inc()
                self._m_truncated.inc(dropped)
        return dropped

    def truncate(self) -> None:
        """Empty the journal (after a checkpoint persisted the store)."""
        self.path.write_bytes(b"")

    @property
    def size_bytes(self) -> int:
        """Current journal size on disk."""
        return self.path.stat().st_size


class JournaledMithriLog:
    """A MithriLog system with WAL-backed durable ingestion."""

    def __init__(
        self,
        store_dir: Union[str, Path],
        system: Optional[MithriLogSystem] = None,
        seed: int = 0,
        wal_fault_injector: Optional["WalFaultInjector"] = None,
    ) -> None:
        self.store_dir = Path(store_dir)
        self.system = system if system is not None else MithriLogSystem(seed=seed)
        self.wal = WriteAheadLog(
            self.store_dir / "wal.bin", fault_injector=wal_fault_injector
        )

    def ingest(
        self,
        lines: Sequence[bytes],
        timestamps: Optional[Sequence[float]] = None,
    ) -> IngestReport:
        """Durable ingest: journal first, then apply."""
        self.wal.append(lines, timestamps)
        return self.system.ingest(lines, timestamps=timestamps)

    def query(self, *queries, **kwargs):
        """Delegate to the underlying system's query path."""
        return self.system.query(*queries, **kwargs)

    def checkpoint(self) -> None:
        """Persist the full store and truncate the journal."""
        save_store(self.system, self.store_dir)
        self.wal.truncate()

    @classmethod
    def recover(cls, store_dir: Union[str, Path], seed: int = 0) -> "JournaledMithriLog":
        """Rebuild after a crash: last checkpoint + WAL tail replay.

        The journal is repaired (torn/corrupt tail physically truncated)
        before new writes are accepted, so post-recovery appends extend a
        well-formed journal rather than hiding behind unreadable bytes.
        """
        store_dir = Path(store_dir)
        if (store_dir / "store.json").exists():
            system = load_store(store_dir, seed=seed)
        else:
            system = MithriLogSystem(seed=seed)
        journaled = cls(store_dir, system=system, seed=seed)
        journaled.wal.repair()
        for lines, timestamps in journaled.wal.replay():
            system.ingest(lines, timestamps=timestamps)
        return journaled
