"""Durability: write-ahead logging and crash recovery.

The simulated flash device lives in memory, so durability in this
reproduction is a host-side contract, the way log *collectors* provide
it: every ingested batch is appended to a write-ahead log on disk before
it is considered accepted; checkpoints persist the whole store
(:mod:`repro.system.persistence`) and truncate the WAL; recovery loads
the last checkpoint and replays the WAL's tail. Losing neither
acknowledged lines nor index consistency across a crash is the property
the tests drive.

WAL record format (binary, self-delimiting):

``u32 record_bytes | u8 has_timestamps | u32 n_lines | gzip(payload)``

where the payload is newline-joined lines, optionally followed by the
``n_lines`` float64 timestamps.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.errors import IngestError, StorageError
from repro.system.mithrilog import IngestReport, MithriLogSystem
from repro.system.persistence import load_store, save_store

_HEADER = struct.Struct("<IBI")


class WriteAheadLog:
    """Append-only batch journal on the host filesystem."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.touch(exist_ok=True)

    def append(
        self,
        lines: Sequence[bytes],
        timestamps: Optional[Sequence[float]] = None,
    ) -> None:
        if timestamps is not None and len(timestamps) != len(lines):
            raise IngestError("timestamps must align with lines")
        if not lines:
            return
        payload = b"\n".join(lines)
        if timestamps is not None:
            payload += b"\x00" + struct.pack(f"<{len(timestamps)}d", *timestamps)
        body = zlib.compress(payload, 1)
        header = _HEADER.pack(len(body), 1 if timestamps is not None else 0, len(lines))
        with open(self.path, "ab") as handle:
            handle.write(header)
            handle.write(body)
            handle.flush()

    def replay(self):
        """Yield ``(lines, timestamps)`` batches in append order.

        A torn final record (crash mid-append) is tolerated and dropped —
        its batch was never acknowledged.
        """
        blob = self.path.read_bytes()
        pos = 0
        while pos + _HEADER.size <= len(blob):
            body_len, has_stamps, n_lines = _HEADER.unpack(
                blob[pos : pos + _HEADER.size]
            )
            start = pos + _HEADER.size
            if start + body_len > len(blob):
                break  # torn tail record
            try:
                payload = zlib.decompress(blob[start : start + body_len])
            except zlib.error:
                break  # corrupted tail
            if has_stamps:
                stamp_bytes = 8 * n_lines
                text, raw = payload[: -stamp_bytes - 1], payload[-stamp_bytes:]
                timestamps = list(struct.unpack(f"<{n_lines}d", raw))
            else:
                text, timestamps = payload, None
            lines = text.split(b"\n") if n_lines else []
            if len(lines) != n_lines:
                raise StorageError("WAL record line count mismatch")
            yield lines, timestamps
            pos = start + body_len

    def truncate(self) -> None:
        self.path.write_bytes(b"")

    @property
    def size_bytes(self) -> int:
        return self.path.stat().st_size


class JournaledMithriLog:
    """A MithriLog system with WAL-backed durable ingestion."""

    def __init__(
        self,
        store_dir: Union[str, Path],
        system: Optional[MithriLogSystem] = None,
        seed: int = 0,
    ) -> None:
        self.store_dir = Path(store_dir)
        self.system = system if system is not None else MithriLogSystem(seed=seed)
        self.wal = WriteAheadLog(self.store_dir / "wal.bin")

    def ingest(
        self,
        lines: Sequence[bytes],
        timestamps: Optional[Sequence[float]] = None,
    ) -> IngestReport:
        """Durable ingest: journal first, then apply."""
        self.wal.append(lines, timestamps)
        return self.system.ingest(lines, timestamps=timestamps)

    def query(self, *queries, **kwargs):
        return self.system.query(*queries, **kwargs)

    def checkpoint(self) -> None:
        """Persist the full store and truncate the journal."""
        save_store(self.system, self.store_dir)
        self.wal.truncate()

    @classmethod
    def recover(cls, store_dir: Union[str, Path], seed: int = 0) -> "JournaledMithriLog":
        """Rebuild after a crash: last checkpoint + WAL tail replay."""
        store_dir = Path(store_dir)
        if (store_dir / "store.json").exists():
            system = load_store(store_dir, seed=seed)
        else:
            system = MithriLogSystem(seed=seed)
        journaled = cls(store_dir, system=system, seed=seed)
        for lines, timestamps in journaled.wal.replay():
            system.ingest(lines, timestamps=timestamps)
        return journaled
