"""Side-by-side evaluation harness (Sections 7.4.2 and 7.5).

Drives identical query workloads through MithriLog and the software
baselines over the same corpus, and aggregates the rows the paper's
tables and figures report: per-query effective throughput (Figure 15),
batch-size averages and improvement factors (Table 6), per-query elapsed
times against Splunk (Figure 16) and total-time improvements (Table 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.baselines.scandb import ScanDatabase
from repro.baselines.splunklike import SplunkLikeEngine
from repro.core.query import Query
from repro.system.mithrilog import MithriLogSystem
from repro.templates.querygen import QueryWorkload


@dataclass(frozen=True)
class ThroughputSample:
    """One query's effective throughput on one system (GB/s)."""

    system: str
    batch_size: int
    gbps: float


@dataclass(frozen=True)
class LatencySample:
    """One query's elapsed time on MithriLog vs the Splunk-like engine."""

    mithrilog_s: float
    splunk_s: float
    full_scan: bool

    @property
    def speedup(self) -> float:
        if self.mithrilog_s == 0:
            return float("inf")
        return self.splunk_s / self.mithrilog_s


@dataclass
class ScanComparison:
    """Figure 15 / Table 6 data: full-scan effective throughputs."""

    samples: list[ThroughputSample] = field(default_factory=list)

    def mean_gbps(self, system: str, batch_size: int) -> float:
        values = [
            s.gbps
            for s in self.samples
            if s.system == system and s.batch_size == batch_size
        ]
        return sum(values) / len(values) if values else 0.0

    def average_improvement(self) -> float:
        """Table 6's bottom row: mean MithriLog/baseline ratio over all
        tested batch sizes."""
        ratios = []
        for batch in (1, 2, 8):
            base = self.mean_gbps("MonetDB", batch)
            ours = self.mean_gbps("MithriLog", batch)
            if base > 0:
                ratios.append(ours / base)
        return sum(ratios) / len(ratios) if ratios else 0.0


@dataclass
class EndToEndComparison:
    """Figure 16 / Table 7 data: indexed end-to-end latencies."""

    samples: list[LatencySample] = field(default_factory=list)

    def total_improvement(self) -> float:
        """Table 7's metric: total Splunk time / total MithriLog time."""
        ours = sum(s.mithrilog_s for s in self.samples)
        theirs = sum(s.splunk_s for s in self.samples)
        return theirs / ours if ours > 0 else 0.0


class ComparisonHarness:
    """Runs one corpus through every system under the same workload."""

    def __init__(self, lines: Sequence[bytes], seed: int = 0) -> None:
        self.lines = list(lines)
        self.original_bytes = sum(len(ln) + 1 for ln in self.lines)
        self.mithrilog = MithriLogSystem(seed=seed)
        self.ingest_report = self.mithrilog.ingest(self.lines)
        self.scan_db = ScanDatabase(self.lines)
        self.splunk = SplunkLikeEngine(self.lines)

    # -- Section 7.4.2: token filter vs full-scan software ----------------

    def run_scan_comparison(self, workload: QueryWorkload) -> ScanComparison:
        """Full-table scans on both systems (indexes disabled)."""
        result = ScanComparison()
        for batch_size, queries in workload.all_batches.items():
            for query in queries:
                ours = self.mithrilog.scan_all(query)
                result.samples.append(
                    ThroughputSample(
                        system="MithriLog",
                        batch_size=batch_size,
                        gbps=ours.effective_throughput(self.original_bytes) / 1e9,
                    )
                )
                theirs = self.scan_db.execute(query)
                result.samples.append(
                    ThroughputSample(
                        system="MonetDB",
                        batch_size=batch_size,
                        gbps=theirs.effective_throughput(self.original_bytes) / 1e9,
                    )
                )
        return result

    # -- Section 7.5: end-to-end with indexes ------------------------------

    def run_end_to_end(
        self,
        workload: QueryWorkload,
        extra_queries: Sequence[Query] = (),
    ) -> EndToEndComparison:
        """Indexed queries on both systems.

        ``extra_queries`` lets callers add the negative-term-heavy
        queries Section 7.5 singles out (e.g. ``NOT <common token>``),
        which no index can narrow and which produce the slow left-edge
        cluster of Figure 16.
        """
        result = EndToEndComparison()
        batches = [q for qs in workload.all_batches.values() for q in qs]
        for query in list(batches) + list(extra_queries):
            ours = self.mithrilog.query(query, use_index=True)
            theirs = self.splunk.execute(query)
            result.samples.append(
                LatencySample(
                    mithrilog_s=ours.stats.elapsed_s,
                    splunk_s=theirs.amortized_elapsed_s,
                    full_scan=theirs.full_scan,
                )
            )
        return result

    # -- correctness cross-check -------------------------------------------

    def verify_agreement(self, queries: Sequence[Query]) -> None:
        """Every system must return the same matching lines (oracle check)."""
        from repro.baselines.grep import grep_indices

        for query in queries:
            expected = grep_indices(query, self.lines)
            ours = self.mithrilog.query(query, use_index=True)
            assert len(ours.matched_lines) == len(expected), (
                f"MithriLog returned {len(ours.matched_lines)} lines, "
                f"oracle says {len(expected)} for {query}"
            )
            splunk = self.splunk.execute(query)
            assert splunk.matching_indices == expected
            scan = self.scan_db.execute(query)
            assert scan.matching_indices == expected
