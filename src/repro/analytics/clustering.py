"""K-means clustering of log windows (the paper's reference [36] style).

Lin et al. cluster logs to group recurring problems; here the same idea
runs over MithriLog's extracted template-count vectors: windows with
similar template mixes cluster together, and small clusters point at
unusual behaviour.

From-scratch k-means with k-means++ seeding, Lloyd iterations and a
deterministic RNG, plus inertia and a simple silhouette score for
choosing k.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np


@dataclass(frozen=True)
class ClusterResult:
    """Assignment of windows to clusters."""

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    iterations: int

    @property
    def k(self) -> int:
        return self.centers.shape[0]

    def cluster_sizes(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.k)


class KMeans:
    """Lloyd's algorithm with k-means++ initialisation."""

    def __init__(self, k: int, max_iter: int = 100, seed: int = 0) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if max_iter <= 0:
            raise ValueError("max_iter must be positive")
        self.k = k
        self.max_iter = max_iter
        self.seed = seed

    def _init_centers(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = X.shape[0]
        centers = [X[rng.integers(n)]]
        for _ in range(1, self.k):
            d2 = np.min(
                ((X[:, None, :] - np.array(centers)[None, :, :]) ** 2).sum(axis=2),
                axis=1,
            )
            total = d2.sum()
            if total == 0:
                centers.append(X[rng.integers(n)])
                continue
            probs = d2 / total
            centers.append(X[rng.choice(n, p=probs)])
        return np.array(centers, dtype=np.float64)

    def fit(self, X: np.ndarray) -> ClusterResult:
        """Cluster rows of ``X``; deterministic for a fixed seed."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D (windows x features)")
        if X.shape[0] < self.k:
            raise ValueError(f"{X.shape[0]} points cannot form {self.k} clusters")
        rng = np.random.default_rng(self.seed)
        centers = self._init_centers(X, rng)
        labels = np.zeros(X.shape[0], dtype=np.int64)
        for iteration in range(1, self.max_iter + 1):
            d2 = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            new_labels = d2.argmin(axis=1)
            for j in range(self.k):
                members = X[new_labels == j]
                if len(members):
                    centers[j] = members.mean(axis=0)
                else:
                    # re-seed an empty cluster at the farthest point
                    centers[j] = X[d2.min(axis=1).argmax()]
            if np.array_equal(new_labels, labels) and iteration > 1:
                break
            labels = new_labels
        inertia = float(
            ((X - centers[labels]) ** 2).sum()
        )
        return ClusterResult(
            labels=labels, centers=centers, inertia=inertia, iterations=iteration
        )


def silhouette(X: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient (O(n^2); fine for window counts)."""
    X = np.asarray(X, dtype=np.float64)
    labels = np.asarray(labels)
    n = X.shape[0]
    unique = np.unique(labels)
    if len(unique) < 2:
        raise ValueError("silhouette needs at least two clusters")
    dists = np.sqrt(((X[:, None, :] - X[None, :, :]) ** 2).sum(axis=2))
    scores = np.zeros(n)
    for i in range(n):
        same = labels == labels[i]
        same[i] = False
        a = dists[i][same].mean() if same.any() else 0.0
        b = min(
            dists[i][labels == other].mean()
            for other in unique
            if other != labels[i]
        )
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(scores.mean())
