"""Aggregation over query results.

Section 3: the filtered stream "can be further processed by the host
software to perform either complex analytics, or to simply display" —
and what log UIs display first is aggregates: matches over time, top
hosts, top values of `key=value` fields. This module is that display
layer, operating on the matched lines a query returns.

Field conventions follow the HPC4/syslog anatomy the datasets use:
the reporting host is the 4th whitespace field (Figure 1's samples),
and message parameters appear as ``key=value`` tokens.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.tokenizer import split_tokens
from repro.datasets.timestamps import extract_epoch

#: HPC4 line anatomy: alert tag, epoch, date, host, ...
_HOST_FIELD = 3


def host_of(line: bytes) -> Optional[bytes]:
    """The reporting host of an HPC4-style line (None if too short)."""
    fields = line.split(None, _HOST_FIELD + 1)
    if len(fields) <= _HOST_FIELD:
        return None
    return fields[_HOST_FIELD]


def extract_fields(line: bytes) -> dict[bytes, bytes]:
    """All ``key=value`` tokens of a line (last occurrence wins)."""
    out: dict[bytes, bytes] = {}
    for token in split_tokens(line):
        eq = token.find(b"=")
        if 0 < eq < len(token) - 1:
            out[token[:eq]] = token[eq + 1 :]
    return out


@dataclass(frozen=True)
class TimeSeries:
    """Matches per fixed time bucket."""

    bucket_s: float
    start: float
    counts: tuple[int, ...]

    @property
    def total(self) -> int:
        return sum(self.counts)

    def peak_bucket(self) -> int:
        """Index of the busiest bucket."""
        if not self.counts:
            raise ValueError("empty series")
        return max(range(len(self.counts)), key=self.counts.__getitem__)


@dataclass(frozen=True)
class AggregateReport:
    """What a log UI's summary pane shows for one result set."""

    total: int
    top_hosts: tuple[tuple[bytes, int], ...]
    top_fields: dict[bytes, tuple[tuple[bytes, int], ...]]
    series: Optional[TimeSeries]

    def render(self) -> str:
        """Human-readable summary block."""
        lines = [f"{self.total:,} matching lines"]
        if self.top_hosts:
            hosts = ", ".join(
                f"{h.decode(errors='replace')} ({c})" for h, c in self.top_hosts
            )
            lines.append(f"top hosts: {hosts}")
        for key, values in self.top_fields.items():
            rendered = ", ".join(
                f"{v.decode(errors='replace')} ({c})" for v, c in values
            )
            lines.append(f"top {key.decode(errors='replace')}: {rendered}")
        if self.series is not None and self.series.counts:
            peak = self.series.peak_bucket()
            lines.append(
                f"rate: {len(self.series.counts)} buckets of "
                f"{self.series.bucket_s:.0f}s, peak {self.series.counts[peak]} "
                f"at t={self.series.start + peak * self.series.bucket_s:.0f}"
            )
        return "\n".join(lines)


def matches_over_time(
    lines: Sequence[bytes], bucket_s: float = 60.0
) -> Optional[TimeSeries]:
    """Bucket matched lines by their extracted epochs."""
    if bucket_s <= 0:
        raise ValueError("bucket_s must be positive")
    epochs = [extract_epoch(line) for line in lines]
    known = [e for e in epochs if e is not None]
    if not known:
        return None
    start = min(known)
    buckets = int((max(known) - start) // bucket_s) + 1
    counts = [0] * buckets
    for epoch in known:
        counts[int((epoch - start) // bucket_s)] += 1
    return TimeSeries(bucket_s=bucket_s, start=start, counts=tuple(counts))


def aggregate_matches(
    lines: Sequence[bytes],
    top_k: int = 5,
    fields: Sequence[bytes] = (),
    bucket_s: float = 60.0,
) -> AggregateReport:
    """Summarise a result set: totals, top hosts, top field values, rate.

    ``fields`` names the ``key=value`` keys to tabulate; when empty, the
    report tabulates the keys that actually occur, keeping the ``top_k``
    most frequent keys.
    """
    if top_k <= 0:
        raise ValueError("top_k must be positive")
    hosts: Counter = Counter()
    per_field: dict[bytes, Counter] = {}
    key_frequency: Counter = Counter()
    for line in lines:
        host = host_of(line)
        if host is not None:
            hosts[host] += 1
        extracted = extract_fields(line)
        key_frequency.update(extracted.keys())
        for key, value in extracted.items():
            if fields and key not in fields:
                continue
            per_field.setdefault(key, Counter())[value] += 1
    if not fields:
        keep = {key for key, _count in key_frequency.most_common(top_k)}
        per_field = {k: v for k, v in per_field.items() if k in keep}
    return AggregateReport(
        total=len(lines),
        top_hosts=tuple(hosts.most_common(top_k)),
        top_fields={
            key: tuple(counter.most_common(top_k))
            for key, counter in sorted(per_field.items())
        },
        series=matches_over_time(lines, bucket_s),
    )
