"""Template count vectors over time windows.

The standard feature representation for log-based anomaly detection (Xu
et al. [79], LogAnomaly [41]): bucket the stream into fixed time windows
and count occurrences of each template id per window. Rows are windows,
columns are templates; untagged lines get their own final column so
"unparsed volume" is itself a signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class TemplateCountMatrix:
    """Windows x templates count matrix plus its axes."""

    counts: np.ndarray  # shape (windows, templates + 1); last col = untagged
    window_starts: np.ndarray  # shape (windows,): window start timestamps
    window_s: float
    num_templates: int

    @property
    def num_windows(self) -> int:
        return self.counts.shape[0]

    def window_of(self, timestamp: float) -> int:
        """Index of the window containing ``timestamp``."""
        if self.num_windows == 0:
            raise ValueError("empty count matrix")
        first = float(self.window_starts[0])
        index = int((timestamp - first) // self.window_s)
        if not 0 <= index < self.num_windows:
            raise ValueError(f"timestamp {timestamp} outside the counted range")
        return index

    def volumes(self) -> np.ndarray:
        """Total lines per window."""
        return self.counts.sum(axis=1)


def count_windows(
    template_ids: Sequence[Optional[int]],
    timestamps: Sequence[float],
    window_s: float,
    num_templates: int,
) -> TemplateCountMatrix:
    """Build the count matrix from per-line tags and timestamps.

    ``template_ids[i]`` is the tag of the line at ``timestamps[i]``
    (``None`` = unparsed). Windows span the full observed time range;
    windows with no lines stay all-zero (quiet periods are data too).
    """
    if len(template_ids) != len(timestamps):
        raise ValueError("template_ids and timestamps must align")
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    if num_templates <= 0:
        raise ValueError("num_templates must be positive")
    if not timestamps:
        return TemplateCountMatrix(
            counts=np.zeros((0, num_templates + 1), dtype=np.int64),
            window_starts=np.zeros(0),
            window_s=window_s,
            num_templates=num_templates,
        )
    t0 = min(timestamps)
    t_last = max(timestamps)
    windows = int((t_last - t0) // window_s) + 1
    counts = np.zeros((windows, num_templates + 1), dtype=np.int64)
    for tid, ts in zip(template_ids, timestamps):
        w = int((ts - t0) // window_s)
        col = num_templates if tid is None else tid
        if not 0 <= col <= num_templates:
            raise ValueError(f"template id {tid} outside [0, {num_templates})")
        counts[w, col] += 1
    starts = t0 + window_s * np.arange(windows)
    return TemplateCountMatrix(
        counts=counts,
        window_starts=starts,
        window_s=window_s,
        num_templates=num_templates,
    )
