"""Workload mining: slices, hot templates and drift over query journals.

*Query Log Compression for Workload Analytics* (PAPERS.md) argues the
query log is itself a dataset worth analysing; this module is the
analysis. It consumes :class:`repro.obs.journal.QueryJournal` records
(or their exported payloads) and produces the fleet-level view PR 2's
per-query telemetry cannot: which tenants, templates, bottleneck stages
and outcomes dominate over thousands of requests, with enough latency
structure per slice that an aggregate win cannot hide a per-slice loss.

Everything is deterministic: slices are dict-ordered by key, percentile
math is nearest-rank, and no wall clock or RNG is consulted — mining
the same journal twice yields byte-identical profiles (a property the
test suite pins with hypothesis).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from repro.errors import QueryError
from repro.obs.journal import JournalRecord, QueryJournal, template_fingerprint

__all__ = [
    "DIMENSIONS",
    "DriftReport",
    "SliceStats",
    "WorkloadProfile",
    "drift",
    "hot_templates",
    "line_template_fingerprint",
    "mine",
]

#: The slicing dimensions a profile always materialises.
DIMENSIONS = ("tenant", "template", "stage", "outcome", "mode")

_HEX_RUN = re.compile(r"\b0x[0-9a-fA-F]+\b|\b[0-9a-fA-F]{8,}\b")
_DIGIT_RUN = re.compile(r"\d+")


def line_template_fingerprint(line: bytes) -> str:
    """Fingerprint of a raw log line's *template* (variables masked).

    The standing-query registry keys its ``distinct_templates`` window
    aggregate on this: hex runs and digit runs are masked before
    hashing, so two lines that differ only in request ids, addresses or
    counters collapse to the same fingerprint. Shares the sha1-prefix
    scheme of :func:`repro.obs.journal.template_fingerprint`.
    """
    text = line.decode("utf-8", errors="replace")
    text = _HEX_RUN.sub("#", text)
    text = _DIGIT_RUN.sub("#", text)
    return template_fingerprint(text)


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile over pre-sorted values (deterministic)."""
    if not values:
        return 0.0
    rank = max(1, -(-len(values) * q // 100))
    return values[int(rank) - 1]


@dataclass
class SliceStats:
    """One slice of the workload: counts, losses and latency shape.

    ``value`` is the slice key within its dimension (a tenant name, a
    template fingerprint, a bottleneck stage, an outcome, or an
    execution mode). Latency percentiles cover answered responses only
    (OK and approximated) — refusals are instantaneous and would drag
    every percentile toward zero; their story is told by the outcome
    tallies and ``reasons`` instead.
    """

    dimension: str
    value: str
    count: int = 0
    ok: int = 0
    approximated: int = 0
    rejected: int = 0
    shed: int = 0
    timed_out: int = 0
    matches: int = 0
    reasons: dict[str, int] = field(default_factory=dict)
    _latencies_ms: list[float] = field(default_factory=list, repr=False)
    _service_ms: list[float] = field(default_factory=list, repr=False)
    _queue_ms: list[float] = field(default_factory=list, repr=False)

    def absorb(self, record: JournalRecord) -> None:
        self.count += 1
        setattr(self, record.outcome, getattr(self, record.outcome) + 1)
        if record.reason:
            self.reasons[record.reason] = self.reasons.get(record.reason, 0) + 1
        if record.outcome in ("ok", "approximated"):
            self.matches += record.matches
            self._latencies_ms.append(record.latency_s * 1e3)
            self._service_ms.append(record.service_s * 1e3)
            self._queue_ms.append(record.queue_s * 1e3)

    def seal(self) -> None:
        """Sort the latency pools once; percentile reads become O(1)."""
        self._latencies_ms.sort()
        self._service_ms.sort()
        self._queue_ms.sort()

    # -- derived numbers --------------------------------------------------

    @property
    def answered(self) -> int:
        """Responses that carried an answer: exact or estimated."""
        return self.ok + self.approximated

    @property
    def lost(self) -> int:
        return self.rejected + self.shed + self.timed_out

    @property
    def loss_rate(self) -> float:
        return self.lost / self.count if self.count else 0.0

    @property
    def p50_ms(self) -> float:
        return _percentile(self._latencies_ms, 50)

    @property
    def p95_ms(self) -> float:
        return _percentile(self._latencies_ms, 95)

    @property
    def p99_ms(self) -> float:
        return _percentile(self._latencies_ms, 99)

    @property
    def mean_ms(self) -> float:
        if not self._latencies_ms:
            return 0.0
        return sum(self._latencies_ms) / len(self._latencies_ms)

    @property
    def p99_service_ms(self) -> float:
        return _percentile(self._service_ms, 99)

    @property
    def min_service_ms(self) -> float:
        """Cheapest pass this slice ever rode.

        A shared pass is paced by its most expensive rider, so every
        pass costs at least each member's intrinsic cost — the minimum
        over passes lower-bounds a template's own cost without the
        co-rider smearing that inflates means and percentiles. This is
        the number admission hints trust.
        """
        return self._service_ms[0] if self._service_ms else 0.0

    @property
    def mean_service_ms(self) -> float:
        if not self._service_ms:
            return 0.0
        return sum(self._service_ms) / len(self._service_ms)

    @property
    def mean_queue_ms(self) -> float:
        if not self._queue_ms:
            return 0.0
        return sum(self._queue_ms) / len(self._queue_ms)

    def to_dict(self) -> dict:
        return {
            "dimension": self.dimension,
            "value": self.value,
            "count": self.count,
            "ok": self.ok,
            "approximated": self.approximated,
            "rejected": self.rejected,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "loss_rate": round(self.loss_rate, 6),
            "matches": self.matches,
            "reasons": dict(sorted(self.reasons.items())),
            "p50_ms": round(self.p50_ms, 4),
            "p95_ms": round(self.p95_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "mean_ms": round(self.mean_ms, 4),
            "p99_service_ms": round(self.p99_service_ms, 4),
            "min_service_ms": round(self.min_service_ms, 4),
            "mean_service_ms": round(self.mean_service_ms, 4),
            "mean_queue_ms": round(self.mean_queue_ms, 4),
        }


@dataclass
class WorkloadProfile:
    """The mined view of one journal window (or a whole journal)."""

    window: Optional[str]  #: the window mined, or ``None`` for all records
    records: int
    duration_s: float  #: simulated span the records cover
    templates: dict[str, str]  #: fingerprint -> query text (the header map)
    _slices: dict[str, dict[str, SliceStats]] = field(default_factory=dict)

    def slices(self, dimension: str) -> dict[str, SliceStats]:
        if dimension not in DIMENSIONS:
            raise QueryError(
                f"unknown slicing dimension {dimension!r} "
                f"(expected one of {DIMENSIONS})"
            )
        return self._slices.get(dimension, {})

    # -- aggregates -------------------------------------------------------

    @property
    def total(self) -> SliceStats:
        """The all-records slice (dimension ``outcome`` rolled up)."""
        rollup = SliceStats(dimension="total", value="all")
        for stats in self._slices.get("tenant", {}).values():
            rollup.count += stats.count
            rollup.ok += stats.ok
            rollup.approximated += stats.approximated
            rollup.rejected += stats.rejected
            rollup.shed += stats.shed
            rollup.timed_out += stats.timed_out
            rollup.matches += stats.matches
            for reason, count in stats.reasons.items():
                rollup.reasons[reason] = rollup.reasons.get(reason, 0) + count
            rollup._latencies_ms.extend(stats._latencies_ms)
            rollup._service_ms.extend(stats._service_ms)
            rollup._queue_ms.extend(stats._queue_ms)
        rollup.seal()
        return rollup

    @property
    def goodput_qps(self) -> float:
        """Answered completions per simulated second across the window."""
        if self.duration_s <= 0:
            return 0.0
        return self.total.answered / self.duration_s

    def slice_goodput_qps(self, stats: SliceStats) -> float:
        """One slice's answered completions per simulated second."""
        if self.duration_s <= 0:
            return 0.0
        return stats.answered / self.duration_s

    def hot_templates(self, top: int = 8) -> list[dict]:
        """The templates that dominate the workload, hottest first."""
        ranked = sorted(
            self.slices("template").values(),
            key=lambda s: (-s.count, s.value),
        )[:top]
        total = max(1, self.records)
        return [
            {
                "template": s.value,
                "query": self.templates.get(s.value, ""),
                "count": s.count,
                "share": round(s.count / total, 6),
                "p50_ms": round(s.p50_ms, 4),
                "p99_ms": round(s.p99_ms, 4),
                "p99_service_ms": round(s.p99_service_ms, 4),
                "loss_rate": round(s.loss_rate, 6),
            }
            for s in ranked
        ]

    def to_dict(self, top_templates: int = 8) -> dict:
        return {
            "kind": "mithrilog_workload_profile",
            "window": self.window,
            "records": self.records,
            "duration_s": round(self.duration_s, 9),
            "goodput_qps": round(self.goodput_qps, 4),
            "total": self.total.to_dict(),
            "hot_templates": self.hot_templates(top_templates),
            "slices": {
                dimension: {
                    value: stats.to_dict()
                    for value, stats in sorted(
                        self._slices.get(dimension, {}).items()
                    )
                }
                for dimension in DIMENSIONS
            },
        }


def _records_of(
    journal: Union[QueryJournal, dict, Iterable[JournalRecord]],
    window: Optional[str],
) -> tuple[list[JournalRecord], dict[str, str]]:
    if isinstance(journal, dict):
        journal = QueryJournal.from_payload(journal)
    if isinstance(journal, QueryJournal):
        return journal.in_window(window), dict(journal.templates)
    records = list(journal)
    if window is not None:
        records = [r for r in records if r.window == window]
    return records, {}


def mine(
    journal: Union[QueryJournal, dict, Iterable[JournalRecord]],
    window: Optional[str] = None,
    templates: Optional[dict[str, str]] = None,
) -> WorkloadProfile:
    """Mine one journal window into a :class:`WorkloadProfile`.

    ``journal`` may be a live :class:`QueryJournal`, an exported payload
    dict, or a bare record iterable (pass ``templates`` alongside to
    keep the fingerprint → text map). ``window=None`` mines everything.
    """
    records, template_map = _records_of(journal, window)
    if templates:
        template_map.update(templates)
    profile = WorkloadProfile(
        window=window,
        records=len(records),
        duration_s=0.0,
        templates=template_map,
    )
    if not records:
        return profile
    start = min(r.arrival_s for r in records)
    end = max(r.completed_at_s for r in records)
    # completed_at is absolute while arrival is run-relative; a run that
    # rebased onto an already-advanced clock still yields a sane span
    profile.duration_s = max(end - start, 0.0)
    for record in records:
        keys = {
            "tenant": record.tenant,
            "template": record.template,
            "stage": record.stage or "(none)",
            "outcome": record.outcome,
            "mode": record.mode,
        }
        for dimension, value in keys.items():
            bucket = profile._slices.setdefault(dimension, {})
            stats = bucket.get(value)
            if stats is None:
                stats = bucket[value] = SliceStats(
                    dimension=dimension, value=value
                )
            stats.absorb(record)
    for bucket in profile._slices.values():
        for stats in bucket.values():
            stats.seal()
    return profile


def hot_templates(
    journal: Union[QueryJournal, dict, Iterable[JournalRecord]],
    top: int = 8,
    window: Optional[str] = None,
) -> list[dict]:
    """Convenience: mine and return the hot-template ranking directly."""
    return mine(journal, window=window).hot_templates(top)


@dataclass
class DriftReport:
    """How the workload changed between two journal windows.

    ``l1_share_distance`` is the total-variation-style distance between
    the two template share distributions (0 = identical mix, 2 = fully
    disjoint); ``emerged``/``vanished`` name templates present in only
    one window; ``share_deltas`` lists the largest per-template share
    moves; ``latency_shifts`` the largest p99 moves among templates
    common to both windows.
    """

    window_a: Optional[str]
    window_b: Optional[str]
    records_a: int
    records_b: int
    l1_share_distance: float
    emerged: list[str]
    vanished: list[str]
    share_deltas: list[dict]
    latency_shifts: list[dict]

    @property
    def drifted(self) -> bool:
        """A coarse alarm: the template mix moved by more than 10%."""
        return self.l1_share_distance > 0.1

    def to_dict(self) -> dict:
        return {
            "kind": "mithrilog_workload_drift",
            "window_a": self.window_a,
            "window_b": self.window_b,
            "records_a": self.records_a,
            "records_b": self.records_b,
            "l1_share_distance": round(self.l1_share_distance, 6),
            "drifted": self.drifted,
            "emerged": self.emerged,
            "vanished": self.vanished,
            "share_deltas": self.share_deltas,
            "latency_shifts": self.latency_shifts,
        }


def drift(
    profile_a: WorkloadProfile,
    profile_b: WorkloadProfile,
    top: int = 8,
) -> DriftReport:
    """Detect workload drift between two mined windows."""
    slices_a = profile_a.slices("template")
    slices_b = profile_b.slices("template")
    total_a = max(1, profile_a.records)
    total_b = max(1, profile_b.records)
    shares_a = {k: s.count / total_a for k, s in slices_a.items()}
    shares_b = {k: s.count / total_b for k, s in slices_b.items()}
    every = sorted(set(shares_a) | set(shares_b))
    l1 = sum(
        abs(shares_a.get(k, 0.0) - shares_b.get(k, 0.0)) for k in every
    )
    deltas = sorted(
        (
            {
                "template": k,
                "share_a": round(shares_a.get(k, 0.0), 6),
                "share_b": round(shares_b.get(k, 0.0), 6),
                "delta": round(shares_b.get(k, 0.0) - shares_a.get(k, 0.0), 6),
            }
            for k in every
        ),
        key=lambda d: (-abs(d["delta"]), d["template"]),
    )[:top]
    shifts = sorted(
        (
            {
                "template": k,
                "p99_ms_a": round(slices_a[k].p99_ms, 4),
                "p99_ms_b": round(slices_b[k].p99_ms, 4),
                "delta_ms": round(slices_b[k].p99_ms - slices_a[k].p99_ms, 4),
            }
            for k in every
            if k in slices_a and k in slices_b
        ),
        key=lambda d: (-abs(d["delta_ms"]), d["template"]),
    )[:top]
    return DriftReport(
        window_a=profile_a.window,
        window_b=profile_b.window,
        records_a=profile_a.records,
        records_b=profile_b.records,
        l1_share_distance=l1,
        emerged=sorted(set(shares_b) - set(shares_a)),
        vanished=sorted(set(shares_a) - set(shares_b)),
        share_deltas=deltas,
        latency_shifts=shifts,
    )
