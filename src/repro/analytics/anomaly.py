"""PCA subspace anomaly detection over template count vectors.

The method of Xu et al. [79] ("Detecting large-scale system problems by
mining console logs"), the paper's reference [79] for higher-order
analytics: normal system behaviour occupies a low-dimensional subspace of
the template-count feature space; a window whose count vector has a large
residual outside that subspace is anomalous.

Implementation: column-standardise the training matrix, take the top-k
principal directions (by SVD) covering a target variance fraction, and
score windows by the squared norm of their residual after projection
(SPE, the Q-statistic). The detection threshold defaults to the classic
mean + 3 sigma of training scores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class AnomalyReport:
    """Scores and verdicts for a batch of windows."""

    scores: np.ndarray
    threshold: float

    @property
    def flags(self) -> np.ndarray:
        return self.scores > self.threshold

    def anomalous_windows(self) -> list[int]:
        return [int(i) for i in np.nonzero(self.flags)[0]]


class PCAAnomalyDetector:
    """Subspace method: residual energy outside the normal subspace."""

    def __init__(self, variance: float = 0.95) -> None:
        if not 0 < variance <= 1:
            raise ValueError("variance must be in (0, 1]")
        self.variance = variance
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None
        self._components: Optional[np.ndarray] = None
        self._train_scores: Optional[np.ndarray] = None

    @property
    def fitted(self) -> bool:
        return self._components is not None

    @property
    def num_components(self) -> int:
        if self._components is None:
            raise RuntimeError("detector is not fitted")
        return self._components.shape[0]

    def _normalise(self, X: np.ndarray) -> np.ndarray:
        return (X - self._mean) / self._scale

    def fit(self, X: np.ndarray) -> "PCAAnomalyDetector":
        """Learn the normal subspace from (windows x templates) counts."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] < 2:
            raise ValueError("need a 2-D matrix with at least two windows")
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0  # constant columns carry no signal
        self._scale = scale
        Z = self._normalise(X)
        _u, s, vt = np.linalg.svd(Z, full_matrices=False)
        energy = s**2
        total = energy.sum()
        if total == 0:
            k = 1  # degenerate: all-identical windows
        else:
            cumulative = np.cumsum(energy) / total
            k = int(np.searchsorted(cumulative, self.variance) + 1)
        self._components = vt[:k]
        self._train_scores = self._spe(Z)
        return self

    def _spe(self, Z: np.ndarray) -> np.ndarray:
        projected = Z @ self._components.T @ self._components
        residual = Z - projected
        return (residual**2).sum(axis=1)

    def scores(self, X: np.ndarray) -> np.ndarray:
        """Squared prediction error of each window (higher = stranger)."""
        if not self.fitted:
            raise RuntimeError("fit() the detector first")
        X = np.asarray(X, dtype=np.float64)
        return self._spe(self._normalise(X))

    def threshold(self, sigmas: float = 3.0) -> float:
        """mean + sigmas x std of the training scores."""
        if self._train_scores is None:
            raise RuntimeError("fit() the detector first")
        return float(
            self._train_scores.mean() + sigmas * self._train_scores.std()
        )

    def detect(
        self, X: np.ndarray, threshold: Optional[float] = None
    ) -> AnomalyReport:
        """Score windows and flag those above the threshold."""
        cut = self.threshold() if threshold is None else threshold
        return AnomalyReport(scores=self.scores(X), threshold=cut)
