"""Template-sequence (workflow) analysis.

The paper's reference [82] (CloudSeer) monitors cloud workflows from
interleaved logs: the *order* of template occurrences encodes system
behaviour, and broken orderings flag trouble even when counts look
normal. This module provides the matching primitive over MithriLog's
tagger output: a first-order Markov model of template-to-template
transitions with Laplace smoothing, scoring streams by per-transition
surprise (negative mean log-probability).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

#: Column used for untagged lines.
_UNPARSED = -1


@dataclass(frozen=True)
class SequenceScore:
    """Surprise of one scored window of the stream."""

    start: int
    end: int
    surprise: float


class TransitionModel:
    """First-order Markov model over template ids."""

    def __init__(self, num_templates: int, smoothing: float = 1.0) -> None:
        if num_templates <= 0:
            raise ValueError("num_templates must be positive")
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self.num_templates = num_templates
        self.smoothing = smoothing
        # state space: templates + the 'unparsed' state
        self._states = num_templates + 1
        self._counts = np.zeros((self._states, self._states), dtype=np.float64)
        self._fitted = False

    def _state(self, tag: Optional[int]) -> int:
        if tag is None or tag == _UNPARSED:
            return self._states - 1
        if not 0 <= tag < self.num_templates:
            raise ValueError(f"template id {tag} out of range")
        return tag

    @property
    def fitted(self) -> bool:
        return self._fitted

    def fit(self, tags: Sequence[Optional[int]]) -> "TransitionModel":
        """Count transitions in a (chronological) tag stream."""
        if len(tags) < 2:
            raise ValueError("need at least two events to fit transitions")
        for a, b in zip(tags, tags[1:]):
            self._counts[self._state(a), self._state(b)] += 1
        self._fitted = True
        return self

    def transition_prob(self, a: Optional[int], b: Optional[int]) -> float:
        """Smoothed P(next = b | current = a)."""
        if not self._fitted:
            raise RuntimeError("fit() the model first")
        row = self._counts[self._state(a)]
        return (row[self._state(b)] + self.smoothing) / (
            row.sum() + self.smoothing * self._states
        )

    def surprise(self, tags: Sequence[Optional[int]]) -> float:
        """Mean negative log2 probability per transition."""
        if len(tags) < 2:
            raise ValueError("need at least two events to score")
        total = 0.0
        for a, b in zip(tags, tags[1:]):
            total -= math.log2(self.transition_prob(a, b))
        return total / (len(tags) - 1)

    def score_windows(
        self, tags: Sequence[Optional[int]], window: int
    ) -> list[SequenceScore]:
        """Score consecutive windows of the stream."""
        if window < 2:
            raise ValueError("window must cover at least two events")
        scores = []
        for start in range(0, max(len(tags) - 1, 1), window):
            chunk = tags[start : start + window + 1]  # overlap one transition
            if len(chunk) >= 2:
                scores.append(
                    SequenceScore(
                        start=start,
                        end=min(start + window, len(tags)),
                        surprise=self.surprise(chunk),
                    )
                )
        return scores

    def most_likely_next(self, tag: Optional[int], top: int = 3) -> list[tuple[int, float]]:
        """The most probable successors of a template (workflow mining)."""
        if not self._fitted:
            raise RuntimeError("fit() the model first")
        row = self._counts[self._state(tag)]
        probs = (row + self.smoothing) / (row.sum() + self.smoothing * self._states)
        order = np.argsort(probs)[::-1][:top]
        return [(int(i), float(probs[i])) for i in order]
