"""Higher-order log analytics on MithriLog output (Section 8).

The paper's conclusion sketches the layer above the accelerator: "more
complex analytical operations such as principal component analysis [79]
or clustering [36] can also be implemented to benefit from the fast data
extraction capability of MithriLog". This package is that layer:

- :mod:`repro.analytics.counting` — template count vectors over time
  windows (the feature representation of Xu et al. [79]),
- :mod:`repro.analytics.anomaly` — PCA subspace anomaly detection over
  count vectors,
- :mod:`repro.analytics.clustering` — k-means clustering of log windows
  (Lin et al. [36] style problem identification),
- :mod:`repro.analytics.sequences` — template-transition (workflow)
  models over the tag stream (CloudSeer [82] style monitoring),
- :mod:`repro.analytics.workload` — mining of the service's own query
  journal: hot templates, per-tenant/template/stage/outcome slices,
  and drift detection between journal windows (the *Query Log
  Compression for Workload Analytics* direction).

Everything consumes the tagger/filter output of :mod:`repro.core`, so
these analyses run over *extracted* data, never raw logs.
"""

from repro.analytics.aggregate import AggregateReport, aggregate_matches
from repro.analytics.anomaly import PCAAnomalyDetector
from repro.analytics.clustering import KMeans
from repro.analytics.counting import TemplateCountMatrix, count_windows
from repro.analytics.sequences import TransitionModel
from repro.analytics.workload import (
    DriftReport,
    SliceStats,
    WorkloadProfile,
    drift,
    hot_templates,
    mine,
)

__all__ = [
    "AggregateReport",
    "DriftReport",
    "KMeans",
    "PCAAnomalyDetector",
    "SliceStats",
    "TemplateCountMatrix",
    "TransitionModel",
    "WorkloadProfile",
    "aggregate_matches",
    "count_windows",
    "drift",
    "hot_templates",
    "mine",
]
