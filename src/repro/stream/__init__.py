"""Streaming evaluation: standing queries, windows, alerts, sampling.

The batch half of the system answers queries over ingested history.
This package adds the live half (see ``docs/STREAMING.md``):

- :mod:`repro.stream.windows` — tumbling/sliding windowed aggregates
  (count, rate, distinct templates) on the simulated clock;
- :mod:`repro.stream.standing` — :class:`StandingQueryRegistry`:
  continuous queries evaluated incrementally over newly sealed pages,
  with threshold alerts riding the PR 9 burn-rate state machine and
  flight recorder;
- :mod:`repro.stream.sampling` — seeded deterministic page sampling
  with Horvitz–Thompson match estimates and confidence intervals (the
  approximate admission class the service degrades to under overload);
- :mod:`repro.stream.status` — the ``mithrilog_stream_config`` /
  ``mithrilog_stream_status`` artifact kinds and validators.
"""

from repro.stream.sampling import (
    SampleEstimate,
    estimate_matches,
    page_in_sample,
    sample_pages,
)
from repro.stream.standing import (
    StandingQuery,
    StandingQueryRegistry,
    Threshold,
)
from repro.stream.status import (
    STREAM_CONFIG_KIND,
    STREAM_STATUS_KIND,
    build_stream_config,
    load_stream_config,
    looks_like_stream_config,
    looks_like_stream_status,
    parse_stream_config,
    validate_stream_config,
    validate_stream_status,
)
from repro.stream.windows import (
    WINDOW_AGGREGATES,
    WindowAggregator,
    WindowSpec,
)

__all__ = [
    "SampleEstimate",
    "estimate_matches",
    "page_in_sample",
    "sample_pages",
    "StandingQuery",
    "StandingQueryRegistry",
    "Threshold",
    "STREAM_CONFIG_KIND",
    "STREAM_STATUS_KIND",
    "build_stream_config",
    "load_stream_config",
    "looks_like_stream_config",
    "looks_like_stream_status",
    "parse_stream_config",
    "validate_stream_config",
    "validate_stream_status",
    "WINDOW_AGGREGATES",
    "WindowAggregator",
    "WindowSpec",
]
