"""Tumbling and sliding time-windowed aggregates for standing queries.

A standing query does not return a result set — it maintains *window
state*: how many matches landed in the current window, at what rate,
from how many distinct log templates. This module is that state,
evaluated purely on the simulated clock:

- :class:`WindowSpec` — tumbling (aligned, non-overlapping buckets of
  ``width_s``) or sliding (the trailing ``width_s`` at every
  evaluation);
- :class:`WindowAggregator` — absorbs one observation per incremental
  evaluation (match count + matched-line template fingerprints) and
  answers the three supported aggregates; backed by
  :class:`repro.obs.series.RingSeries` rings so the per-evaluation
  window values export straight into status artifacts and metrics.

Window membership rules (the hypothesis incremental-vs-recompute suite
pins these exactly):

- sliding: an observation at time ``t`` is in the window at ``now``
  iff ``now - width_s < t <= now``;
- tumbling: observations belong to bucket ``floor(t / width_s)``; the
  reported value covers the bucket containing ``now`` (a boundary
  observation at ``t == k * width_s`` opens bucket ``k``).

``rate`` is always ``count / width_s`` — the nominal window width, not
the elapsed fraction of a tumbling bucket — so a half-full bucket reads
as a lower rate rather than extrapolating from thin data.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import QueryError
from repro.obs.series import RingSeries

#: the aggregates a standing query may maintain
WINDOW_AGGREGATES = ("count", "rate", "distinct_templates")

WINDOW_KINDS = ("tumbling", "sliding")


@dataclass(frozen=True)
class WindowSpec:
    """One standing query's window shape."""

    kind: str = "tumbling"  #: "tumbling" | "sliding"
    width_s: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in WINDOW_KINDS:
            raise QueryError(
                f"window kind must be one of {WINDOW_KINDS}, got {self.kind!r}"
            )
        if self.width_s <= 0:
            raise QueryError("window width_s must be positive")

    def start_at(self, now_s: float) -> float:
        """The live window's start for an evaluation at ``now_s``."""
        if self.kind == "sliding":
            return now_s - self.width_s
        return math.floor(now_s / self.width_s) * self.width_s

    def to_dict(self) -> dict:
        return {"kind": self.kind, "width_s": self.width_s}

    @classmethod
    def from_dict(cls, payload: dict) -> "WindowSpec":
        if not isinstance(payload, dict):
            raise QueryError("window must be an object")
        unknown = set(payload) - {"kind", "width_s"}
        if unknown:
            raise QueryError(f"window: unknown keys {sorted(unknown)}")
        return cls(**payload)


@dataclass(frozen=True)
class _Observation:
    t_s: float
    matches: int
    fingerprints: frozenset


class WindowAggregator:
    """Window state for one standing query, fed incrementally.

    Each :meth:`observe` records the matches one incremental evaluation
    produced (matches over *newly sealed pages only* — the caller owns
    that delta). Values are recomputed from the retained observations
    on demand, so an aggregate read at any ``now`` equals the batch
    recompute over the same events — the property the hypothesis suite
    checks.
    """

    def __init__(
        self, name: str, spec: WindowSpec, max_points: int = 512
    ) -> None:
        self.name = name
        self.spec = spec
        #: trailing observations; pruned once two widths stale
        self._events: deque[_Observation] = deque()
        self.matches_total = 0
        self.evaluations = 0
        #: per-aggregate window-value rings (status/metrics export)
        self.series: dict[str, RingSeries] = {
            agg: RingSeries(
                f"stream_window_{agg}",
                labels={"query": name},
                kind="gauge",
                max_points=max_points,
            )
            for agg in WINDOW_AGGREGATES
        }

    def observe(
        self,
        now_s: float,
        matches: int,
        fingerprints: Iterable[str] = (),
    ) -> dict[str, float]:
        """Absorb one incremental evaluation; returns the live values."""
        if self._events and now_s < self._events[-1].t_s:
            raise QueryError(
                f"standing query {self.name!r}: time went backwards"
            )
        if matches < 0:
            raise QueryError("window observation cannot be negative")
        self._events.append(
            _Observation(now_s, int(matches), frozenset(fingerprints))
        )
        self.matches_total += int(matches)
        self.evaluations += 1
        self._prune(now_s)
        values = self.values(now_s)
        for agg, value in values.items():
            self.series[agg].append(now_s, value)
        return values

    def _prune(self, now_s: float) -> None:
        # keep two widths: enough for any live window (a tumbling bucket
        # reaches back at most one width) plus boundary slack
        horizon = now_s - 2.0 * self.spec.width_s
        while self._events and self._events[0].t_s < horizon:
            self._events.popleft()

    def _in_window(self, now_s: float) -> list[_Observation]:
        start = self.spec.start_at(now_s)
        if self.spec.kind == "sliding":
            return [e for e in self._events if start < e.t_s <= now_s]
        return [e for e in self._events if start <= e.t_s <= now_s]

    def value(self, aggregate: str, now_s: float) -> float:
        """The named aggregate over the live window at ``now_s``."""
        if aggregate not in WINDOW_AGGREGATES:
            raise QueryError(
                f"unknown aggregate {aggregate!r}; "
                f"choose from {WINDOW_AGGREGATES}"
            )
        events = self._in_window(now_s)
        if aggregate == "count":
            return float(sum(e.matches for e in events))
        if aggregate == "rate":
            return sum(e.matches for e in events) / self.spec.width_s
        distinct: set = set()
        for event in events:
            distinct.update(event.fingerprints)
        return float(len(distinct))

    def values(self, now_s: float) -> dict[str, float]:
        """All aggregates at once (one window scan would be overkill)."""
        return {
            agg: self.value(agg, now_s) for agg in WINDOW_AGGREGATES
        }

    def latest(self, aggregate: str) -> Optional[float]:
        """The last exported value of an aggregate, if any."""
        point = self.series[aggregate].latest()
        return point.value if point is not None else None

    def to_dict(self) -> dict:
        """JSON-ready window state (feeds the stream status artifact)."""
        return {
            "spec": self.spec.to_dict(),
            "evaluations": self.evaluations,
            "matches_total": self.matches_total,
            "series": {
                agg: series.to_dict() for agg, series in self.series.items()
            },
        }
