"""Standing queries: continuous evaluation over newly sealed pages.

Batch queries ask "what happened?"; standing queries ask "tell me when
it happens". A :class:`StandingQuery` registers a continuous query
(the same :class:`repro.core.query.Query` algebra batch scans use)
with a :class:`StandingQueryRegistry` attached to a
:class:`repro.system.streaming.StreamingIngestor`. Every time the
ingestor seals pages, the registry evaluates each standing query over
*only the newly sealed pages* (an incremental accelerator scan on the
simulated clock — never a rescan of history) and folds the matches
into that query's :class:`~repro.stream.windows.WindowAggregator`.

Threshold alerting reuses the PR 9 burn-rate machinery instead of
growing a parallel path: each evaluation classifies the live window
value against the query's :class:`Threshold` and feeds one synthetic
availability event (good = within threshold) into a shared
:class:`repro.obs.slo.SLOMonitor` under the pseudo-tenant
``stream:<query>``. The standard multi-window state machine
(ok → pending → firing → resolved) then drives the alert, and a
:class:`repro.obs.recorder.FlightRecorder` attached to the same
monitor snapshots an incident bundle at fire time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.analytics.workload import line_template_fingerprint
from repro.core.query import Query, parse_query
from repro.errors import QueryError
from repro.obs.metrics import get_registry
from repro.obs.slo import SLO, AlertState, SLOMonitor
from repro.stream.windows import WINDOW_AGGREGATES, WindowAggregator, WindowSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.streaming import StreamingIngestor

THRESHOLD_OPS = (">=", "<=")

#: the pseudo-tenant prefix standing-query events use on the monitor
STREAM_TENANT_PREFIX = "stream:"


@dataclass(frozen=True)
class Threshold:
    """When does a window value become an alert?

    ``value``/``op``/``aggregate`` define the breach test. The rest
    parameterise the burn-rate SLO the registry synthesises: each
    evaluation emits one good/bad event, so with the defaults
    (``target=0.75``, ``burn_threshold=2.0``) a fully breached window
    burns at ``1 / (1 - 0.75) = 4`` — well over threshold — while
    isolated boundary blips stay below it.
    """

    value: float
    aggregate: str = "count"  #: which window aggregate to test
    op: str = ">="  #: breach when value `op` threshold holds
    fast_window_s: float = 0.05
    slow_window_s: float = 0.1
    burn_threshold: float = 2.0
    target: float = 0.75
    pending_for_s: float = 0.0
    resolve_after_s: float = 0.1

    def __post_init__(self) -> None:
        if self.aggregate not in WINDOW_AGGREGATES:
            raise QueryError(
                f"threshold aggregate must be one of {WINDOW_AGGREGATES}"
            )
        if self.op not in THRESHOLD_OPS:
            raise QueryError(f"threshold op must be one of {THRESHOLD_OPS}")

    def breached(self, window_value: float) -> bool:
        if self.op == ">=":
            return window_value >= self.value
        return window_value <= self.value

    def slo_for(self, query_name: str) -> SLO:
        """The synthetic burn-rate objective driving this alert."""
        return SLO(
            name=f"stream-{query_name}",
            objective="availability",
            tenant=f"{STREAM_TENANT_PREFIX}{query_name}",
            target=self.target,
            fast_window_s=self.fast_window_s,
            slow_window_s=self.slow_window_s,
            burn_threshold=self.burn_threshold,
            pending_for_s=self.pending_for_s,
            resolve_after_s=self.resolve_after_s,
        )

    def to_dict(self) -> dict:
        return {
            "value": self.value,
            "aggregate": self.aggregate,
            "op": self.op,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "burn_threshold": self.burn_threshold,
            "target": self.target,
            "pending_for_s": self.pending_for_s,
            "resolve_after_s": self.resolve_after_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Threshold":
        if not isinstance(payload, dict):
            raise QueryError("threshold must be an object")
        if "value" not in payload:
            raise QueryError("threshold needs a value")
        unknown = set(payload) - {
            "value", "aggregate", "op", "fast_window_s", "slow_window_s",
            "burn_threshold", "target", "pending_for_s", "resolve_after_s",
        }
        if unknown:
            raise QueryError(f"threshold: unknown keys {sorted(unknown)}")
        return cls(**payload)


@dataclass(frozen=True)
class StandingQuery:
    """One registered continuous query."""

    name: str
    query: Query
    window: WindowSpec = field(default_factory=WindowSpec)
    aggregates: tuple = WINDOW_AGGREGATES
    threshold: Optional[Threshold] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("standing query needs a name")
        if isinstance(self.query, bytes):
            object.__setattr__(self, "query", self.query.decode())
        if isinstance(self.query, str):
            object.__setattr__(self, "query", parse_query(self.query))
        if not isinstance(self.query, Query):
            raise QueryError(
                f"standing query {self.name!r}: query must be a Query, "
                "str, or bytes"
            )
        for aggregate in self.aggregates:
            if aggregate not in WINDOW_AGGREGATES:
                raise QueryError(
                    f"standing query {self.name!r}: unknown aggregate "
                    f"{aggregate!r}"
                )
        if not self.aggregates:
            raise QueryError(
                f"standing query {self.name!r} needs at least one aggregate"
            )

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "query": str(self.query),
            "window": self.window.to_dict(),
            "aggregates": list(self.aggregates),
        }
        if self.threshold is not None:
            payload["threshold"] = self.threshold.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "StandingQuery":
        if not isinstance(payload, dict):
            raise QueryError("standing query entry must be an object")
        if "name" not in payload or "query" not in payload:
            raise QueryError("standing query entry needs name and query")
        unknown = set(payload) - {
            "name", "query", "window", "aggregates", "threshold",
        }
        if unknown:
            raise QueryError(
                f"standing query {payload.get('name')!r}: unknown keys "
                f"{sorted(unknown)}"
            )
        return cls(
            name=payload["name"],
            query=parse_query(payload["query"]),
            window=WindowSpec.from_dict(payload.get("window", {})),
            aggregates=tuple(
                payload.get("aggregates", WINDOW_AGGREGATES)
            ),
            threshold=(
                Threshold.from_dict(payload["threshold"])
                if payload.get("threshold") is not None
                else None
            ),
        )


@dataclass
class _StandingState:
    """A registered query plus its live window state."""

    query: StandingQuery
    aggregator: WindowAggregator


class StandingQueryRegistry:
    """Continuous queries evaluated incrementally against one system.

    Attach it to a :class:`~repro.system.streaming.StreamingIngestor`
    (:meth:`attach`) and every flush triggers :meth:`evaluate_new_pages`
    — or call that method directly from any ingest driver. Pages sealed
    *before* a query registers are not back-filled: a standing query
    watches the future, not the past.
    """

    def __init__(
        self,
        system,
        interval_s: float = 0.005,
        monitor: Optional[SLOMonitor] = None,
        max_points: int = 512,
    ) -> None:
        self.system = system
        self.monitor = (
            monitor
            if monitor is not None
            else SLOMonitor([], interval_s=interval_s)
        )
        self._states: dict[str, _StandingState] = {}
        self._pages_seen = len(system.index.data_pages)
        self.evaluations = 0
        registry = get_registry()
        if registry is not None:
            self._m_evals = registry.counter(
                "mithrilog_stream_evaluations_total",
                "Incremental standing-query evaluations",
                labelnames=("query",),
            )
            self._m_matches = registry.counter(
                "mithrilog_stream_matches_total",
                "Lines matched by standing queries (cumulative)",
                labelnames=("query",),
            )
            self._m_window = registry.gauge(
                "mithrilog_stream_window_value",
                "Live window value by standing query and aggregate",
                labelnames=("query", "aggregate"),
            )
            self._m_registered = registry.gauge(
                "mithrilog_stream_standing_queries",
                "Standing queries currently registered",
            )
        else:
            self._m_evals = None
            self._m_matches = None
            self._m_window = None
            self._m_registered = None

    # -- registration ------------------------------------------------------

    def register(self, standing: StandingQuery) -> None:
        """Add a standing query; its threshold SLO joins the monitor."""
        if standing.name in self._states:
            raise QueryError(
                f"standing query {standing.name!r} already registered"
            )
        self._states[standing.name] = _StandingState(
            query=standing,
            aggregator=WindowAggregator(standing.name, standing.window),
        )
        if standing.threshold is not None:
            self.monitor.add_slo(standing.threshold.slo_for(standing.name))
        if self._m_registered is not None:
            self._m_registered.set(len(self._states))

    def attach(self, ingestor: "StreamingIngestor") -> None:
        """Evaluate after every flush of this ingestor."""
        ingestor.flush_listeners.append(self._on_flush)

    def _on_flush(self, lines_flushed: int, now_s: float) -> None:
        del lines_flushed, now_s  # the page delta is the real signal
        self.evaluate_new_pages()

    @property
    def standing(self) -> list[StandingQuery]:
        """Registered queries, in registration order."""
        return [state.query for state in self._states.values()]

    def aggregator(self, name: str) -> WindowAggregator:
        if name not in self._states:
            raise QueryError(f"unknown standing query {name!r}")
        return self._states[name].aggregator

    def alert_state(self, name: str) -> AlertState:
        """The named query's alert state (OK when it has no threshold)."""
        state = self._states.get(name)
        if state is None:
            raise QueryError(f"unknown standing query {name!r}")
        if state.query.threshold is None:
            return AlertState.OK
        return self.monitor.state_of(f"stream-{name}")

    # -- evaluation --------------------------------------------------------

    def evaluate_new_pages(self, workers: int = 1) -> int:
        """Scan pages sealed since the last call; returns how many.

        Each registered query runs one incremental accelerator scan
        restricted to the new pages (``within_pages``), so the cost of
        continuous evaluation tracks the *ingest* rate, not the store
        size. Window values, metrics, and the threshold monitor all
        advance on the system's simulated clock.
        """
        pages = list(self.system.index.data_pages)
        new_pages = pages[self._pages_seen:]
        self._pages_seen = len(pages)
        if not new_pages or not self._states:
            return len(new_pages)
        for state in self._states.values():
            outcome = self.system.query(
                state.query.query,
                within_pages=new_pages,
                workers=workers,
            )
            matches = outcome.per_query_counts[0]
            fingerprints = {
                line_template_fingerprint(line)
                for line in outcome.matched_lines
            }
            now_s = self.system.clock.now
            values = state.aggregator.observe(now_s, matches, fingerprints)
            self.evaluations += 1
            name = state.query.name
            if self._m_evals is not None:
                self._m_evals.inc(query=name)
            if self._m_matches is not None and matches:
                self._m_matches.inc(matches, query=name)
            if self._m_window is not None:
                for aggregate, value in values.items():
                    self._m_window.set(
                        value, query=name, aggregate=aggregate
                    )
            threshold = state.query.threshold
            if threshold is not None:
                breached = threshold.breached(values[threshold.aggregate])
                self.monitor.observe(
                    tenant=f"{STREAM_TENANT_PREFIX}{name}",
                    outcome="shed" if breached else "ok",
                    latency_s=0.0,
                    now_s=now_s,
                )
        # force one evaluation per flush round so alert latency is
        # bounded by the flush cadence, not the monitor interval
        self.monitor.evaluate(self.system.clock.now)
        return len(new_pages)

    # -- status ------------------------------------------------------------

    def status_payload(self) -> dict:
        """The ``mithrilog_stream_status`` artifact (see ``status.py``)."""
        from repro.stream.status import STREAM_STATUS_KIND, STREAM_STATUS_VERSION

        queries = []
        for state in self._states.values():
            standing = state.query
            entry = {
                "definition": standing.to_dict(),
                "window_state": state.aggregator.to_dict(),
                "alert_state": self.alert_state(standing.name).value,
            }
            if standing.threshold is not None:
                slo_name = f"stream-{standing.name}"
                entry["alerts"] = [
                    alert.to_dict()
                    for alert in self.monitor.alerts
                    if alert.slo == slo_name
                ]
            queries.append(entry)
        return {
            "kind": STREAM_STATUS_KIND,
            "version": STREAM_STATUS_VERSION,
            "generated_at_s": self.system.clock.now,
            "pages_seen": self._pages_seen,
            "evaluations": self.evaluations,
            "queries": queries,
            "monitor_timeline": self.monitor.timeline(),
        }
