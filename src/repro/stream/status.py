"""Stream artifact kinds: registration configs and status snapshots.

Two JSON artifact kinds, both accepted by ``repro.obs.check``:

- ``mithrilog_stream_config`` — a set of standing-query registrations
  (what ``repro stream register`` writes and ``repro stream status``
  replays);
- ``mithrilog_stream_status`` — a registry snapshot after a run:
  per-query window-state series, alert states, and the monitor's
  transition timeline (what ``repro stream status --out`` writes).

Validators follow the house style: ``looks_like_*`` is a cheap shape
probe for dispatch, ``validate_*`` returns a list of problem strings
(empty = valid).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import QueryError
from repro.obs.slo import AlertState
from repro.stream.standing import StandingQuery
from repro.stream.windows import WINDOW_AGGREGATES

STREAM_CONFIG_KIND = "mithrilog_stream_config"
STREAM_CONFIG_VERSION = 1
STREAM_STATUS_KIND = "mithrilog_stream_status"
STREAM_STATUS_VERSION = 1

_ALERT_STATES = {state.value for state in AlertState}


# ---------------------------------------------------------------------------
# Config artifacts
# ---------------------------------------------------------------------------


def looks_like_stream_config(payload: object) -> bool:
    """Is this payload shaped like a stream registration config?"""
    return (
        isinstance(payload, dict)
        and payload.get("kind") == STREAM_CONFIG_KIND
    )


def validate_stream_config(payload: object) -> list[str]:
    """Schema check for a registration config; returns problem strings."""
    if not isinstance(payload, dict):
        return ["not an object"]
    problems: list[str] = []
    if not looks_like_stream_config(payload):
        problems.append(
            f"kind must be {STREAM_CONFIG_KIND!r}, got {payload.get('kind')!r}"
        )
        return problems
    if payload.get("version") != STREAM_CONFIG_VERSION:
        problems.append(
            f"unsupported config version {payload.get('version')!r}"
        )
    interval = payload.get("check_interval_s", 0.005)
    if not isinstance(interval, (int, float)) or interval <= 0:
        problems.append("check_interval_s must be a positive number")
    entries = payload.get("queries")
    if not isinstance(entries, list) or not entries:
        problems.append("queries must be a non-empty list")
        return problems
    names: set[str] = set()
    for i, entry in enumerate(entries):
        try:
            standing = StandingQuery.from_dict(entry)
        except QueryError as exc:
            problems.append(f"queries[{i}]: {exc}")
            continue
        if standing.name in names:
            problems.append(
                f"queries[{i}]: duplicate name {standing.name!r}"
            )
        names.add(standing.name)
    return problems


def parse_stream_config(payload: dict) -> tuple[list[StandingQuery], float]:
    """Validated ``(standing queries, check_interval_s)`` from a payload."""
    problems = validate_stream_config(payload)
    if problems:
        raise QueryError("; ".join(problems))
    queries = [StandingQuery.from_dict(entry) for entry in payload["queries"]]
    return queries, float(payload.get("check_interval_s", 0.005))


def load_stream_config(
    path: Union[str, Path],
) -> tuple[list[StandingQuery], float]:
    """Read and validate a JSON stream config from disk."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise QueryError(f"{path}: unreadable stream config ({exc})") from exc
    return parse_stream_config(payload)


def build_stream_config(
    queries: list[StandingQuery], check_interval_s: float = 0.005
) -> dict:
    """A config payload from registrations (``repro stream register``)."""
    return {
        "kind": STREAM_CONFIG_KIND,
        "version": STREAM_CONFIG_VERSION,
        "check_interval_s": check_interval_s,
        "queries": [standing.to_dict() for standing in queries],
    }


# ---------------------------------------------------------------------------
# Status artifacts
# ---------------------------------------------------------------------------


def looks_like_stream_status(payload: object) -> bool:
    """Is this payload shaped like a stream status snapshot?"""
    return (
        isinstance(payload, dict)
        and payload.get("kind") == STREAM_STATUS_KIND
    )


def _check_series(entry: dict, i: int, problems: list[str]) -> None:
    series = entry.get("window_state", {}).get("series")
    if not isinstance(series, dict):
        problems.append(f"queries[{i}]: window_state.series missing")
        return
    aggregates = entry.get("definition", {}).get("aggregates", [])
    for aggregate in aggregates:
        if aggregate not in series:
            problems.append(
                f"queries[{i}]: no series for aggregate {aggregate!r}"
            )
    for name, payload in series.items():
        if name not in WINDOW_AGGREGATES:
            problems.append(f"queries[{i}]: unknown series {name!r}")
            continue
        points = payload.get("points")
        if not isinstance(points, list):
            problems.append(f"queries[{i}]: series {name!r} has no points")
            continue
        last_t = None
        for point in points:
            if (
                not isinstance(point, list)
                or len(point) != 2
                or not all(isinstance(v, (int, float)) for v in point)
            ):
                problems.append(
                    f"queries[{i}]: series {name!r} has a malformed point"
                )
                break
            if last_t is not None and point[0] < last_t:
                problems.append(
                    f"queries[{i}]: series {name!r} time went backwards"
                )
                break
            last_t = point[0]


def validate_stream_status(payload: object) -> list[str]:
    """Integrity check for a status snapshot; returns problem strings."""
    if not isinstance(payload, dict):
        return ["not an object"]
    problems: list[str] = []
    if not looks_like_stream_status(payload):
        problems.append(
            f"kind must be {STREAM_STATUS_KIND!r}, got {payload.get('kind')!r}"
        )
        return problems
    if payload.get("version") != STREAM_STATUS_VERSION:
        problems.append(
            f"unsupported status version {payload.get('version')!r}"
        )
    for key in ("generated_at_s", "pages_seen", "evaluations"):
        value = payload.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"{key} must be a non-negative number")
    entries = payload.get("queries")
    if not isinstance(entries, list):
        problems.append("queries must be a list")
        return problems
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            problems.append(f"queries[{i}]: not an object")
            continue
        try:
            standing = StandingQuery.from_dict(entry.get("definition", {}))
        except QueryError as exc:
            problems.append(f"queries[{i}]: bad definition ({exc})")
            continue
        state = entry.get("alert_state")
        if state not in _ALERT_STATES:
            problems.append(
                f"queries[{i}]: alert_state {state!r} is not one of "
                f"{sorted(_ALERT_STATES)}"
            )
        if standing.threshold is None and state not in (None, "ok"):
            problems.append(
                f"queries[{i}]: alert_state {state!r} without a threshold"
            )
        window_state = entry.get("window_state")
        if not isinstance(window_state, dict):
            problems.append(f"queries[{i}]: window_state missing")
            continue
        for key in ("evaluations", "matches_total"):
            value = window_state.get(key)
            if not isinstance(value, int) or value < 0:
                problems.append(
                    f"queries[{i}]: window_state.{key} must be a "
                    "non-negative integer"
                )
        _check_series(entry, i, problems)
        if len(problems) >= 20:
            problems.append("... further problems suppressed")
            break
    timeline = payload.get("monitor_timeline")
    if timeline is not None and not isinstance(timeline, list):
        problems.append("monitor_timeline must be a list when present")
    return problems
